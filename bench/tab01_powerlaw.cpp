/**
 * @file
 * Table 1: power-law parameters of the unit-latency IW characteristic
 * (I = alpha * W^beta) and the average instruction latency L for the
 * three illustrative benchmarks. Paper values: gzip (1.3, 0.5, 1.5),
 * vortex (1.2, 0.7, 1.6), vpr (1.7, 0.3, 2.2).
 */

#include <iostream>

#include "common/table.hh"
#include "experiments/workbench.hh"

int
main()
{
    using namespace fosm;

    Workbench bench;

    printBanner(std::cout,
                "Table 1: power-law parameters (unit-latency case)");
    TextTable table({"bench", "alpha", "beta", "avg lat", "R^2",
                     "paper alpha", "paper beta", "paper lat"});

    // The workload build dominates; run it concurrently, then print
    // from the warm cache.
    bench.buildAll();
    for (const std::string &name : Workbench::benchmarks()) {
        const WorkloadData &data = bench.workload(name);
        const Profile &p = *data.profile;
        auto paper = [](double v) {
            return v > 0.0 ? TextTable::num(v, 1) : std::string("-");
        };
        table.addRow({name, TextTable::num(data.iw.alpha(), 2),
                      TextTable::num(data.iw.beta(), 2),
                      TextTable::num(data.missProfile.avgLatency, 2),
                      TextTable::num(data.iw.fitR2(), 3),
                      paper(p.paperAlpha), paper(p.paperBeta),
                      paper(p.paperAvgLatency)});
    }
    table.print(std::cout);
    std::cout << "\npaper reports only the three illustrative "
                 "benchmarks (gzip, vortex, vpr);\nthe ordering "
                 "beta(vpr) < beta(gzip) < beta(vortex) is the key "
                 "shape.\n";
    return 0;
}
