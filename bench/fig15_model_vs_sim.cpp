/**
 * @file
 * Figure 15: overall CPI predicted by the first-order model against
 * detailed cycle-level simulation for the 12 benchmarks. The paper
 * reports very close agreement: average CPI error 5.8%, worst cases
 * mcf 13%, gzip 12%, twolf 12%.
 */

#include <iostream>

#include "common/table.hh"
#include "experiments/workbench.hh"

int
main()
{
    using namespace fosm;

    Workbench bench;
    const FirstOrderModel model(Workbench::baselineMachine());

    printBanner(std::cout,
                "Figure 15: first-order model vs detailed simulation "
                "(CPI)");
    TextTable table({"bench", "model CPI", "sim CPI", "model IPC",
                     "sim IPC", "error %"});

    double err_sum = 0.0;
    double err_max = 0.0;
    std::string err_max_bench;
    for (const std::string &name : Workbench::benchmarks()) {
        const WorkloadData &data = bench.workload(name);
        const CpiBreakdown cpi =
            model.evaluate(data.iw, data.missProfile);
        const SimStats sim = simulateTrace(
            data.trace, Workbench::baselineSimConfig());
        const double err = relativeError(cpi.total(), sim.cpi());
        err_sum += err;
        if (err > err_max) {
            err_max = err;
            err_max_bench = name;
        }
        table.addRow({name, TextTable::num(cpi.total(), 3),
                      TextTable::num(sim.cpi(), 3),
                      TextTable::num(cpi.ipc(), 3),
                      TextTable::num(sim.ipc(), 3),
                      TextTable::num(err * 100.0, 1)});
    }
    table.print(std::cout);

    std::cout << "\nmean |CPI error| = "
              << TextTable::num(
                     err_sum / Workbench::benchmarks().size() * 100,
                     1)
              << " %   (paper: 5.8 %)\n";
    std::cout << "max  |CPI error| = "
              << TextTable::num(err_max * 100, 1) << " % ("
              << err_max_bench << ")   (paper: 13 % on mcf)\n";
    return 0;
}
