/**
 * @file
 * Figure 15: overall CPI predicted by the first-order model against
 * detailed cycle-level simulation for the 12 benchmarks. The paper
 * reports very close agreement: average CPI error 5.8%, worst cases
 * mcf 13%, gzip 12%, twolf 12%.
 */

#include <iostream>

#include "common/table.hh"
#include "experiments/workbench.hh"

int
main()
{
    using namespace fosm;

    Workbench bench;
    const FirstOrderModel model(Workbench::baselineMachine());

    printBanner(std::cout,
                "Figure 15: first-order model vs detailed simulation "
                "(CPI)");
    TextTable table({"bench", "model CPI", "sim CPI", "model IPC",
                     "sim IPC", "error %"});

    // One design point per benchmark, evaluated concurrently; rows
    // come back in benchmark order so the table matches a serial run.
    struct Row
    {
        CpiBreakdown cpi;
        SimStats sim;
        double err;
    };
    const std::vector<Row> rows = mapWorkloads(
        bench, [&](const std::string &, const WorkloadData &data) {
            Row row;
            row.cpi = model.evaluate(data.iw, data.missProfile);
            row.sim = simulateTrace(data.trace,
                                    Workbench::baselineSimConfig());
            row.err = relativeError(row.cpi.total(), row.sim.cpi());
            return row;
        });

    double err_sum = 0.0;
    double err_max = 0.0;
    std::string err_max_bench;
    const std::vector<std::string> names = Workbench::benchmarks();
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &row = rows[i];
        err_sum += row.err;
        if (row.err > err_max) {
            err_max = row.err;
            err_max_bench = names[i];
        }
        table.addRow({names[i], TextTable::num(row.cpi.total(), 3),
                      TextTable::num(row.sim.cpi(), 3),
                      TextTable::num(row.cpi.ipc(), 3),
                      TextTable::num(row.sim.ipc(), 3),
                      TextTable::num(row.err * 100.0, 1)});
    }
    table.print(std::cout);

    std::cout << "\nmean |CPI error| = "
              << TextTable::num(
                     err_sum / Workbench::benchmarks().size() * 100,
                     1)
              << " %   (paper: 5.8 %)\n";
    std::cout << "max  |CPI error| = "
              << TextTable::num(err_max * 100, 1) << " % ("
              << err_max_bench << ")   (paper: 13 % on mcf)\n";
    return 0;
}
