/**
 * @file
 * Extension (paper Section 7, future-work 1): limited functional
 * units. The model lowers the saturation level to the pools'
 * throughput bound given the operation mix; this bench validates the
 * lowered steady state against the detailed simulator with the same
 * pools, and demonstrates the sizing rule ("the number of units
 * required to meet this performance").
 */

#include <iostream>

#include "common/table.hh"
#include "experiments/workbench.hh"

int
main()
{
    using namespace fosm;

    Workbench bench;

    printBanner(std::cout,
                "Extension: limited functional units (typical 4-wide "
                "pools: 4 ALU, 1 mul, 1 div unpipelined, 2 FP, 2 mem "
                "ports)");
    TextTable table({"bench", "eff. width", "model CPI", "sim CPI",
                     "err %", "unbounded sim CPI"});

    const FuPoolConfig pools = FuPoolConfig::typical4Wide();

    // Two simulations per benchmark; all design points run
    // concurrently, rows are collected in benchmark order.
    const auto rows = mapWorkloads(
        bench, [&](const std::string &name, const WorkloadData &data) {
            ModelOptions options;
            options.fuPools = pools;
            const FirstOrderModel model(Workbench::baselineMachine(),
                                        options);
            const CpiBreakdown cpi =
                model.evaluate(data.iw, data.missProfile);

            SimConfig sim_config = Workbench::baselineSimConfig();
            sim_config.fuPools = pools;
            const SimStats sim = simulateTrace(data.trace, sim_config);
            const SimStats unbounded = simulateTrace(
                data.trace, Workbench::baselineSimConfig());

            return std::vector<std::string>{
                name,
                TextTable::num(
                    effectiveIssueWidth(4, pools,
                                        data.missProfile.mix),
                    2),
                TextTable::num(cpi.total(), 3),
                TextTable::num(sim.cpi(), 3),
                TextTable::num(
                    relativeError(cpi.total(), sim.cpi()) * 100.0, 1),
                TextTable::num(unbounded.cpi(), 3)};
        });
    for (const std::vector<std::string> &row : rows)
        table.addRow(row);
    table.print(std::cout);

    // A deliberately starved machine: one memory port binds for the
    // load-heavy workloads, the single FP unit for vpr.
    FuPoolConfig starved;
    starved.intAlu = {2, true};
    starved.intMul = {1, true};
    starved.intDiv = {1, false};
    starved.fpAlu = {1, true};
    starved.memPort = {1, true};

    printBanner(std::cout,
                "Starved pools (2 ALU, 1 mul, 1 div unpipelined, "
                "1 FP, 1 mem port): the bound binds");
    TextTable starved_table({"bench", "eff. width", "model CPI",
                             "sim CPI", "err %"});
    const std::vector<std::string> starved_names{
        "gzip", "vortex", "vpr", "mcf", "crafty", "eon"};
    const auto starved_rows = parallelMap(
        starved_names, [&](const std::string &name) {
            const WorkloadData &data = bench.workload(name);
            ModelOptions options;
            options.fuPools = starved;
            const FirstOrderModel model(Workbench::baselineMachine(),
                                        options);
            const CpiBreakdown cpi =
                model.evaluate(data.iw, data.missProfile);
            SimConfig sim_config = Workbench::baselineSimConfig();
            sim_config.fuPools = starved;
            const SimStats sim = simulateTrace(data.trace, sim_config);
            return std::vector<std::string>{
                name,
                TextTable::num(effectiveIssueWidth(
                                   4, starved, data.missProfile.mix),
                               2),
                TextTable::num(cpi.total(), 3),
                TextTable::num(sim.cpi(), 3),
                TextTable::num(
                    relativeError(cpi.total(), sim.cpi()) * 100.0, 1)};
        });
    for (const std::vector<std::string> &row : starved_rows)
        starved_table.addRow(row);
    starved_table.print(std::cout);

    printBanner(std::cout,
                "Pool sizing rule: units required to sustain IPC 4 "
                "per workload mix");
    TextTable sizing({"bench", "required pools"});
    for (const char *name : {"gzip", "vpr", "mcf"}) {
        const WorkloadData &data = bench.workload(name);
        sizing.addRow({name, describePools(requiredPools(
                                 4.0, data.missProfile.mix))});
    }
    sizing.print(std::cout);
    return 0;
}
