/**
 * @file
 * Figure 5: measured IW curves against the fitted power-law lines for
 * the three illustrative benchmarks (gzip, vortex, vpr), in log2-log2
 * coordinates, including the fitted-line equations the paper prints
 * on the figure.
 */

#include <cmath>
#include <iostream>

#include "common/table.hh"
#include "experiments/workbench.hh"

int
main()
{
    using namespace fosm;

    Workbench bench;

    printBanner(std::cout,
                "Figure 5: linear IW curve fit for illustrative "
                "benchmarks (log2 scale)");
    TextTable table({"bench", "log2(W)", "measured log2(I)",
                     "fit log2(I)", "residual"});

    // Warm the three workloads concurrently; the print loops below
    // then read from the cache.
    const std::vector<std::string> names{"gzip", "vortex", "vpr"};
    parallelMap(names, [&](const std::string &name) {
        bench.workload(name);
        return 0;
    });

    for (const char *name : {"gzip", "vortex", "vpr"}) {
        const WorkloadData &data = bench.workload(name);
        for (const IwPoint &p : data.iwPoints) {
            const double measured = std::log2(p.ipc);
            const double fit =
                std::log2(data.iw.alpha()) +
                data.iw.beta() * std::log2(p.windowSize);
            table.addRow({name,
                          TextTable::num(std::log2(p.windowSize), 0),
                          TextTable::num(measured, 3),
                          TextTable::num(fit, 3),
                          TextTable::num(measured - fit, 3)});
        }
    }
    table.print(std::cout);

    std::cout << "\nfitted equations:\n";
    for (const char *name : {"gzip", "vortex", "vpr"}) {
        const WorkloadData &data = bench.workload(name);
        std::cout << "  " << name << ": log2(I) = "
                  << TextTable::num(data.iw.beta(), 2)
                  << " * log2(W) + "
                  << TextTable::num(std::log2(data.iw.alpha()), 2)
                  << "   (paper: gzip 0.50/0.37, vortex 0.72/0.25, "
                     "vpr 0.30/0.74)\n";
    }
    return 0;
}
