/**
 * @file
 * Google-benchmark microbenchmarks for the infrastructure itself:
 * trace generation, functional profiling, the idealized window
 * simulation, detailed simulation, and analytical model evaluation.
 * The headline comparison is the model's evaluation cost against a
 * detailed simulation of the same workload - the paper's "analytical
 * models have clear speed advantages" claim, quantified.
 */

#include <benchmark/benchmark.h>

#include "branch/gshare.hh"
#include "experiments/workbench.hh"

namespace {

using namespace fosm;

const Trace &
gzipTrace()
{
    static const Trace trace =
        generateTrace(profileByName("gzip"), 100000);
    return trace;
}

void
BM_TraceGeneration(benchmark::State &state)
{
    const Profile &profile = profileByName("gzip");
    for (auto _ : state) {
        const Trace t =
            generateTrace(profile, state.range(0));
        benchmark::DoNotOptimize(t.size());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TraceGeneration)->Arg(10000)->Arg(100000);

void
BM_MissProfiler(benchmark::State &state)
{
    const Trace &trace = gzipTrace();
    for (auto _ : state) {
        const MissProfile p = profileTrace(trace);
        benchmark::DoNotOptimize(p.mispredictions);
    }
    state.SetItemsProcessed(state.iterations() * trace.size());
}
BENCHMARK(BM_MissProfiler);

void
BM_WindowSimUnbounded(benchmark::State &state)
{
    const Trace &trace = gzipTrace();
    WindowSimConfig config;
    config.windowSize = static_cast<std::uint32_t>(state.range(0));
    for (auto _ : state) {
        const WindowSimResult r = simulateWindow(trace, config);
        benchmark::DoNotOptimize(r.ipc);
    }
    state.SetItemsProcessed(state.iterations() * trace.size());
}
BENCHMARK(BM_WindowSimUnbounded)->Arg(16)->Arg(64);

void
BM_DetailedSim(benchmark::State &state)
{
    const Trace &trace = gzipTrace();
    const SimConfig config = Workbench::baselineSimConfig();
    for (auto _ : state) {
        const SimStats s = simulateTrace(trace, config);
        benchmark::DoNotOptimize(s.cycles);
    }
    state.SetItemsProcessed(state.iterations() * trace.size());
}
BENCHMARK(BM_DetailedSim);

void
BM_ModelEvaluation(benchmark::State &state)
{
    // The analytical step alone: given the profile statistics,
    // evaluate equation (1). This is the part that replaces a
    // detailed simulation per design point.
    static Workbench bench;
    const WorkloadData &data = bench.workload("gzip");
    const FirstOrderModel model(Workbench::baselineMachine());
    for (auto _ : state) {
        const CpiBreakdown b =
            model.evaluate(data.iw, data.missProfile);
        benchmark::DoNotOptimize(b.total());
    }
}
BENCHMARK(BM_ModelEvaluation);

void
BM_CacheAccess(benchmark::State &state)
{
    Cache cache({"bench", 4096, 4, 128, ReplPolicyKind::Lru});
    Rng rng(1);
    std::vector<Addr> addrs;
    for (int i = 0; i < 4096; ++i)
        addrs.push_back(rng.zipf(1 << 16, 0.7) * 16);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(addrs[i++ & 4095]));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_GSharePredict(benchmark::State &state)
{
    GSharePredictor predictor(8192);
    Rng rng(2);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(predictor.predictAndUpdate(
            0x1000 + (i++ % 64) * 4, rng.bernoulli(0.6)));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GSharePredict);

} // namespace

BENCHMARK_MAIN();
