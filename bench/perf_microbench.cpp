/**
 * @file
 * Google-benchmark microbenchmarks for the infrastructure itself:
 * trace generation, functional profiling, the idealized window
 * simulation, detailed simulation, and analytical model evaluation.
 * The headline comparison is the model's evaluation cost against a
 * detailed simulation of the same workload - the paper's "analytical
 * models have clear speed advantages" claim, quantified.
 */

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

#include "branch/gshare.hh"
#include "experiments/workbench.hh"
#include "model/batch_eval.hh"

namespace {

using namespace fosm;

const Trace &
gzipTrace()
{
    static const Trace trace =
        generateTrace(profileByName("gzip"), 100000);
    return trace;
}

void
BM_TraceGeneration(benchmark::State &state)
{
    const Profile &profile = profileByName("gzip");
    for (auto _ : state) {
        const Trace t =
            generateTrace(profile, state.range(0));
        benchmark::DoNotOptimize(t.size());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TraceGeneration)->Arg(10000)->Arg(100000);

void
BM_MissProfiler(benchmark::State &state)
{
    const Trace &trace = gzipTrace();
    for (auto _ : state) {
        const MissProfile p = profileTrace(trace);
        benchmark::DoNotOptimize(p.mispredictions);
    }
    state.SetItemsProcessed(state.iterations() * trace.size());
}
BENCHMARK(BM_MissProfiler);

void
BM_WindowSimUnbounded(benchmark::State &state)
{
    const Trace &trace = gzipTrace();
    WindowSimConfig config;
    config.windowSize = static_cast<std::uint32_t>(state.range(0));
    for (auto _ : state) {
        const WindowSimResult r = simulateWindow(trace, config);
        benchmark::DoNotOptimize(r.ipc);
    }
    state.SetItemsProcessed(state.iterations() * trace.size());
}
BENCHMARK(BM_WindowSimUnbounded)->Arg(16)->Arg(64);

void
BM_DetailedSim(benchmark::State &state)
{
    const Trace &trace = gzipTrace();
    const SimConfig config = Workbench::baselineSimConfig();
    for (auto _ : state) {
        const SimStats s = simulateTrace(trace, config);
        benchmark::DoNotOptimize(s.cycles);
    }
    state.SetItemsProcessed(state.iterations() * trace.size());
}
BENCHMARK(BM_DetailedSim);

void
BM_ModelEvaluation(benchmark::State &state)
{
    // The analytical step alone: given the profile statistics,
    // evaluate equation (1). This is the part that replaces a
    // detailed simulation per design point.
    static Workbench bench;
    const WorkloadData &data = bench.workload("gzip");
    const FirstOrderModel model(Workbench::baselineMachine());
    for (auto _ : state) {
        const CpiBreakdown b =
            model.evaluate(data.iw, data.missProfile);
        benchmark::DoNotOptimize(b.total());
    }
}
BENCHMARK(BM_ModelEvaluation);

/** ULPs between two doubles (0 = identical bits). */
std::uint64_t
ulpDistance(double a, double b)
{
    if (std::isnan(a) || std::isnan(b))
        return a == a || b == b ? ~0ull : 0;
    std::int64_t ia, ib;
    std::memcpy(&ia, &a, sizeof(ia));
    std::memcpy(&ib, &b, sizeof(ib));
    // Map the sign-magnitude bit pattern onto a monotone integer
    // line so distance works across zero.
    if (ia < 0)
        ia = std::numeric_limits<std::int64_t>::min() - ia;
    if (ib < 0)
        ib = std::numeric_limits<std::int64_t>::min() - ib;
    return static_cast<std::uint64_t>(ia > ib ? ia - ib : ib - ia);
}

void
BM_ModelEvaluationBatched(benchmark::State &state)
{
    // The /v1/batch inner loop: many design points of one workload
    // through the SoA kernels (shared transient walks, one overlap
    // sweep) vs. the scalar model per point. Also the CI equivalence
    // gate: batch results must be within MAX_ULPS of the scalar path
    // (the contract is 0 — bit-identical; the bound exists so a
    // future relaxation is an explicit decision, not silent drift).
    constexpr std::uint64_t kMaxUlps = 0;
    static Workbench bench;
    const WorkloadData &data = bench.workload("gzip");
    const std::size_t rows = static_cast<std::size_t>(state.range(0));

    std::vector<MachineConfig> machines;
    std::vector<IWCharacteristic> iws;
    for (std::size_t i = 0; i < rows; ++i) {
        MachineConfig m = Workbench::baselineMachine();
        m.deltaD = static_cast<std::uint32_t>(100 + 10 * i);
        if (i % 7 == 0)
            m.robSize = 64u << (i % 3);
        machines.push_back(m);
        iws.push_back(data.iw);
    }
    const ModelOptions options;

    const std::vector<CpiBreakdown> batched =
        evaluateBatch(iws, machines, data.missProfile, options);
    for (std::size_t i = 0; i < rows; ++i) {
        const CpiBreakdown scalar =
            FirstOrderModel(machines[i], options)
                .evaluate(iws[i], data.missProfile);
        if (ulpDistance(batched[i].total(), scalar.total()) >
                kMaxUlps ||
            ulpDistance(batched[i].dcacheLong, scalar.dcacheLong) >
                kMaxUlps ||
            ulpDistance(batched[i].brmisp, scalar.brmisp) >
                kMaxUlps) {
            state.SkipWithError(
                "batched evaluation diverged from the scalar model "
                "beyond the ULP bound");
            return;
        }
    }

    for (auto _ : state) {
        const std::vector<CpiBreakdown> out =
            evaluateBatch(iws, machines, data.missProfile, options);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_ModelEvaluationBatched)->Arg(64)->Arg(1024);

void
BM_CacheAccess(benchmark::State &state)
{
    Cache cache({"bench", 4096, 4, 128, ReplPolicyKind::Lru});
    Rng rng(1);
    std::vector<Addr> addrs;
    for (int i = 0; i < 4096; ++i)
        addrs.push_back(rng.zipf(1 << 16, 0.7) * 16);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(addrs[i++ & 4095]));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_GSharePredict(benchmark::State &state)
{
    GSharePredictor predictor(8192);
    Rng rng(2);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(predictor.predictAndUpdate(
            0x1000 + (i++ % 64) * 4, rng.bernoulli(0.6)));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GSharePredict);

} // namespace

BENCHMARK_MAIN();
