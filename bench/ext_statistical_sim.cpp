/**
 * @file
 * Extension: the statistical-simulation baseline (related work
 * [8-11]). Estimate each workload's statistical profile from its
 * trace, generate a synthetic clone, and compare: original detailed
 * simulation vs clone simulation (= statistical simulation) vs the
 * analytical model. The paper's claim: the model "performs
 * statistical simulation, without the simulation, and overall
 * accuracy is similar".
 */

#include <iostream>

#include "common/table.hh"
#include "experiments/workbench.hh"
#include "statsim/profile_estimator.hh"

int
main()
{
    using namespace fosm;

    Workbench bench;
    const FirstOrderModel model(Workbench::baselineMachine());

    printBanner(std::cout,
                "Extension: statistical simulation baseline "
                "(profile -> synthetic clone -> simulate)");
    TextTable table({"bench", "original CPI", "clone CPI",
                     "clone err %", "model CPI", "model err %"});

    // Profile estimation, clone generation and two simulations per
    // benchmark; all run concurrently, rows collected in order.
    struct Row
    {
        std::vector<std::string> cells;
        double clone_err;
        double model_err;
    };
    const std::vector<Row> row_data = mapWorkloads(
        bench, [&](const std::string &name, const WorkloadData &data) {
            const SimStats original = simulateTrace(
                data.trace, Workbench::baselineSimConfig());

            const Profile estimated = estimateProfile(data.trace);
            const Trace clone =
                generateTrace(estimated, data.trace.size());
            // As in the statistical-simulation literature, the
            // measured misprediction rate is injected rather than
            // re-emerging from a real predictor on the synthetic
            // stream.
            SimConfig clone_config = Workbench::baselineSimConfig();
            clone_config.syntheticMispredictRate =
                data.missProfile.mispredictRate();
            const SimStats cloned = simulateTrace(clone, clone_config);

            const CpiBreakdown cpi =
                model.evaluate(data.iw, data.missProfile);

            const double clone_err =
                relativeError(cloned.cpi(), original.cpi());
            const double model_err =
                relativeError(cpi.total(), original.cpi());

            return Row{{name, TextTable::num(original.cpi(), 3),
                        TextTable::num(cloned.cpi(), 3),
                        TextTable::num(clone_err * 100.0, 1),
                        TextTable::num(cpi.total(), 3),
                        TextTable::num(model_err * 100.0, 1)},
                       clone_err,
                       model_err};
        });

    double clone_err_sum = 0.0, model_err_sum = 0.0;
    int rows = 0;
    for (const Row &row : row_data) {
        clone_err_sum += row.clone_err;
        model_err_sum += row.model_err;
        ++rows;
        table.addRow(row.cells);
    }
    table.print(std::cout);

    std::cout << "\nmean error: statistical simulation "
              << TextTable::num(clone_err_sum / rows * 100.0, 1)
              << " %, analytical model "
              << TextTable::num(model_err_sum / rows * 100.0, 1)
              << " %\n(the paper's point: comparable accuracy, but "
                 "the model needs no simulation at all)\n";
    return 0;
}
