/**
 * @file
 * Figure 1: useful IPC as a function of time - the motivating picture
 * of a sustained background level punctuated by miss-event
 * transients. Rendered as a coarse text timeline of the detailed
 * simulator's retired-IPC per bucket on a long-miss-heavy workload.
 */

#include <algorithm>
#include <iostream>

#include "common/table.hh"
#include "experiments/workbench.hh"

int
main()
{
    using namespace fosm;

    Workbench bench;
    const Trace &trace = bench.workload("twolf").trace;

    SimConfig config = Workbench::baselineSimConfig();
    config.options.timelineBucketCycles = 50;
    const SimStats stats = simulateTrace(trace, config);

    printBanner(std::cout,
                "Figure 1: useful instructions issued per cycle over "
                "time (twolf, 50-cycle buckets)");

    const std::size_t show =
        std::min<std::size_t>(stats.timeline.size(), 120);
    for (std::size_t b = 0; b < show; ++b) {
        const double ipc =
            static_cast<double>(stats.timeline[b]) /
            static_cast<double>(config.options.timelineBucketCycles);
        const int bars =
            static_cast<int>(ipc * 12.0 + 0.5); // 4 IPC ~ 48 chars
        std::cout << TextTable::num(
                         std::uint64_t(b *
                                       config.options
                                           .timelineBucketCycles))
                  << "\t" << TextTable::num(ipc, 2) << "\t|"
                  << std::string(std::max(bars, 0), '#') << "\n";
    }
    std::cout << "\noverall IPC = " << TextTable::num(stats.ipc(), 2)
              << "; dips below the plateau are branch-misprediction / "
                 "I-miss transients,\nlong flat valleys are L2 data "
                 "misses.\n";
    return 0;
}
