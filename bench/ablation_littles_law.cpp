/**
 * @file
 * Ablation: the Little's-law latency correction (I_L = I_1 / L,
 * Section 3) on vs off. Without it the steady-state IPC uses the
 * unit-latency curve directly, overestimating the background
 * performance of latency-heavy workloads (vpr most of all).
 */

#include <iostream>

#include "common/table.hh"
#include "experiments/workbench.hh"

int
main()
{
    using namespace fosm;

    Workbench bench;
    const FirstOrderModel model(Workbench::baselineMachine());

    printBanner(std::cout,
                "Ablation: Little's-law latency scaling of the IW "
                "characteristic");
    TextTable table({"bench", "L", "sim CPI", "with L", "err %",
                     "unit L", "err %"});

    // One simulation per benchmark; all run concurrently, rows
    // collected in benchmark order.
    struct Row
    {
        std::vector<std::string> cells;
        double err_with;
        double err_without;
    };
    const std::vector<Row> rows = mapWorkloads(
        bench, [&](const std::string &name, const WorkloadData &data) {
            const SimStats sim = simulateTrace(
                data.trace, Workbench::baselineSimConfig());

            const CpiBreakdown with =
                model.evaluate(data.iw, data.missProfile);
            // Rebuild the characteristic pretending L = 1.
            const IWCharacteristic unit(data.iw.alpha(),
                                        data.iw.beta(), 1.0,
                                        data.iw.issueWidth());
            const CpiBreakdown without =
                model.evaluate(unit, data.missProfile);

            const double err_with =
                relativeError(with.total(), sim.cpi());
            const double err_without =
                relativeError(without.total(), sim.cpi());

            return Row{
                {name, TextTable::num(data.missProfile.avgLatency, 2),
                 TextTable::num(sim.cpi(), 3),
                 TextTable::num(with.total(), 3),
                 TextTable::num(err_with * 100, 1),
                 TextTable::num(without.total(), 3),
                 TextTable::num(err_without * 100, 1)},
                err_with,
                err_without};
        });

    double with_sum = 0.0, without_sum = 0.0;
    for (const Row &row : rows) {
        with_sum += row.err_with;
        without_sum += row.err_without;
        table.addRow(row.cells);
    }
    const double n =
        static_cast<double>(Workbench::benchmarks().size());
    table.addRow({"MEAN", "-", "-", "-",
                  TextTable::num(with_sum / n * 100, 1), "-",
                  TextTable::num(without_sum / n * 100, 1)});
    table.print(std::cout);
    return 0;
}
