/**
 * @file
 * Ablation: how the branch-penalty modeling choice affects overall
 * accuracy. Compares the paper's constant-average choice (mean of the
 * isolated and fully-clustered bounds) against the isolated upper
 * bound and the burst-aware equation (3) using measured misprediction
 * gap statistics (the paper's own "future work" item 3).
 */

#include <iostream>

#include "common/table.hh"
#include "experiments/workbench.hh"

int
main()
{
    using namespace fosm;

    Workbench bench;

    printBanner(std::cout,
                "Ablation: branch misprediction penalty mode "
                "(model-vs-sim CPI error, %)");
    TextTable table({"bench", "paper avg", "isolated", "burst-aware"});

    const std::vector<BranchPenaltyMode> modes{
        BranchPenaltyMode::PaperAverage, BranchPenaltyMode::Isolated,
        BranchPenaltyMode::BurstAware};

    // One simulation per benchmark; all run concurrently, rows
    // collected in benchmark order.
    struct Row
    {
        std::vector<std::string> cells;
        std::vector<double> errs;
    };
    const std::vector<Row> rows = mapWorkloads(
        bench, [&](const std::string &name, const WorkloadData &data) {
            const SimStats sim = simulateTrace(
                data.trace, Workbench::baselineSimConfig());

            Row out{{name}, {}};
            for (const BranchPenaltyMode mode : modes) {
                ModelOptions options;
                options.branchMode = mode;
                const FirstOrderModel model(
                    Workbench::baselineMachine(), options);
                const double err = relativeError(
                    model.evaluate(data.iw, data.missProfile).total(),
                    sim.cpi());
                out.errs.push_back(err);
                out.cells.push_back(TextTable::num(err * 100, 1));
            }
            return out;
        });

    std::vector<double> sums(modes.size(), 0.0);
    for (const Row &row : rows) {
        for (std::size_t m = 0; m < modes.size(); ++m)
            sums[m] += row.errs[m];
        table.addRow(row.cells);
    }
    const double n =
        static_cast<double>(Workbench::benchmarks().size());
    table.addRow({"MEAN", TextTable::num(sums[0] / n * 100, 1),
                  TextTable::num(sums[1] / n * 100, 1),
                  TextTable::num(sums[2] / n * 100, 1)});
    table.print(std::cout);
    return 0;
}
