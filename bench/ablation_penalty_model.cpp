/**
 * @file
 * Ablation: how the branch-penalty modeling choice affects overall
 * accuracy. Compares the paper's constant-average choice (mean of the
 * isolated and fully-clustered bounds) against the isolated upper
 * bound and the burst-aware equation (3) using measured misprediction
 * gap statistics (the paper's own "future work" item 3).
 */

#include <iostream>

#include "common/table.hh"
#include "experiments/workbench.hh"

int
main()
{
    using namespace fosm;

    Workbench bench;

    printBanner(std::cout,
                "Ablation: branch misprediction penalty mode "
                "(model-vs-sim CPI error, %)");
    TextTable table({"bench", "paper avg", "isolated", "burst-aware"});

    const std::vector<BranchPenaltyMode> modes{
        BranchPenaltyMode::PaperAverage, BranchPenaltyMode::Isolated,
        BranchPenaltyMode::BurstAware};

    std::vector<double> sums(modes.size(), 0.0);
    for (const std::string &name : Workbench::benchmarks()) {
        const WorkloadData &data = bench.workload(name);
        const SimStats sim = simulateTrace(
            data.trace, Workbench::baselineSimConfig());

        std::vector<std::string> row{name};
        for (std::size_t m = 0; m < modes.size(); ++m) {
            ModelOptions options;
            options.branchMode = modes[m];
            const FirstOrderModel model(Workbench::baselineMachine(),
                                        options);
            const double err = relativeError(
                model.evaluate(data.iw, data.missProfile).total(),
                sim.cpi());
            sums[m] += err;
            row.push_back(TextTable::num(err * 100, 1));
        }
        table.addRow(row);
    }
    const double n =
        static_cast<double>(Workbench::benchmarks().size());
    table.addRow({"MEAN", TextTable::num(sums[0] / n * 100, 1),
                  TextTable::num(sums[1] / n * 100, 1),
                  TextTable::num(sums[2] / n * 100, 1)});
    table.print(std::cout);
    return 0;
}
