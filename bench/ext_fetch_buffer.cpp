/**
 * @file
 * Extension (paper Section 7, future-work 2): instruction fetch
 * buffers "can hide some (or all) of the I-cache miss penalty".
 * Sweep buffer size on the I-miss-heaviest workload with surplus
 * fetch bandwidth and compare the hidden penalty against the model's
 * max(0, delay - buffer/width) rule.
 */

#include <iostream>

#include "common/table.hh"
#include "experiments/workbench.hh"

int
main()
{
    using namespace fosm;

    Workbench bench;
    const WorkloadData &data = bench.workload("gcc");

    printBanner(std::cout,
                "Extension: instruction fetch buffer sweep (gcc, "
                "fetch bandwidth 8)");
    TextTable table({"buffer entries", "sim CPI", "model CPI",
                     "sim i$ penalty hidden %", "model hidden %"});

    // Reference: no buffer.
    SimConfig base_cfg = Workbench::baselineSimConfig();
    base_cfg.options.idealBranchPredictor = true;
    base_cfg.options.idealDcache = true;
    const SimStats base = simulateTrace(data.trace, base_cfg);
    SimConfig ideal_cfg = base_cfg;
    ideal_cfg.options.idealIcache = true;
    const SimStats ideal = simulateTrace(data.trace, ideal_cfg);
    const double base_penalty =
        static_cast<double>(base.cycles - ideal.cycles);

    ModelOptions base_opts;
    const FirstOrderModel base_model(Workbench::baselineMachine(),
                                     base_opts);
    MissProfile icache_only = data.missProfile;
    icache_only.mispredictions = 0;
    icache_only.longLoadMisses = 0;
    icache_only.ldmGaps.clear();
    const CpiBreakdown model_base =
        base_model.evaluate(data.iw, icache_only);
    const double model_base_pen =
        model_base.icacheL1 + model_base.icacheL2;

    // One simulation per buffer size; the six design points run
    // concurrently, rows collected in sweep order.
    const std::vector<std::uint32_t> buffers{0, 8, 16, 32, 64, 128};
    const auto rows = parallelMap(buffers, [&](std::uint32_t buffer) {
        SimConfig cfg = base_cfg;
        cfg.options.fetchBufferEntries = buffer;
        cfg.options.fetchBandwidth = 8;
        const SimStats with = simulateTrace(data.trace, cfg);
        const double penalty =
            static_cast<double>(with.cycles) -
            static_cast<double>(ideal.cycles);
        const double hidden =
            (base_penalty - penalty) / base_penalty * 100.0;

        ModelOptions opts;
        opts.fetchBufferEntries = buffer;
        const FirstOrderModel model(Workbench::baselineMachine(),
                                    opts);
        const CpiBreakdown b = model.evaluate(data.iw, icache_only);
        const double model_pen = b.icacheL1 + b.icacheL2;
        const double model_hidden =
            (model_base_pen - model_pen) / model_base_pen * 100.0;

        return std::vector<std::string>{
            TextTable::num(std::uint64_t{buffer}),
            TextTable::num(with.cpi(), 3),
            TextTable::num(b.total(), 3),
            TextTable::num(hidden, 0),
            TextTable::num(model_hidden, 0)};
    });
    for (const std::vector<std::string> &row : rows)
        table.addRow(row);
    table.print(std::cout);
    std::cout << "\n(the buffer hides up to buffer/width cycles of "
                 "each miss; hiding saturates once\nthe slack exceeds "
                 "the short-miss delay, leaving only the memory-"
                 "serviced misses)\n";
    return 0;
}
