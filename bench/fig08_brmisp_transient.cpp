/**
 * @file
 * Figures 7 and 8: the branch misprediction transient. Figure 8's
 * quantitative instance uses the SPECint-average square-law IW
 * characteristic (alpha = 1, beta = 0.5 with latency folded in) and
 * a five-stage front end; the paper's Excel walk found a drain
 * penalty of 2.1 cycles, ramp-up of 2.7 and pipeline refill of 4.9,
 * totalling 9.7.
 */

#include <iostream>

#include "common/table.hh"
#include "model/penalties.hh"

int
main()
{
    using namespace fosm;

    const IWCharacteristic iw(1.0, 0.5, 1.0, 4);
    MachineConfig machine;
    machine.width = 4;
    machine.frontEndDepth = 5;
    machine.windowSize = 48;
    machine.robSize = 128;
    const TransientAnalyzer transient(iw, machine);
    const PenaltyModel penalties(transient);

    printBanner(std::cout,
                "Figure 8: isolated branch misprediction transient "
                "(alpha=1, beta=0.5, 5-stage front end)");

    const DrainResult drain = transient.windowDrain();
    const RampResult ramp = transient.rampUp();
    std::cout << "steady-state IPC      = "
              << TextTable::num(transient.steadyIpc(), 2) << "\n";
    std::cout << "steady occupancy      = "
              << TextTable::num(transient.steadyOccupancy(), 1)
              << " instructions\n";
    std::cout << "window drain penalty  = "
              << TextTable::num(drain.penalty, 2)
              << " cycles   (paper: 2.1)\n";
    std::cout << "pipeline refill       = "
              << TextTable::num(
                     static_cast<double>(machine.frontEndDepth), 1)
              << " cycles   (paper: 4.9)\n";
    std::cout << "ramp-up penalty       = "
              << TextTable::num(ramp.penalty, 2)
              << " cycles   (paper: 2.7)\n";
    std::cout << "total isolated penalty= "
              << TextTable::num(penalties.isolatedBranchPenalty(), 2)
              << " cycles   (paper: 9.7)\n";
    std::cout << "residual at issue     = "
              << TextTable::num(drain.residual, 2)
              << " instructions (paper: ~1.4)\n\n";

    TextTable table({"cycle", "instructions issued"});
    const std::vector<double> series =
        transient.branchTransientSeries(2);
    for (std::size_t c = 0; c < series.size(); ++c) {
        table.addRow({TextTable::num(std::uint64_t{c}),
                      TextTable::num(series[c], 2)});
    }
    table.print(std::cout);
    return 0;
}
