/**
 * @file
 * Figure 18: instructions between branch mispredictions required to
 * spend a given fraction of time within 12.5% of the implemented
 * issue width, for widths 4, 8 and 16. Paper: doubling the issue
 * width requires roughly quadrupling the misprediction distance -
 * branch prediction must improve as the square of the width.
 */

#include <iostream>

#include "common/table.hh"
#include "model/trends.hh"

int
main()
{
    using namespace fosm;

    const TrendConfig config;
    const std::vector<double> fractions{0.10, 0.20, 0.30, 0.40, 0.50};

    printBanner(std::cout,
                "Figure 18: instructions between mispredictions vs "
                "time-at-issue-width fraction");
    TextTable table({"% time at width", "width 4 (>=3.5)",
                     "width 8 (>=7)", "width 16 (>=14)",
                     "ratio 8/4", "ratio 16/8"});

    const auto r4 = issueWidthRequirement(4, fractions, config);
    const auto r8 = issueWidthRequirement(8, fractions, config);
    const auto r16 = issueWidthRequirement(16, fractions, config);

    for (std::size_t i = 0; i < fractions.size(); ++i) {
        table.addRow(
            {TextTable::num(fractions[i] * 100, 0),
             TextTable::num(r4[i].instructionsBetween, 0),
             TextTable::num(r8[i].instructionsBetween, 0),
             TextTable::num(r16[i].instructionsBetween, 0),
             TextTable::num(r8[i].instructionsBetween /
                                r4[i].instructionsBetween,
                            1),
             TextTable::num(r16[i].instructionsBetween /
                                r8[i].instructionsBetween,
                            1)});
    }
    table.print(std::cout);
    std::cout << "\n(paper: the required distance roughly quadruples "
                 "when the width doubles)\n";
    return 0;
}
