/**
 * @file
 * Figures 12, 13 and 14: the long data-cache miss transient and the
 * comparison of the per-long-miss penalty between detailed
 * simulation and the equation-(8) model
 * (penalty = isolated * sum_i f_LDM(i)/i). Paper: "the model is
 * reasonably close, although not as close as other parts" - the
 * overlap handling is the acknowledged weak link.
 */

#include <iostream>

#include "common/table.hh"
#include "experiments/workbench.hh"

int
main()
{
    using namespace fosm;

    Workbench bench;

    // Figure 12-style transient from the model: steady issue, ROB
    // fill, stall, data return, ramp.
    {
        printBanner(std::cout,
                    "Figure 12: isolated long D-miss transient "
                    "(model sketch)");
        const IWCharacteristic iw(1.0, 0.5, 1.0, 4);
        const MachineConfig machine = Workbench::baselineMachine();
        const TransientAnalyzer transient(iw, machine);
        const double rob_fill = machine.maxRobFillTime();
        std::cout << "steady IPC " << transient.steadyIpc()
                  << " until the ROB fills (~"
                  << TextTable::num(rob_fill, 0)
                  << " cycles for a young load, ~0 for an old one),\n"
                  << "then issue stalls until the data returns at "
                  << machine.deltaD
                  << " cycles, then retire + ramp-up.\n";
    }

    printBanner(std::cout,
                "Figure 14: penalty per long D-cache miss - "
                "simulation vs model (cycles)");
    TextTable table({"bench", "ldm/ki", "overlap factor",
                     "simulation", "model", "err %"});

    // Two simulations per kept benchmark; all design points run
    // concurrently, benchmarks with too few misses return an empty
    // row.
    const auto rows = mapWorkloads(
        bench, [&](const std::string &name, const WorkloadData &data) {
            if (data.missProfile.longLoadMisses < 20)
                return std::vector<std::string>{};

            // Simulation: paired runs with only the D-cache real.
            SimConfig real = Workbench::baselineSimConfig();
            real.options.idealBranchPredictor = true;
            real.options.idealIcache = true;
            const SimStats with = simulateTrace(data.trace, real);
            SimConfig ideal = real;
            ideal.options.idealDcache = true;
            const SimStats base = simulateTrace(data.trace, ideal);
            const double sim_penalty =
                (static_cast<double>(with.cycles) -
                 static_cast<double>(base.cycles)) /
                static_cast<double>(with.longLoadMisses);

            // Model: equation (8).
            const MachineConfig machine = Workbench::baselineMachine();
            const TransientAnalyzer transient(data.iw, machine);
            const PenaltyModel penalties(transient);
            const double factor =
                data.missProfile.ldmOverlapFactor(machine.robSize);
            const double model_penalty =
                penalties.dcachePenalty(factor);

            return std::vector<std::string>{
                name,
                TextTable::num(
                    data.missProfile.longLoadMissesPerInst() * 1000.0,
                    2),
                TextTable::num(factor, 3),
                TextTable::num(sim_penalty, 1),
                TextTable::num(model_penalty, 1),
                TextTable::num(
                    relativeError(model_penalty, sim_penalty) * 100.0,
                    0)};
        });
    for (const std::vector<std::string> &row : rows) {
        if (!row.empty())
            table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "\n(paper: model reasonably close; the overlap "
                 "approximation is the weak link -\nerrors largest "
                 "for the miss-heavy, dependence-chained benchmarks)\n";
    return 0;
}
