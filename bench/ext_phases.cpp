/**
 * @file
 * Extension (paper Section 7, future-work 1, closing remark): program
 * phases. Build a two-phase program (a compute phase spliced with a
 * pointer-chasing phase), then compare three estimates against the
 * detailed simulation:
 *   - the whole-trace model (one average profile),
 *   - the phase model (per-segment profiles + IW fits, combined by
 *     instruction weight),
 *   - per-phase detail (what each phase contributes).
 * The model is non-linear in its inputs, so averaging the inputs
 * before evaluating loses accuracy that per-phase evaluation keeps.
 */

#include <iostream>

#include "analysis/phase_model.hh"
#include "common/table.hh"
#include "experiments/workbench.hh"

int
main()
{
    using namespace fosm;

    // A program with alternating behaviour: vortex-like compute and
    // mcf-like pointer chasing, 100k instructions per phase.
    const std::uint64_t phase_len = 100000;
    const Trace compute =
        generateTrace(profileByName("vortex"), phase_len);
    const Trace chase = generateTrace(profileByName("mcf"), phase_len);
    const Trace program = concatTraces(
        {&compute, &chase, &compute, &chase}, "phased-program");

    const MachineConfig machine = Workbench::baselineMachine();
    const FirstOrderModel model(machine);

    // The detailed simulation, the whole-trace profile + IW fit and
    // the per-phase profiling are independent; run them concurrently.
    SimStats sim;
    MissProfile avg_profile;
    std::vector<IwPoint> avg_points;
    std::vector<PhaseData> phases;
    parallelFor(3, [&](std::size_t task) {
        switch (task) {
        case 0:
            sim = simulateTrace(program,
                                Workbench::baselineSimConfig());
            break;
        case 1: {
            avg_profile = profileTrace(program);
            WindowSimConfig wconfig;
            wconfig.unitLatency = true;
            avg_points =
                measureIwCurve(program, {4, 8, 16, 32, 64}, wconfig);
            break;
        }
        case 2:
            phases = profilePhases(program, phase_len);
            break;
        }
    });

    // Whole-trace (average) model.
    const IWCharacteristic avg_iw = IWCharacteristic::fromPoints(
        avg_points, avg_profile.avgLatency, machine.width);
    const CpiBreakdown avg_cpi = model.evaluate(avg_iw, avg_profile);
    printBanner(std::cout, "Per-phase breakdown");
    TextTable table({"phase", "insts", "B%", "ldm/ki", "beta",
                     "phase CPI"});
    double weighted_cpi = 0.0;
    for (std::size_t p = 0; p < phases.size(); ++p) {
        const PhaseData &phase = phases[p];
        const IWCharacteristic iw = IWCharacteristic::fromPoints(
            phase.iwPoints, phase.profile.avgLatency, machine.width);
        const CpiBreakdown cpi = model.evaluate(iw, phase.profile);
        const double weight =
            static_cast<double>(phase.end - phase.begin) /
            static_cast<double>(program.size());
        weighted_cpi += weight * cpi.total();
        table.addRow(
            {TextTable::num(std::uint64_t{p}),
             TextTable::num(phase.end - phase.begin),
             TextTable::num(phase.profile.mispredictRate() * 100, 1),
             TextTable::num(
                 phase.profile.longLoadMissesPerInst() * 1000, 2),
             TextTable::num(iw.beta(), 2),
             TextTable::num(cpi.total(), 3)});
    }
    table.print(std::cout);

    printBanner(std::cout,
                "Phased program: whole-trace model vs phase model vs "
                "simulation");
    TextTable summary({"estimate", "CPI", "error %"});
    summary.addRow({"detailed simulation", TextTable::num(sim.cpi(), 3),
                    "-"});
    summary.addRow(
        {"whole-trace model", TextTable::num(avg_cpi.total(), 3),
         TextTable::num(
             relativeError(avg_cpi.total(), sim.cpi()) * 100, 1)});
    summary.addRow(
        {"phase model", TextTable::num(weighted_cpi, 3),
         TextTable::num(relativeError(weighted_cpi, sim.cpi()) * 100,
                        1)});
    summary.print(std::cout);
    return 0;
}
