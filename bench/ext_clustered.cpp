/**
 * @file
 * Extension (paper Section 7, future-work 3): partitioned issue
 * windows / clustered functional units. The window and issue width
 * are split K ways with round-robin steering and a one-cycle
 * inter-cluster forwarding delay; the model folds the expected
 * forwarding cost into Little's law. Sweep K for several workloads,
 * model vs simulation.
 */

#include <iostream>

#include "common/table.hh"
#include "experiments/workbench.hh"

int
main()
{
    using namespace fosm;

    Workbench bench;

    printBanner(std::cout,
                "Extension: clustered issue windows (K-way split, "
                "1-cycle inter-cluster forwarding)");
    TextTable table({"bench", "K", "model CPI", "sim CPI", "err %",
                     "slowdown vs K=1"});

    // Each benchmark's three K points form one task (the K=1 run is
    // the slowdown reference for the others); the four benchmarks
    // run concurrently.
    const std::vector<std::string> names{"gzip", "crafty", "vortex",
                                         "vpr"};
    const auto groups = parallelMap(
        names, [&](const std::string &name) {
            const WorkloadData &data = bench.workload(name);
            std::vector<std::vector<std::string>> group;
            double base_cpi = 0.0;
            for (std::uint32_t k : {1u, 2u, 4u}) {
                MachineConfig machine = Workbench::baselineMachine();
                machine.clusters = k;
                machine.windowSize = 48; // divisible by 1, 2, 4
                const FirstOrderModel model(machine);
                const CpiBreakdown cpi =
                    model.evaluate(data.iw, data.missProfile);

                SimConfig sim_config = Workbench::baselineSimConfig();
                sim_config.machine = machine;
                const SimStats sim =
                    simulateTrace(data.trace, sim_config);
                if (k == 1)
                    base_cpi = sim.cpi();

                group.push_back(
                    {name, TextTable::num(std::uint64_t{k}),
                     TextTable::num(cpi.total(), 3),
                     TextTable::num(sim.cpi(), 3),
                     TextTable::num(
                         relativeError(cpi.total(), sim.cpi()) *
                             100.0,
                         1),
                     TextTable::num(sim.cpi() / base_cpi, 2)});
            }
            return group;
        });
    for (const auto &group : groups)
        for (const std::vector<std::string> &row : group)
            table.addRow(row);
    table.print(std::cout);
    std::cout << "\n(clustering taxes the short-dependence workloads "
                 "most: every forwarded operand\npays the crossing "
                 "delay, which Little's law turns into a lower "
                 "sustainable IPC)\n";
    return 0;
}
