/**
 * @file
 * Figure 4: the power-law relationship between issue window size and
 * issue rate, measured by idealized trace-driven simulation (unit
 * latency, unbounded issue width, only the window size limited), for
 * all 12 benchmarks. Printed in the paper's log2-log2 coordinates.
 */

#include <cmath>
#include <iostream>

#include "common/table.hh"
#include "experiments/workbench.hh"

int
main()
{
    using namespace fosm;

    Workbench bench;

    printBanner(std::cout,
                "Figure 4: IW characteristic, unit latency, unbounded "
                "issue (log2(I) per log2(W))");
    std::vector<std::string> headers{"bench"};
    for (std::uint32_t w : {4u, 8u, 16u, 32u, 64u})
        headers.push_back("W=" + std::to_string(w));
    headers.push_back("alpha");
    headers.push_back("beta");
    TextTable table(headers);

    // The IW-curve measurement dominates; build all 12 workloads
    // concurrently, then print from the warm cache.
    bench.buildAll();
    for (const std::string &name : Workbench::benchmarks()) {
        const WorkloadData &data = bench.workload(name);
        std::vector<std::string> row{name};
        for (const IwPoint &p : data.iwPoints)
            row.push_back(TextTable::num(std::log2(p.ipc), 2));
        row.push_back(TextTable::num(data.iw.alpha(), 2));
        row.push_back(TextTable::num(data.iw.beta(), 2));
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "\n(paper: straight lines on the log-log scale with "
                 "slopes ~0.3-0.7,\nvpr flattest, vortex steepest)\n";
    return 0;
}
