/**
 * @file
 * Ablation: the second-order overlap compensation the paper defers to
 * future research (Section 5: "We do not compensate for branch
 * mispredictions and i-cache misses that are overlapped by a d-cache
 * miss... these overlaps seem to be only a second-order effect").
 * Compares model accuracy with and without the self-consistent
 * shadow discount, benchmark by benchmark.
 */

#include <iostream>

#include "common/table.hh"
#include "experiments/workbench.hh"

int
main()
{
    using namespace fosm;

    Workbench bench;

    printBanner(std::cout,
                "Ablation: second-order long-miss overlap "
                "compensation of branch / I-cache CPI");
    TextTable table({"bench", "sim CPI", "plain model", "err %",
                     "compensated", "err %"});

    // One simulation per benchmark; all run concurrently, rows
    // collected in benchmark order.
    struct Row
    {
        std::vector<std::string> cells;
        double e_plain;
        double e_comp;
    };
    const std::vector<Row> rows = mapWorkloads(
        bench, [&](const std::string &name, const WorkloadData &data) {
            const SimStats sim = simulateTrace(
                data.trace, Workbench::baselineSimConfig());

            ModelOptions plain_opts, comp_opts;
            comp_opts.compensateOverlaps = true;
            const CpiBreakdown plain =
                FirstOrderModel(Workbench::baselineMachine(),
                                plain_opts)
                    .evaluate(data.iw, data.missProfile);
            const CpiBreakdown comp =
                FirstOrderModel(Workbench::baselineMachine(),
                                comp_opts)
                    .evaluate(data.iw, data.missProfile);

            const double e_plain =
                relativeError(plain.total(), sim.cpi());
            const double e_comp =
                relativeError(comp.total(), sim.cpi());

            return Row{{name, TextTable::num(sim.cpi(), 3),
                        TextTable::num(plain.total(), 3),
                        TextTable::num(e_plain * 100, 1),
                        TextTable::num(comp.total(), 3),
                        TextTable::num(e_comp * 100, 1)},
                       e_plain,
                       e_comp};
        });

    double plain_sum = 0.0, comp_sum = 0.0;
    for (const Row &row : rows) {
        plain_sum += row.e_plain;
        comp_sum += row.e_comp;
        table.addRow(row.cells);
    }
    const double n =
        static_cast<double>(Workbench::benchmarks().size());
    table.addRow({"MEAN", "-", "-",
                  TextTable::num(plain_sum / n * 100, 1), "-",
                  TextTable::num(comp_sum / n * 100, 1)});
    table.print(std::cout);
    std::cout << "\nFinding: the compensation makes the model WORSE "
                 "at this machine point. The plain\nmodel already "
                 "errs low (its equation-(8) overlap assumption is "
                 "optimistic for\ndependence-chained misses), so "
                 "discounting further compounds the bias. The\n"
                 "paper's choice to defer this as a second-order "
                 "effect is confirmed: it only\npays once the D-miss "
                 "overlap modeling itself is made more accurate.\n";
    return 0;
}
