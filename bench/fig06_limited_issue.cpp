/**
 * @file
 * Figure 6: the IW characteristic once the issue width is limited
 * (gcc in the paper). Limited curves follow the unbounded curve until
 * the window supplies more parallelism than the width, then saturate
 * at the width (Jouppi [16]).
 */

#include <cmath>
#include <iostream>

#include "common/table.hh"
#include "experiments/workbench.hh"

int
main()
{
    using namespace fosm;

    Workbench bench;
    const Trace &trace = bench.workload("gcc").trace;

    printBanner(std::cout,
                "Figure 6: IW characteristic after limiting the issue "
                "width (gcc, unit latency)");
    TextTable table({"W", "unlimited", "width 8", "width 4",
                     "width 2"});

    // 28 design points (7 window sizes x 4 widths); each row's four
    // simulations run concurrently on the pool.
    const std::vector<std::uint32_t> windows{2, 4, 8, 16, 32, 64, 128};
    const auto rows = parallelMap(windows, [&](std::uint32_t w) {
        WindowSimConfig config;
        config.windowSize = w;
        config.unitLatency = true;
        std::vector<std::string> row{TextTable::num(std::uint64_t{w})};
        for (std::uint32_t width : {0u, 8u, 4u, 2u}) {
            config.issueWidth = width;
            row.push_back(TextTable::num(
                simulateWindow(trace, config).ipc, 2));
        }
        return row;
    });
    for (const std::vector<std::string> &row : rows)
        table.addRow(row);
    table.print(std::cout);
    std::cout << "\n(paper: limited curves follow the unlimited one, "
                 "then saturate at the width)\n";
    return 0;
}
