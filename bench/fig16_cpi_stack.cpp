/**
 * @file
 * Figure 16: the "stack model" of performance - additive CPI
 * contributions of the ideal machine and each miss-event category.
 * The paper's landmarks: mcf and twolf are dominated by long D-cache
 * misses (70% and 60% of CPI); gzip's loss is mostly branch
 * mispredictions.
 */

#include <iostream>

#include "common/table.hh"
#include "experiments/workbench.hh"

int
main()
{
    using namespace fosm;

    Workbench bench;
    const FirstOrderModel model(Workbench::baselineMachine());

    printBanner(std::cout,
                "Figure 16: CPI stack (ideal + per-miss-event "
                "contributions)");
    TextTable table({"bench", "ideal", "brmisp", "L1 i$", "L2 i$",
                     "L2 d$", "total", "d$ share %"});

    // The workload build dominates; run it concurrently, then the
    // cheap model evaluations print from the warm cache.
    bench.buildAll();
    for (const std::string &name : Workbench::benchmarks()) {
        const WorkloadData &data = bench.workload(name);
        const CpiBreakdown b =
            model.evaluate(data.iw, data.missProfile);
        table.addRow({name, TextTable::num(b.ideal, 3),
                      TextTable::num(b.brmisp, 3),
                      TextTable::num(b.icacheL1, 3),
                      TextTable::num(b.icacheL2, 3),
                      TextTable::num(b.dcacheLong, 3),
                      TextTable::num(b.total(), 3),
                      TextTable::num(
                          b.dcacheLong / b.total() * 100.0, 0)});
    }
    table.print(std::cout);
    std::cout << "\npaper landmarks: mcf/twolf dominated by the L2 "
                 "d-cache component;\ngzip's loss dominated by branch "
                 "mispredictions.\n";
    return 0;
}
