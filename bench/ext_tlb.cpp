/**
 * @file
 * Extension (paper Section 7, future-work 4): TLB misses, modeled
 * "much like long data cache misses" - the walk latency, shared
 * within ROB-reach groups. Model vs simulation with a 64-entry
 * 4-way data TLB and a 30-cycle walk.
 */

#include <iostream>

#include "common/table.hh"
#include "experiments/workbench.hh"

int
main()
{
    using namespace fosm;

    Workbench bench;

    TlbConfig tlb;
    tlb.enabled = true;
    tlb.entries = 64;
    tlb.assoc = 4;
    tlb.walkLatency = 30;

    printBanner(std::cout,
                "Extension: data-TLB misses (64-entry 4-way, 30-cycle "
                "walk)");
    TextTable table({"bench", "dtlb miss/ki", "overlap", "model CPI",
                     "sim CPI", "err %", "no-TLB sim CPI"});

    // Re-profile plus two simulations per benchmark; all run
    // concurrently, rows collected in benchmark order.
    const auto rows = mapWorkloads(
        bench, [&](const std::string &name, const WorkloadData &data) {
            // Re-profile with the TLB enabled to collect walk
            // statistics.
            ProfilerConfig pconfig =
                Workbench::baselineProfilerConfig();
            pconfig.dtlb = tlb;
            const MissProfile profile =
                profileTrace(data.trace, pconfig);

            const FirstOrderModel model(Workbench::baselineMachine());
            const CpiBreakdown cpi = model.evaluate(data.iw, profile);

            SimConfig sim_config = Workbench::baselineSimConfig();
            sim_config.dtlb = tlb;
            sim_config.syncMissDelays();
            const SimStats sim = simulateTrace(data.trace, sim_config);
            const SimStats base = simulateTrace(
                data.trace, Workbench::baselineSimConfig());

            return std::vector<std::string>{
                name,
                TextTable::num(
                    profile.dtlbLoadMissesPerInst() * 1000.0, 2),
                TextTable::num(profile.dtlbOverlapFactor(128), 2),
                TextTable::num(cpi.total(), 3),
                TextTable::num(sim.cpi(), 3),
                TextTable::num(
                    relativeError(cpi.total(), sim.cpi()) * 100.0, 1),
                TextTable::num(base.cpi(), 3)};
        });
    for (const std::vector<std::string> &row : rows)
        table.addRow(row);
    table.print(std::cout);
    std::cout << "\n(TLB pressure concentrates in the large-footprint "
                 "benchmarks - mcf and twolf -\nwhere walks cluster "
                 "with the cold misses, exactly as the paper "
                 "anticipates)\n";
    return 0;
}
