/**
 * @file
 * Figure 19: per-cycle instruction issue rate between two mispredicted
 * branches (100 instructions apart under the 1-in-5-branches, 5%
 * misprediction assumption) for issue widths 2, 3, 4 and 8. Paper:
 * the width-4 machine barely reaches 4 before the next misprediction;
 * the width-8 machine barely exceeds 6.
 */

#include <algorithm>
#include <iostream>

#include "common/table.hh"
#include "common/thread_pool.hh"
#include "model/trends.hh"

int
main()
{
    using namespace fosm;

    const TrendConfig config;
    const std::vector<std::uint32_t> widths{2, 3, 4, 8};

    printBanner(std::cout,
                "Figure 19: issue rate between two mispredictions "
                "(~100 instructions apart)");

    const std::vector<std::vector<double>> series =
        parallelMap(widths, [&](std::uint32_t w) {
            return issueRampSeries(w, config);
        });
    std::size_t longest = 0;
    for (const auto &s : series)
        longest = std::max(longest, s.size());

    TextTable table({"cycle", "issue 2", "issue 3", "issue 4",
                     "issue 8"});
    for (std::size_t c = 0; c < longest; ++c) {
        std::vector<std::string> row{
            TextTable::num(std::uint64_t{c})};
        for (const auto &s : series) {
            row.push_back(
                c < s.size() ? TextTable::num(s[c], 2) : "-");
        }
        table.addRow(row);
    }
    table.print(std::cout);

    std::cout << "\npeak issue rates: ";
    for (std::size_t i = 0; i < widths.size(); ++i) {
        std::cout << "width " << widths[i] << ": "
                  << TextTable::num(
                         *std::max_element(series[i].begin(),
                                           series[i].end()),
                         2)
                  << (i + 1 < widths.size() ? ",  " : "\n");
    }
    std::cout << "(paper: width 4 barely reaches 4; width 8 barely "
                 "exceeds 6)\n";
    return 0;
}
