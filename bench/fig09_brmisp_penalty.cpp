/**
 * @file
 * Figure 9: measured penalty per branch misprediction for front-end
 * pipelines of 5 and 9 stages, from paired detailed simulations
 * (real gShare vs ideal predictor, caches ideal). Paper: typically
 * 6.4-10 cycles for 5 stages (14.7 for vpr) and up to 13.8-18.3 for
 * 9 stages - always greater than the front-end depth itself.
 */

#include <iostream>

#include "common/table.hh"
#include "experiments/workbench.hh"

int
main()
{
    using namespace fosm;

    Workbench bench;

    printBanner(std::cout,
                "Figure 9: penalty per branch misprediction "
                "(cycles), 5 vs 9 front-end stages");
    TextTable table({"bench", "5-stage", "9-stage", "model 5",
                     "model 9"});

    auto sim_penalty = [&](const Trace &t, std::uint32_t depth) {
        SimConfig real = Workbench::baselineSimConfig();
        real.machine.frontEndDepth = depth;
        real.options.idealIcache = true;
        real.options.idealDcache = true;
        const SimStats with = simulateTrace(t, real);
        SimConfig ideal = real;
        ideal.options.idealBranchPredictor = true;
        const SimStats base = simulateTrace(t, ideal);
        return (static_cast<double>(with.cycles) -
                static_cast<double>(base.cycles)) /
               static_cast<double>(with.mispredictions);
    };

    auto model_penalty = [&](const WorkloadData &data,
                             std::uint32_t depth) {
        MachineConfig machine = Workbench::baselineMachine();
        machine.frontEndDepth = depth;
        const TransientAnalyzer transient(data.iw, machine);
        const PenaltyModel penalties(transient);
        return penalties.branchPenalty(
            BranchPenaltyMode::PaperAverage);
    };

    // Four simulations per benchmark (2 depths x with/without the
    // real predictor); all design points run concurrently.
    const auto rows = mapWorkloads(
        bench, [&](const std::string &name, const WorkloadData &data) {
            return std::vector<std::string>{
                name, TextTable::num(sim_penalty(data.trace, 5), 1),
                TextTable::num(sim_penalty(data.trace, 9), 1),
                TextTable::num(model_penalty(data, 5), 1),
                TextTable::num(model_penalty(data, 9), 1)};
        });
    for (const std::vector<std::string> &row : rows)
        table.addRow(row);
    table.print(std::cout);
    std::cout << "\n(paper: penalties exceed the front-end depth; "
                 "5-stage values mostly 6.4-10,\n9-stage values up to "
                 "~14-18; low-ILP benchmarks like vpr are the "
                 "outliers)\n";
    return 0;
}
