/**
 * @file
 * Figures 10 and 11: the instruction cache miss transient and the
 * measured penalty per L1 I-cache miss for 5- and 9-stage front
 * ends. Paper: the penalty is approximately the miss service delay
 * (DeltaI = 8 for L2 hits) and independent of the front-end depth.
 * Benchmarks with a negligible number of misses are skipped, as in
 * the paper.
 */

#include <iostream>

#include "common/table.hh"
#include "experiments/workbench.hh"

int
main()
{
    using namespace fosm;

    Workbench bench;

    // Figure 10: the transient shape from the model.
    {
        const IWCharacteristic iw(1.0, 0.5, 1.0, 4);
        MachineConfig machine = Workbench::baselineMachine();
        const TransientAnalyzer transient(iw, machine);
        printBanner(std::cout,
                    "Figure 10: I-cache miss transient (model, "
                    "alpha=1, beta=0.5, DeltaI=8)");
        TextTable series({"cycle", "instructions issued"});
        const std::vector<double> s =
            transient.icacheTransientSeries(1);
        for (std::size_t c = 0; c < s.size(); ++c)
            series.addRow({TextTable::num(std::uint64_t{c}),
                           TextTable::num(s[c], 2)});
        series.print(std::cout);
    }

    printBanner(std::cout,
                "Figure 11: penalty per I-cache miss (cycles), 5 vs "
                "9 front-end stages");
    TextTable table({"bench", "L1 misses/ki", "L2 share %",
                     "5-stage", "9-stage", "expected (mix)"});

    struct Run
    {
        double perMiss;
        double expected;
        double missesPerKi;
        double l2Share;
    };
    auto sim_penalty = [&](const Trace &t, std::uint32_t depth) {
        SimConfig real = Workbench::baselineSimConfig();
        real.machine.frontEndDepth = depth;
        real.options.idealBranchPredictor = true;
        real.options.idealDcache = true;
        const SimStats with = simulateTrace(t, real);
        SimConfig ideal = real;
        ideal.options.idealIcache = true;
        const SimStats base = simulateTrace(t, ideal);
        Run run;
        run.perMiss = (static_cast<double>(with.cycles) -
                       static_cast<double>(base.cycles)) /
                      static_cast<double>(with.icacheL1Misses);
        run.expected =
            (static_cast<double>(with.icacheL2Misses) * 200.0 +
             static_cast<double>(with.icacheL1Misses -
                                 with.icacheL2Misses) * 8.0) /
            static_cast<double>(with.icacheL1Misses);
        run.missesPerKi = static_cast<double>(with.icacheL1Misses) /
                          static_cast<double>(t.size()) * 1000.0;
        run.l2Share = static_cast<double>(with.icacheL2Misses) /
                      static_cast<double>(with.icacheL1Misses) *
                      100.0;
        return run;
    };

    // Four simulations per kept benchmark; every design point runs
    // concurrently, skipped benchmarks return an empty row.
    const auto rows = mapWorkloads(
        bench, [&](const std::string &name, const WorkloadData &data) {
            // Skip benchmarks with a negligible number of misses, as
            // the paper does.
            if (data.missProfile.icacheMissesPerInst() < 0.0005)
                return std::vector<std::string>{};
            const Run r5 = sim_penalty(data.trace, 5);
            const Run r9 = sim_penalty(data.trace, 9);
            return std::vector<std::string>{
                name, TextTable::num(r5.missesPerKi, 2),
                TextTable::num(r5.l2Share, 0),
                TextTable::num(r5.perMiss, 1),
                TextTable::num(r9.perMiss, 1),
                TextTable::num(r5.expected, 1)};
        });
    for (const std::vector<std::string> &row : rows) {
        if (!row.empty())
            table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "\n(paper: penalty ~ miss delay and independent of "
                 "front-end depth; our compulsory\nfetch misses to "
                 "memory raise the expected value above DeltaI=8 "
                 "where L2 share > 0)\n";
    return 0;
}
