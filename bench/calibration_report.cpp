/**
 * @file
 * Calibration diagnostic: per-benchmark workload characteristics
 * (power-law fit, average latency, miss-event rates) next to the
 * paper-reported targets where available, plus model-vs-simulation
 * CPI. Not a paper figure itself, but the table everything else's
 * fidelity rests on.
 */

#include <iostream>

#include "common/table.hh"
#include "experiments/workbench.hh"

int
main()
{
    using namespace fosm;

    Workbench bench;
    const FirstOrderModel model(Workbench::baselineMachine());

    printBanner(std::cout, "Workload calibration report (targets from "
                           "paper Table 1 where known)");
    TextTable table({"bench", "alpha", "beta", "L", "B%", "i$/ki",
                     "sL1d/ki", "ldm/ki", "idealI", "idealM",
                     "modelCPI", "simCPI", "err%"});

    // Two simulations per benchmark (baseline + fully idealized);
    // all 24 design points run concurrently on the pool.
    struct Row
    {
        std::vector<std::string> cells;
        double err;
    };
    const std::vector<Row> rows = mapWorkloads(
        bench, [&](const std::string &name, const WorkloadData &data) {
            const CpiBreakdown cpi =
                model.evaluate(data.iw, data.missProfile);
            const SimStats sim = simulateTrace(
                data.trace, Workbench::baselineSimConfig());
            const double err = relativeError(cpi.total(), sim.cpi());

            SimConfig ideal_cfg = Workbench::baselineSimConfig();
            ideal_cfg.options.idealBranchPredictor = true;
            ideal_cfg.options.idealIcache = true;
            ideal_cfg.options.idealDcache = true;
            const SimStats ideal = simulateTrace(data.trace, ideal_cfg);

            return Row{
                {
                    name,
                    TextTable::num(data.iw.alpha(), 2),
                    TextTable::num(data.iw.beta(), 2),
                    TextTable::num(data.missProfile.avgLatency, 2),
                    TextTable::num(
                        data.missProfile.mispredictRate() * 100, 1),
                    TextTable::num(
                        data.missProfile.icacheMissesPerInst() * 1000,
                        2),
                    TextTable::num(
                        data.missProfile.shortLoadMissesPerInst() *
                            1000,
                        2),
                    TextTable::num(
                        data.missProfile.longLoadMissesPerInst() *
                            1000,
                        2),
                    TextTable::num(ideal.ipc(), 2),
                    TextTable::num(1.0 / cpi.ideal, 2),
                    TextTable::num(cpi.total(), 3),
                    TextTable::num(sim.cpi(), 3),
                    TextTable::num(err * 100, 1),
                },
                err,
            };
        });

    double err_sum = 0.0;
    for (const Row &row : rows) {
        err_sum += row.err;
        table.addRow(row.cells);
    }
    table.print(std::cout);
    std::cout << "\nmean |CPI error| = "
              << TextTable::num(
                     err_sum / Workbench::benchmarks().size() * 100, 1)
              << " %  (paper: 5.8 %)\n";
    return 0;
}
