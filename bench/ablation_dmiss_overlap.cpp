/**
 * @file
 * Ablation: the equation-(8) long-miss overlap correction on vs off.
 * Without it every long miss is charged the full isolated DeltaD;
 * the clustered-miss benchmarks (mcf, twolf) should then be grossly
 * overestimated, demonstrating why the f_LDM machinery exists.
 */

#include <iostream>

#include "common/table.hh"
#include "experiments/workbench.hh"

int
main()
{
    using namespace fosm;

    Workbench bench;

    printBanner(std::cout,
                "Ablation: equation (8) D-miss overlap correction "
                "(model CPI and error vs sim)");
    TextTable table({"bench", "sim CPI", "with eq(8)", "err %",
                     "without", "err %"});

    double with_sum = 0.0, without_sum = 0.0;
    for (const std::string &name : Workbench::benchmarks()) {
        const WorkloadData &data = bench.workload(name);
        const SimStats sim = simulateTrace(
            data.trace, Workbench::baselineSimConfig());

        ModelOptions on, off;
        off.dcacheOverlap = false;
        const CpiBreakdown with =
            FirstOrderModel(Workbench::baselineMachine(), on)
                .evaluate(data.iw, data.missProfile);
        const CpiBreakdown without =
            FirstOrderModel(Workbench::baselineMachine(), off)
                .evaluate(data.iw, data.missProfile);

        const double err_with =
            relativeError(with.total(), sim.cpi());
        const double err_without =
            relativeError(without.total(), sim.cpi());
        with_sum += err_with;
        without_sum += err_without;

        table.addRow({name, TextTable::num(sim.cpi(), 3),
                      TextTable::num(with.total(), 3),
                      TextTable::num(err_with * 100, 1),
                      TextTable::num(without.total(), 3),
                      TextTable::num(err_without * 100, 1)});
    }
    const double n =
        static_cast<double>(Workbench::benchmarks().size());
    std::cout << "";
    table.addRow({"MEAN", "-", "-",
                  TextTable::num(with_sum / n * 100, 1), "-",
                  TextTable::num(without_sum / n * 100, 1)});
    table.print(std::cout);
    return 0;
}
