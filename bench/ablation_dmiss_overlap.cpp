/**
 * @file
 * Ablation: the equation-(8) long-miss overlap correction on vs off.
 * Without it every long miss is charged the full isolated DeltaD;
 * the clustered-miss benchmarks (mcf, twolf) should then be grossly
 * overestimated, demonstrating why the f_LDM machinery exists.
 */

#include <iostream>

#include "common/table.hh"
#include "experiments/workbench.hh"

int
main()
{
    using namespace fosm;

    Workbench bench;

    printBanner(std::cout,
                "Ablation: equation (8) D-miss overlap correction "
                "(model CPI and error vs sim)");
    TextTable table({"bench", "sim CPI", "with eq(8)", "err %",
                     "without", "err %"});

    // One simulation per benchmark; all run concurrently, rows
    // collected in benchmark order.
    struct Row
    {
        std::vector<std::string> cells;
        double err_with;
        double err_without;
    };
    const std::vector<Row> rows = mapWorkloads(
        bench, [&](const std::string &name, const WorkloadData &data) {
            const SimStats sim = simulateTrace(
                data.trace, Workbench::baselineSimConfig());

            ModelOptions on, off;
            off.dcacheOverlap = false;
            const CpiBreakdown with =
                FirstOrderModel(Workbench::baselineMachine(), on)
                    .evaluate(data.iw, data.missProfile);
            const CpiBreakdown without =
                FirstOrderModel(Workbench::baselineMachine(), off)
                    .evaluate(data.iw, data.missProfile);

            const double err_with =
                relativeError(with.total(), sim.cpi());
            const double err_without =
                relativeError(without.total(), sim.cpi());

            return Row{{name, TextTable::num(sim.cpi(), 3),
                        TextTable::num(with.total(), 3),
                        TextTable::num(err_with * 100, 1),
                        TextTable::num(without.total(), 3),
                        TextTable::num(err_without * 100, 1)},
                       err_with,
                       err_without};
        });

    double with_sum = 0.0, without_sum = 0.0;
    for (const Row &row : rows) {
        with_sum += row.err_with;
        without_sum += row.err_without;
        table.addRow(row.cells);
    }
    const double n =
        static_cast<double>(Workbench::benchmarks().size());
    std::cout << "";
    table.addRow({"MEAN", "-", "-",
                  TextTable::num(with_sum / n * 100, 1), "-",
                  TextTable::num(without_sum / n * 100, 1)});
    table.print(std::cout);
    return 0;
}
