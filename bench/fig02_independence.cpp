/**
 * @file
 * Figure 2: demonstration that miss-event penalties are close to
 * independent. Five simulations per benchmark: (1) everything ideal,
 * (2) everything real, and (3-5) each miss source enabled in
 * isolation. The "independent" estimate adds the three isolated
 * penalties to the ideal time; "overlaps compensated" additionally
 * discounts branch/I-cache events that occur while a long D-miss is
 * outstanding. Paper: independent estimate averages 5% error (worst
 * 16%, twolf); compensation improves it slightly to 4%.
 */

#include <iostream>

#include "common/table.hh"
#include "experiments/workbench.hh"

int
main()
{
    using namespace fosm;

    Workbench bench;

    printBanner(std::cout,
                "Figure 2: relative independence of miss-events "
                "(IPC)");
    TextTable table({"bench", "combined", "independent",
                     "overlaps comp.", "indep err %", "comp err %"});

    // Five simulations per benchmark: 60 design points, all run
    // concurrently; rows are collected in benchmark order.
    struct Row
    {
        std::vector<std::string> cells;
        double e_ind;
        double e_comp;
    };
    const std::vector<Row> rows = mapWorkloads(
        bench, [&](const std::string &name, const WorkloadData &data) {
        const Trace &trace = data.trace;
        const SimConfig real = Workbench::baselineSimConfig();

        SimConfig ideal = real;
        ideal.options.idealBranchPredictor = true;
        ideal.options.idealIcache = true;
        ideal.options.idealDcache = true;
        SimConfig bp_only = ideal;
        bp_only.options.idealBranchPredictor = false;
        SimConfig ic_only = ideal;
        ic_only.options.idealIcache = false;
        SimConfig dc_only = ideal;
        dc_only.options.idealDcache = false;

        const SimStats s_real = simulateTrace(trace, real);
        const SimStats s_ideal = simulateTrace(trace, ideal);
        const SimStats s_bp = simulateTrace(trace, bp_only);
        const SimStats s_ic = simulateTrace(trace, ic_only);
        const SimStats s_dc = simulateTrace(trace, dc_only);

        const double ideal_cyc = static_cast<double>(s_ideal.cycles);
        const double bp_pen =
            static_cast<double>(s_bp.cycles) - ideal_cyc;
        const double ic_pen =
            static_cast<double>(s_ic.cycles) - ideal_cyc;
        const double dc_pen =
            static_cast<double>(s_dc.cycles) - ideal_cyc;

        const double n = static_cast<double>(trace.size());
        const double combined_ipc = s_real.ipc();
        const double independent_ipc =
            n / (ideal_cyc + bp_pen + ic_pen + dc_pen);

        // Overlap compensation: discount the per-event penalty of
        // branch and I-cache events that the combined run saw inside
        // a long D-miss shadow.
        const double bp_per = s_bp.mispredictions
            ? bp_pen / static_cast<double>(s_bp.mispredictions)
            : 0.0;
        const double ic_per = s_ic.icacheL1Misses
            ? ic_pen / static_cast<double>(s_ic.icacheL1Misses)
            : 0.0;
        const double discount =
            bp_per * static_cast<double>(
                         s_real.mispredictsDuringLongMiss) +
            ic_per * static_cast<double>(
                         s_real.icacheMissesDuringLongMiss);
        const double compensated_ipc =
            n / (ideal_cyc + bp_pen + ic_pen + dc_pen - discount);

        const double e_ind =
            relativeError(independent_ipc, combined_ipc);
        const double e_comp =
            relativeError(compensated_ipc, combined_ipc);

        return Row{{name, TextTable::num(combined_ipc, 3),
                    TextTable::num(independent_ipc, 3),
                    TextTable::num(compensated_ipc, 3),
                    TextTable::num(e_ind * 100, 1),
                    TextTable::num(e_comp * 100, 1)},
                   e_ind,
                   e_comp};
    });

    double err_ind = 0.0, err_comp = 0.0;
    for (const Row &row : rows) {
        err_ind += row.e_ind;
        err_comp += row.e_comp;
        table.addRow(row.cells);
    }
    table.print(std::cout);

    const double n_bench =
        static_cast<double>(Workbench::benchmarks().size());
    std::cout << "\nmean independent error   = "
              << TextTable::num(err_ind / n_bench * 100, 1)
              << " %   (paper: 5 %)\n";
    std::cout << "mean compensated error   = "
              << TextTable::num(err_comp / n_bench * 100, 1)
              << " %   (paper: 4 %)\n";
    return 0;
}
