/**
 * @file
 * Figure 17: the pipeline-depth trend study. (a) IPC vs front-end
 * depth for issue widths 2/3/4/8 under the SPECint-average square-law
 * characteristic, one branch in five instructions, 5% mispredicted.
 * (b) absolute performance (BIPS) with cycle time 8200ps/n + 90ps
 * from Sprangle & Carmean [4]. Paper: the issue-3 optimum is around
 * 55 front-end stages and moves shorter for wider issue.
 */

#include <iostream>

#include "common/table.hh"
#include "common/thread_pool.hh"
#include "model/trends.hh"

int
main()
{
    using namespace fosm;

    const TrendConfig config;
    const std::vector<std::uint32_t> widths{2, 3, 4, 8};
    const std::vector<std::uint32_t> depths{1,  5,  10, 20, 30, 40,
                                            50, 55, 60, 70, 80, 90,
                                            100};

    printBanner(std::cout,
                "Figure 17a: IPC vs front-end pipeline depth");
    {
        TextTable table({"depth", "issue 2", "issue 3", "issue 4",
                         "issue 8"});
        const auto sweeps =
            parallelMap(widths, [&](std::uint32_t w) {
                return pipelineDepthSweep(w, depths, config);
            });
        for (std::size_t d = 0; d < depths.size(); ++d) {
            table.addRow({TextTable::num(std::uint64_t{depths[d]}),
                          TextTable::num(sweeps[0][d].ipc, 2),
                          TextTable::num(sweeps[1][d].ipc, 2),
                          TextTable::num(sweeps[2][d].ipc, 2),
                          TextTable::num(sweeps[3][d].ipc, 2)});
        }
        table.print(std::cout);
    }

    printBanner(std::cout,
                "Figure 17b: BIPS vs front-end pipeline depth "
                "(8200 ps logic, 90 ps flip-flop)");
    {
        TextTable table({"depth", "GHz", "issue 2", "issue 3",
                         "issue 4", "issue 8"});
        const auto sweeps =
            parallelMap(widths, [&](std::uint32_t w) {
                return pipelineDepthSweep(w, depths, config);
            });
        for (std::size_t d = 0; d < depths.size(); ++d) {
            table.addRow({TextTable::num(std::uint64_t{depths[d]}),
                          TextTable::num(sweeps[0][d].clockGhz, 2),
                          TextTable::num(sweeps[0][d].bips, 2),
                          TextTable::num(sweeps[1][d].bips, 2),
                          TextTable::num(sweeps[2][d].bips, 2),
                          TextTable::num(sweeps[3][d].bips, 2)});
        }
        table.print(std::cout);
    }

    printBanner(std::cout, "Optimal front-end depths (max BIPS)");
    TextTable table({"issue width", "optimal depth", "BIPS"});
    for (std::uint32_t w : widths) {
        const PipelineDepthPoint best = optimalPipelineDepth(w);
        table.addRow({TextTable::num(std::uint64_t{w}),
                      TextTable::num(std::uint64_t{best.depth}),
                      TextTable::num(best.bips, 2)});
    }
    table.print(std::cout);
    std::cout << "\n(paper: issue-3 optimum near 55 stages [4]; wider "
                 "issue prefers shorter pipes [3])\n";
    return 0;
}
