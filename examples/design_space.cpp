/**
 * @file
 * Design-space exploration: the model's core use case. Because
 * equation (1) is analytic, sweeping hundreds of machine
 * configurations costs microseconds each once the workload has been
 * profiled once - no detailed simulation per design point. This
 * example sweeps window size, ROB size and front-end depth for one
 * workload and prints the CPI surface, then cross-checks three
 * corner points against the detailed simulator.
 */

#include <iostream>

#include "common/table.hh"
#include "experiments/workbench.hh"

int
main()
{
    using namespace fosm;

    Workbench bench;
    const WorkloadData &data = bench.workload("crafty");

    printBanner(std::cout,
                "Model-based design-space sweep (crafty): CPI per "
                "(window, depth)");
    TextTable table({"window", "depth 5", "depth 9", "depth 13",
                     "depth 21"});
    for (std::uint32_t window : {16u, 32u, 48u, 96u, 192u}) {
        std::vector<std::string> row{
            TextTable::num(std::uint64_t{window})};
        for (std::uint32_t depth : {5u, 9u, 13u, 21u}) {
            MachineConfig machine = Workbench::baselineMachine();
            machine.windowSize = window;
            machine.robSize = 4 * window;
            machine.frontEndDepth = depth;
            const FirstOrderModel model(machine);
            row.push_back(TextTable::num(
                model.evaluate(data.iw, data.missProfile).total(),
                3));
        }
        table.addRow(row);
    }
    table.print(std::cout);

    printBanner(std::cout,
                "Cross-check: model vs detailed simulation at three "
                "corners");
    TextTable check({"window", "depth", "model CPI", "sim CPI",
                     "err %"});
    struct Corner
    {
        std::uint32_t window, depth;
    };
    for (const Corner c : {Corner{16, 5}, Corner{48, 13},
                           Corner{192, 21}}) {
        MachineConfig machine = Workbench::baselineMachine();
        machine.windowSize = c.window;
        machine.robSize = 4 * c.window;
        machine.frontEndDepth = c.depth;
        const FirstOrderModel model(machine);
        const double model_cpi =
            model.evaluate(data.iw, data.missProfile).total();

        SimConfig sim_config = Workbench::baselineSimConfig();
        sim_config.machine = machine;
        const double sim_cpi =
            simulateTrace(data.trace, sim_config).cpi();

        check.addRow({TextTable::num(std::uint64_t{c.window}),
                      TextTable::num(std::uint64_t{c.depth}),
                      TextTable::num(model_cpi, 3),
                      TextTable::num(sim_cpi, 3),
                      TextTable::num(
                          relativeError(model_cpi, sim_cpi) * 100.0,
                          1)});
    }
    check.print(std::cout);
    std::cout << "\nThe sweep above required zero additional "
                 "simulations - only equation (1)\nre-evaluations on "
                 "the same trace statistics.\n";
    return 0;
}
