/**
 * @file
 * Building a custom workload from scratch with the public API: define
 * a Profile (a pointer-chasing, poorly-predicted "graph analytics"
 * kernel), generate a trace, run the full modeling pipeline manually
 * (profiler -> IW curve -> power-law fit -> model), and validate
 * against the detailed simulator. This is the template for users who
 * want to model their own applications.
 */

#include <iostream>

#include "analysis/miss_profiler.hh"
#include "common/table.hh"
#include "iw/iw_characteristic.hh"
#include "model/first_order_model.hh"
#include "sim/detailed_sim.hh"
#include "workload/generator.hh"

int
main()
{
    using namespace fosm;

    // 1. Describe the workload statistically.
    Profile profile;
    profile.name = "graphwalk";
    profile.seed = 0xD06;
    profile.mix.load = 0.32;      // pointer-heavy
    profile.mix.store = 0.06;
    profile.mix.branch = 0.20;    // data-dependent control
    profile.dep.meanShortDistance = 2.5;
    profile.dep.meanLongDistance = 64.0;
    profile.dep.longFrac = 0.35;
    profile.branch.biasedFrac = 0.40;
    profile.branch.loopFrac = 0.25;
    profile.code.footprintBytes = 16 * 1024;
    profile.data.coldBytes = 128 * 1024 * 1024; // graph >> L2
    profile.data.hotFrac = 0.70;
    profile.data.coldFrac = 0.08;
    profile.data.burstColdFrac = 0.60;
    profile.data.burstEnterProb = 0.005;
    profile.data.burstExitProb = 0.04;
    profile.validate();

    // 2. Generate the dynamic trace.
    const Trace trace = generateTrace(profile, 300000);
    std::cout << "generated " << trace.size() << " instructions for '"
              << trace.name() << "'\n";

    // 3. One functional profiling pass: all model inputs.
    const MissProfile stats = profileTrace(trace);
    std::cout << "B = " << TextTable::num(stats.mispredictRate() * 100, 1)
              << " % mispredicted, long D-misses/ki = "
              << TextTable::num(stats.longLoadMissesPerInst() * 1000, 2)
              << ", L = " << TextTable::num(stats.avgLatency, 2)
              << "\n";

    // 4. IW characteristic: idealized window sweep + power-law fit.
    WindowSimConfig wconfig;
    wconfig.unitLatency = true;
    const std::vector<IwPoint> points =
        measureIwCurve(trace, {4, 8, 16, 32, 64}, wconfig);
    const IWCharacteristic iw = IWCharacteristic::fromPoints(
        points, stats.avgLatency, /*issue width*/ 4);
    std::cout << "IW fit: I = " << TextTable::num(iw.alpha(), 2)
              << " * W^" << TextTable::num(iw.beta(), 2) << "\n\n";

    // 5. Evaluate the model and compare with detailed simulation.
    MachineConfig machine; // paper baseline defaults
    const FirstOrderModel model(machine);
    const CpiBreakdown breakdown = model.evaluate(iw, stats);

    SimConfig sim_config;
    sim_config.machine = machine;
    const SimStats sim = simulateTrace(trace, sim_config);

    TextTable table({"source", "CPI", "IPC"});
    table.addRow({"first-order model",
                  TextTable::num(breakdown.total(), 3),
                  TextTable::num(breakdown.ipc(), 3)});
    table.addRow({"detailed simulation", TextTable::num(sim.cpi(), 3),
                  TextTable::num(sim.ipc(), 3)});
    table.print(std::cout);

    std::cout << "\nCPI stack: ideal "
              << TextTable::num(breakdown.ideal, 3) << ", branches "
              << TextTable::num(breakdown.brmisp, 3) << ", i-cache "
              << TextTable::num(
                     breakdown.icacheL1 + breakdown.icacheL2, 3)
              << ", long d-misses "
              << TextTable::num(breakdown.dcacheLong, 3)
              << " (overlap factor "
              << TextTable::num(breakdown.ldmOverlapFactor, 2)
              << ")\n";
    std::cout << "\nNote: dependent pointer chasing serializes long "
                 "misses that equation (8)\nassumes overlap, so the "
                 "model underestimates here - exactly the weak link\n"
                 "the paper identifies in Section 4.3 (its mcf/twolf "
                 "errors).\n";
    return 0;
}
