/**
 * @file
 * Quickstart: the complete first-order modeling flow for one
 * workload, exactly as Section 5 of the paper prescribes.
 *
 *  1. Generate a synthetic benchmark trace (stand-in for a SPEC
 *     trace).
 *  2. Functionally profile it: cache miss rates, branch misprediction
 *     rate, long-miss burst distribution, average latency.
 *  3. Measure the IW curve and fit the power law I = alpha * W^beta.
 *  4. Evaluate the analytical model: CPI = CPI_ss + CPI_brmisp +
 *     CPI_icache + CPI_dcache (equation 1).
 *  5. Compare against the detailed cycle-level simulator.
 */

#include <iostream>

#include "experiments/workbench.hh"
#include "common/table.hh"

int
main()
{
    using namespace fosm;

    Workbench bench;
    const WorkloadData &data = bench.workload("gzip");

    std::cout << "workload: " << data.trace.name() << ", "
              << data.trace.size() << " instructions\n\n";

    // Step 2-3 results.
    std::cout << "IW power law: I = " << data.iw.alpha() << " * W^"
              << data.iw.beta() << "  (R^2 = " << data.iw.fitR2()
              << ")\n";
    std::cout << "average FU latency L = "
              << data.missProfile.avgLatency << " cycles\n";
    std::cout << "branch misprediction rate = "
              << data.missProfile.mispredictRate() * 100.0 << " %\n";
    std::cout << "L1I miss rate = "
              << data.missProfile.icacheMissesPerInst() * 100.0
              << " misses / 100 insts\n";
    std::cout << "long D-miss rate = "
              << data.missProfile.longLoadMissesPerInst() * 100.0
              << " misses / 100 insts\n\n";

    // Step 4: the analytical model.
    const FirstOrderModel model(Workbench::baselineMachine());
    const CpiBreakdown breakdown =
        model.evaluate(data.iw, data.missProfile);

    TextTable table({"component", "CPI"});
    table.addRow({"ideal (steady state)", TextTable::num(breakdown.ideal)});
    table.addRow({"branch mispredictions", TextTable::num(breakdown.brmisp)});
    table.addRow({"L1 I-cache misses", TextTable::num(breakdown.icacheL1)});
    table.addRow({"L2 I-cache misses", TextTable::num(breakdown.icacheL2)});
    table.addRow({"long D-cache misses", TextTable::num(breakdown.dcacheLong)});
    table.addRow({"TOTAL (model)", TextTable::num(breakdown.total())});
    table.print(std::cout);

    // Step 5: validation against detailed simulation.
    const SimStats sim =
        simulateTrace(data.trace, Workbench::baselineSimConfig());
    std::cout << "\nsimulated CPI = " << sim.cpi()
              << "  (model error "
              << relativeError(breakdown.total(), sim.cpi()) * 100.0
              << " %)\n";
    return 0;
}
