/**
 * @file
 * Modeling a realistically constrained machine with every Section 7
 * extension enabled at once: finite functional-unit pools, a data
 * TLB, an instruction fetch buffer, and a 2-way clustered issue
 * window - evaluated by the analytical model and cross-checked
 * against the detailed simulator.
 */

#include <iostream>

#include "common/table.hh"
#include "experiments/workbench.hh"

int
main()
{
    using namespace fosm;

    Workbench bench;

    // The constrained machine.
    MachineConfig machine = Workbench::baselineMachine();
    machine.clusters = 2;

    FuPoolConfig pools = FuPoolConfig::typical4Wide();

    TlbConfig tlb;
    tlb.enabled = true;
    tlb.entries = 64;
    tlb.walkLatency = 30;

    const std::uint32_t fetch_buffer = 32;

    std::cout << "machine: 4-wide, 5-stage front end, 48-entry window"
                 " split into 2 clusters,\n128-entry ROB, pools ["
              << describePools(pools) << "], 64-entry D-TLB,\n"
              << fetch_buffer << "-entry fetch buffer\n";

    printBanner(std::cout,
                "Extended machine: model vs simulation across "
                "workloads");
    TextTable table({"bench", "model CPI", "sim CPI", "err %",
                     "baseline sim CPI"});

    for (const char *name : {"gzip", "gcc", "mcf", "vortex",
                                    "vpr", "twolf"}) {
        const WorkloadData &data = bench.workload(name);

        // Profile once more with the TLB so walk statistics exist.
        ProfilerConfig pconfig = Workbench::baselineProfilerConfig();
        pconfig.dtlb = tlb;
        const MissProfile profile = profileTrace(data.trace, pconfig);

        ModelOptions options;
        options.fuPools = pools;
        options.fetchBufferEntries = fetch_buffer;
        const FirstOrderModel model(machine, options);
        const CpiBreakdown cpi = model.evaluate(data.iw, profile);

        SimConfig sim_config = Workbench::baselineSimConfig();
        sim_config.machine = machine;
        sim_config.fuPools = pools;
        sim_config.dtlb = tlb;
        sim_config.options.fetchBufferEntries = fetch_buffer;
        sim_config.options.fetchBandwidth = 8;
        sim_config.syncMissDelays();
        const SimStats sim = simulateTrace(data.trace, sim_config);

        const SimStats base = simulateTrace(
            data.trace, Workbench::baselineSimConfig());

        table.addRow(
            {name, TextTable::num(cpi.total(), 3),
             TextTable::num(sim.cpi(), 3),
             TextTable::num(
                 relativeError(cpi.total(), sim.cpi()) * 100.0, 1),
             TextTable::num(base.cpi(), 3)});
    }
    table.print(std::cout);
    std::cout << "\nEvery extension remains a first-order term: the "
                 "model evaluation is still a\nclosed-form sum, no "
                 "simulation required.\n";
    return 0;
}
