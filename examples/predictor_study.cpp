/**
 * @file
 * Branch predictor study: feed the model miss statistics gathered
 * with different predictors (ideal / gShare / local / bimodal, and
 * several gShare sizes) and see the predicted CPI move. This is the
 * paper's workflow for evaluating a front-end change without
 * re-simulating the whole machine: only the cheap functional
 * profiling pass is repeated.
 */

#include <iostream>

#include "common/table.hh"
#include "experiments/workbench.hh"

int
main()
{
    using namespace fosm;

    Workbench bench;
    const FirstOrderModel model(Workbench::baselineMachine());

    printBanner(std::cout,
                "Predicted CPI by branch predictor (model only; "
                "profiling pass per predictor)");
    TextTable table({"bench", "ideal", "tournament 8K", "gshare 8K",
                     "gshare 1K", "local 8K", "bimodal 8K"});

    struct Candidate
    {
        const char *label;
        PredictorKind kind;
        std::uint32_t entries;
    };
    const Candidate candidates[] = {
        {"ideal", PredictorKind::Ideal, 0},
        {"tournament8k", PredictorKind::Tournament, 8192},
        {"gshare8k", PredictorKind::GShare, 8192},
        {"gshare1k", PredictorKind::GShare, 1024},
        {"local8k", PredictorKind::Local, 8192},
        {"bimodal8k", PredictorKind::Bimodal, 8192},
    };

    for (const char *name : {"gzip", "gcc", "parser", "vortex"}) {
        const WorkloadData &data = bench.workload(name);
        std::vector<std::string> row{name};
        for (const Candidate &c : candidates) {
            ProfilerConfig config = Workbench::baselineProfilerConfig();
            config.predictor = c.kind;
            if (c.entries)
                config.predictorEntries = c.entries;
            const MissProfile profile =
                profileTrace(data.trace, config);
            row.push_back(TextTable::num(
                model.evaluate(data.iw, profile).total(), 3));
        }
        table.addRow(row);
    }
    table.print(std::cout);

    std::cout << "\nExpected shape: ideal <= gshare8K <= {local, "
                 "gshare1K} <= bimodal for the\nhistory-sensitive "
                 "workloads; differences shrink for the "
                 "well-predicted ones (vortex).\n";
    return 0;
}
