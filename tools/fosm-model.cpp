/**
 * @file
 * First-order model runner:
 *
 *   fosm-model --bench <name> | --trace <file.trc>
 *              [--width 4] [--depth 5] [--window 48] [--rob 128]
 *              [--deltaI 8] [--deltaD 200]
 *              [--clusters 1] [--insts 400000] [--sim 1] [--csv 1]
 *
 * Runs the complete Section 5 recipe on the chosen workload and
 * machine: functional profiling, IW curve measurement + power-law
 * fit, equation (1) evaluation, and (optionally, --sim 1) a detailed
 * simulation for validation.
 */

#include <iostream>

#include "cli.hh"
#include "common/table.hh"
#include "experiments/workbench.hh"

int
main(int argc, char **argv)
{
    using namespace fosm;
    const cli::Args args(
        argc, argv,
        {"bench", "trace", "width", "depth", "window", "rob",
         "deltaI", "deltaD", "clusters", "insts", "sim", "csv"},
        "usage: fosm-model --bench <name> | --trace <file.trc>\n"
        "  [--width 4] [--depth 5] [--window 48] [--rob 128]\n"
        "  [--deltaI 8] [--deltaD 200] [--clusters 1]\n"
        "  [--insts 400000] [--sim] [--csv]\n");

    // Workload: shipped profile or saved trace.
    Trace trace;
    if (args.has("trace")) {
        trace = loadTrace(args.get("trace", ""));
    } else if (args.has("bench")) {
        const Profile &profile =
            profileByName(args.get("bench", "gzip"));
        trace = generateTrace(profile,
                              args.getInt("insts", 400000));
    } else {
        std::cerr << "usage: fosm-model --bench <name> | --trace "
                     "<file.trc> [machine flags]\n";
        return 1;
    }

    // Machine.
    MachineConfig machine;
    machine.width =
        static_cast<std::uint32_t>(args.getInt("width", 4));
    machine.frontEndDepth =
        static_cast<std::uint32_t>(args.getInt("depth", 5));
    machine.windowSize =
        static_cast<std::uint32_t>(args.getInt("window", 48));
    machine.robSize =
        static_cast<std::uint32_t>(args.getInt("rob", 128));
    machine.deltaI = args.getInt("deltaI", 8);
    machine.deltaD = args.getInt("deltaD", 200);
    machine.clusters =
        static_cast<std::uint32_t>(args.getInt("clusters", 1));

    // Section 5 recipe.
    ProfilerConfig pconfig = Workbench::baselineProfilerConfig();
    pconfig.hierarchy.l2Latency = machine.deltaI;
    pconfig.hierarchy.memLatency = machine.deltaD;
    const MissProfile profile = profileTrace(trace, pconfig);

    WindowSimConfig wconfig;
    wconfig.unitLatency = true;
    const std::vector<IwPoint> points =
        measureIwCurve(trace, {4, 8, 16, 32, 64}, wconfig);
    const IWCharacteristic iw = IWCharacteristic::fromPoints(
        points, profile.avgLatency, machine.width);

    const FirstOrderModel model(machine);
    const CpiBreakdown b = model.evaluate(iw, profile);

    TextTable table({"component", "CPI", "share %"});
    auto row = [&](const char *name, double value) {
        table.addRow({name, TextTable::num(value, 4),
                      TextTable::num(value / b.total() * 100, 1)});
    };
    row("steady state", b.ideal);
    row("branch mispredictions", b.brmisp);
    row("L1 I-cache misses", b.icacheL1);
    row("L2 I-cache misses", b.icacheL2);
    row("long D-cache misses", b.dcacheLong);
    if (b.dtlb > 0.0)
        row("D-TLB walks", b.dtlb);
    table.addRow({"TOTAL", TextTable::num(b.total(), 4), "100.0"});

    std::cout << "workload: " << trace.name() << " ("
              << trace.size() << " instructions)\n"
              << "IW fit:   I = " << TextTable::num(iw.alpha(), 3)
              << " * W^" << TextTable::num(iw.beta(), 3)
              << ",  L = " << TextTable::num(iw.avgLatency(), 3)
              << "\n\n";
    if (args.getInt("csv", 0))
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    std::cout << "\nmodel IPC = " << TextTable::num(b.ipc(), 3)
              << "\n";

    if (args.getInt("sim", 0)) {
        SimConfig sim_config = Workbench::baselineSimConfig();
        sim_config.machine = machine;
        sim_config.hierarchy.l2Latency = machine.deltaI;
        sim_config.hierarchy.memLatency = machine.deltaD;
        const SimStats sim = simulateTrace(trace, sim_config);
        std::cout << "sim   IPC = " << TextTable::num(sim.ipc(), 3)
                  << "  (model error "
                  << TextTable::num(
                         relativeError(b.total(), sim.cpi()) * 100,
                         1)
                  << " %)\n";
    }
    return 0;
}
