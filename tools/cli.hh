/**
 * @file
 * Minimal command-line flag parsing shared by the fosm tools.
 * Flags come as `--name value`, `--name=value`, or bare `--name`
 * (boolean, stored as "1"); positional arguments are collected in
 * order. Each tool declares its known flags and a usage text:
 * unknown flags are a fatal error (instead of silently swallowing a
 * following flag as a value), `--help` prints the usage and exits,
 * and numeric getters reject garbage values. No external
 * dependencies.
 */

#ifndef FOSM_TOOLS_CLI_HH
#define FOSM_TOOLS_CLI_HH

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <initializer_list>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/logging.hh"

namespace fosm::cli {

/** Parsed command line: flags plus positional arguments. */
class Args
{
  public:
    /**
     * @param known every flag name the tool accepts (without the
     *        leading dashes); anything else is fatal
     * @param usage help text printed (followed by exit 0) on --help
     */
    Args(int argc, char **argv,
         std::initializer_list<const char *> known,
         const std::string &usage)
    {
        const std::vector<std::string> knownFlags(known.begin(),
                                                  known.end());
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg.rfind("--", 0) != 0) {
                positional_.push_back(arg);
                continue;
            }
            std::string name = arg.substr(2);
            std::string value;
            bool haveValue = false;
            const std::size_t eq = name.find('=');
            if (eq != std::string::npos) {
                value = name.substr(eq + 1);
                name = name.substr(0, eq);
                haveValue = true;
            }
            if (name == "help") {
                std::cout << usage;
                std::exit(0);
            }
            if (std::find(knownFlags.begin(), knownFlags.end(),
                          name) == knownFlags.end()) {
                fosm_fatal("unknown flag --", name,
                           " (try --help)");
            }
            if (!haveValue) {
                // A following token that is not itself a flag is the
                // value; otherwise this is a boolean flag.
                if (i + 1 < argc &&
                    std::string(argv[i + 1]).rfind("--", 0) != 0) {
                    value = argv[++i];
                } else {
                    value = "1";
                }
            }
            flags_[name] = value;
        }
    }

    bool
    has(const std::string &name) const
    {
        return flags_.count(name) > 0;
    }

    std::string
    get(const std::string &name, const std::string &fallback) const
    {
        const auto it = flags_.find(name);
        return it == flags_.end() ? fallback : it->second;
    }

    std::uint64_t
    getInt(const std::string &name, std::uint64_t fallback) const
    {
        const auto it = flags_.find(name);
        if (it == flags_.end())
            return fallback;
        char *end = nullptr;
        const std::uint64_t v = static_cast<std::uint64_t>(
            std::strtoull(it->second.c_str(), &end, 0));
        if (end == it->second.c_str() || *end != '\0') {
            fosm_fatal("flag --", name, " needs an integer, got '",
                       it->second, "'");
        }
        return v;
    }

    double
    getDouble(const std::string &name, double fallback) const
    {
        const auto it = flags_.find(name);
        if (it == flags_.end())
            return fallback;
        char *end = nullptr;
        const double v = std::strtod(it->second.c_str(), &end);
        if (end == it->second.c_str() || *end != '\0') {
            fosm_fatal("flag --", name, " needs a number, got '",
                       it->second, "'");
        }
        return v;
    }

    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

  private:
    std::map<std::string, std::string> flags_;
    std::vector<std::string> positional_;
};

} // namespace fosm::cli

#endif // FOSM_TOOLS_CLI_HH
