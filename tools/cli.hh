/**
 * @file
 * Minimal command-line flag parsing shared by the fosm tools. Flags
 * are --name value pairs; positional arguments are collected in
 * order. No external dependencies.
 */

#ifndef FOSM_TOOLS_CLI_HH
#define FOSM_TOOLS_CLI_HH

#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/logging.hh"

namespace fosm::cli {

/** Parsed command line: flags plus positional arguments. */
class Args
{
  public:
    Args(int argc, char **argv)
    {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg.rfind("--", 0) == 0) {
                const std::string name = arg.substr(2);
                if (i + 1 >= argc)
                    fosm_fatal("flag --", name, " needs a value");
                flags_[name] = argv[++i];
            } else {
                positional_.push_back(arg);
            }
        }
    }

    bool
    has(const std::string &name) const
    {
        return flags_.count(name) > 0;
    }

    std::string
    get(const std::string &name, const std::string &fallback) const
    {
        const auto it = flags_.find(name);
        return it == flags_.end() ? fallback : it->second;
    }

    std::uint64_t
    getInt(const std::string &name, std::uint64_t fallback) const
    {
        const auto it = flags_.find(name);
        if (it == flags_.end())
            return fallback;
        return static_cast<std::uint64_t>(
            std::strtoull(it->second.c_str(), nullptr, 0));
    }

    double
    getDouble(const std::string &name, double fallback) const
    {
        const auto it = flags_.find(name);
        if (it == flags_.end())
            return fallback;
        return std::strtod(it->second.c_str(), nullptr);
    }

    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

  private:
    std::map<std::string, std::string> flags_;
    std::vector<std::string> positional_;
};

} // namespace fosm::cli

#endif // FOSM_TOOLS_CLI_HH
