/**
 * @file
 * fosm-serve: the model-evaluation daemon.
 *
 *   fosm-serve [--host 127.0.0.1] [--port 8080] [--workers N]
 *              [--queue 128] [--cache 8192] [--no-warmup]
 *              [--store-dir .fosm-store] [--no-store]
 *
 * Serves POST /v1/cpi, /v1/batch, /v1/iw-curve and /v1/trends plus
 * GET /healthz, /metrics (Prometheus text) and /v1/store/stats.
 * Evaluated design
 * points are memoized in a sharded LRU response cache (--cache 0
 * disables, for benchmarking the uncached path) backed by a
 * crash-safe persistent store (docs/STORE.md): responses and workload
 * characterizations survive restarts, so a restarted server starts
 * warm. --no-store runs memory-only. By default all 12 workload
 * characterizations are built before the socket opens so first
 * queries are fast; --no-warmup defers that to first use.
 * SIGINT/SIGTERM trigger a graceful shutdown that drains in-flight
 * requests before exiting.
 */

#include <csignal>
#include <iostream>

#include <unistd.h>

#include "cli.hh"
#include "server/http.hh"
#include "server/service.hh"

namespace {

/** Written by the signal handler; write() is async-signal-safe. */
volatile int stopFd = -1;

void
onSignal(int)
{
    if (stopFd >= 0) {
        const char b = 's';
        [[maybe_unused]] ssize_t n = ::write(stopFd, &b, 1);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace fosm;
    using namespace fosm::server;

    const cli::Args args(
        argc, argv,
        {"host", "port", "workers", "io-threads", "batch", "queue",
         "cache", "no-warmup", "retry-after", "max-connections",
         "store-dir", "no-store", "optimize-max-points"},
        "usage: fosm-serve [flags]\n"
        "  --host 127.0.0.1       listen address\n"
        "  --port 8080            listen port (0 = ephemeral)\n"
        "  --workers N            worker threads (default: cores)\n"
        "  --io-threads 1         acceptor/IO poll loops\n"
        "                         (>1 uses SO_REUSEPORT)\n"
        "  --batch 4              max requests drained per worker\n"
        "                         wakeup\n"
        "  --queue 128            admission queue capacity\n"
        "  --cache 8192           response cache entries (0 = off)\n"
        "  --max-connections 1024 connection limit\n"
        "  --retry-after 1        Retry-After seconds on 503\n"
        "  --no-warmup            build workloads lazily\n"
        "  --store-dir DIR        persistent result store directory\n"
        "                         (default .fosm-store)\n"
        "  --no-store             memory-only: no persistence\n"
        "  --optimize-max-points N\n"
        "                         largest /v1/optimize design-space\n"
        "                         cardinality (default 65536; larger\n"
        "                         spaces are rejected 413)\n");

    MetricsRegistry metrics;

    ServiceConfig serviceConfig;
    serviceConfig.cacheCapacity = args.getInt("cache", 8192);
    serviceConfig.optimizeMaxPoints = static_cast<std::uint64_t>(
        args.getInt("optimize-max-points", 65536));
    if (!args.has("no-store"))
        serviceConfig.storeDir = args.get("store-dir", ".fosm-store");
    ModelService service(serviceConfig, metrics);

    if (const auto *persistent = service.persistentCache()) {
        const auto s = persistent->stats();
        std::cout << "fosm-serve: store " << serviceConfig.storeDir
                  << " (" << s.liveRecords << " records, "
                  << s.totalBytes << " bytes";
        if (s.truncatedTails)
            std::cout << ", " << s.truncatedTails
                      << " torn tails repaired";
        std::cout << ")\n";
    }

    if (!args.has("no-warmup")) {
        std::cout << "fosm-serve: building "
                  << Workbench::benchmarks().size()
                  << " workload characterizations ("
                  << service.workbench().traceInstructions()
                  << " insts each)...\n";
        service.warmup();
    }

    HttpServerConfig serverConfig;
    serverConfig.host = args.get("host", "127.0.0.1");
    serverConfig.port =
        static_cast<std::uint16_t>(args.getInt("port", 8080));
    serverConfig.workers = args.getInt("workers", 0);
    serverConfig.ioThreads = args.getInt("io-threads", 1);
    serverConfig.batchSize = args.getInt("batch", 4);
    serverConfig.queueCapacity = args.getInt("queue", 128);
    serverConfig.maxConnections =
        args.getInt("max-connections", 1024);
    serverConfig.retryAfterSeconds =
        static_cast<int>(args.getInt("retry-after", 1));
    serverConfig.metricPaths = service.metricPaths();

    HttpServer server(serverConfig, service.handler(), &metrics);
    server.start();

    stopFd = server.stopFd();
    struct sigaction sa{};
    sa.sa_handler = onSignal;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
    signal(SIGPIPE, SIG_IGN);

    std::cout << "fosm-serve: listening on " << serverConfig.host
              << ":" << server.port() << " ("
              << (serverConfig.workers
                      ? std::to_string(serverConfig.workers)
                      : std::string("auto"))
              << " workers, queue " << serverConfig.queueCapacity
              << ", cache "
              << (serviceConfig.cacheCapacity
                      ? std::to_string(serviceConfig.cacheCapacity)
                      : std::string("off"))
              << ", store "
              << (serviceConfig.storeDir.empty()
                      ? std::string("off")
                      : serviceConfig.storeDir)
              << ")\n"
              << "fosm-serve: POST /v1/cpi /v1/batch /v1/iw-curve "
                 "/v1/trends /v1/optimize; "
                 "GET /healthz /metrics /v1/store/stats\n";
    std::cout.flush();

    server.join();
    std::cout << "fosm-serve: drained, "
              << server.requestsServed() << " requests served, "
              << server.requestsRejected() << " rejected\n";
    return 0;
}
