/**
 * @file
 * fosm-serve: the model-evaluation daemon.
 *
 *   fosm-serve [--host 127.0.0.1] [--port 8080] [--workers N]
 *              [--queue 128] [--cache 8192] [--cache-ttl-s 0]
 *              [--no-warmup] [--store-dir .fosm-store] [--no-store]
 *              [--peers a:p,b:p,...] [--self host:port]
 *              [--replication 2] [--tenants-file tenants.json]
 *
 * Serves POST /v1/cpi, /v1/batch, /v1/iw-curve and /v1/trends plus
 * GET /healthz, /metrics (Prometheus text) and /v1/store/stats.
 * Evaluated design
 * points are memoized in a sharded LRU response cache (--cache 0
 * disables, for benchmarking the uncached path) backed by a
 * crash-safe persistent store (docs/STORE.md): responses and workload
 * characterizations survive restarts, so a restarted server starts
 * warm. --no-store runs memory-only. By default all 12 workload
 * characterizations are built before the socket opens so first
 * queries are fast; --no-warmup defers that to first use.
 *
 * With --peers the store is replicated across the cluster
 * (docs/REPLICATION.md): committed entries are write-behind-shipped
 * to their ring successors, local misses for keys this node does not
 * own are read-repaired from peers, an anti-entropy sweep keeps
 * replicas converged, and a restart catches up from its peers before
 * the socket opens — so the gateway's failover target is warm.
 * SIGINT/SIGTERM trigger a graceful shutdown that drains in-flight
 * requests and flushes the replication queue before exiting.
 *
 * With --tenants-file requests must carry a tenant bearer token
 * (docs/TENANCY.md): auth is checked on the IO thread, each tenant
 * gets its own bounded admission sub-queue, and workers drain the
 * sub-queues by deficit round-robin weighted by tenant weight. The
 * registry is live-editable via GET/POST /admin/tenants. Without the
 * flag nothing changes: one class, the original FIFO order.
 */

#include <csignal>
#include <iostream>
#include <memory>
#include <sstream>

#include <unistd.h>

#include "cli.hh"
#include "repl/replicator.hh"
#include "server/http.hh"
#include "server/service.hh"
#include "store/scrubber.hh"
#include "tenant/admission.hh"
#include "tenant/registry.hh"

namespace {

/** Written by the signal handler; write() is async-signal-safe. */
volatile int stopFd = -1;

void
onSignal(int)
{
    if (stopFd >= 0) {
        const char b = 's';
        [[maybe_unused]] ssize_t n = ::write(stopFd, &b, 1);
    }
}

std::vector<std::string>
splitList(const std::string &list)
{
    std::vector<std::string> out;
    std::stringstream ss(list);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace fosm;
    using namespace fosm::server;

    const cli::Args args(
        argc, argv,
        {"host", "port", "workers", "io-threads", "batch", "queue",
         "cache", "cache-ttl-s", "no-warmup", "retry-after",
         "max-connections", "store-dir", "no-store",
         "optimize-max-points", "peers", "self", "replication",
         "repl-vnodes", "repl-interval", "no-catchup",
         "tenants-file", "scrub-interval-s", "scrub-mbps",
         "store-verify-reads"},
        "usage: fosm-serve [flags]\n"
        "  --host 127.0.0.1       listen address\n"
        "  --port 8080            listen port (0 = ephemeral)\n"
        "  --workers N            worker threads (default: cores)\n"
        "  --io-threads 1         acceptor/IO poll loops\n"
        "                         (>1 uses SO_REUSEPORT)\n"
        "  --batch 4              max requests drained per worker\n"
        "                         wakeup\n"
        "  --queue 128            admission queue capacity\n"
        "  --cache 8192           response cache entries (0 = off)\n"
        "  --cache-ttl-s 0        in-memory cache entry TTL in\n"
        "                         seconds (0 = never expire)\n"
        "  --max-connections 1024 connection limit\n"
        "  --retry-after 1        Retry-After seconds on 503\n"
        "  --no-warmup            build workloads lazily\n"
        "  --store-dir DIR        persistent result store directory\n"
        "                         (default .fosm-store)\n"
        "  --no-store             memory-only: no persistence\n"
        "  --optimize-max-points N\n"
        "                         largest /v1/optimize design-space\n"
        "                         cardinality (default 65536; larger\n"
        "                         spaces are rejected 413)\n"
        "  --peers a:p,b:p,...    full cluster membership; enables\n"
        "                         store replication across the ring\n"
        "  --self host:port       this node's label among the peers\n"
        "                         (default: --host:--port)\n"
        "  --replication 2        copies per entry (owner + N-1\n"
        "                         ring successors)\n"
        "  --repl-vnodes 128      ring vnodes; must match the\n"
        "                         gateway's --vnodes\n"
        "  --repl-interval 5000   anti-entropy sweep period (ms)\n"
        "  --no-catchup           skip the startup catch-up pull\n"
        "  --tenants-file F       JSON tenant registry; enables\n"
        "                         bearer-token auth and per-tenant\n"
        "                         weighted-fair queueing\n"
        "                         (docs/TENANCY.md)\n"
        "  --scrub-interval-s 60  background integrity-scrub pass\n"
        "                         period in seconds (0 = off)\n"
        "  --scrub-mbps 64        scrub read-bandwidth budget\n"
        "  --store-verify-reads   re-verify record CRCs on every\n"
        "                         store get (failures degrade to\n"
        "                         misses and feed scrub/repair)\n");

    MetricsRegistry metrics;

    ServiceConfig serviceConfig;
    serviceConfig.cacheCapacity = args.getInt("cache", 8192);
    serviceConfig.cacheTtlS = args.getDouble("cache-ttl-s", 0.0);
    serviceConfig.optimizeMaxPoints = static_cast<std::uint64_t>(
        args.getInt("optimize-max-points", 65536));
    if (!args.has("no-store"))
        serviceConfig.storeDir = args.get("store-dir", ".fosm-store");
    serviceConfig.storeVerifyReads = args.has("store-verify-reads");
    ModelService service(serviceConfig, metrics);

    if (const auto *persistent = service.persistentCache()) {
        const auto s = persistent->stats();
        std::cout << "fosm-serve: store " << serviceConfig.storeDir
                  << " (" << s.liveRecords << " records, "
                  << s.totalBytes << " bytes";
        if (s.truncatedTails)
            std::cout << ", " << s.truncatedTails
                      << " torn tails repaired";
        std::cout << ")\n";
    }

    // -- Multi-tenancy (docs/TENANCY.md) ---------------------------
    // The registry starts empty (auth off, every request rides the
    // legacy class-0 FIFO) unless --tenants-file seeds it; either
    // way POST /admin/tenants can edit it live.
    tenant::Registry registry;
    if (args.has("tenants-file")) {
        std::string error;
        if (!registry.loadFile(args.get("tenants-file", ""), error))
            fosm_fatal("fosm-serve: --tenants-file: ", error);
        std::cout << "fosm-serve: tenant auth enabled ("
                  << registry.snapshot()->tenants.size()
                  << " tenants)\n";
    }
    // The serving node checks auth only; rate and inflight quotas
    // are the gateway's job. Fairness between authenticated tenants
    // comes from the weighted queue below, not from admission.
    tenant::Admission admission(registry, &metrics, {});

    // -- Replication (docs/REPLICATION.md) -------------------------
    const std::string host = args.get("host", "127.0.0.1");
    const auto port =
        static_cast<std::uint16_t>(args.getInt("port", 8080));
    std::unique_ptr<repl::Replicator> replicator;
    if (args.has("peers")) {
        if (!service.persistentCache()) {
            std::cerr << "fosm-serve: --peers requires the "
                         "persistent store (drop --no-store)\n";
            return 2;
        }
        repl::ReplConfig replConfig;
        replConfig.peers = splitList(args.get("peers", ""));
        replConfig.self = args.get(
            "self", host + ":" + std::to_string(port));
        replConfig.replication = static_cast<std::size_t>(
            args.getInt("replication", 2));
        replConfig.vnodes = static_cast<std::size_t>(
            args.getInt("repl-vnodes", 128));
        replConfig.antiEntropyIntervalMs =
            static_cast<int>(args.getInt("repl-interval", 5000));
        bool selfListed = false;
        for (const std::string &peer : replConfig.peers)
            selfListed |= peer == replConfig.self;
        if (!selfListed) {
            std::cerr << "fosm-serve: --self "
                      << replConfig.self
                      << " is not in --peers; every node must "
                         "appear in the shared membership list\n";
            return 2;
        }
        replicator = std::make_unique<repl::Replicator>(
            replConfig, service.persistentCache()->store(),
            metrics);
        replicator->start();

        // Wire read-repair behind the store tier: a miss for a key
        // this node does not own (failover traffic) probes the
        // key's preference list before falling back to recompute.
        service.persistentCache()->setRepairHook(
            [&replicator](const std::string &storeKey,
                          std::string &value) {
                if (replicator->ownsKey(storeKey))
                    return false;
                return replicator->fetchFromPeers(storeKey, value);
            });
        service.setReplStatsProvider(
            [&replicator] { return replicator->statusJson(); });

        // Rejoin catch-up: pull everything peers hold for us above
        // our recorded watermarks BEFORE the socket opens, so the
        // gateway reinstates a warm node, not a cold one.
        if (!args.has("no-catchup")) {
            const std::size_t caught = replicator->catchUp();
            std::cout << "fosm-serve: replication catch-up applied "
                      << caught << " entries from "
                      << replConfig.peers.size() - 1 << " peers\n";
        }
        std::cout << "fosm-serve: replicating as "
                  << replConfig.self << " (N="
                  << replConfig.replication << ", "
                  << replConfig.peers.size() << " peers)\n";
    }

    // -- Integrity scrub (docs/STORE.md) ---------------------------
    // Declared after the replicator: destruction runs in reverse, so
    // the scrubber (whose corrupt handler feeds the repair queue)
    // stops before the replicator it points at.
    std::unique_ptr<store::Scrubber> scrubber;
    if (service.persistentCache()) {
        store::ScrubConfig scrubConfig;
        scrubConfig.intervalS =
            args.getDouble("scrub-interval-s", 60.0);
        scrubConfig.mbps = args.getDouble("scrub-mbps", 64.0);
        scrubber = std::make_unique<store::Scrubber>(
            service.persistentCache()->store(), scrubConfig);
        scrubber->setCorruptHandler(
            [&replicator](const std::string &key,
                          std::uint64_t) {
                if (replicator)
                    replicator->enqueueRepair(key);
            });
        // Corrupt-on-read (verify-on-get, compaction) findings join
        // the same quarantine + repair channel as scrub findings.
        service.persistentCache()->store()->setCorruptionHook(
            [&scrubber](const std::string &key, std::uint64_t lsn) {
                scrubber->noteCorrupt(key, lsn);
            });

        metrics.addCallbackGauge(
            "fosm_scrub_passes_total", "Scrub passes completed",
            [&scrubber] { return double(scrubber->status().passes); });
        metrics.addCallbackGauge(
            "fosm_scrub_records_scanned_total",
            "Records CRC-verified by the scrubber", [&scrubber] {
                return double(scrubber->status().recordsScanned);
            });
        metrics.addCallbackGauge(
            "fosm_scrub_bytes_scanned_total",
            "Bytes CRC-verified by the scrubber", [&scrubber] {
                return double(scrubber->status().bytesScanned);
            });
        metrics.addCallbackGauge(
            "fosm_scrub_segments_skipped_total",
            "Segments skipped clean under their scrub watermark",
            [&scrubber] {
                return double(scrubber->status().segmentsSkipped);
            });
        metrics.addCallbackGauge(
            "fosm_scrub_corrupt_found_total",
            "Corrupt records found by scrub or corrupt-on-read",
            [&scrubber] {
                return double(scrubber->status().corruptFound);
            });
        metrics.addCallbackGauge(
            "fosm_scrub_quarantined_total",
            "Corrupt records quarantined", [&scrubber] {
                return double(scrubber->status().quarantined);
            });
        metrics.addCallbackGauge(
            "fosm_scrub_repair_requests_total",
            "Corrupt findings handed to the repair channel",
            [&scrubber] {
                return double(scrubber->status().repairRequests);
            });

        // Counters only — the gateway sums numeric leaves across
        // backends, and config values would sum into nonsense.
        service.setScrubStatsProvider([&scrubber] {
            const store::ScrubStatus s = scrubber->status();
            json::Value v = json::Value::object();
            v.set("passes", s.passes);
            v.set("fullPasses", s.fullPasses);
            v.set("segmentsScanned", s.segmentsScanned);
            v.set("segmentsSkipped", s.segmentsSkipped);
            v.set("recordsScanned", s.recordsScanned);
            v.set("bytesScanned", s.bytesScanned);
            v.set("corruptFound", s.corruptFound);
            v.set("quarantined", s.quarantined);
            v.set("repairRequests", s.repairRequests);
            return v;
        });
        if (scrubConfig.intervalS > 0) {
            scrubber->start();
            std::cout << "fosm-serve: scrubbing every "
                      << scrubConfig.intervalS << "s at "
                      << scrubConfig.mbps << " MB/s\n";
        }
    }

    if (!args.has("no-warmup")) {
        std::cout << "fosm-serve: building "
                  << Workbench::benchmarks().size()
                  << " workload characterizations ("
                  << service.workbench().traceInstructions()
                  << " insts each)...\n";
        service.warmup();
    }

    HttpServerConfig serverConfig;
    serverConfig.host = host;
    serverConfig.port = port;
    serverConfig.workers = args.getInt("workers", 0);
    serverConfig.ioThreads = args.getInt("io-threads", 1);
    serverConfig.batchSize = args.getInt("batch", 4);
    serverConfig.queueCapacity = args.getInt("queue", 128);
    serverConfig.maxConnections =
        args.getInt("max-connections", 1024);
    serverConfig.retryAfterSeconds =
        static_cast<int>(args.getInt("retry-after", 1));
    serverConfig.metricPaths = service.metricPaths();

    // Admission runs on the IO thread before the queue push: bad
    // tokens are answered 401 without waking a worker, and admitted
    // requests carry their tenant's queue class + weight into the
    // weighted-fair queue.
    serverConfig.admission =
        [&admission](const HttpRequest &request) {
            const tenant::AdmitDecision d = admission.admit(request);
            AdmissionVerdict verdict;
            verdict.status = d.status;
            verdict.message = d.error;
            verdict.retryAfterSeconds = d.retryAfterSeconds;
            verdict.queueClass = d.classId;
            verdict.weight = d.weight;
            return verdict;
        };

    // The repl endpoints are dispatched ahead of the model service:
    // they speak binary frames (apply/pull) and must work even when
    // the service would shed load. /admin/tenants likewise bypasses
    // the model router (and, being /admin/*, admission itself).
    HttpServer::Handler handler =
        [inner = service.handler(),
         &registry](const HttpRequest &request) {
            if (request.path() == "/admin/tenants")
                return registry.handleAdmin(request);
            return inner(request);
        };
    if (replicator) {
        handler = [inner = std::move(handler),
                   &replicator](const HttpRequest &request) {
            if (repl::Replicator::handles(request.path()))
                return replicator->handle(request);
            return inner(request);
        };
    }
    if (scrubber) {
        handler = [inner = std::move(handler),
                   &scrubber](const HttpRequest &request) {
            if (request.path() != "/admin/scrub")
                return inner(request);
            if (request.method == "GET") {
                const store::ScrubStatus s = scrubber->status();
                json::Value v = json::Value::object();
                v.set("running", s.running);
                v.set("scrubbing", s.scrubbing);
                v.set("passes", s.passes);
                v.set("fullPasses", s.fullPasses);
                v.set("segmentsScanned", s.segmentsScanned);
                v.set("segmentsSkipped", s.segmentsSkipped);
                v.set("recordsScanned", s.recordsScanned);
                v.set("bytesScanned", s.bytesScanned);
                v.set("corruptFound", s.corruptFound);
                v.set("quarantined", s.quarantined);
                v.set("repairRequests", s.repairRequests);
                v.set("lastPassMs", s.lastPassMs);
                v.set("throttleMs", s.throttleMs);
                json::Value cfg = json::Value::object();
                cfg.set("intervalS", scrubber->config().intervalS);
                cfg.set("mbps", scrubber->config().mbps);
                cfg.set("fullEvery",
                        scrubber->config().fullEvery);
                v.set("config", std::move(cfg));
                return HttpResponse::json(200, v.dump());
            }
            if (request.method != "POST")
                return HttpResponse::text(405,
                                          "method not allowed\n");
            // POST: force a full scrub. {"wait": true} runs the
            // pass inline and reports its result; the default kicks
            // the background loop and returns immediately.
            bool wait = false;
            if (!request.body.empty()) {
                json::Value body;
                std::string error;
                if (!json::parse(request.body, body, &error))
                    return HttpResponse::text(400, error + "\n");
                if (const json::Value *w = body.find("wait"))
                    wait = w->asBool(false);
            }
            json::Value v = json::Value::object();
            if (wait) {
                const auto pass = scrubber->scrubOnce(true);
                v.set("forced", true);
                v.set("waited", true);
                v.set("segments", pass.segments);
                v.set("records", pass.records);
                v.set("bytes", pass.bytes);
                v.set("corrupt", pass.corrupt);
                v.set("quarantined", pass.quarantined);
            } else {
                scrubber->requestFullScrub();
                v.set("forced", true);
                v.set("waited", false);
            }
            return HttpResponse::json(200, v.dump());
        };
    }

    HttpServer server(serverConfig, std::move(handler), &metrics);

    // Per-tenant queue metrics, registered the moment a tenant gets
    // its queue class (including classes minted by live /admin
    // edits). Sampled from the fair queue's counters at scrape time.
    registry.onNewClass([&server, &metrics](
                            const tenant::TenantSpec &spec) {
        const std::string label = "tenant=\"" + spec.id + "\"";
        const std::uint32_t cls = spec.classId;
        const auto counts = [&server, cls] {
            const auto all = server.queueClassCounts();
            return cls < all.size() ? all[cls]
                                    : tenant::FairQueueClassCounts{};
        };
        metrics.addCallbackGauge(
            "fosm_tenant_queue_depth",
            "Requests queued per tenant",
            [counts] { return double(counts().depth); }, label);
        metrics.addCallbackGauge(
            "fosm_tenant_drained_total",
            "Requests drained to workers per tenant",
            [counts] { return double(counts().drained); }, label);
        metrics.addCallbackGauge(
            "fosm_tenant_shed_total",
            "Requests shed on a full tenant sub-queue",
            [counts] { return double(counts().shedFull); }, label);
    });

    server.start();

    stopFd = server.stopFd();
    struct sigaction sa{};
    sa.sa_handler = onSignal;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
    signal(SIGPIPE, SIG_IGN);

    std::cout << "fosm-serve: listening on " << serverConfig.host
              << ":" << server.port() << " ("
              << (serverConfig.workers
                      ? std::to_string(serverConfig.workers)
                      : std::string("auto"))
              << " workers, queue " << serverConfig.queueCapacity
              << ", cache "
              << (serviceConfig.cacheCapacity
                      ? std::to_string(serviceConfig.cacheCapacity)
                      : std::string("off"))
              << ", store "
              << (serviceConfig.storeDir.empty()
                      ? std::string("off")
                      : serviceConfig.storeDir)
              << ")\n"
              << "fosm-serve: POST /v1/cpi /v1/batch /v1/iw-curve "
                 "/v1/trends /v1/optimize; "
                 "GET /healthz /metrics /v1/store/stats "
                 "/admin/scrub\n";
    std::cout.flush();

    server.join();

    // Stop the scrubber before the replicator its corrupt handler
    // feeds; clear the store hook first so a racing compaction
    // cannot call into a stopped scrubber.
    if (scrubber) {
        service.persistentCache()->store()->setCorruptionHook(
            nullptr);
        scrubber->stop();
    }

    // Drain handoff: ship everything still queued to the successors
    // before exiting, so a drained node's shard stays warm on its
    // replicas.
    if (replicator) {
        const bool drained = replicator->flush(5000);
        std::cout << "fosm-serve: replication queue "
                  << (drained ? "flushed" : "flush timed out")
                  << "\n";
        replicator->stop();
    }

    std::cout << "fosm-serve: drained, "
              << server.requestsServed() << " requests served, "
              << server.requestsRejected() << " rejected\n";
    return 0;
}
