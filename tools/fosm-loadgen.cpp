/**
 * @file
 * fosm-loadgen: load generator for fosm-serve.
 *
 *   fosm-loadgen [--host 127.0.0.1] [--port 8080]
 *                [--targets host:port,host:port,...]
 *                [--connections 4] [--duration 10] [--warmup 1]
 *                [--endpoint /v1/cpi] [--distinct 12] [--rate N]
 *                [--out report.json]
 *
 * Closed loop by default: each connection is one thread issuing
 * requests back-to-back over a keep-alive connection (a new request
 * only after the previous response). Request bodies rotate through
 * --distinct different design points (workload x deltaD variations),
 * which sets the server-side cache hit profile: --distinct far below
 * the cache capacity measures the cached path, --distinct 0 sends a
 * unique design point every time (all misses). Reports throughput and
 * latency percentiles, excluding the warm-up window, and counts per
 * status (503s are retried immediately — that IS the overload test).
 *
 * --rate N switches to open loop: arrivals are scheduled at N
 * requests/second on a fixed global timetable regardless of how fast
 * responses come back, the way real clients behave. When the server
 * falls behind, requests queue inside the load generator; the report
 * then separates QUEUEING DELAY (scheduled arrival -> request
 * actually sent) from SERVICE TIME (sent -> response), because under
 * overload the former grows without bound while the latter stays
 * flat — the coordinated-omission distinction a closed loop hides.
 *
 * --batch N switches to POST /v1/batch with N design points (rows)
 * per request, in both loop modes. --distinct then counts distinct
 * batch bodies (--distinct 0 generates never-repeating rows), and
 * the report adds per-design-point throughput next to the per-batch
 * numbers — the figure comparable across batch sizes.
 *
 * --targets takes a comma-separated endpoint list and stripes the
 * connections across it round-robin (client-side round-robin — the
 * baseline a digest-sharding gateway is benchmarked against; a
 * single gateway address is just a one-entry list). The report then
 * adds a per-target breakdown (requests, errors, throughput, latency
 * percentiles) so a slow or dead replica is visible per-target
 * instead of smeared into the aggregate.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "cli.hh"
#include "cluster/upstream.hh"
#include "server/client.hh"
#include "server/json.hh"
#include "workload/profile.hh"

namespace {

using namespace fosm;
using Clock = std::chrono::steady_clock;

struct WorkerResult
{
    std::vector<double> latencies; ///< seconds, 2xx only, post-warmup
    /** Open loop only: scheduled arrival -> send, post-warmup. */
    std::vector<double> queueDelays;
    std::uint64_t ok = 0;          ///< 2xx post-warmup
    std::uint64_t rejected = 0;    ///< 503 post-warmup
    std::uint64_t deadline = 0;    ///< 504 deadline exceeded
    std::uint64_t timeouts = 0;    ///< client-side socket timeout
    std::uint64_t errors = 0;      ///< other statuses / transport
    std::uint64_t warmup = 0;      ///< requests in the warmup window
};

/** Percentile over a sorted sample vector. */
double
percentile(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const std::size_t idx = std::min(
        sorted.size() - 1,
        static_cast<std::size_t>(
            q * static_cast<double>(sorted.size())));
    return sorted[idx];
}

/** Pre-built request bodies rotated by every worker. */
std::vector<std::string>
buildBodies(const std::string &endpoint, std::uint64_t distinct,
            std::uint64_t batchRows)
{
    const std::vector<std::string> names = profileNames();
    // 0 means "never repeat": the worker appends a unique deltaD per
    // request instead of using this list.
    const std::uint64_t n = distinct == 0 ? names.size() : distinct;
    std::vector<std::string> bodies;
    bodies.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        json::Value body = json::Value::object();
        if (batchRows > 0) {
            // One /v1/batch request carrying batchRows design
            // points of one workload: per-row deltaD deltas over an
            // empty shared machine, each row a distinct point.
            body.set("workload", names[i % names.size()]);
            json::Value rows = json::Value::array();
            for (std::uint64_t j = 0; j < batchRows; ++j) {
                json::Value row = json::Value::object();
                row.set("deltaD",
                        std::uint64_t{
                            100 + 10 * (i * batchRows + j)});
                rows.push(std::move(row));
            }
            body.set("rows", std::move(rows));
        } else if (endpoint == "/v1/trends") {
            // Trends are workload-independent; each body is a full
            // 7-point width sweep (a realistic design question and
            // a deliberately expensive miss), made distinct by the
            // study and a perturbed baseline config.
            body.set("study", i % 2 == 0 ? "pipeline-depth"
                                         : "issue-width");
            json::Value widths = json::Value::array();
            for (std::uint64_t w = 2; w <= 8; ++w)
                widths.push(w);
            body.set("widths", std::move(widths));
            if (i >= 2) {
                json::Value config = json::Value::object();
                config.set("avgLatency",
                           1.0 + static_cast<double>(i) * 1e-6);
                body.set("config", std::move(config));
            }
        } else if (endpoint == "/v1/iw-curve") {
            body.set("workload", names[i % names.size()]);
            if (i >= names.size()) {
                json::Value windows = json::Value::array();
                windows.push(std::uint64_t{4 + i % 60});
                body.set("windows", std::move(windows));
            }
        } else {
            body.set("workload", names[i % names.size()]);
            json::Value machine = json::Value::object();
            // Vary the memory latency so each body is a distinct
            // design point.
            machine.set("deltaD",
                        std::uint64_t{100 + 10 * (i / names.size())});
            body.set("machine", std::move(machine));
        }
        bodies.push_back(body.dump());
    }
    return bodies;
}

} // namespace

int
main(int argc, char **argv)
{
    const cli::Args args(
        argc, argv,
        {"host", "port", "targets", "connections", "duration",
         "warmup", "endpoint", "distinct", "rate", "timeout",
         "deadline", "batch", "out"},
        "usage: fosm-loadgen [flags]\n"
        "  --host 127.0.0.1    server address\n"
        "  --port 8080         server port\n"
        "  --targets a:p,b:p   endpoint list; connections stripe\n"
        "                      across it round-robin (overrides\n"
        "                      --host/--port)\n"
        "  --connections 4     concurrent connections\n"
        "  --duration 10       measured seconds\n"
        "  --warmup 1          unmeasured leading seconds\n"
        "  --endpoint /v1/cpi  target endpoint\n"
        "  --distinct 12       distinct request bodies "
        "(0 = all unique)\n"
        "  --rate N            open loop: N scheduled requests/s "
        "across\n"
        "                      all connections (0 = closed loop)\n"
        "  --timeout MS        client socket timeout; a request that\n"
        "                      trips it counts as a timeout, not an\n"
        "                      error (0 = wait forever)\n"
        "  --deadline MS       send X-Fosm-Deadline-Ms so servers\n"
        "                      shed work we stopped waiting for;\n"
        "                      504s count separately (0 = none)\n"
        "  --batch N           POST /v1/batch with N design points\n"
        "                      per request; throughput is reported\n"
        "                      per design point as well as per\n"
        "                      request (0 = single-request mode)\n"
        "  --out report.json   write the report as JSON\n");

    const std::string host = args.get("host", "127.0.0.1");
    const std::uint16_t port =
        static_cast<std::uint16_t>(args.getInt("port", 8080));
    const std::uint64_t connections =
        std::max<std::uint64_t>(1, args.getInt("connections", 4));
    const double duration =
        std::max(0.1, args.getDouble("duration", 10.0));
    const double warmup = args.getDouble("warmup", 1.0);
    const std::uint64_t batchRows = args.getInt("batch", 0);
    const std::string endpoint = args.get(
        "endpoint", batchRows > 0 ? "/v1/batch" : "/v1/cpi");
    const std::uint64_t distinct = args.getInt("distinct", 12);
    const double rate = args.getDouble("rate", 0.0);
    const int timeoutMs =
        static_cast<int>(args.getInt("timeout", 0));
    const int deadlineMs =
        static_cast<int>(args.getInt("deadline", 0));

    std::vector<cluster::BackendAddress> targets;
    if (args.has("targets")) {
        std::string error;
        if (!cluster::parseBackendList(args.get("targets", ""),
                                       targets, error)) {
            std::cerr << "error: --targets: " << error << "\n";
            return 1;
        }
    } else {
        targets.push_back({host, port, host + ":" +
                                           std::to_string(port)});
    }

    const std::vector<std::string> bodies =
        buildBodies(endpoint, distinct, batchRows);

    const auto start = Clock::now();
    const auto measureFrom =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(warmup));
    const auto deadline =
        measureFrom + std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double>(duration));

    std::vector<WorkerResult> results(connections);
    std::vector<std::thread> threads;
    threads.reserve(connections);
    std::atomic<std::uint64_t> uniqueSeq{0};
    /** Open loop: workers claim arrival slots off one timetable. */
    std::atomic<std::uint64_t> arrivalSeq{0};

    for (std::uint64_t c = 0; c < connections; ++c) {
        threads.emplace_back([&, c] {
            WorkerResult &r = results[c];
            const cluster::BackendAddress &target =
                targets[c % targets.size()];
            fosm::server::HttpClient client(target.host,
                                            target.port);
            if (timeoutMs > 0)
                client.setTimeoutMs(timeoutMs);
            std::vector<std::pair<std::string, std::string>>
                extraHeaders;
            if (deadlineMs > 0)
                extraHeaders.emplace_back(
                    fosm::server::deadlineHeader,
                    std::to_string(deadlineMs));
            fosm::server::ClientResponse response;
            std::uint64_t i = c; // stagger the rotation per thread
            while (true) {
                Clock::time_point scheduled{};
                if (rate > 0.0) {
                    // Claim the next slot on the global timetable.
                    // If the server is slow the slot's time is
                    // already past and the sleep is a no-op — the
                    // lateness is the queueing delay reported below.
                    const std::uint64_t seq = arrivalSeq.fetch_add(1);
                    scheduled =
                        start +
                        std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(
                                static_cast<double>(seq) / rate));
                    if (scheduled >= deadline)
                        break;
                    std::this_thread::sleep_until(scheduled);
                } else if (Clock::now() >= deadline) {
                    break;
                }
                std::string body = bodies[i % bodies.size()];
                if (distinct == 0) {
                    // Unique design point per request: defeat the
                    // cache by bumping a parameter monotonically.
                    // Each endpoint accepts different members, so
                    // vary one it actually validates.
                    json::Value v;
                    std::string err;
                    json::parse(body, v, &err);
                    const std::uint64_t seq = uniqueSeq.fetch_add(
                        batchRows > 0 ? batchRows : 1);
                    if (batchRows > 0) {
                        // Fresh rows every request: batchRows
                        // never-seen design points per batch. The
                        // deltaI second axis keeps points unique
                        // past the deltaD wrap (batch rates clear
                        // 900k points well inside a run).
                        json::Value rows = json::Value::array();
                        for (std::uint64_t j = 0; j < batchRows;
                             ++j) {
                            json::Value row = json::Value::object();
                            row.set("deltaD",
                                    std::uint64_t{
                                        100 +
                                        (seq + j) % 900000});
                            row.set("deltaI",
                                    std::uint64_t{
                                        8 + (seq + j) / 900000});
                            rows.push(std::move(row));
                        }
                        v.set("rows", std::move(rows));
                    } else if (endpoint == "/v1/trends") {
                        json::Value config = json::Value::object();
                        config.set(
                            "avgLatency",
                            1.0 +
                                static_cast<double>(seq % 900000) *
                                    1e-6);
                        v.set("config", std::move(config));
                    } else if (endpoint == "/v1/iw-curve") {
                        json::Value windows = json::Value::array();
                        windows.push(std::uint64_t{4 + seq % 250});
                        v.set("windows", std::move(windows));
                    } else {
                        json::Value machine = json::Value::object();
                        machine.set("deltaD",
                                    std::uint64_t{100 + seq % 900000});
                        v.set("machine", std::move(machine));
                    }
                    body = v.dump();
                }
                ++i;
                const auto t0 = Clock::now();
                const bool ok = client.request(
                    "POST", endpoint, body, extraHeaders, response);
                const auto t1 = Clock::now();
                if (t1 < measureFrom) {
                    ++r.warmup;
                    continue;
                }
                if (rate > 0.0) {
                    r.queueDelays.push_back(std::max(
                        0.0, std::chrono::duration<double>(
                                 t0 - scheduled)
                                 .count()));
                }
                if (!ok) {
                    // A tripped --timeout is the client giving up,
                    // not the server failing — report it apart from
                    // transport errors.
                    if (client.timedOut())
                        ++r.timeouts;
                    else
                        ++r.errors;
                    continue;
                }
                if (response.status == 200) {
                    ++r.ok;
                    r.latencies.push_back(
                        std::chrono::duration<double>(t1 - t0)
                            .count());
                } else if (response.status == 503) {
                    ++r.rejected;
                } else if (response.status == 504) {
                    ++r.deadline;
                } else {
                    ++r.errors;
                }
            }
        });
    }
    for (std::thread &t : threads)
        t.join();

    // Aggregate.
    WorkerResult total;
    for (WorkerResult &r : results) {
        total.ok += r.ok;
        total.rejected += r.rejected;
        total.deadline += r.deadline;
        total.timeouts += r.timeouts;
        total.errors += r.errors;
        total.warmup += r.warmup;
        total.latencies.insert(total.latencies.end(),
                               r.latencies.begin(),
                               r.latencies.end());
        total.queueDelays.insert(total.queueDelays.end(),
                                 r.queueDelays.begin(),
                                 r.queueDelays.end());
    }
    std::sort(total.latencies.begin(), total.latencies.end());
    std::sort(total.queueDelays.begin(), total.queueDelays.end());
    const auto pct = [&](double q) {
        return percentile(total.latencies, q);
    };
    double sum = 0.0;
    for (const double l : total.latencies)
        sum += l;
    const double mean =
        total.latencies.empty()
            ? 0.0
            : sum / static_cast<double>(total.latencies.size());
    const double throughput =
        static_cast<double>(total.ok) / duration;

    json::Value report = json::Value::object();
    report.set("endpoint", endpoint);
    report.set("mode", rate > 0.0 ? "open-loop" : "closed-loop");
    if (rate > 0.0)
        report.set("offered_rate_rps", rate);
    report.set("connections", connections);
    report.set("duration_s", duration);
    report.set("distinct_bodies",
               distinct == 0 ? json::Value("unique")
                             : json::Value(distinct));
    report.set("requests_ok", total.ok);
    report.set("requests_503", total.rejected);
    report.set("requests_504", total.deadline);
    report.set("requests_timeout", total.timeouts);
    report.set("requests_error", total.errors);
    report.set("throughput_rps", throughput);
    if (batchRows > 0) {
        report.set("batch_rows", batchRows);
        report.set("design_points_per_s",
                   throughput * static_cast<double>(batchRows));
    }
    json::Value lat = json::Value::object();
    lat.set("mean_us", mean * 1e6);
    lat.set("p50_us", pct(0.50) * 1e6);
    lat.set("p90_us", pct(0.90) * 1e6);
    lat.set("p99_us", pct(0.99) * 1e6);
    lat.set("max_us", total.latencies.empty()
                          ? 0.0
                          : total.latencies.back() * 1e6);
    report.set("latency", std::move(lat));

    // Per-target breakdown: a dead or slow replica shows up here
    // instead of being smeared into the aggregate percentiles.
    const bool breakdown = args.has("targets");
    std::string targetLines;
    if (breakdown) {
        json::Value perTarget = json::Value::array();
        for (std::size_t t = 0; t < targets.size(); ++t) {
            WorkerResult tr;
            for (std::uint64_t c = t; c < connections;
                 c += targets.size()) {
                tr.ok += results[c].ok;
                tr.rejected += results[c].rejected;
                tr.deadline += results[c].deadline;
                tr.timeouts += results[c].timeouts;
                tr.errors += results[c].errors;
                tr.latencies.insert(tr.latencies.end(),
                                    results[c].latencies.begin(),
                                    results[c].latencies.end());
            }
            std::sort(tr.latencies.begin(), tr.latencies.end());
            double tsum = 0.0;
            for (const double l : tr.latencies)
                tsum += l;
            json::Value row = json::Value::object();
            row.set("target", targets[t].label);
            row.set("requests_ok", tr.ok);
            row.set("requests_503", tr.rejected);
            row.set("requests_504", tr.deadline);
            row.set("requests_timeout", tr.timeouts);
            row.set("requests_error", tr.errors);
            row.set("throughput_rps",
                    static_cast<double>(tr.ok) / duration);
            row.set("mean_us",
                    tr.latencies.empty()
                        ? 0.0
                        : tsum /
                              static_cast<double>(
                                  tr.latencies.size()) *
                              1e6);
            row.set("p50_us",
                    percentile(tr.latencies, 0.50) * 1e6);
            row.set("p99_us",
                    percentile(tr.latencies, 0.99) * 1e6);
            perTarget.push(std::move(row));
            targetLines +=
                "  " + targets[t].label + ": " +
                std::to_string(tr.ok) + " ok, " +
                std::to_string(tr.deadline) + " x 504, " +
                std::to_string(tr.timeouts) + " timeouts, " +
                std::to_string(tr.errors) + " errors, " +
                json::formatDouble(
                    static_cast<double>(tr.ok) / duration) +
                " req/s, p50 " +
                json::formatDouble(
                    percentile(tr.latencies, 0.50) * 1e6) +
                " us, p99 " +
                json::formatDouble(
                    percentile(tr.latencies, 0.99) * 1e6) +
                " us\n";
        }
        report.set("targets", std::move(perTarget));
    }
    if (rate > 0.0) {
        // Service time above; time spent waiting for a connection
        // behind the offered schedule is its own distribution.
        json::Value qd = json::Value::object();
        double qsum = 0.0;
        for (const double d : total.queueDelays)
            qsum += d;
        qd.set("mean_us",
               total.queueDelays.empty()
                   ? 0.0
                   : qsum /
                         static_cast<double>(
                             total.queueDelays.size()) *
                         1e6);
        qd.set("p50_us", percentile(total.queueDelays, 0.50) * 1e6);
        qd.set("p90_us", percentile(total.queueDelays, 0.90) * 1e6);
        qd.set("p99_us", percentile(total.queueDelays, 0.99) * 1e6);
        qd.set("max_us", total.queueDelays.empty()
                             ? 0.0
                             : total.queueDelays.back() * 1e6);
        report.set("queue_delay", std::move(qd));
    }

    std::cout << "fosm-loadgen: " << total.ok << " ok, "
              << total.rejected << " x 503, " << total.deadline
              << " x 504, " << total.timeouts << " timeouts, "
              << total.errors << " errors in " << duration
              << " s (" << json::formatDouble(throughput)
              << " req/s";
    if (rate > 0.0)
        std::cout << ", offered " << json::formatDouble(rate);
    if (batchRows > 0)
        std::cout << "; " << batchRows << " rows/batch = "
                  << json::formatDouble(
                         throughput *
                         static_cast<double>(batchRows))
                  << " design points/s";
    std::cout << ")\n"
              << "service us: mean "
              << json::formatDouble(mean * 1e6) << ", p50 "
              << json::formatDouble(pct(0.50) * 1e6) << ", p90 "
              << json::formatDouble(pct(0.90) * 1e6) << ", p99 "
              << json::formatDouble(pct(0.99) * 1e6) << "\n";
    if (breakdown)
        std::cout << "per-target:\n" << targetLines;
    if (rate > 0.0) {
        std::cout << "queue-delay us: p50 "
                  << json::formatDouble(
                         percentile(total.queueDelays, 0.50) * 1e6)
                  << ", p90 "
                  << json::formatDouble(
                         percentile(total.queueDelays, 0.90) * 1e6)
                  << ", p99 "
                  << json::formatDouble(
                         percentile(total.queueDelays, 0.99) * 1e6)
                  << "\n";
    }

    if (args.has("out")) {
        std::ofstream out(args.get("out", ""));
        out << report.dump() << "\n";
        if (!out) {
            std::cerr << "error: cannot write "
                      << args.get("out", "") << "\n";
            return 1;
        }
    }
    return total.errors == 0 ? 0 : 2;
}
