/**
 * @file
 * fosm-loadgen: load generator for fosm-serve.
 *
 *   fosm-loadgen [--host 127.0.0.1] [--port 8080]
 *                [--targets host:port,host:port,...]
 *                [--connections 4] [--duration 10] [--warmup 1]
 *                [--endpoint /v1/cpi] [--distinct 12] [--rate N]
 *                [--out report.json]
 *
 * Closed loop by default: each connection is one thread issuing
 * requests back-to-back over a keep-alive connection (a new request
 * only after the previous response). Request bodies rotate through
 * --distinct different design points (workload x deltaD variations),
 * which sets the server-side cache hit profile: --distinct far below
 * the cache capacity measures the cached path, --distinct 0 sends a
 * unique design point every time (all misses). Reports throughput and
 * latency percentiles, excluding the warm-up window, and counts per
 * status (503s are retried immediately — that IS the overload test).
 *
 * --rate N switches to open loop: arrivals are scheduled at N
 * requests/second on a fixed global timetable regardless of how fast
 * responses come back, the way real clients behave. When the server
 * falls behind, requests queue inside the load generator; the report
 * then separates QUEUEING DELAY (scheduled arrival -> request
 * actually sent) from SERVICE TIME (sent -> response), because under
 * overload the former grows without bound while the latter stays
 * flat — the coordinated-omission distinction a closed loop hides.
 *
 * --batch N switches to POST /v1/batch with N design points (rows)
 * per request, in both loop modes. --distinct then counts distinct
 * batch bodies (--distinct 0 generates never-repeating rows), and
 * the report adds per-design-point throughput next to the per-batch
 * numbers — the figure comparable across batch sizes.
 *
 * --targets takes a comma-separated endpoint list and stripes the
 * connections across it round-robin (client-side round-robin — the
 * baseline a digest-sharding gateway is benchmarked against; a
 * single gateway address is just a one-entry list). The report then
 * adds a per-target breakdown (requests, errors, throughput, latency
 * percentiles) so a slow or dead replica is visible per-target
 * instead of smeared into the aggregate.
 *
 * --tenant-spec id:token[:weight[:rps[:endpoint[:batch]]]],...
 * switches to multi-tenant mode: connections stripe across the
 * tenant list round-robin and every request carries that tenant's
 * bearer token, so one loadgen process can play a whole population
 * against a --tenants-file-enabled serve or gateway. Per tenant, an
 * rps > 0 paces that tenant open-loop on its own timetable while 0
 * keeps it closed-loop — the idiomatic noisy-neighbor drill is one
 * saturating closed-loop batch tenant against a paced interactive
 * one. 401s and 429s are counted per status (never as errors: a 429
 * is the quota doing its job), and the report adds a per-tenant
 * breakdown (ok/429 counts, throughput, share of total, latency
 * percentiles) next to the declared weight, which is exactly the
 * fairness evidence scripts/tenant_smoke.sh asserts on.
 *
 * --drill kill-rejoin timestamps every sample so one continuous run
 * can be split into phases around externally-orchestrated cluster
 * events: scripts/chaos_smoke.sh SIGKILLs a backend at the first
 * --marks offset and rejoins it at the second, and the report's
 * drill.phases[] (pre-kill / post-failover / post-rejoin, each with
 * ok/failure counts and latency quantiles) shows whether failover
 * stayed on the warm replicated path — post-failover p99 near the
 * pre-kill envelope, zero failures — instead of recomputing cold.
 *
 * --optimize planned|brute switches to a one-shot design-space
 * benchmark instead of a load loop. Both modes sweep the SAME space
 * (a --seed-randomized spec of --space-points design points over
 * width x windowSize x deltaI x deltaD, with a constraint): "planned"
 * issues one POST /v1/optimize and lets the server's sweep planner
 * dedupe and batch; "brute" is the client-side baseline — enumerate
 * the space locally, POST /v1/batch chunks, and compute the Pareto
 * frontier client-side. The report's frontier_hash digests the
 * frontier (machines + objective values), so runs of the two modes
 * against the same space must hash identically — the bit-identity
 * check scripts/optimize_bench.sh pins — and points_per_s /
 * frontier_points_per_s compare end-to-end cost. /metrics is scraped
 * before and after for the model-evaluation and IW-fit deltas the
 * planner is supposed to shrink.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "cli.hh"
#include "cluster/upstream.hh"
#include "common/hash.hh"
#include "opt/expr.hh"
#include "opt/pareto.hh"
#include "opt/space.hh"
#include "server/client.hh"
#include "server/json.hh"
#include "server/params.hh"
#include "workload/profile.hh"

namespace {

using namespace fosm;
using Clock = std::chrono::steady_clock;

struct WorkerResult
{
    std::vector<double> latencies; ///< seconds, 2xx only, post-warmup
    /** Open loop only: scheduled arrival -> send, post-warmup. */
    std::vector<double> queueDelays;
    std::uint64_t ok = 0;          ///< 2xx post-warmup
    std::uint64_t rejected = 0;    ///< 503 post-warmup
    std::uint64_t deadline = 0;    ///< 504 deadline exceeded
    std::uint64_t unauthorized = 0; ///< 401 tenant auth failures
    std::uint64_t ratelimited = 0; ///< 429 tenant quota rejections
    std::uint64_t timeouts = 0;    ///< client-side socket timeout
    std::uint64_t errors = 0;      ///< other statuses / transport
    std::uint64_t warmup = 0;      ///< requests in the warmup window

    // --drill only: timestamped samples so the report can split the
    // run into phases around externally-orchestrated events.
    /** (seconds since measure start, latency seconds) per 200. */
    std::vector<std::pair<double, double>> samples;
    /** Times of non-200 outcomes, seconds since measure start. */
    std::vector<double> failureTimes;
};

/** Percentile over a sorted sample vector. */
double
percentile(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const std::size_t idx = std::min(
        sorted.size() - 1,
        static_cast<std::size_t>(
            q * static_cast<double>(sorted.size())));
    return sorted[idx];
}

/** Pre-built request bodies rotated by every worker. */
std::vector<std::string>
buildBodies(const std::string &endpoint, std::uint64_t distinct,
            std::uint64_t batchRows)
{
    const std::vector<std::string> names = profileNames();
    // 0 means "never repeat": the worker appends a unique deltaD per
    // request instead of using this list.
    const std::uint64_t n = distinct == 0 ? names.size() : distinct;
    std::vector<std::string> bodies;
    bodies.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        json::Value body = json::Value::object();
        if (batchRows > 0) {
            // One /v1/batch request carrying batchRows design
            // points of one workload: per-row deltaD deltas over an
            // empty shared machine, each row a distinct point.
            body.set("workload", names[i % names.size()]);
            json::Value rows = json::Value::array();
            for (std::uint64_t j = 0; j < batchRows; ++j) {
                json::Value row = json::Value::object();
                row.set("deltaD",
                        std::uint64_t{
                            100 + 10 * (i * batchRows + j)});
                rows.push(std::move(row));
            }
            body.set("rows", std::move(rows));
        } else if (endpoint == "/v1/trends") {
            // Trends are workload-independent; each body is a full
            // 7-point width sweep (a realistic design question and
            // a deliberately expensive miss), made distinct by the
            // study and a perturbed baseline config.
            body.set("study", i % 2 == 0 ? "pipeline-depth"
                                         : "issue-width");
            json::Value widths = json::Value::array();
            for (std::uint64_t w = 2; w <= 8; ++w)
                widths.push(w);
            body.set("widths", std::move(widths));
            if (i >= 2) {
                json::Value config = json::Value::object();
                config.set("avgLatency",
                           1.0 + static_cast<double>(i) * 1e-6);
                body.set("config", std::move(config));
            }
        } else if (endpoint == "/v1/iw-curve") {
            body.set("workload", names[i % names.size()]);
            if (i >= names.size()) {
                json::Value windows = json::Value::array();
                windows.push(std::uint64_t{4 + i % 60});
                body.set("windows", std::move(windows));
            }
        } else {
            body.set("workload", names[i % names.size()]);
            json::Value machine = json::Value::object();
            // Vary the memory latency so each body is a distinct
            // design point.
            machine.set("deltaD",
                        std::uint64_t{100 + 10 * (i / names.size())});
            body.set("machine", std::move(machine));
        }
        bodies.push_back(body.dump());
    }
    return bodies;
}

/** One tenant the load is played as (--tenant-spec). */
struct TenantLoad
{
    std::string id;
    std::string token;
    double weight = 1.0;      ///< reported next to the measured share
    double rps = 0.0;         ///< > 0 paces this tenant open-loop
    std::string endpoint;     ///< empty = the global --endpoint
    std::uint64_t batchRows = 0; ///< 0 = the global --batch
    std::vector<std::string> bodies; ///< pre-built per tenant
};

/**
 * Parse "id:token[:weight[:rps[:endpoint[:batch]]]],..." — fields
 * are positional; the endpoint is recognizable by its leading '/'.
 */
bool
parseTenantSpec(const std::string &text,
                std::vector<TenantLoad> &out, std::string &error)
{
    std::size_t from = 0;
    while (from <= text.size()) {
        std::size_t to = text.find(',', from);
        if (to == std::string::npos)
            to = text.size();
        const std::string item = text.substr(from, to - from);
        from = to + 1;
        if (item.empty())
            continue;
        std::vector<std::string> fields;
        std::size_t f = 0;
        while (f <= item.size()) {
            std::size_t sep = item.find(':', f);
            if (sep == std::string::npos)
                sep = item.size();
            fields.push_back(item.substr(f, sep - f));
            f = sep + 1;
        }
        if (fields.size() < 2 || fields[0].empty() ||
            fields[1].empty()) {
            error = "'" + item + "': need at least id:token";
            return false;
        }
        TenantLoad tenant;
        tenant.id = fields[0];
        tenant.token = fields[1];
        char *end = nullptr;
        if (fields.size() > 2) {
            tenant.weight = std::strtod(fields[2].c_str(), &end);
            if (*end != '\0' || tenant.weight <= 0.0) {
                error = "'" + item + "': bad weight '" + fields[2] +
                        "'";
                return false;
            }
        }
        if (fields.size() > 3) {
            tenant.rps = std::strtod(fields[3].c_str(), &end);
            if (*end != '\0' || tenant.rps < 0.0) {
                error =
                    "'" + item + "': bad rps '" + fields[3] + "'";
                return false;
            }
        }
        if (fields.size() > 4) {
            if (fields[4].empty() || fields[4][0] != '/') {
                error = "'" + item + "': endpoint must start with /";
                return false;
            }
            tenant.endpoint = fields[4];
        }
        if (fields.size() > 5) {
            tenant.batchRows = static_cast<std::uint64_t>(
                std::strtoull(fields[5].c_str(), &end, 10));
            if (*end != '\0') {
                error = "'" + item + "': bad batch rows '" +
                        fields[5] + "'";
                return false;
            }
        }
        if (fields.size() > 6) {
            error = "'" + item + "': too many fields";
            return false;
        }
        for (const TenantLoad &existing : out)
            if (existing.id == tenant.id) {
                error = "duplicate tenant id '" + tenant.id + "'";
                return false;
            }
        out.push_back(std::move(tenant));
    }
    if (out.empty()) {
        error = "no tenants in spec";
        return false;
    }
    return true;
}

// ---------------------------------------------------------------------
// --optimize: one-shot design-space benchmark (planned vs. brute).

/** Scrape one unlabeled counter off GET /metrics; -1 when absent. */
double
scrapeCounter(fosm::server::HttpClient &client,
              const std::string &name)
{
    fosm::server::ClientResponse response;
    if (!client.request("GET", "/metrics", "", response) ||
        response.status != 200)
        return -1.0;
    const std::string &text = response.body;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        if (eol > pos + name.size() &&
            text.compare(pos, name.size(), name) == 0 &&
            text[pos + name.size()] == ' ') {
            return std::strtod(text.c_str() + pos + name.size() + 1,
                               nullptr);
        }
        pos = eol + 1;
    }
    return -1.0;
}

/**
 * Digest of the frontier (machines + objective values) via the
 * canonical JSON form, so planned and brute runs over the same space
 * are comparable by string equality.
 */
std::string
frontierDigest(const json::Value &entries)
{
    Fnv1a h;
    h.update(entries.canonical());
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h.digest()));
    return buf;
}

/**
 * The benchmark space: fixed small width/windowSize/deltaI axes
 * crossed with a deltaD axis sized to reach the requested point
 * count, shifted by --seed so different seeds are different (cold)
 * spaces while the same seed is the identical space in both modes.
 */
opt::SpaceSpec
benchSpace(std::uint64_t targetPoints, std::uint64_t seed,
           std::string &constraintText)
{
    opt::SpaceSpec spec;
    spec.axes.push_back({"width", {2, 4, 6, 8}});
    spec.axes.push_back({"windowSize", {32, 64, 128}});
    spec.axes.push_back({"deltaI", {8, 16}});
    const std::uint64_t count = (targetPoints + 23) / 24;
    opt::AxisSpec deltaD;
    deltaD.name = "deltaD";
    deltaD.values.reserve(count);
    const std::uint64_t base = 100 + (seed % 50) * 10;
    for (std::uint64_t k = 0; k < count; ++k)
        deltaD.values.push_back(base + 10 * k);
    spec.axes.push_back(std::move(deltaD));
    // Excludes the widest machines at the smallest window: exercises
    // the constraint path in both modes without gutting the space.
    constraintText = "!(width == 8 && window == 32)";
    std::string error;
    if (!opt::Expr::parse(constraintText, opt::machineVariableNames(),
                          spec.constraint, &error))
        fosm_fatal("internal: bad bench constraint: ", error);
    return spec;
}

int
runOptimizeMode(const cli::Args &args)
{
    const std::string mode = args.get("optimize", "planned");
    if (mode != "planned" && mode != "brute") {
        std::cerr
            << "error: --optimize must be 'planned' or 'brute'\n";
        return 1;
    }
    const std::string host = args.get("host", "127.0.0.1");
    const std::uint16_t port =
        static_cast<std::uint16_t>(args.getInt("port", 8080));
    const std::uint64_t targetPoints = std::max<std::uint64_t>(
        24, args.getInt("space-points", 10240));
    const std::uint64_t seed = args.getInt("seed", 1);
    const int timeoutMs =
        static_cast<int>(args.getInt("timeout", 0));
    const int deadlineMs =
        static_cast<int>(args.getInt("deadline", 0));

    const std::vector<std::string> names = profileNames();
    const std::string workload = names[seed % names.size()];
    std::string constraintText;
    const opt::SpaceSpec spec =
        benchSpace(targetPoints, seed, constraintText);
    const std::uint64_t cardinality = spec.cardinality();

    fosm::server::HttpClient client(host, port);
    if (timeoutMs > 0)
        client.setTimeoutMs(timeoutMs);
    std::vector<std::pair<std::string, std::string>> extraHeaders;
    if (deadlineMs > 0)
        extraHeaders.emplace_back(fosm::server::deadlineHeader,
                                  std::to_string(deadlineMs));

    const double evalsBefore =
        scrapeCounter(client, "fosm_model_evaluations_total");
    const double fitsBefore =
        scrapeCounter(client, "fosm_opt_iw_fits_total");

    json::Value report = json::Value::object();
    report.set("mode", "optimize-" + mode);
    report.set("workload", workload);
    report.set("seed", seed);
    report.set("space_cardinality", cardinality);
    report.set("constraint", constraintText);

    std::uint64_t feasible = 0;
    std::uint64_t requests = 0;
    std::uint64_t characterizations = 0;
    double bestCpi = 0.0;
    bool complete = true;
    json::Value frontierEntries = json::Value::array();
    double elapsed = 0.0;

    if (mode == "planned") {
        // One request; the server plans, dedupes, and evaluates.
        json::Value body = json::Value::object();
        body.set("workload", workload);
        json::Value space = json::Value::object();
        for (const opt::AxisSpec &axis : spec.axes) {
            if (axis.name == "deltaD") {
                // The long axis travels as {from, to, step}: the
                // request stays small no matter the point count.
                json::Value range = json::Value::object();
                range.set("from", axis.values.front());
                range.set("to", axis.values.back());
                range.set("step", std::uint64_t{10});
                space.set(axis.name, std::move(range));
            } else {
                json::Value vals = json::Value::array();
                for (const std::uint64_t v : axis.values)
                    vals.push(v);
                space.set(axis.name, std::move(vals));
            }
        }
        body.set("space", std::move(space));
        body.set("constraint", constraintText);
        json::Value objectives = json::Value::array();
        objectives.push("cpi");
        objectives.push("windowSize");
        body.set("objectives", std::move(objectives));

        fosm::server::ClientResponse response;
        const auto t0 = Clock::now();
        const bool ok =
            client.request("POST", "/v1/optimize", body.dump(),
                           extraHeaders, response);
        const auto t1 = Clock::now();
        elapsed = std::chrono::duration<double>(t1 - t0).count();
        requests = 1;
        if (!ok ||
            (response.status != 200 && response.status != 206)) {
            std::cerr << "error: /v1/optimize failed"
                      << (ok ? " (HTTP " +
                                   std::to_string(response.status) +
                                   "): " + response.body
                             : " (transport)")
                      << "\n";
            return 2;
        }
        json::Value result;
        std::string error;
        if (!json::parse(response.body, result, &error)) {
            std::cerr << "error: bad /v1/optimize response: "
                      << error << "\n";
            return 2;
        }
        if (const json::Value *s = result.find("space"))
            if (const json::Value *f = s->find("feasible"))
                feasible =
                    static_cast<std::uint64_t>(f->asDouble(0.0));
        if (const json::Value *c = result.find("complete"))
            complete = c->asBool(true);
        if (const json::Value *p = result.find("planner")) {
            if (const json::Value *ch =
                    p->find("characterizations"))
                characterizations =
                    static_cast<std::uint64_t>(ch->asDouble(0.0));
            report.set("planner", *p);
        }
        if (const json::Value *fr = result.find("frontier")) {
            for (const json::Value &entry : fr->items()) {
                json::Value e = json::Value::object();
                if (const json::Value *m = entry.find("machine"))
                    e.set("machine", *m);
                if (const json::Value *o = entry.find("objectives"))
                    e.set("objectives", *o);
                frontierEntries.push(std::move(e));
            }
        }
        if (const json::Value *best = result.find("best"))
            if (const json::Value *cpi = best->find("cpi"))
                bestCpi = cpi->asDouble(0.0);
    } else {
        // Brute force: enumerate client-side, push everything
        // through /v1/batch, frontier client-side — the baseline
        // the planner is measured against.
        const opt::EnumeratedSpace space = opt::enumerate(spec);
        const std::size_t n = space.machines.size();
        feasible = n;
        std::vector<std::uint64_t> widths;
        for (const MachineConfig &m : space.machines)
            if (std::find(widths.begin(), widths.end(), m.width) ==
                widths.end())
                widths.push_back(m.width);

        std::vector<double> total(n, 0.0);
        constexpr std::size_t kBatchRows = 4096;
        const auto t0 = Clock::now();
        for (std::size_t chunk = 0; chunk < n; chunk += kBatchRows) {
            const std::size_t count =
                std::min(kBatchRows, n - chunk);
            json::Value body = json::Value::object();
            body.set("workload", workload);
            json::Value rows = json::Value::array();
            for (std::size_t i = chunk; i < chunk + count; ++i) {
                json::Value row = json::Value::object();
                for (const opt::AxisSpec &axis : spec.axes)
                    row.set(axis.name,
                            opt::machineMember(space.machines[i],
                                               axis.name));
                rows.push(std::move(row));
            }
            body.set("rows", std::move(rows));
            fosm::server::ClientResponse response;
            if (!client.request("POST", "/v1/batch", body.dump(),
                                extraHeaders, response) ||
                response.status != 200) {
                std::cerr << "error: /v1/batch chunk failed (HTTP "
                          << response.status << ")\n";
                return 2;
            }
            ++requests;
            json::Value result;
            std::string error;
            const json::Value *cpi = nullptr;
            const json::Value *tot = nullptr;
            if (!json::parse(response.body, result, &error) ||
                !(cpi = result.find("cpi")) ||
                !(tot = cpi->find("total")) || !tot->isArray() ||
                tot->items().size() != count) {
                std::cerr << "error: bad /v1/batch response\n";
                return 2;
            }
            for (std::size_t k = 0; k < count; ++k)
                total[chunk + k] = tot->items()[k].asDouble(0.0);
        }

        // Frontier over (cpi, windowSize), both minimized — the
        // same objective vector the planned mode requests.
        std::vector<double> scores(n * 2);
        for (std::size_t i = 0; i < n; ++i) {
            scores[i * 2 + 0] = total[i];
            scores[i * 2 + 1] =
                static_cast<double>(space.machines[i].windowSize);
        }
        const std::vector<std::size_t> frontier =
            opt::paretoFrontier(scores, 2);
        const auto t1 = Clock::now();
        elapsed = std::chrono::duration<double>(t1 - t0).count();
        // Every batch request re-fits one IW characterization per
        // width it contains; the planner's whole point is doing
        // each exactly once.
        characterizations = requests * widths.size();
        bestCpi = frontier.empty() ? 0.0 : total[frontier.front()];
        for (const std::size_t f : frontier) {
            bestCpi = std::min(bestCpi, total[f]);
            json::Value e = json::Value::object();
            e.set("machine",
                  fosm::server::machineToJson(space.machines[f]));
            json::Value vals = json::Value::array();
            vals.push(total[f]);
            vals.push(
                static_cast<double>(space.machines[f].windowSize));
            e.set("objectives", std::move(vals));
            frontierEntries.push(std::move(e));
        }
    }

    const double evalsAfter =
        scrapeCounter(client, "fosm_model_evaluations_total");
    const double fitsAfter =
        scrapeCounter(client, "fosm_opt_iw_fits_total");

    const std::uint64_t frontierPoints = frontierEntries.items().size();
    const std::string digest = frontierDigest(frontierEntries);
    const double pointsPerS =
        elapsed > 0.0 ? static_cast<double>(feasible) / elapsed : 0.0;
    report.set("feasible", feasible);
    report.set("requests", requests);
    report.set("elapsed_s", elapsed);
    report.set("points_per_s", pointsPerS);
    report.set("frontier_points", frontierPoints);
    report.set("frontier_points_per_s",
               elapsed > 0.0
                   ? static_cast<double>(frontierPoints) / elapsed
                   : 0.0);
    report.set("frontier_hash", digest);
    report.set("best_cpi", bestCpi);
    report.set("characterizations", characterizations);
    report.set("complete", complete);
    if (evalsBefore >= 0.0 && evalsAfter >= 0.0)
        report.set("model_evaluations", evalsAfter - evalsBefore);
    if (fitsBefore >= 0.0 && fitsAfter >= 0.0)
        report.set("iw_fits", fitsAfter - fitsBefore);

    std::cout << "fosm-loadgen --optimize " << mode << ": "
              << feasible << "/" << cardinality
              << " feasible points, " << frontierPoints
              << " on the frontier in "
              << json::formatDouble(elapsed) << " s ("
              << json::formatDouble(pointsPerS) << " points/s, "
              << requests << " requests, " << characterizations
              << " characterizations)\n"
              << "frontier hash " << digest << ", best cpi "
              << json::formatDouble(bestCpi)
              << (complete ? "" : " [PARTIAL: deadline shed]")
              << "\n";

    if (args.has("out")) {
        std::ofstream out(args.get("out", ""));
        out << report.dump() << "\n";
        if (!out) {
            std::cerr << "error: cannot write "
                      << args.get("out", "") << "\n";
            return 1;
        }
    }
    return complete ? 0 : 2;
}

} // namespace

int
main(int argc, char **argv)
{
    const cli::Args args(
        argc, argv,
        {"host", "port", "targets", "connections", "duration",
         "warmup", "endpoint", "distinct", "rate", "timeout",
         "deadline", "batch", "tenant-spec", "optimize",
         "space-points", "seed", "drill", "marks", "out"},
        "usage: fosm-loadgen [flags]\n"
        "  --host 127.0.0.1    server address\n"
        "  --port 8080         server port\n"
        "  --targets a:p,b:p   endpoint list; connections stripe\n"
        "                      across it round-robin (overrides\n"
        "                      --host/--port)\n"
        "  --connections 4     concurrent connections\n"
        "  --duration 10       measured seconds\n"
        "  --warmup 1          unmeasured leading seconds\n"
        "  --endpoint /v1/cpi  target endpoint\n"
        "  --distinct 12       distinct request bodies "
        "(0 = all unique)\n"
        "  --rate N            open loop: N scheduled requests/s "
        "across\n"
        "                      all connections (0 = closed loop)\n"
        "  --timeout MS        client socket timeout; a request that\n"
        "                      trips it counts as a timeout, not an\n"
        "                      error (0 = wait forever)\n"
        "  --deadline MS       send X-Fosm-Deadline-Ms so servers\n"
        "                      shed work we stopped waiting for;\n"
        "                      504s count separately (0 = none)\n"
        "  --batch N           POST /v1/batch with N design points\n"
        "                      per request; throughput is reported\n"
        "                      per design point as well as per\n"
        "                      request (0 = single-request mode)\n"
        "  --tenant-spec id:token[:weight[:rps[:endpoint[:batch]]]]"
        ",...\n"
        "                      multi-tenant mode: connections stripe\n"
        "                      across the tenant list and each\n"
        "                      request carries that tenant's bearer\n"
        "                      token; rps > 0 paces the tenant\n"
        "                      open-loop (0 = closed loop); endpoint\n"
        "                      and batch override the global flags\n"
        "                      per tenant. Adds a per-tenant\n"
        "                      breakdown to the report; 401/429 are\n"
        "                      counted per status, never as errors\n"
        "  --optimize MODE     one-shot design-space benchmark over\n"
        "                      a --seed-randomized space instead of\n"
        "                      a load loop: 'planned' = one POST\n"
        "                      /v1/optimize; 'brute' = client-side\n"
        "                      enumeration via /v1/batch + local\n"
        "                      Pareto frontier. The report's\n"
        "                      frontier_hash must match across modes\n"
        "  --drill kill-rejoin\n"
        "                      timestamp every sample and report\n"
        "                      per-phase quantiles (pre-kill /\n"
        "                      post-failover / post-rejoin) split at\n"
        "                      the --marks offsets; the kill and\n"
        "                      rejoin themselves are orchestrated\n"
        "                      outside (scripts/chaos_smoke.sh)\n"
        "  --marks T1,T2       drill phase boundaries, seconds from\n"
        "                      measure start (default: thirds of\n"
        "                      --duration)\n"
        "  --space-points N    target design-space cardinality for\n"
        "                      --optimize (default 10240)\n"
        "  --seed N            space randomization seed for\n"
        "                      --optimize (same seed = same space)\n"
        "  --out report.json   write the report as JSON\n");

    if (args.has("optimize"))
        return runOptimizeMode(args);

    const std::string host = args.get("host", "127.0.0.1");
    const std::uint16_t port =
        static_cast<std::uint16_t>(args.getInt("port", 8080));
    std::uint64_t connections =
        std::max<std::uint64_t>(1, args.getInt("connections", 4));
    const double duration =
        std::max(0.1, args.getDouble("duration", 10.0));
    const double warmup = args.getDouble("warmup", 1.0);
    const std::uint64_t batchRows = args.getInt("batch", 0);
    const std::string endpoint = args.get(
        "endpoint", batchRows > 0 ? "/v1/batch" : "/v1/cpi");
    const std::uint64_t distinct = args.getInt("distinct", 12);
    const double rate = args.getDouble("rate", 0.0);
    const int timeoutMs =
        static_cast<int>(args.getInt("timeout", 0));
    const int deadlineMs =
        static_cast<int>(args.getInt("deadline", 0));

    const std::string drill = args.get("drill", "");
    if (!drill.empty() && drill != "kill-rejoin") {
        std::cerr << "error: --drill must be 'kill-rejoin'\n";
        return 1;
    }
    std::vector<double> marks;
    if (!drill.empty()) {
        const std::string marksText = args.get(
            "marks", json::formatDouble(duration / 3.0) + "," +
                         json::formatDouble(2.0 * duration / 3.0));
        const char *p = marksText.c_str();
        while (*p != '\0') {
            char *end = nullptr;
            marks.push_back(std::strtod(p, &end));
            if (end == p)
                break;
            p = *end == ',' ? end + 1 : end;
        }
        if (marks.size() != 2 || marks[0] <= 0.0 ||
            marks[1] <= marks[0] || marks[1] >= duration) {
            std::cerr << "error: --marks needs two ascending "
                         "offsets inside --duration\n";
            return 1;
        }
    }

    std::vector<cluster::BackendAddress> targets;
    if (args.has("targets")) {
        std::string error;
        if (!cluster::parseBackendList(args.get("targets", ""),
                                       targets, error)) {
            std::cerr << "error: --targets: " << error << "\n";
            return 1;
        }
    } else {
        targets.push_back({host, port, host + ":" +
                                           std::to_string(port)});
    }

    std::vector<TenantLoad> tenants;
    if (args.has("tenant-spec")) {
        std::string error;
        if (!parseTenantSpec(args.get("tenant-spec", ""), tenants,
                             error)) {
            std::cerr << "error: --tenant-spec: " << error << "\n";
            return 1;
        }
        if (rate > 0.0) {
            std::cerr << "error: --rate and --tenant-spec are "
                         "exclusive; pace per tenant via the spec's "
                         "rps field\n";
            return 1;
        }
        for (TenantLoad &tenant : tenants) {
            if (tenant.batchRows == 0)
                tenant.batchRows = batchRows;
            if (tenant.endpoint.empty())
                tenant.endpoint =
                    tenant.batchRows > 0 ? "/v1/batch" : endpoint;
            tenant.bodies = buildBodies(tenant.endpoint, distinct,
                                        tenant.batchRows);
        }
        if (connections < tenants.size()) {
            std::cerr << "note: raising --connections to "
                      << tenants.size()
                      << " so every tenant gets one\n";
            connections = tenants.size();
        }
    }
    const bool tenantMode = !tenants.empty();

    const std::vector<std::string> bodies =
        buildBodies(endpoint, distinct, batchRows);

    const auto start = Clock::now();
    const auto measureFrom =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(warmup));
    const auto deadline =
        measureFrom + std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double>(duration));

    std::vector<WorkerResult> results(connections);
    std::vector<std::thread> threads;
    threads.reserve(connections);
    std::atomic<std::uint64_t> uniqueSeq{0};
    /** Open loop: workers claim arrival slots off one timetable. */
    std::atomic<std::uint64_t> arrivalSeq{0};
    /** Tenant mode: one timetable per paced tenant (zeroed). */
    std::unique_ptr<std::atomic<std::uint64_t>[]> tenantArrivals(
        tenantMode
            ? new std::atomic<std::uint64_t>[tenants.size()]()
            : nullptr);

    for (std::uint64_t c = 0; c < connections; ++c) {
        threads.emplace_back([&, c] {
            WorkerResult &r = results[c];
            const cluster::BackendAddress &target =
                targets[c % targets.size()];
            // This connection's identity and load shape: its own
            // tenant in tenant mode, the global flags otherwise.
            const TenantLoad *tenant =
                tenantMode ? &tenants[c % tenants.size()] : nullptr;
            const std::string &workerEndpoint =
                tenant ? tenant->endpoint : endpoint;
            const std::uint64_t workerBatch =
                tenant ? tenant->batchRows : batchRows;
            const std::vector<std::string> &workerBodies =
                tenant ? tenant->bodies : bodies;
            const double workerRate = tenant ? tenant->rps : rate;
            std::atomic<std::uint64_t> &workerArrivals =
                tenant ? tenantArrivals[c % tenants.size()]
                       : arrivalSeq;
            fosm::server::HttpClient client(target.host,
                                            target.port);
            if (timeoutMs > 0)
                client.setTimeoutMs(timeoutMs);
            std::vector<std::pair<std::string, std::string>>
                extraHeaders;
            if (deadlineMs > 0)
                extraHeaders.emplace_back(
                    fosm::server::deadlineHeader,
                    std::to_string(deadlineMs));
            if (tenant)
                extraHeaders.emplace_back(
                    "Authorization", "Bearer " + tenant->token);
            fosm::server::ClientResponse response;
            std::uint64_t i = c; // stagger the rotation per thread
            while (true) {
                Clock::time_point scheduled{};
                if (workerRate > 0.0) {
                    // Claim the next slot on the timetable (global,
                    // or this tenant's own in tenant mode). If the
                    // server is slow the slot's time is already past
                    // and the sleep is a no-op — the lateness is the
                    // queueing delay reported below.
                    const std::uint64_t seq =
                        workerArrivals.fetch_add(1);
                    scheduled =
                        start +
                        std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(
                                static_cast<double>(seq) /
                                workerRate));
                    if (scheduled >= deadline)
                        break;
                    std::this_thread::sleep_until(scheduled);
                } else if (Clock::now() >= deadline) {
                    break;
                }
                std::string body =
                    workerBodies[i % workerBodies.size()];
                if (distinct == 0) {
                    // Unique design point per request: defeat the
                    // cache by bumping a parameter monotonically.
                    // Each endpoint accepts different members, so
                    // vary one it actually validates.
                    json::Value v;
                    std::string err;
                    json::parse(body, v, &err);
                    const std::uint64_t seq = uniqueSeq.fetch_add(
                        workerBatch > 0 ? workerBatch : 1);
                    if (workerBatch > 0) {
                        // Fresh rows every request: batchRows
                        // never-seen design points per batch. The
                        // deltaI second axis keeps points unique
                        // past the deltaD wrap (batch rates clear
                        // 900k points well inside a run).
                        json::Value rows = json::Value::array();
                        for (std::uint64_t j = 0; j < workerBatch;
                             ++j) {
                            json::Value row = json::Value::object();
                            row.set("deltaD",
                                    std::uint64_t{
                                        100 +
                                        (seq + j) % 900000});
                            row.set("deltaI",
                                    std::uint64_t{
                                        8 + (seq + j) / 900000});
                            rows.push(std::move(row));
                        }
                        v.set("rows", std::move(rows));
                    } else if (workerEndpoint == "/v1/trends") {
                        json::Value config = json::Value::object();
                        config.set(
                            "avgLatency",
                            1.0 +
                                static_cast<double>(seq % 900000) *
                                    1e-6);
                        v.set("config", std::move(config));
                    } else if (workerEndpoint == "/v1/iw-curve") {
                        json::Value windows = json::Value::array();
                        windows.push(std::uint64_t{4 + seq % 250});
                        v.set("windows", std::move(windows));
                    } else {
                        json::Value machine = json::Value::object();
                        machine.set("deltaD",
                                    std::uint64_t{100 + seq % 900000});
                        v.set("machine", std::move(machine));
                    }
                    body = v.dump();
                }
                ++i;
                const auto t0 = Clock::now();
                const bool ok =
                    client.request("POST", workerEndpoint, body,
                                   extraHeaders, response);
                const auto t1 = Clock::now();
                if (t1 < measureFrom) {
                    ++r.warmup;
                    continue;
                }
                if (workerRate > 0.0) {
                    r.queueDelays.push_back(std::max(
                        0.0, std::chrono::duration<double>(
                                 t0 - scheduled)
                                 .count()));
                }
                const double at =
                    std::chrono::duration<double>(t1 - measureFrom)
                        .count();
                if (!ok) {
                    // A tripped --timeout is the client giving up,
                    // not the server failing — report it apart from
                    // transport errors.
                    if (client.timedOut())
                        ++r.timeouts;
                    else
                        ++r.errors;
                    if (!drill.empty())
                        r.failureTimes.push_back(at);
                    continue;
                }
                if (response.status == 200) {
                    ++r.ok;
                    const double latency =
                        std::chrono::duration<double>(t1 - t0)
                            .count();
                    r.latencies.push_back(latency);
                    if (!drill.empty())
                        r.samples.emplace_back(at, latency);
                } else {
                    if (response.status == 503)
                        ++r.rejected;
                    else if (response.status == 504)
                        ++r.deadline;
                    else if (response.status == 401)
                        ++r.unauthorized;
                    else if (response.status == 429)
                        ++r.ratelimited;
                    else
                        ++r.errors;
                    if (!drill.empty())
                        r.failureTimes.push_back(at);
                }
            }
        });
    }
    for (std::thread &t : threads)
        t.join();

    // Aggregate.
    WorkerResult total;
    for (WorkerResult &r : results) {
        total.ok += r.ok;
        total.rejected += r.rejected;
        total.deadline += r.deadline;
        total.unauthorized += r.unauthorized;
        total.ratelimited += r.ratelimited;
        total.timeouts += r.timeouts;
        total.errors += r.errors;
        total.warmup += r.warmup;
        total.latencies.insert(total.latencies.end(),
                               r.latencies.begin(),
                               r.latencies.end());
        total.queueDelays.insert(total.queueDelays.end(),
                                 r.queueDelays.begin(),
                                 r.queueDelays.end());
    }
    std::sort(total.latencies.begin(), total.latencies.end());
    std::sort(total.queueDelays.begin(), total.queueDelays.end());
    const auto pct = [&](double q) {
        return percentile(total.latencies, q);
    };
    double sum = 0.0;
    for (const double l : total.latencies)
        sum += l;
    const double mean =
        total.latencies.empty()
            ? 0.0
            : sum / static_cast<double>(total.latencies.size());
    const double throughput =
        static_cast<double>(total.ok) / duration;

    json::Value report = json::Value::object();
    report.set("endpoint", endpoint);
    report.set("mode", tenantMode
                           ? "multi-tenant"
                           : rate > 0.0 ? "open-loop"
                                        : "closed-loop");
    if (rate > 0.0)
        report.set("offered_rate_rps", rate);
    report.set("connections", connections);
    report.set("duration_s", duration);
    report.set("distinct_bodies",
               distinct == 0 ? json::Value("unique")
                             : json::Value(distinct));
    report.set("requests_ok", total.ok);
    report.set("requests_503", total.rejected);
    report.set("requests_504", total.deadline);
    report.set("requests_401", total.unauthorized);
    report.set("requests_429", total.ratelimited);
    report.set("requests_timeout", total.timeouts);
    report.set("requests_error", total.errors);
    report.set("throughput_rps", throughput);
    if (batchRows > 0) {
        report.set("batch_rows", batchRows);
        report.set("design_points_per_s",
                   throughput * static_cast<double>(batchRows));
    }
    json::Value lat = json::Value::object();
    lat.set("mean_us", mean * 1e6);
    lat.set("p50_us", pct(0.50) * 1e6);
    lat.set("p90_us", pct(0.90) * 1e6);
    lat.set("p99_us", pct(0.99) * 1e6);
    lat.set("max_us", total.latencies.empty()
                          ? 0.0
                          : total.latencies.back() * 1e6);
    report.set("latency", std::move(lat));

    // Drill phases: bucket the timestamped samples at the --marks
    // boundaries. The interesting comparison is post-failover p99
    // against pre-kill p99 — warm failover keeps them in the same
    // envelope because the successor already holds the shard's
    // replicated entries.
    std::string drillLines;
    if (!drill.empty()) {
        static const char *phaseNames[3] = {
            "pre-kill", "post-failover", "post-rejoin"};
        json::Value phases = json::Value::array();
        for (int ph = 0; ph < 3; ++ph) {
            const double from = ph == 0 ? 0.0 : marks[ph - 1];
            const double to = ph == 2 ? duration : marks[ph];
            std::vector<double> lats;
            std::uint64_t failures = 0;
            for (const WorkerResult &r : results) {
                for (const auto &[when, latency] : r.samples)
                    if (when >= from && when < to)
                        lats.push_back(latency);
                for (const double when : r.failureTimes)
                    if (when >= from && when < to)
                        ++failures;
            }
            std::sort(lats.begin(), lats.end());
            json::Value row = json::Value::object();
            row.set("name", phaseNames[ph]);
            row.set("from_s", from);
            row.set("to_s", to);
            row.set("requests_ok",
                    std::uint64_t{lats.size()});
            row.set("failures", failures);
            row.set("p50_us", percentile(lats, 0.50) * 1e6);
            row.set("p99_us", percentile(lats, 0.99) * 1e6);
            row.set("max_us",
                    lats.empty() ? 0.0 : lats.back() * 1e6);
            phases.push(std::move(row));
            drillLines +=
                std::string("  ") + phaseNames[ph] + " [" +
                json::formatDouble(from) + "," +
                json::formatDouble(to) + ")s: " +
                std::to_string(lats.size()) + " ok, " +
                std::to_string(failures) + " failures, p50 " +
                json::formatDouble(percentile(lats, 0.50) * 1e6) +
                " us, p99 " +
                json::formatDouble(percentile(lats, 0.99) * 1e6) +
                " us\n";
        }
        json::Value drillDoc = json::Value::object();
        drillDoc.set("mode", drill);
        json::Value marksArr = json::Value::array();
        for (const double m : marks)
            marksArr.push(m);
        drillDoc.set("marks_s", std::move(marksArr));
        drillDoc.set("phases", std::move(phases));
        report.set("drill", std::move(drillDoc));
    }

    // Per-target breakdown: a dead or slow replica shows up here
    // instead of being smeared into the aggregate percentiles.
    const bool breakdown = args.has("targets");
    std::string targetLines;
    if (breakdown) {
        json::Value perTarget = json::Value::array();
        for (std::size_t t = 0; t < targets.size(); ++t) {
            WorkerResult tr;
            for (std::uint64_t c = t; c < connections;
                 c += targets.size()) {
                tr.ok += results[c].ok;
                tr.rejected += results[c].rejected;
                tr.deadline += results[c].deadline;
                tr.timeouts += results[c].timeouts;
                tr.errors += results[c].errors;
                tr.latencies.insert(tr.latencies.end(),
                                    results[c].latencies.begin(),
                                    results[c].latencies.end());
            }
            std::sort(tr.latencies.begin(), tr.latencies.end());
            double tsum = 0.0;
            for (const double l : tr.latencies)
                tsum += l;
            json::Value row = json::Value::object();
            row.set("target", targets[t].label);
            row.set("requests_ok", tr.ok);
            row.set("requests_503", tr.rejected);
            row.set("requests_504", tr.deadline);
            row.set("requests_timeout", tr.timeouts);
            row.set("requests_error", tr.errors);
            row.set("throughput_rps",
                    static_cast<double>(tr.ok) / duration);
            row.set("mean_us",
                    tr.latencies.empty()
                        ? 0.0
                        : tsum /
                              static_cast<double>(
                                  tr.latencies.size()) *
                              1e6);
            row.set("p50_us",
                    percentile(tr.latencies, 0.50) * 1e6);
            row.set("p99_us",
                    percentile(tr.latencies, 0.99) * 1e6);
            perTarget.push(std::move(row));
            targetLines +=
                "  " + targets[t].label + ": " +
                std::to_string(tr.ok) + " ok, " +
                std::to_string(tr.deadline) + " x 504, " +
                std::to_string(tr.timeouts) + " timeouts, " +
                std::to_string(tr.errors) + " errors, " +
                json::formatDouble(
                    static_cast<double>(tr.ok) / duration) +
                " req/s, p50 " +
                json::formatDouble(
                    percentile(tr.latencies, 0.50) * 1e6) +
                " us, p99 " +
                json::formatDouble(
                    percentile(tr.latencies, 0.99) * 1e6) +
                " us\n";
        }
        report.set("targets", std::move(perTarget));
    }

    // Per-tenant breakdown: measured throughput share next to the
    // declared weight is the fairness evidence — under a saturating
    // noisy neighbor the DRR drain should hold every tenant near
    // weight / sum(weights).
    std::string tenantLines;
    if (tenantMode) {
        json::Value perTenant = json::Value::array();
        for (std::size_t t = 0; t < tenants.size(); ++t) {
            WorkerResult tr;
            for (std::uint64_t c = t; c < connections;
                 c += tenants.size()) {
                tr.ok += results[c].ok;
                tr.rejected += results[c].rejected;
                tr.deadline += results[c].deadline;
                tr.unauthorized += results[c].unauthorized;
                tr.ratelimited += results[c].ratelimited;
                tr.timeouts += results[c].timeouts;
                tr.errors += results[c].errors;
                tr.latencies.insert(tr.latencies.end(),
                                    results[c].latencies.begin(),
                                    results[c].latencies.end());
            }
            std::sort(tr.latencies.begin(), tr.latencies.end());
            const double tenantThroughput =
                static_cast<double>(tr.ok) / duration;
            const double okShare =
                total.ok > 0 ? static_cast<double>(tr.ok) /
                                   static_cast<double>(total.ok)
                             : 0.0;
            json::Value row = json::Value::object();
            row.set("tenant", tenants[t].id);
            row.set("weight", tenants[t].weight);
            row.set("endpoint", tenants[t].endpoint);
            if (tenants[t].rps > 0.0)
                row.set("offered_rate_rps", tenants[t].rps);
            if (tenants[t].batchRows > 0)
                row.set("batch_rows", tenants[t].batchRows);
            row.set("requests_ok", tr.ok);
            row.set("requests_401", tr.unauthorized);
            row.set("requests_429", tr.ratelimited);
            row.set("requests_503", tr.rejected);
            row.set("requests_504", tr.deadline);
            row.set("requests_timeout", tr.timeouts);
            row.set("requests_error", tr.errors);
            row.set("throughput_rps", tenantThroughput);
            if (tenants[t].batchRows > 0)
                row.set("design_points_per_s",
                        tenantThroughput *
                            static_cast<double>(
                                tenants[t].batchRows));
            row.set("ok_share", okShare);
            row.set("p50_us",
                    percentile(tr.latencies, 0.50) * 1e6);
            row.set("p99_us",
                    percentile(tr.latencies, 0.99) * 1e6);
            perTenant.push(std::move(row));
            tenantLines +=
                "  " + tenants[t].id + " (w=" +
                json::formatDouble(tenants[t].weight) + "): " +
                std::to_string(tr.ok) + " ok, " +
                std::to_string(tr.ratelimited) + " x 429, " +
                std::to_string(tr.unauthorized) + " x 401, " +
                std::to_string(tr.rejected) + " x 503, " +
                json::formatDouble(tenantThroughput) +
                " req/s (share " + json::formatDouble(okShare) +
                "), p50 " +
                json::formatDouble(
                    percentile(tr.latencies, 0.50) * 1e6) +
                " us, p99 " +
                json::formatDouble(
                    percentile(tr.latencies, 0.99) * 1e6) +
                " us\n";
        }
        report.set("tenants", std::move(perTenant));
    }
    if (rate > 0.0) {
        // Service time above; time spent waiting for a connection
        // behind the offered schedule is its own distribution.
        json::Value qd = json::Value::object();
        double qsum = 0.0;
        for (const double d : total.queueDelays)
            qsum += d;
        qd.set("mean_us",
               total.queueDelays.empty()
                   ? 0.0
                   : qsum /
                         static_cast<double>(
                             total.queueDelays.size()) *
                         1e6);
        qd.set("p50_us", percentile(total.queueDelays, 0.50) * 1e6);
        qd.set("p90_us", percentile(total.queueDelays, 0.90) * 1e6);
        qd.set("p99_us", percentile(total.queueDelays, 0.99) * 1e6);
        qd.set("max_us", total.queueDelays.empty()
                             ? 0.0
                             : total.queueDelays.back() * 1e6);
        report.set("queue_delay", std::move(qd));
    }

    std::cout << "fosm-loadgen: " << total.ok << " ok, "
              << total.rejected << " x 503, " << total.deadline
              << " x 504, " << total.unauthorized << " x 401, "
              << total.ratelimited << " x 429, " << total.timeouts
              << " timeouts, " << total.errors << " errors in "
              << duration << " s ("
              << json::formatDouble(throughput) << " req/s";
    if (rate > 0.0)
        std::cout << ", offered " << json::formatDouble(rate);
    if (batchRows > 0)
        std::cout << "; " << batchRows << " rows/batch = "
                  << json::formatDouble(
                         throughput *
                         static_cast<double>(batchRows))
                  << " design points/s";
    std::cout << ")\n"
              << "service us: mean "
              << json::formatDouble(mean * 1e6) << ", p50 "
              << json::formatDouble(pct(0.50) * 1e6) << ", p90 "
              << json::formatDouble(pct(0.90) * 1e6) << ", p99 "
              << json::formatDouble(pct(0.99) * 1e6) << "\n";
    if (!drill.empty())
        std::cout << "drill phases:\n" << drillLines;
    if (breakdown)
        std::cout << "per-target:\n" << targetLines;
    if (tenantMode)
        std::cout << "per-tenant:\n" << tenantLines;
    if (rate > 0.0) {
        std::cout << "queue-delay us: p50 "
                  << json::formatDouble(
                         percentile(total.queueDelays, 0.50) * 1e6)
                  << ", p90 "
                  << json::formatDouble(
                         percentile(total.queueDelays, 0.90) * 1e6)
                  << ", p99 "
                  << json::formatDouble(
                         percentile(total.queueDelays, 0.99) * 1e6)
                  << "\n";
    }

    if (args.has("out")) {
        std::ofstream out(args.get("out", ""));
        out << report.dump() << "\n";
        if (!out) {
            std::cerr << "error: cannot write "
                      << args.get("out", "") << "\n";
            return 1;
        }
    }
    return total.errors == 0 ? 0 : 2;
}
