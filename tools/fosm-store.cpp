/**
 * @file
 * fosm-store: offline inspection and maintenance of a persistent
 * result store directory (see docs/STORE.md).
 *
 *   fosm-store stats      <dir>          summary counters + per-
 *                                        segment LSN spans as JSON
 *   fosm-store verify     <dir>          check every segment's CRCs
 *   fosm-store scrub      <dir> [--mbps N] [--dry-run]
 *                                        one full paced scrub pass;
 *                                        quarantines corrupt records
 *   fosm-store inspect    <dir> [--prefix P] [--limit N] [--values]
 *                                        list live records
 *   fosm-store watermarks <dir>          replication watermarks and
 *                                        store epoch (docs/
 *                                        REPLICATION.md)
 *   fosm-store compact    <dir>          rewrite live data, drop dead
 *
 * `verify` reads the files as-is and never modifies them (safe on a
 * store another process has open); the other subcommands open the
 * store, which runs normal recovery — torn tails are truncated, and
 * leftover compaction temp files removed — so don't point them at a
 * directory a live server is using.
 */

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "cli.hh"
#include "server/json.hh"
#include "store/scrubber.hh"
#include "store/store.hh"

namespace {

using namespace fosm;

const char usage[] =
    "usage: fosm-store "
    "<stats|verify|scrub|inspect|watermarks|compact> <dir> [flags]\n"
    "  stats   <dir>   print summary counters and per-segment LSN\n"
    "                  spans as JSON\n"
    "  verify  <dir>   check segment integrity (read-only); exits 0\n"
    "                  clean, 1 on structural damage (bad header,\n"
    "                  garbage framing), 2 on record-level CRC\n"
    "                  failures only\n"
    "  scrub   <dir>   one full paced scrub pass over the live\n"
    "                  index; corrupt records are quarantined\n"
    "                  (exit 2) unless --dry-run\n"
    "    --mbps N      scan-rate ceiling (default 64)\n"
    "    --dry-run     report corruption without quarantining\n"
    "  inspect <dir>   list live records\n"
    "    --prefix P    only keys starting with P (e.g. r/ or c/)\n"
    "    --limit N     stop after N records (default 100, 0 = all)\n"
    "    --values      print values too (escaped)\n"
    "  watermarks <dir>\n"
    "                  print the store's replication epoch and its\n"
    "                  per-peer anti-entropy watermarks as JSON\n"
    "  compact <dir>   rewrite live records, delete dead space\n";

/** Keys/values may hold any bytes; escape for one-line printing. */
std::string
printable(const std::string &s, std::size_t max)
{
    std::string out;
    for (const char c : s) {
        if (out.size() >= max) {
            out += "...";
            break;
        }
        if (c == '\\')
            out += "\\\\";
        else if (c == '\n')
            out += "\\n";
        else if (std::isprint(static_cast<unsigned char>(c)))
            out += c;
        else {
            char buf[5];
            std::snprintf(buf, sizeof(buf), "\\x%02x",
                          static_cast<unsigned char>(c));
            out += buf;
        }
    }
    return out;
}

json::Value
statsToJson(const store::PersistentStore &st)
{
    const store::StoreStats s = st.stats();
    json::Value v = json::Value::object();
    v.set("segments", s.segments);
    v.set("liveRecords", s.liveRecords);
    v.set("deadRecords", s.deadRecords);
    v.set("liveBytes", s.liveBytes);
    v.set("deadBytes", s.deadBytes);
    v.set("totalBytes", s.totalBytes);
    v.set("compactions", s.compactions);
    v.set("truncatedTails", s.truncatedTails);
    v.set("maxLsn", s.maxLsn);
    // Per-segment LSN spans: what the anti-entropy fast path
    // compares a replica's watermark against (docs/REPLICATION.md).
    json::Value segs = json::Value::array();
    for (const store::SegmentLsnInfo &info : st.segmentLsns()) {
        json::Value seg = json::Value::object();
        seg.set("id", info.id);
        seg.set("records", info.records);
        seg.set("liveRecords", info.liveRecords);
        seg.set("bytes", info.bytes);
        seg.set("minLsn", info.minLsn);
        seg.set("maxLsn", info.maxLsn);
        seg.set("sealed", info.sealed);
        segs.push(seg);
    }
    v.set("segmentLsns", segs);
    return v;
}

/**
 * The replication bookkeeping a store carries: its epoch
 * (m/replStoreId, pinned at first replicated start) and one
 * "w/<peer>" = "<epoch>:<lsn>" watermark per peer it has pulled
 * from. Useful after a crash to see how far catch-up had advanced.
 */
json::Value
watermarksToJson(store::PersistentStore &st)
{
    json::Value v = json::Value::object();
    std::string epoch;
    if (st.get("m/replStoreId", epoch))
        v.set("storeId", epoch);
    json::Value marks = json::Value::object();
    st.forEachLive([&](const std::string &key,
                       const std::string &value, std::uint64_t) {
        if (key.rfind("w/", 0) != 0)
            return;
        const std::string peer = key.substr(2);
        const auto colon = value.find(':');
        json::Value mark = json::Value::object();
        if (colon != std::string::npos) {
            mark.set("storeId", value.substr(0, colon));
            mark.set("lsn",
                     static_cast<std::uint64_t>(std::strtoull(
                         value.c_str() + colon + 1, nullptr, 10)));
        } else {
            mark.set("raw", value);
        }
        marks.set(peer, mark);
    });
    v.set("watermarks", marks);
    v.set("maxLsn", st.stats().maxLsn);
    return v;
}

store::StoreConfig
openConfig(const std::string &dir)
{
    store::StoreConfig config;
    config.dir = dir;
    // Maintenance runs: no background thread, compact explicitly.
    config.backgroundCompaction = false;
    return config;
}

} // namespace

int
main(int argc, char **argv)
{
    const cli::Args args(argc, argv,
                         {"prefix", "limit", "values", "mbps",
                          "dry-run"},
                         usage);
    if (args.positional().size() != 2) {
        std::cerr << usage;
        return 1;
    }
    const std::string &command = args.positional()[0];
    const std::string &dir = args.positional()[1];

    if (command == "verify") {
        const std::vector<store::SegmentReport> reports =
            store::verifyDir(dir);
        if (reports.empty()) {
            std::cout << "no segment files in " << dir << "\n";
            return 0;
        }
        bool anyStructural = false, anyCrcFailure = false;
        for (const store::SegmentReport &r : reports) {
            std::cout << r.file << ": " << r.records << " records, "
                      << r.bytes << "/" << r.fileBytes
                      << " bytes intact";
            if (r.intact) {
                std::cout << ", ok\n";
                continue;
            }
            if (r.crcFailures > 0) {
                std::cout << ", " << r.crcFailures
                          << " CRC failure(s)";
                anyCrcFailure = true;
            }
            if (r.structural) {
                std::cout << ", STRUCTURAL: " << r.error;
                anyStructural = true;
            }
            std::cout << "\n";
            for (const std::string &key : r.corruptKeys)
                std::cout << "  corrupt key: "
                          << printable(key, 120) << "\n";
        }
        // Structural damage (exit 1) needs recovery/compaction;
        // record-level failures alone (exit 2) are what the online
        // scrubber quarantines and repairs from the ring.
        if (anyStructural)
            return 1;
        return anyCrcFailure ? 2 : 0;
    }

    if (command != "stats" && command != "scrub" &&
        command != "inspect" && command != "watermarks" &&
        command != "compact") {
        std::cerr << "unknown command '" << command << "'\n"
                  << usage;
        return 1;
    }

    try {
        // shared_ptr because the scrubber holds one; the other
        // subcommands just use the reference.
        const auto stPtr = std::make_shared<store::PersistentStore>(
            openConfig(dir));
        store::PersistentStore &st = *stPtr;

        if (command == "stats") {
            std::cout << statsToJson(st).dump() << "\n";
        } else if (command == "watermarks") {
            std::cout << watermarksToJson(st).dump() << "\n";
        } else if (command == "inspect") {
            const std::string prefix = args.get("prefix", "");
            const std::uint64_t limit = args.getInt("limit", 100);
            const bool values = args.has("values");
            std::uint64_t shown = 0, matched = 0;
            st.forEachLive([&](const std::string &key,
                               const std::string &value,
                               std::uint64_t lsn) {
                if (key.rfind(prefix, 0) != 0)
                    return;
                ++matched;
                if (limit != 0 && shown >= limit)
                    return;
                ++shown;
                std::cout << "lsn=" << lsn << " bytes="
                          << value.size() << " key="
                          << printable(key, 120);
                if (values)
                    std::cout << " value=" << printable(value, 200);
                std::cout << "\n";
            });
            if (shown < matched) {
                std::cout << "(" << (matched - shown)
                          << " more; raise --limit)\n";
            }
        } else if (command == "scrub") {
            const bool dryRun = args.has("dry-run");
            store::ScrubConfig sc;
            sc.mbps = static_cast<double>(args.getInt("mbps", 64));
            sc.quarantine = !dryRun;
            store::Scrubber scrubber(stPtr, sc);
            std::vector<std::string> corrupt;
            scrubber.setCorruptHandler(
                [&](const std::string &key, std::uint64_t) {
                    corrupt.push_back(key);
                });
            const store::Scrubber::PassResult pass =
                scrubber.scrubOnce(true);
            std::cout << "scrubbed " << pass.segments
                      << " segment(s), " << pass.records
                      << " record(s), " << pass.bytes << " bytes: "
                      << pass.corrupt << " corrupt, "
                      << pass.quarantined << " quarantined"
                      << (dryRun ? " (dry run)" : "") << "\n";
            for (const std::string &key : corrupt)
                std::cout << "  corrupt key: "
                          << printable(key, 120) << "\n";
            if (pass.corrupt > 0)
                return 2;
        } else { // compact
            const store::StoreStats before = st.stats();
            st.compact();
            const store::StoreStats after = st.stats();
            std::cout << "compacted " << dir << ": "
                      << before.totalBytes << " -> "
                      << after.totalBytes << " bytes, "
                      << before.deadRecords << " -> "
                      << after.deadRecords << " dead records\n";
        }
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
