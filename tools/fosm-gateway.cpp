/**
 * @file
 * fosm-gateway: sharded cluster front-end for fosm-serve replicas.
 *
 *   fosm-gateway --backends host:port,host:port,...
 *                [--host 127.0.0.1] [--port 9090] [--workers N]
 *                [--queue 256] [--vnodes 128] [--retries 2]
 *                [--hedge-quantile 0.95] [--hedge-max 50]
 *                [--health-interval 500]
 *
 * Routes POST /v1/cpi, /v1/iw-curve and /v1/trends to one of the
 * configured backends by consistent-hashing the canonical request
 * digest — the same key the backends' response caches use — so the
 * replicas' caches compose into one large, non-overlapping cache.
 * Unhealthy backends (failing active /healthz probes) are ejected
 * and reinstated after recovery; failed attempts are retried on the
 * next ring replica, and attempts that outlive the configured
 * latency-percentile budget are hedged once to the next replica
 * (first response wins). GET /healthz reports cluster health, GET
 * /metrics the gateway's own Prometheus metrics, and GET
 * /v1/store/stats an aggregate of every backend's store stats.
 * See docs/CLUSTER.md.
 */

#include <csignal>
#include <iostream>

#include <unistd.h>

#include "cli.hh"
#include "cluster/gateway.hh"
#include "server/http.hh"

namespace {

volatile int stopFd = -1;

void
onSignal(int)
{
    if (stopFd >= 0) {
        const char b = 's';
        [[maybe_unused]] ssize_t n = ::write(stopFd, &b, 1);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace fosm;
    using namespace fosm::cluster;

    const cli::Args args(
        argc, argv,
        {"host", "port", "backends", "workers", "queue",
         "max-connections", "vnodes", "retries", "retry-base",
         "hedge-quantile", "hedge-min", "hedge-max",
         "hedge-min-samples", "health-interval", "eject-after",
         "connect-timeout", "request-timeout", "default-deadline",
         "breaker-failures", "breaker-min-samples",
         "breaker-error-rate", "breaker-open-base",
         "breaker-open-max", "tenants-file"},
        "usage: fosm-gateway --backends host:port[,host:port...] "
        "[flags]\n"
        "  --host 127.0.0.1       listen address\n"
        "  --port 9090            listen port (0 = ephemeral)\n"
        "  --workers N            worker threads (default: cores)\n"
        "  --queue 256            admission queue capacity\n"
        "  --max-connections 1024 connection limit\n"
        "  --vnodes 128           virtual nodes per backend\n"
        "  --retries 2            extra attempts on failure/5xx\n"
        "  --retry-base 2         retry backoff base (ms)\n"
        "  --hedge-quantile 0.95  latency quantile that arms the "
        "hedge\n"
        "  --hedge-min 1          hedge delay floor (ms)\n"
        "  --hedge-max 50         hedge delay ceiling (ms)\n"
        "  --hedge-min-samples 100  samples before the quantile is "
        "trusted\n"
        "  --health-interval 500  health probe interval (ms)\n"
        "  --eject-after 2        consecutive failures that eject\n"
        "  --connect-timeout 250  upstream connect budget (ms)\n"
        "  --request-timeout 5000 per-attempt exchange budget (ms)\n"
        "  --default-deadline 0   whole-request budget when the "
        "client\n"
        "                         sends no X-Fosm-Deadline-Ms (ms, "
        "0 = off)\n"
        "  --breaker-failures 5   consecutive proxy failures that "
        "open\n"
        "                         a backend's circuit breaker\n"
        "  --breaker-min-samples 20  window samples before the "
        "error\n"
        "                         rate can trip the breaker\n"
        "  --breaker-error-rate 0.5  window error fraction that "
        "opens\n"
        "  --breaker-open-base 1000  first breaker-open duration "
        "(ms)\n"
        "  --breaker-open-max 30000  breaker-open duration cap "
        "(ms)\n"
        "  --tenants-file F       JSON tenant registry: bearer-token"
        "\n"
        "                         auth plus per-tenant rate and\n"
        "                         inflight quotas (docs/TENANCY.md)"
        "\n");

    const std::string backendList = args.get("backends", "");
    GatewayConfig config;
    std::string error;
    if (!parseBackendList(backendList, config.backends, error))
        fosm_fatal("fosm-gateway: ", error,
                   " (use --backends host:port[,host:port...])");

    config.vnodes = args.getInt("vnodes", 128);
    config.retries = static_cast<int>(args.getInt("retries", 2));
    config.retryBaseMs =
        static_cast<int>(args.getInt("retry-base", 2));
    config.hedgeQuantile = args.getDouble("hedge-quantile", 0.95);
    config.hedgeMinMs =
        static_cast<int>(args.getInt("hedge-min", 1));
    config.hedgeMaxMs =
        static_cast<int>(args.getInt("hedge-max", 50));
    config.hedgeMinSamples = args.getInt("hedge-min-samples", 100);
    config.upstream.healthIntervalMs =
        static_cast<int>(args.getInt("health-interval", 500));
    config.upstream.ejectAfter =
        static_cast<int>(args.getInt("eject-after", 2));
    config.upstream.connectTimeoutMs =
        static_cast<int>(args.getInt("connect-timeout", 250));
    config.upstream.requestTimeoutMs =
        static_cast<int>(args.getInt("request-timeout", 5000));
    config.defaultDeadlineMs =
        static_cast<int>(args.getInt("default-deadline", 0));
    config.upstream.breakerFailures =
        static_cast<int>(args.getInt("breaker-failures", 5));
    config.upstream.breakerMinSamples =
        static_cast<int>(args.getInt("breaker-min-samples", 20));
    config.upstream.breakerErrorRate =
        args.getDouble("breaker-error-rate", 0.5);
    config.upstream.breakerOpenBaseMs =
        static_cast<int>(args.getInt("breaker-open-base", 1000));
    config.upstream.breakerOpenMaxMs =
        static_cast<int>(args.getInt("breaker-open-max", 30000));

    if (args.has("tenants-file")) {
        config.registry = std::make_shared<tenant::Registry>();
        if (!config.registry->loadFile(
                args.get("tenants-file", ""), error))
            fosm_fatal("fosm-gateway: --tenants-file: ", error);
        std::cout << "fosm-gateway: tenant auth + quotas enabled ("
                  << config.registry->snapshot()->tenants.size()
                  << " tenants)\n";
    }

    server::MetricsRegistry metrics;
    Gateway gateway(config, &metrics);

    server::HttpServerConfig serverConfig;
    serverConfig.host = args.get("host", "127.0.0.1");
    serverConfig.port =
        static_cast<std::uint16_t>(args.getInt("port", 9090));
    serverConfig.workers = args.getInt("workers", 0);
    serverConfig.queueCapacity = args.getInt("queue", 256);
    serverConfig.maxConnections =
        args.getInt("max-connections", 1024);
    serverConfig.metricPaths = gateway.metricPaths();

    gateway.start();

    server::HttpServer server(serverConfig, gateway.handler(),
                              &metrics);
    server.start();

    stopFd = server.stopFd();
    struct sigaction sa{};
    sa.sa_handler = onSignal;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
    signal(SIGPIPE, SIG_IGN);

    std::cout << "fosm-gateway: listening on " << serverConfig.host
              << ":" << server.port() << ", fronting "
              << gateway.pool().size() << " backends ("
              << gateway.pool().healthyCount() << " healthy, "
              << config.vnodes << " vnodes each, retries "
              << config.retries << ", hedge p"
              << static_cast<int>(config.hedgeQuantile * 100)
              << " capped at " << config.hedgeMaxMs << "ms)\n"
              << "fosm-gateway: POST /v1/cpi /v1/batch "
                 "/v1/iw-curve /v1/trends; GET /healthz /metrics "
                 "/v1/store/stats; GET+POST /admin/backends\n";
    std::cout.flush();

    server.join();
    gateway.stop();
    std::cout << "fosm-gateway: drained, "
              << server.requestsServed() << " requests served\n";
    return 0;
}
