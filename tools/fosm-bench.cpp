/**
 * @file
 * Hot-path micro-benchmark reporter:
 *
 *   fosm-bench [--bench gzip] [--insts 100000] [--repeats 5]
 *              [--evals 200] [--out report.json]
 *
 * Times the four performance-critical stages of the toolkit - trace
 * generation, window simulation (unbounded and width-limited),
 * detailed simulation and model evaluation - and writes the results
 * as JSON (to stdout, or to --out). Each stage is repeated and the
 * median is reported, so a single run on a noisy machine is still
 * usable; raise --repeats for more stable numbers.
 *
 * Units: nanoseconds per instruction for the per-trace stages,
 * nanoseconds per evaluation for the (trace-length-independent)
 * model evaluation.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <vector>

#include "cli.hh"
#include "experiments/workbench.hh"
#include "iw/window_sim.hh"

namespace {

using Clock = std::chrono::steady_clock;

/** Median of repeated timings of fn(), in nanoseconds per unit. */
template <typename Fn>
double
medianNs(int repeats, double units, Fn &&fn)
{
    std::vector<double> samples;
    samples.reserve(repeats);
    for (int r = 0; r < repeats; ++r) {
        const auto start = Clock::now();
        fn();
        const auto stop = Clock::now();
        samples.push_back(
            std::chrono::duration<double, std::nano>(stop - start)
                .count() /
            units);
    }
    std::sort(samples.begin(), samples.end());
    const std::size_t mid = samples.size() / 2;
    return samples.size() % 2 ? samples[mid]
                              : 0.5 * (samples[mid - 1] + samples[mid]);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace fosm;
    const cli::Args args(
        argc, argv, {"bench", "insts", "repeats", "evals", "out"},
        "usage: fosm-bench [--bench gzip] [--insts 100000]\n"
        "  [--repeats 5] [--evals 200] [--out report.json]\n");

    const std::string bench = args.get("bench", "gzip");
    const std::uint64_t insts = args.getInt("insts", 100000);
    const int repeats = static_cast<int>(args.getInt("repeats", 5));
    const int evals = static_cast<int>(args.getInt("evals", 200));
    const double n = static_cast<double>(insts);

    const Profile &profile = profileByName(bench);
    const Trace trace = generateTrace(profile, insts);

    const double trace_gen = medianNs(repeats, n, [&] {
        const Trace t = generateTrace(profile, insts);
        if (t.size() != insts)
            std::abort();
    });

    WindowSimConfig unbounded;
    unbounded.windowSize = 64;
    unbounded.issueWidth = 0;
    unbounded.unitLatency = true;
    const double window_unbounded = medianNs(repeats, n, [&] {
        simulateWindow(trace, unbounded);
    });

    WindowSimConfig limited;
    limited.windowSize = 32;
    limited.issueWidth = 4;
    const double window_limited = medianNs(repeats, n, [&] {
        simulateWindow(trace, limited);
    });

    const SimConfig sim_config = Workbench::baselineSimConfig();
    const double detailed = medianNs(repeats, n, [&] {
        simulateTrace(trace, sim_config);
    });

    // Model evaluation needs the workload characterization once; the
    // metric is the (trace-length-independent) evaluate() call.
    const MissProfile miss = profileTrace(trace);
    WindowSimConfig wconfig;
    wconfig.unitLatency = true;
    const IWCharacteristic iw = IWCharacteristic::fromPoints(
        measureIwCurve(trace, {4, 8, 16, 32, 64}, wconfig),
        miss.avgLatency, 4);
    const FirstOrderModel model(Workbench::baselineMachine());
    const double model_eval =
        medianNs(repeats, static_cast<double>(evals), [&] {
            double acc = 0.0;
            for (int e = 0; e < evals; ++e)
                acc += model.evaluate(iw, miss).total();
            if (acc <= 0.0)
                std::abort();
        });

    char json[1024];
    std::snprintf(json, sizeof(json),
                  "{\n"
                  "  \"bench\": \"%s\",\n"
                  "  \"instructions\": %llu,\n"
                  "  \"repeats\": %d,\n"
                  "  \"metrics\": {\n"
                  "    \"trace_gen_ns_per_inst\": %.2f,\n"
                  "    \"window_sim_unbounded_ns_per_inst\": %.2f,\n"
                  "    \"window_sim_limited_ns_per_inst\": %.2f,\n"
                  "    \"detailed_sim_ns_per_inst\": %.2f,\n"
                  "    \"model_eval_ns_per_eval\": %.2f\n"
                  "  }\n"
                  "}\n",
                  bench.c_str(),
                  static_cast<unsigned long long>(insts), repeats,
                  trace_gen, window_unbounded, window_limited,
                  detailed, model_eval);

    if (args.has("out")) {
        const std::string path = args.get("out", "");
        std::ofstream out(path);
        out << json;
        if (!out) {
            std::cerr << "error: cannot write " << path << "\n";
            return 1;
        }
        std::cout << "wrote " << path << "\n";
    } else {
        std::cout << json;
    }
    return 0;
}
