/**
 * @file
 * Trace utility:
 *
 *   fosm-trace list
 *       List the shipped workload profiles and their key parameters.
 *
 *   fosm-trace gen <profile> <out.trc> [--insts N] [--seed S]
 *       Generate a synthetic trace and save it in fosm binary format.
 *
 *   fosm-trace info <file.trc> [--head N]
 *       Print summary statistics (and optionally the first N records)
 *       of a saved trace.
 */

#include <iostream>

#include "analysis/miss_profiler.hh"
#include "cli.hh"
#include "common/table.hh"
#include "trace/trace_stats.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

namespace {

using namespace fosm;

int
cmdList()
{
    TextTable table({"profile", "branch%", "load%", "store%",
                     "footprint KB", "sites", "seed"});
    for (const Profile &p : specProfiles()) {
        table.addRow({p.name,
                      TextTable::num(p.mix.branch * 100, 0),
                      TextTable::num(p.mix.load * 100, 0),
                      TextTable::num(p.mix.store * 100, 0),
                      TextTable::num(p.code.footprintBytes / 1024),
                      TextTable::num(std::uint64_t{p.branch.sites}),
                      TextTable::num(p.seed)});
    }
    table.print(std::cout);
    return 0;
}

int
cmdGen(const cli::Args &args)
{
    if (args.positional().size() < 3)
        fosm_fatal("usage: fosm-trace gen <profile> <out.trc>");
    Profile profile = profileByName(args.positional()[1]);
    const std::string out = args.positional()[2];
    const std::uint64_t insts = args.getInt("insts", 400000);
    if (args.has("seed"))
        profile.seed = args.getInt("seed", profile.seed);

    const Trace trace = generateTrace(profile, insts);
    saveTrace(trace, out);
    std::cout << "wrote " << trace.size() << " instructions ("
              << profile.name << ", seed " << profile.seed << ") to "
              << out << "\n";
    return 0;
}

int
cmdInfo(const cli::Args &args)
{
    if (args.positional().size() < 2)
        fosm_fatal("usage: fosm-trace info <file.trc>");
    const Trace trace = loadTrace(args.positional()[1]);
    const TraceStats stats = collectTraceStats(trace);
    const MissProfile misses = profileTrace(trace);

    std::cout << "trace '" << trace.name() << "': " << trace.size()
              << " instructions\n\n";

    TextTable mix({"class", "count", "fraction %"});
    for (std::size_t c = 0; c < numInstClasses; ++c) {
        const InstClass cls = static_cast<InstClass>(c);
        mix.addRow({instClassName(cls),
                    TextTable::num(stats.classCount[c]),
                    TextTable::num(stats.classFraction(cls) * 100,
                                   1)});
    }
    mix.print(std::cout);

    std::cout << "\nstatic branch sites:     " << stats.staticBranches
              << "\ntaken fraction:          "
              << TextTable::num(stats.takenFraction * 100, 1)
              << " %\nmean dependence dist:    "
              << TextTable::num(stats.depDistance.mean(), 1)
              << "\navg latency L:           "
              << TextTable::num(misses.avgLatency, 2)
              << "\nmisprediction rate:      "
              << TextTable::num(misses.mispredictRate() * 100, 1)
              << " % (8K gShare)\nL1I misses / ki:         "
              << TextTable::num(misses.icacheMissesPerInst() * 1000, 2)
              << "\nshort D-misses / ki:     "
              << TextTable::num(
                     misses.shortLoadMissesPerInst() * 1000, 2)
              << "\nlong D-misses / ki:      "
              << TextTable::num(misses.longLoadMissesPerInst() * 1000,
                                2)
              << "\nLDM overlap factor @128: "
              << TextTable::num(misses.ldmOverlapFactor(128), 3)
              << "\n";

    const std::uint64_t head = args.getInt("head", 0);
    if (head > 0) {
        std::cout << "\n";
        TextTable records({"#", "pc", "class", "dst", "src1", "src2",
                           "addr/target", "taken"});
        for (std::uint64_t i = 0;
             i < head && i < trace.size(); ++i) {
            const InstRecord &inst = trace[i];
            char pc[32], ea[32];
            std::snprintf(pc, sizeof(pc), "0x%llx",
                          static_cast<unsigned long long>(inst.pc));
            std::snprintf(ea, sizeof(ea), "0x%llx",
                          static_cast<unsigned long long>(
                              inst.effAddr));
            records.addRow(
                {TextTable::num(i), pc, instClassName(inst.cls),
                 std::to_string(inst.dst), std::to_string(inst.src1),
                 std::to_string(inst.src2), ea,
                 inst.isBranch() ? (inst.branchTaken ? "T" : "N")
                                 : "-"});
        }
        records.print(std::cout);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace fosm;
    const cli::Args args(
        argc, argv, {"insts", "seed", "head"},
        "usage: fosm-trace <command> [flags]\n"
        "  list                      list shipped workload profiles\n"
        "  gen <profile> <out.trc>   generate a synthetic trace\n"
        "      [--insts N] [--seed S]\n"
        "  info <file.trc>           summarize a saved trace\n"
        "      [--head N]\n");
    if (args.positional().empty()) {
        std::cerr << "usage: fosm-trace <list|gen|info> ...\n";
        return 1;
    }
    const std::string &cmd = args.positional()[0];
    if (cmd == "list")
        return cmdList();
    if (cmd == "gen")
        return cmdGen(args);
    if (cmd == "info")
        return cmdInfo(args);
    fosm_fatal("unknown command: ", cmd);
}
