/**
 * @file
 * Functional miss-event profiler: one trace-driven pass through the
 * cache hierarchy and branch predictor that collects every statistic
 * the first-order model consumes (paper Section 5, step 5):
 *
 *  - branch misprediction counts and the gaps between mispredictions
 *  - instruction cache miss counts per level
 *  - data cache miss counts, split into short (L1 miss, L2 hit) and
 *    long (L2 miss) load misses
 *  - gaps between successive long load misses, from which the
 *    group-size distribution f_LDM(i) of equation (8) is derived for
 *    any ROB size
 *  - the average functional-unit latency L including short-miss
 *    latency (Section 4.3 treats short misses as long-latency
 *    functional units, folding them into Little's law)
 *
 * This is deliberately *not* a timing simulation: the whole point of
 * the paper is that these inputs come from fast functional analysis.
 */

#ifndef FOSM_ANALYSIS_MISS_PROFILER_HH
#define FOSM_ANALYSIS_MISS_PROFILER_HH

#include <cstdint>
#include <vector>

#include "branch/predictor.hh"
#include "cache/hierarchy.hh"
#include "cache/tlb.hh"
#include "common/stats.hh"
#include "trace/latency.hh"
#include "trace/mix.hh"
#include "trace/trace.hh"

namespace fosm {

/** Everything the analytical model needs about one workload. */
struct MissProfile
{
    std::uint64_t instructions = 0;

    /** Dynamic operation mix (Section 7 future-work 1 input). */
    InstMix mix;

    // Branch statistics.
    std::uint64_t branches = 0;
    std::uint64_t mispredictions = 0;
    /** Gap in dynamic instructions between successive mispredictions. */
    Histogram mispredictGap{4096};

    // Instruction cache statistics (one access per instruction; the
    // miss *count* is what the model consumes).
    std::uint64_t icacheL1Misses = 0;
    std::uint64_t icacheL2Misses = 0;
    /** Gap in instructions between successive L1I misses. */
    Histogram icacheMissGap{4096};

    // Data cache statistics. Only loads feed the penalty model;
    // stores are assumed buffered (they never stall retirement).
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t shortLoadMisses = 0;
    std::uint64_t longLoadMisses = 0;
    std::uint64_t storeMisses = 0;

    /** Raw gaps (dynamic instructions) between successive long load
     *  misses, kept whole so f_LDM can be computed for any rob_size. */
    std::vector<std::uint32_t> ldmGaps;

    // Data-TLB statistics (Section 7 future-work 4; populated only
    // when the profiling pass enables TLB modeling).
    std::uint64_t dtlbLoadMisses = 0;
    std::uint64_t dtlbStoreMisses = 0;
    /** Gaps between successive load TLB misses, as for ldmGaps. */
    std::vector<std::uint32_t> dtlbGaps;

    /** Average FU latency L including short-miss latency. */
    double avgLatency = 0.0;

    // Derived rates, all per dynamic instruction.
    double mispredictsPerInst() const;
    double icacheMissesPerInst() const;
    double icacheL2MissesPerInst() const;
    double shortLoadMissesPerInst() const;
    double longLoadMissesPerInst() const;

    /** Misprediction rate per branch (the model's probability B). */
    double mispredictRate() const;

    /** Mean dynamic instructions between mispredictions. */
    double instsBetweenMispredicts() const;

    /**
     * The f_LDM(i) distribution of equation (8) for the given ROB
     * size: element i-1 is the fraction of long load misses belonging
     * to overlap groups of size i. A group collects successive long
     * misses while they stay within rob_size instructions of the
     * group's first miss (Figure 13's overlap condition: the ROB can
     * only hold rob_size instructions behind the stalled load).
     */
    std::vector<double> ldmGroupFractions(std::uint64_t rob_size) const;

    /**
     * The average-penalty multiplier of equation (8):
     * sum_i f_LDM(i) / i, which equals (number of miss groups) /
     * (number of misses).
     */
    double ldmOverlapFactor(std::uint64_t rob_size) const;

    /** Misses per instruction of load TLB walks. */
    double dtlbLoadMissesPerInst() const;

    /** Equation-(8)-style overlap factor for TLB walks. */
    double dtlbOverlapFactor(std::uint64_t rob_size) const;
};

/**
 * Shared grouping machinery: given the gaps between successive
 * miss-events of one kind, the fraction of events in overlap groups
 * of each size, where a group collects events within rob_size
 * instructions of its first member (Figure 13's condition).
 */
std::vector<double>
overlapGroupFractions(const std::vector<std::uint32_t> &gaps,
                      std::uint64_t events, std::uint64_t rob_size);

/** sum_i f(i)/i of the above = groups / events (1.0 when no events). */
double overlapFactor(const std::vector<std::uint32_t> &gaps,
                     std::uint64_t events, std::uint64_t rob_size);

/**
 * The group-collection pass alone: sizes of the overlap groups the
 * gap sequence splits into for one rob_size. Exposed so the batch
 * kernel (model/kernels.hh) can run this recurrence for many ROB
 * sizes in a single pass over the (potentially long) gap vector and
 * still finish through the same fraction/summation code below —
 * keeping batch results bit-identical to the scalar path.
 */
std::vector<std::uint64_t>
overlapGroupSizes(const std::vector<std::uint32_t> &gaps,
                  std::uint64_t rob_size);

/** The f(i) distribution from collected group sizes. */
std::vector<double>
overlapFractionsFromGroups(const std::vector<std::uint64_t> &group_sizes,
                           std::uint64_t events);

/** sum_i f(i)/(i+1) over the distribution, in ascending-i order. */
double overlapFactorFromFractions(const std::vector<double> &fractions);

/** Configuration of the profiling pass. */
struct ProfilerConfig
{
    HierarchyConfig hierarchy;
    PredictorKind predictor = PredictorKind::GShare;
    std::uint32_t predictorEntries = 8192;
    LatencyConfig latency;
    /** Data TLB (disabled by default: the paper's base machine). */
    TlbConfig dtlb;
};

/** Run the one-pass functional profile over the trace. */
MissProfile profileTrace(const Trace &trace,
                         const ProfilerConfig &config = ProfilerConfig{});

/**
 * Incremental profiler: cache, predictor and TLB state persist across
 * calls, so a trace can be profiled in segments (phase analysis)
 * with realistic warm structures at each boundary.
 */
class MissProfilerEngine
{
  public:
    explicit MissProfilerEngine(const ProfilerConfig &config =
                                    ProfilerConfig{});
    ~MissProfilerEngine();

    /** Profile [begin, end) of the trace; counters start fresh but
     *  the microarchitectural state carries over. */
    MissProfile profileRange(const Trace &trace, std::uint64_t begin,
                             std::uint64_t end);

  private:
    ProfilerConfig config_;
    CacheHierarchy hierarchy_;
    std::unique_ptr<BranchPredictor> predictor_;
    std::unique_ptr<Tlb> dtlb_;
};

} // namespace fosm

#endif // FOSM_ANALYSIS_MISS_PROFILER_HH
