#include "analysis/miss_profiler.hh"

#include <algorithm>

#include "common/logging.hh"

namespace fosm {

double
MissProfile::mispredictsPerInst() const
{
    return safeRatio(static_cast<double>(mispredictions),
                     static_cast<double>(instructions));
}

double
MissProfile::icacheMissesPerInst() const
{
    return safeRatio(static_cast<double>(icacheL1Misses),
                     static_cast<double>(instructions));
}

double
MissProfile::icacheL2MissesPerInst() const
{
    return safeRatio(static_cast<double>(icacheL2Misses),
                     static_cast<double>(instructions));
}

double
MissProfile::shortLoadMissesPerInst() const
{
    return safeRatio(static_cast<double>(shortLoadMisses),
                     static_cast<double>(instructions));
}

double
MissProfile::longLoadMissesPerInst() const
{
    return safeRatio(static_cast<double>(longLoadMisses),
                     static_cast<double>(instructions));
}

double
MissProfile::mispredictRate() const
{
    return safeRatio(static_cast<double>(mispredictions),
                     static_cast<double>(branches));
}

double
MissProfile::instsBetweenMispredicts() const
{
    return safeRatio(static_cast<double>(instructions),
                     static_cast<double>(mispredictions));
}

std::vector<std::uint64_t>
overlapGroupSizes(const std::vector<std::uint32_t> &gaps,
                  std::uint64_t rob_size)
{
    std::vector<std::uint64_t> group_sizes;
    // gaps[k] is the gap before event k+1; the first event opens
    // the first group. A later event joins the group only while
    // it is within rob_size instructions of the group's *first*
    // member — the ROB can only hold that many instructions
    // behind the stalled one (Figure 13), so a long chain of
    // closely spaced events still splits into ROB-sized groups.
    std::uint64_t current = 1;
    std::uint64_t span = 0;
    for (std::uint32_t gap : gaps) {
        if (span + gap < rob_size) {
            ++current;
            span += gap;
        } else {
            group_sizes.push_back(current);
            current = 1;
            span = 0;
        }
    }
    group_sizes.push_back(current);
    return group_sizes;
}

std::vector<double>
overlapFractionsFromGroups(
    const std::vector<std::uint64_t> &group_sizes,
    std::uint64_t events)
{
    std::uint64_t max_group = 1;
    for (std::uint64_t g : group_sizes)
        max_group = std::max(max_group, g);

    std::vector<double> fractions(max_group, 0.0);
    if (events == 0)
        return fractions;
    // Normalize by the events covered by the gap list (gaps + 1), so
    // the distribution always sums to one even if a caller supplies a
    // partial gap record.
    double covered = 0.0;
    for (std::uint64_t g : group_sizes)
        covered += static_cast<double>(g);
    for (std::uint64_t g : group_sizes) {
        // A group of size g contains g events; f weights by event.
        fractions[g - 1] += static_cast<double>(g) / covered;
    }
    return fractions;
}

double
overlapFactorFromFractions(const std::vector<double> &fractions)
{
    double factor = 0.0;
    for (std::size_t i = 0; i < fractions.size(); ++i)
        factor += fractions[i] / static_cast<double>(i + 1);
    return factor;
}

std::vector<double>
overlapGroupFractions(const std::vector<std::uint32_t> &gaps,
                      std::uint64_t events, std::uint64_t rob_size)
{
    if (events == 0)
        return std::vector<double>(1, 0.0);
    return overlapFractionsFromGroups(
        overlapGroupSizes(gaps, rob_size), events);
}

double
overlapFactor(const std::vector<std::uint32_t> &gaps,
              std::uint64_t events, std::uint64_t rob_size)
{
    if (events == 0)
        return 1.0;
    return overlapFactorFromFractions(
        overlapGroupFractions(gaps, events, rob_size));
}

std::vector<double>
MissProfile::ldmGroupFractions(std::uint64_t rob_size) const
{
    return overlapGroupFractions(ldmGaps, longLoadMisses, rob_size);
}

double
MissProfile::ldmOverlapFactor(std::uint64_t rob_size) const
{
    return overlapFactor(ldmGaps, longLoadMisses, rob_size);
}

double
MissProfile::dtlbLoadMissesPerInst() const
{
    return safeRatio(static_cast<double>(dtlbLoadMisses),
                     static_cast<double>(instructions));
}

double
MissProfile::dtlbOverlapFactor(std::uint64_t rob_size) const
{
    return overlapFactor(dtlbGaps, dtlbLoadMisses, rob_size);
}

MissProfilerEngine::MissProfilerEngine(const ProfilerConfig &config)
    : config_(config), hierarchy_(config.hierarchy)
{
    predictor_ = makePredictor(config.predictor,
                               config.predictorEntries);
    if (config.dtlb.enabled)
        dtlb_ = std::make_unique<Tlb>(config.dtlb);
}

MissProfilerEngine::~MissProfilerEngine() = default;

MissProfile
MissProfilerEngine::profileRange(const Trace &trace,
                                 std::uint64_t begin,
                                 std::uint64_t end)
{
    fosm_assert(begin <= end && end <= trace.size(),
                "profileRange bounds out of range");

    MissProfile profile;
    profile.instructions = end - begin;

    std::array<std::uint64_t, numInstClasses> class_counts{};
    double latency_sum = 0.0;
    std::int64_t last_mispredict = -1;
    std::int64_t last_icache_miss = -1;
    std::int64_t last_ldm = -1;
    std::int64_t last_dtlb = -1;

    for (std::uint64_t i = begin; i < end; ++i) {
        const InstRecord &inst = trace[i];
        ++class_counts[static_cast<std::size_t>(inst.cls)];

        // Instruction fetch path.
        const AccessResult ifetch = hierarchy_.fetchInst(inst.pc);
        if (ifetch.isL1Miss()) {
            ++profile.icacheL1Misses;
            if (last_icache_miss >= 0) {
                profile.icacheMissGap.add(static_cast<std::uint64_t>(
                    static_cast<std::int64_t>(i) - last_icache_miss));
            }
            last_icache_miss = static_cast<std::int64_t>(i);
            if (ifetch.isL2Miss())
                ++profile.icacheL2Misses;
        }

        // Execution latency contribution (Little's law input).
        Cycle lat = config_.latency.latencyFor(inst.cls);

        // Data TLB path (future-work 4): translate before the cache.
        if (dtlb_ && inst.isMem()) {
            if (!dtlb_->access(inst.effAddr)) {
                if (inst.isLoad()) {
                    ++profile.dtlbLoadMisses;
                    if (last_dtlb >= 0) {
                        profile.dtlbGaps.push_back(
                            static_cast<std::uint32_t>(
                                std::min<std::int64_t>(
                                    static_cast<std::int64_t>(i) -
                                        last_dtlb,
                                    0x7fffffff)));
                    }
                    last_dtlb = static_cast<std::int64_t>(i);
                } else {
                    ++profile.dtlbStoreMisses;
                }
            }
        }

        // Data path.
        if (inst.isLoad()) {
            ++profile.loads;
            const AccessResult access =
                hierarchy_.accessData(inst.effAddr);
            if (access.level == HitLevel::L2) {
                ++profile.shortLoadMisses;
                // Short miss: serviced like a long-latency FU op.
                lat = config_.latency.loadHit +
                      config_.hierarchy.l2Latency;
            } else if (access.level == HitLevel::Memory) {
                ++profile.longLoadMisses;
                if (last_ldm >= 0) {
                    profile.ldmGaps.push_back(
                        static_cast<std::uint32_t>(
                            std::min<std::int64_t>(
                                static_cast<std::int64_t>(i) -
                                    last_ldm,
                                0x7fffffff)));
                }
                last_ldm = static_cast<std::int64_t>(i);
                // The long-miss delay is charged by the D-miss
                // penalty model, not by Little's law.
            }
        } else if (inst.isStore()) {
            ++profile.stores;
            const AccessResult access =
                hierarchy_.accessData(inst.effAddr);
            if (access.isL1Miss())
                ++profile.storeMisses;
        }

        latency_sum += static_cast<double>(lat);

        // Branch path.
        if (inst.isBranch()) {
            ++profile.branches;
            const bool correct = predictor_->predictAndUpdate(
                inst.pc, inst.branchTaken);
            if (!correct) {
                ++profile.mispredictions;
                if (last_mispredict >= 0) {
                    profile.mispredictGap.add(
                        static_cast<std::uint64_t>(
                            static_cast<std::int64_t>(i) -
                            last_mispredict));
                }
                last_mispredict = static_cast<std::int64_t>(i);
            }
        }
    }

    profile.avgLatency = safeRatio(
        latency_sum, static_cast<double>(profile.instructions));
    for (std::size_t c = 0; c < numInstClasses; ++c) {
        profile.mix.fraction[c] =
            safeRatio(static_cast<double>(class_counts[c]),
                      static_cast<double>(profile.instructions));
    }
    return profile;
}

MissProfile
profileTrace(const Trace &trace, const ProfilerConfig &config)
{
    MissProfilerEngine engine(config);
    return engine.profileRange(trace, 0, trace.size());
}

} // namespace fosm
