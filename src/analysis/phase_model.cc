#include "analysis/phase_model.hh"

#include "common/logging.hh"

namespace fosm {

std::vector<PhaseData>
profilePhases(const Trace &trace, std::uint64_t phase_length,
              const ProfilerConfig &config)
{
    fosm_assert(phase_length > 0, "phase length must be positive");

    std::vector<PhaseData> phases;
    MissProfilerEngine engine(config);

    std::uint64_t begin = 0;
    const std::uint64_t n = trace.size();
    while (begin < n) {
        std::uint64_t end = begin + phase_length;
        // Merge a short tail into the final full segment.
        if (end > n || n - end < phase_length / 2)
            end = n;

        PhaseData phase;
        phase.begin = begin;
        phase.end = end;
        phase.profile = engine.profileRange(trace, begin, end);

        // Segment-local IW curve: the characteristic itself can move
        // between phases (different dependence structure).
        const Trace slice = sliceTrace(trace, begin, end);
        WindowSimConfig wconfig;
        wconfig.unitLatency = true;
        phase.iwPoints =
            measureIwCurve(slice, {4, 8, 16, 32, 64}, wconfig);

        phases.push_back(std::move(phase));
        begin = end;
    }
    return phases;
}

Trace
sliceTrace(const Trace &trace, std::uint64_t begin, std::uint64_t end)
{
    fosm_assert(begin <= end && end <= trace.size(),
                "slice bounds out of range");
    Trace slice(trace.name() + "-slice");
    slice.reserve(end - begin);
    for (std::uint64_t i = begin; i < end; ++i)
        slice.append(trace[i]);
    return slice;
}

Trace
concatTraces(const std::vector<const Trace *> &parts,
             const std::string &name)
{
    Trace out(name);
    std::size_t total = 0;
    for (const Trace *part : parts) {
        fosm_assert(part != nullptr, "null trace part");
        total += part->size();
    }
    out.reserve(total);
    for (const Trace *part : parts) {
        for (const InstRecord &inst : *part)
            out.append(inst);
    }
    return out;
}

} // namespace fosm
