/**
 * @file
 * Phase-aware modeling (paper Section 7, future-work 1: "it may be
 * necessary to consider program phases, and model each of them
 * separately - something we have not had to do thus far").
 *
 * A single average profile mis-models a program whose behaviour
 * alternates (e.g. a compute phase and a pointer-chasing phase): the
 * model is non-linear in its inputs, so CPI(avg(stats)) !=
 * avg(CPI(stats)). Phase modeling segments the trace, derives a
 * profile and IW characteristic per segment, evaluates equation (1)
 * per segment, and combines the per-phase CPIs weighted by
 * instruction count.
 */

#ifndef FOSM_ANALYSIS_PHASE_MODEL_HH
#define FOSM_ANALYSIS_PHASE_MODEL_HH

#include <cstdint>
#include <vector>

#include "analysis/miss_profiler.hh"
#include "iw/iw_characteristic.hh"
#include "trace/trace.hh"

namespace fosm {

/** One trace segment's worth of model inputs. */
struct PhaseData
{
    /** First instruction index of the segment. */
    std::uint64_t begin = 0;
    /** One past the last instruction index. */
    std::uint64_t end = 0;
    MissProfile profile;
    /** Unit-latency IW points measured on this segment. */
    std::vector<IwPoint> iwPoints;
};

/**
 * Slice the trace into contiguous segments of the given length (the
 * last segment keeps the remainder; segments shorter than half the
 * length merge into their predecessor) and profile each one. Cache
 * and predictor state carries across segment boundaries, as it would
 * in the real program.
 */
std::vector<PhaseData>
profilePhases(const Trace &trace, std::uint64_t phase_length,
              const ProfilerConfig &config = ProfilerConfig{});

/** Copy a [begin, end) slice of a trace (for segment-local analyses). */
Trace sliceTrace(const Trace &trace, std::uint64_t begin,
                 std::uint64_t end);

/**
 * Concatenate traces into one, as a program with distinct phases.
 * PCs are kept as-is (phases of one program share its code).
 */
Trace concatTraces(const std::vector<const Trace *> &parts,
                   const std::string &name);

} // namespace fosm

#endif // FOSM_ANALYSIS_PHASE_MODEL_HH
