/**
 * @file
 * Per-tenant admission control, shared by fosm-gateway and
 * fosm-serve. admit() authenticates a request against the live
 * tenant registry (constant-time bearer-token check, 401 on
 * missing/unknown token when auth is enabled) and, where enabled,
 * applies the tenant's declared quotas: a token-bucket rate limit
 * (429 + Retry-After telling the client when the bucket affords the
 * next request) and a max-inflight cap (429, Retry-After 1). The
 * gateway enforces both quotas; fosm-serve runs auth-only and lets
 * the weighted-fair worker queue (fair_queue.hh) arbitrate between
 * admitted tenants.
 *
 * Quota state is keyed by tenant id and survives registry edits —
 * a live weight change must not refill anyone's bucket.
 */

#ifndef FOSM_TENANT_ADMISSION_HH
#define FOSM_TENANT_ADMISSION_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "server/http.hh"
#include "server/metrics.hh"
#include "tenant/registry.hh"

namespace fosm::tenant {

/** Outcome of admitting one request. */
struct AdmitDecision
{
    int status = 0; ///< 0 = admitted; else the HTTP status to answer
    std::string error;
    int retryAfterSeconds = 0; ///< >0: send a Retry-After header

    std::string tenantId; ///< empty for unauthenticated/exempt
    std::uint32_t classId = 0;
    double weight = 1.0;
    /** True when an inflight slot was taken; pair with release(). */
    bool inflightHeld = false;

    bool admitted() const { return status == 0; }
};

/** Which quota dimensions this layer enforces. */
struct AdmissionOptions
{
    bool enforceRate = false;
    bool enforceInflight = false;
};

class Admission
{
  public:
    Admission(Registry &registry,
              server::MetricsRegistry *metrics,
              AdmissionOptions options = {});

    /**
     * Authenticate + apply quotas for one request. Thread-safe.
     * When auth is disabled (empty registry) everything is admitted
     * as class 0, byte-compatible with the pre-tenant behavior.
     */
    AdmitDecision admit(const server::HttpRequest &request);

    /** Release the inflight slot a successful admit() took. */
    void release(const AdmitDecision &decision);

    /**
     * Paths that stay reachable without a token even when auth is
     * on: health/metrics probes, store stats, and the operator
     * plane (/admin/*) — authenticating operators is an external
     * proxy's job (docs/TENANCY.md).
     */
    static bool exemptPath(const std::string &path);

    /**
     * The bearer token of an Authorization header ("Bearer <tok>",
     * scheme case-insensitive), or empty.
     */
    static std::string bearerToken(const server::HttpRequest &req);

  private:
    /**
     * One tenant's mutable quota state. The bucket refills lazily at
     * the tenant's declared rate; rate/burst ride in per call so
     * live registry edits apply immediately without state resets.
     */
    struct State
    {
        std::mutex mutex;
        double tokens = 0.0;
        bool primed = false;
        std::chrono::steady_clock::time_point last{};
        std::atomic<std::int64_t> inflight{0};

        server::Counter *admitted = nullptr;
        server::Counter *limited = nullptr; ///< 429s
        server::Gauge *inflightGauge = nullptr;
    };

    State &stateFor(const TenantSpec &spec);
    /** False = rate-limited; retryAfterSeconds says for how long. */
    bool takeToken(State &state, const TenantSpec &spec,
                   std::chrono::steady_clock::time_point now,
                   int &retryAfterSeconds);

    Registry &registry_;
    server::MetricsRegistry *metrics_;
    AdmissionOptions options_;

    std::mutex statesMutex_;
    std::map<std::string, std::unique_ptr<State>> states_;

    server::Counter *authFailures_ = nullptr;
};

} // namespace fosm::tenant

#endif // FOSM_TENANT_ADMISSION_HH
