/**
 * @file
 * Weighted-fair admission queue: per-class (per-tenant) sub-queues
 * drained by deficit round-robin. Drop-in for the single
 * BoundedQueue FIFO in the HTTP worker pool — same
 * tryPush/pop/popBatch/close contract — but admission and
 * backpressure are per class: each class owns a bounded sub-queue,
 * so a saturating tenant fills (and gets shed from) its own queue
 * while everyone else's stays shallow, and the drain order gives
 * each backlogged class throughput proportional to its weight.
 *
 * DRR discipline (Shreedhar & Varghese): active classes sit on a
 * round-robin ring; a class arriving at the head earns
 * `quantum = weight` of deficit and is served one queued item per
 * unit of deficit until it runs dry (leave the ring, deficit
 * forfeit) or runs out of deficit (rotate to the tail, keep the
 * remainder). Weights below 1 simply need several rotations to
 * afford an item, so any positive weight works. With one class the
 * discipline degenerates to exactly the old FIFO.
 *
 * Weights ride along on every push (the tenant registry is
 * live-editable, so the current weight is wherever the request was
 * admitted), and classes are created lazily on first use.
 */

#ifndef FOSM_TENANT_FAIR_QUEUE_HH
#define FOSM_TENANT_FAIR_QUEUE_HH

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

namespace fosm::tenant {

/** Per-class counters, snapshotted for the fosm_tenant_* metrics. */
struct FairQueueClassCounts
{
    std::uint64_t pushed = 0;  ///< admitted into the sub-queue
    std::uint64_t drained = 0; ///< handed to a worker
    std::uint64_t shedFull = 0;///< tryPush refused: sub-queue full
    std::size_t depth = 0;     ///< currently queued
};

template <typename T>
class FairQueue
{
  public:
    /**
     * capacityPerClass bounds each class's sub-queue — the same
     * semantics the old shared queue's capacity had when everyone
     * was one class.
     */
    explicit FairQueue(std::size_t capacityPerClass)
        : capacity_(capacityPerClass)
    {
    }

    /**
     * Enqueue into cls (created on first use) carrying the class's
     * current weight. Returns false when that sub-queue is full or
     * the queue is closed; the caller sheds.
     */
    bool
    tryPush(T item, std::uint32_t cls = 0, double weight = 1.0)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (closed_)
            return false;
        Class &c = classFor(cls);
        c.weight = weight;
        if (c.items.size() >= capacity_) {
            ++c.shedFull;
            return false;
        }
        c.items.push_back(std::move(item));
        ++c.pushed;
        if (!c.active) {
            c.active = true;
            c.fresh = true;
            c.deficit = 0.0;
            ring_.push_back(cls);
        }
        ++total_;
        lock.unlock();
        cv_.notify_one();
        return true;
    }

    /**
     * Block until an item or close; drain up to max items in DRR
     * order into out (cleared first). False only when closed and
     * empty — the worker-pool exit condition.
     */
    bool
    popBatch(std::vector<T> &out, std::size_t max)
    {
        out.clear();
        if (max == 0)
            max = 1;
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this] { return total_ > 0 || closed_; });
        if (total_ == 0)
            return false; // closed and drained

        while (out.size() < max && !ring_.empty()) {
            const std::uint32_t cls = ring_.front();
            Class &c = *classes_[cls];
            if (c.fresh) {
                c.deficit += quantum(c);
                c.fresh = false;
            }
            while (out.size() < max && c.deficit >= 1.0 &&
                   !c.items.empty()) {
                out.push_back(std::move(c.items.front()));
                c.items.pop_front();
                c.deficit -= 1.0;
                ++c.drained;
                --total_;
            }
            if (c.items.empty()) {
                // Ran dry: leave the ring and forfeit the deficit,
                // or an idle class would bank unbounded credit.
                ring_.pop_front();
                c.active = false;
                c.deficit = 0.0;
                c.fresh = true;
            } else if (c.deficit < 1.0) {
                // Quantum spent with backlog left: to the tail.
                ring_.pop_front();
                ring_.push_back(cls);
                c.fresh = true;
            } else {
                // Batch full mid-quantum; resume here next wakeup
                // without re-crediting (fresh stays false).
                break;
            }
        }
        return !out.empty();
    }

    /** Blocking single pop; false when closed and drained. */
    bool
    pop(T &out)
    {
        std::vector<T> batch;
        if (!popBatch(batch, 1))
            return false;
        out = std::move(batch.front());
        return true;
    }

    /** Close: pushes fail, waiters drain what remains then wake. */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        cv_.notify_all();
    }

    bool
    closed() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }

    /** Items queued across all classes. */
    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return total_;
    }

    std::size_t capacity() const { return capacity_; }

    /** Snapshot of every class's counters, indexed by class id. */
    std::vector<FairQueueClassCounts>
    classCounts() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        std::vector<FairQueueClassCounts> out;
        out.reserve(classes_.size());
        for (const auto &c : classes_) {
            FairQueueClassCounts counts;
            if (c) {
                counts.pushed = c->pushed;
                counts.drained = c->drained;
                counts.shedFull = c->shedFull;
                counts.depth = c->items.size();
            }
            out.push_back(counts);
        }
        return out;
    }

  private:
    struct Class
    {
        std::deque<T> items;
        double weight = 1.0;
        double deficit = 0.0;
        bool active = false; ///< on the ring
        bool fresh = true;   ///< earns a quantum at the ring head
        std::uint64_t pushed = 0;
        std::uint64_t drained = 0;
        std::uint64_t shedFull = 0;
    };

    static double
    quantum(const Class &c)
    {
        // A non-positive or absurd weight is a registry bug, not a
        // reason to starve or monopolize the drain.
        return std::clamp(c.weight, 0.01, 1000.0);
    }

    Class &
    classFor(std::uint32_t cls)
    {
        if (classes_.size() <= cls)
            classes_.resize(cls + 1);
        if (!classes_[cls])
            classes_[cls] = std::make_unique<Class>();
        return *classes_[cls];
    }

    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::vector<std::unique_ptr<Class>> classes_;
    std::deque<std::uint32_t> ring_; ///< active classes, head next
    std::size_t total_ = 0;
    bool closed_ = false;
};

} // namespace fosm::tenant

#endif // FOSM_TENANT_FAIR_QUEUE_HH
