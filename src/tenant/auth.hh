/**
 * @file
 * Token authentication primitives for the tenant layer: a
 * dependency-free SHA-256 / HMAC-SHA256 and a constant-time token
 * comparison built on it. The repo bakes in no crypto library, so
 * the compression function lives here (FIPS 180-4); it hashes one
 * short bearer token per request, far off any hot path.
 *
 * Token equality is decided by comparing HMAC-SHA256 digests of the
 * two tokens under a random per-process key (the "double HMAC"
 * trick): the memcmp then runs over two fixed-length,
 * attacker-unpredictable digests, so its timing leaks nothing about
 * the stored secret — including its length.
 */

#ifndef FOSM_TENANT_AUTH_HH
#define FOSM_TENANT_AUTH_HH

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace fosm::tenant {

using Sha256Digest = std::array<std::uint8_t, 32>;

/** SHA-256 of an arbitrary byte string. */
Sha256Digest sha256(std::string_view data);

/** HMAC-SHA256 (RFC 2104) of data under key. */
Sha256Digest hmacSha256(std::string_view key, std::string_view data);

/** Lowercase hex of a digest. */
std::string toHex(const Sha256Digest &digest);

/**
 * Constant-time token equality: true iff presented == stored, with
 * run time independent of where (or whether) they differ and of the
 * stored token's length.
 */
bool tokenEquals(std::string_view presented, std::string_view stored);

/**
 * Non-reversible identifier for a token, safe to show operators in
 * GET /admin/tenants: the first 16 hex chars of its SHA-256.
 */
std::string tokenFingerprint(std::string_view token);

} // namespace fosm::tenant

#endif // FOSM_TENANT_AUTH_HH
