#include "tenant/registry.hh"

#include <fstream>
#include <set>
#include <sstream>
#include <utility>

#include "tenant/auth.hh"

namespace fosm::tenant {

namespace {

server::HttpResponse
jsonError(int status, const std::string &message)
{
    json::Value v = json::Value::object();
    v.set("error", message);
    return server::HttpResponse::json(status, v.dump());
}

} // namespace

const TenantSpec *
TenantSnapshot::verify(const std::string &token) const
{
    // No early exit: every registered token is compared so the scan
    // cost is fixed by the tenant count, not by the match position.
    const TenantSpec *match = nullptr;
    for (const TenantSpec &spec : tenants) {
        if (tokenEquals(token, spec.token))
            match = &spec;
    }
    return match;
}

const TenantSpec *
TenantSnapshot::byId(const std::string &id) const
{
    for (const TenantSpec &spec : tenants)
        if (spec.id == id)
            return &spec;
    return nullptr;
}

Registry::Registry()
    : snapshot_(std::make_shared<TenantSnapshot>())
{
}

bool
Registry::parseTenants(const json::Value &doc,
                       std::vector<TenantSpec> &out,
                       std::string &error)
{
    out.clear();
    if (!doc.isObject()) {
        error = "tenants document must be a JSON object";
        return false;
    }
    const json::Value *list = doc.find("tenants");
    if (!list || !list->isArray()) {
        error = "missing 'tenants' array";
        return false;
    }
    std::set<std::string> seen;
    for (const json::Value &entry : list->items()) {
        if (!entry.isObject()) {
            error = "each tenant must be an object";
            return false;
        }
        TenantSpec spec;
        const json::Value *id = entry.find("id");
        if (!id || !id->isString() || id->asString().empty()) {
            error = "tenant missing non-empty string 'id'";
            return false;
        }
        spec.id = id->asString();
        // Tenant ids become Prometheus label values and HTTP header
        // values; keep them to a tame charset.
        for (const char c : spec.id) {
            const bool ok = (c >= 'a' && c <= 'z') ||
                            (c >= 'A' && c <= 'Z') ||
                            (c >= '0' && c <= '9') || c == '-' ||
                            c == '_' || c == '.';
            if (!ok) {
                error = "tenant id '" + spec.id +
                        "' has characters outside [A-Za-z0-9._-]";
                return false;
            }
        }
        if (!seen.insert(spec.id).second) {
            error = "duplicate tenant id '" + spec.id + "'";
            return false;
        }
        const json::Value *token = entry.find("token");
        if (!token || !token->isString() ||
            token->asString().empty()) {
            error = "tenant '" + spec.id +
                    "' missing non-empty string 'token'";
            return false;
        }
        spec.token = token->asString();
        if (const json::Value *w = entry.find("weight")) {
            if (!w->isNumber() || w->asDouble() <= 0.0) {
                error = "tenant '" + spec.id +
                        "' weight must be a positive number";
                return false;
            }
            spec.weight = w->asDouble();
        }
        if (const json::Value *r = entry.find("rate_rps")) {
            if (!r->isNumber() || r->asDouble() < 0.0) {
                error = "tenant '" + spec.id +
                        "' rate_rps must be >= 0";
                return false;
            }
            spec.rateRps = r->asDouble();
        }
        if (const json::Value *b = entry.find("burst")) {
            if (!b->isNumber() || b->asDouble() < 0.0) {
                error = "tenant '" + spec.id + "' burst must be >= 0";
                return false;
            }
            spec.burst = b->asDouble();
        }
        if (spec.burst == 0.0)
            spec.burst = 2.0 * spec.rateRps;
        if (const json::Value *m = entry.find("max_inflight")) {
            if (!m->isNumber() || m->asDouble() < 0.0) {
                error = "tenant '" + spec.id +
                        "' max_inflight must be >= 0";
                return false;
            }
            spec.maxInflight =
                static_cast<std::uint64_t>(m->asInt());
        }
        out.push_back(std::move(spec));
    }
    return true;
}

bool
Registry::loadFile(const std::string &path, std::string &error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        error = "cannot open tenants file: " + path;
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    json::Value doc;
    if (!json::parse(buffer.str(), doc, &error)) {
        error = path + ": invalid JSON: " + error;
        return false;
    }
    std::vector<TenantSpec> tenants;
    if (!parseTenants(doc, tenants, error)) {
        error = path + ": " + error;
        return false;
    }
    return replace(std::move(tenants), error);
}

std::uint32_t
Registry::classIdFor(const std::string &id)
{
    const auto it = classIds_.find(id);
    if (it != classIds_.end())
        return it->second;
    const std::uint32_t cls = nextClassId_++;
    classIds_.emplace(id, cls);
    return cls;
}

bool
Registry::replace(std::vector<TenantSpec> tenants, std::string &error)
{
    (void)error;
    auto next = std::make_shared<TenantSnapshot>();
    next->tenants = std::move(tenants);
    std::vector<const TenantSpec *> fresh;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (TenantSpec &spec : next->tenants) {
            const bool isNew = classIds_.count(spec.id) == 0;
            spec.classId = classIdFor(spec.id);
            if (isNew)
                fresh.push_back(&spec);
        }
        snapshot_ = next;
        // Fire inside the lock so a concurrent replace cannot
        // interleave two hooks for the same first-seen tenant.
        if (newClassHook_) {
            for (const TenantSpec *spec : fresh)
                newClassHook_(*spec);
        }
    }
    return true;
}

std::shared_ptr<const TenantSnapshot>
Registry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return snapshot_;
}

void
Registry::onNewClass(std::function<void(const TenantSpec &)> hook)
{
    std::lock_guard<std::mutex> lock(mutex_);
    newClassHook_ = std::move(hook);
    if (newClassHook_) {
        for (const TenantSpec &spec : snapshot_->tenants)
            newClassHook_(spec);
    }
}

std::uint32_t
Registry::classCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return nextClassId_;
}

server::HttpResponse
Registry::handleAdmin(const server::HttpRequest &req)
{
    if (req.method == "POST") {
        json::Value doc;
        std::string error;
        if (!json::parse(req.body, doc, &error))
            return jsonError(400, "invalid JSON body: " + error);
        std::vector<TenantSpec> tenants;
        if (!parseTenants(doc, tenants, error))
            return jsonError(400, error);
        replace(std::move(tenants), error);
        // Fall through to the listing so the caller sees the state
        // it just published.
    } else if (req.method != "GET") {
        return jsonError(405, "use GET or POST");
    }

    const std::shared_ptr<const TenantSnapshot> snap = snapshot();
    json::Value body = json::Value::object();
    body.set("auth_enabled", snap->enabled());
    json::Value list = json::Value::array();
    for (const TenantSpec &spec : snap->tenants) {
        json::Value t = json::Value::object();
        t.set("id", spec.id);
        t.set("token_sha256", tokenFingerprint(spec.token));
        t.set("weight", spec.weight);
        t.set("rate_rps", spec.rateRps);
        t.set("burst", spec.burst);
        t.set("max_inflight",
              static_cast<std::uint64_t>(spec.maxInflight));
        t.set("class", static_cast<std::uint64_t>(spec.classId));
        list.push(std::move(t));
    }
    body.set("tenants", std::move(list));
    return server::HttpResponse::json(200, body.dump());
}

} // namespace fosm::tenant
