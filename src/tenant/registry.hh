/**
 * @file
 * The tenant registry: who may talk to the service and with what
 * provisioning. Tenants are declared in a JSON config file
 * (`--tenants-file`) and live-editable over GET/POST /admin/tenants;
 * edits build a fresh immutable Snapshot and atomically swap a
 * shared_ptr (the same RCU pattern as the gateway's live topology),
 * so requests in flight finish against the snapshot they verified
 * under and the hot path takes no lock beyond the pointer load.
 *
 * File / POST body format:
 *
 *   {"tenants": [
 *     {"id": "acme", "token": "shared-secret",
 *      "weight": 2.0,          // DRR drain share (default 1)
 *      "rate_rps": 100,        // token-bucket rate, 0 = unlimited
 *      "burst": 200,           // bucket depth (default 2*rate)
 *      "max_inflight": 64}     // concurrent requests, 0 = unlimited
 *   ]}
 *
 * An empty tenant list (or no --tenants-file at all) disables
 * authentication entirely — the stack behaves exactly as it did
 * before tenants existed.
 *
 * Every tenant id is bound to a small integer *class id*, the index
 * of its sub-queue in the worker pool's FairQueue and the key the
 * per-tenant metrics hang off. Class ids are assigned on first
 * sight and never reused, so counters stay meaningful across live
 * edits; class 0 is reserved for unauthenticated/exempt traffic.
 */

#ifndef FOSM_TENANT_REGISTRY_HH
#define FOSM_TENANT_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "server/http.hh"
#include "server/json.hh"

namespace fosm::tenant {

/** One tenant's declared provisioning. */
struct TenantSpec
{
    std::string id;
    std::string token; ///< shared-secret bearer token
    double weight = 1.0;
    double rateRps = 0.0;      ///< 0 = no rate limit
    double burst = 0.0;        ///< bucket depth; 0 = 2*rateRps
    std::uint64_t maxInflight = 0; ///< 0 = no inflight cap
    std::uint32_t classId = 0; ///< assigned by the registry
};

/** Immutable view of the tenant set; swap-published. */
struct TenantSnapshot
{
    std::vector<TenantSpec> tenants;

    /** Auth is on iff any tenant is declared. */
    bool enabled() const { return !tenants.empty(); }

    /**
     * The tenant whose token matches, or nullptr. Always walks every
     * tenant and compares in constant time, so verification cost
     * does not depend on which (or whether a) tenant matched.
     */
    const TenantSpec *verify(const std::string &token) const;

    const TenantSpec *byId(const std::string &id) const;
};

/**
 * Thread-safe registry. snapshot() is the only hot-path call; load
 * and admin edits serialize on a mutex and publish new snapshots.
 */
class Registry
{
  public:
    Registry();

    /**
     * Parse a tenants document (the file or POST body format) into
     * specs. Returns false with a diagnostic on malformed input:
     * missing/duplicate ids, empty tokens, non-positive weights,
     * negative rates.
     */
    static bool parseTenants(const json::Value &doc,
                             std::vector<TenantSpec> &out,
                             std::string &error);

    /** Load (replace) the tenant set from a JSON file. */
    bool loadFile(const std::string &path, std::string &error);

    /** Replace the tenant set; assigns class ids and publishes. */
    bool replace(std::vector<TenantSpec> tenants, std::string &error);

    /** The current immutable snapshot (never null). */
    std::shared_ptr<const TenantSnapshot> snapshot() const;

    /** Auth enabled right now (snapshot non-empty)? */
    bool enabled() const { return snapshot()->enabled(); }

    /**
     * GET/POST /admin/tenants. GET lists tenants with token
     * fingerprints (never the secrets); POST replaces the set from a
     * {"tenants": [...]} body, 400 on validation failure — fully
     * validated before anything is published.
     */
    server::HttpResponse handleAdmin(const server::HttpRequest &req);

    /**
     * Called under the registry lock for every tenant id seen for
     * the first time — the hook that lets the serving layer register
     * per-tenant metrics for live-added tenants. Fired immediately
     * for tenants already known.
     */
    void onNewClass(
        std::function<void(const TenantSpec &)> hook);

    /** Ever-grown id -> class map size (highest class id + 1). */
    std::uint32_t classCount() const;

  private:
    /** Lowest-never-reused class id for id; lock held. */
    std::uint32_t classIdFor(const std::string &id);

    mutable std::mutex mutex_;
    std::shared_ptr<const TenantSnapshot> snapshot_;
    std::map<std::string, std::uint32_t> classIds_;
    std::uint32_t nextClassId_ = 1; ///< 0 = unauthenticated class
    std::function<void(const TenantSpec &)> newClassHook_;
};

} // namespace fosm::tenant

#endif // FOSM_TENANT_REGISTRY_HH
