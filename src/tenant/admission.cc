#include "tenant/admission.hh"

#include <algorithm>
#include <cctype>
#include <cmath>

namespace fosm::tenant {

Admission::Admission(Registry &registry,
                     server::MetricsRegistry *metrics,
                     AdmissionOptions options)
    : registry_(registry), metrics_(metrics), options_(options)
{
    if (metrics_) {
        authFailures_ = &metrics_->counter(
            "fosm_tenant_auth_failures_total",
            "Requests answered 401: missing or unknown bearer "
            "token");
    }
}

bool
Admission::exemptPath(const std::string &path)
{
    if (path == "/healthz" || path == "/metrics" ||
        path == "/v1/store/stats")
        return true;
    return path.rfind("/admin/", 0) == 0;
}

std::string
Admission::bearerToken(const server::HttpRequest &req)
{
    const std::string &auth = req.header("authorization");
    constexpr const char *scheme = "bearer ";
    constexpr std::size_t schemeLen = 7;
    if (auth.size() <= schemeLen)
        return std::string();
    for (std::size_t i = 0; i < schemeLen; ++i) {
        if (std::tolower(static_cast<unsigned char>(auth[i])) !=
            scheme[i])
            return std::string();
    }
    std::size_t from = schemeLen;
    while (from < auth.size() && auth[from] == ' ')
        ++from;
    return auth.substr(from);
}

Admission::State &
Admission::stateFor(const TenantSpec &spec)
{
    std::lock_guard<std::mutex> lock(statesMutex_);
    auto &slot = states_[spec.id];
    if (!slot) {
        slot = std::make_unique<State>();
        if (metrics_) {
            const std::string label =
                "tenant=\"" + spec.id + "\"";
            slot->admitted = &metrics_->counter(
                "fosm_tenant_admitted_total",
                "Requests admitted past tenant auth and quotas",
                label);
            slot->limited = &metrics_->counter(
                "fosm_tenant_429_total",
                "Requests rejected 429: over the tenant's rate "
                "limit or inflight quota",
                label);
            slot->inflightGauge = &metrics_->gauge(
                "fosm_tenant_inflight",
                "Requests this tenant has in flight", label);
        }
    }
    return *slot;
}

bool
Admission::takeToken(State &state, const TenantSpec &spec,
                     std::chrono::steady_clock::time_point now,
                     int &retryAfterSeconds)
{
    std::lock_guard<std::mutex> lock(state.mutex);
    if (!state.primed) {
        // A fresh tenant starts with a full bucket.
        state.tokens = std::max(1.0, spec.burst);
        state.last = now;
        state.primed = true;
    }
    const double dt =
        std::chrono::duration<double>(now - state.last).count();
    state.last = now;
    const double depth = std::max(1.0, spec.burst);
    state.tokens = std::min(
        depth, state.tokens + dt * spec.rateRps);
    if (state.tokens >= 1.0) {
        state.tokens -= 1.0;
        return true;
    }
    const double wait =
        spec.rateRps > 0.0
            ? (1.0 - state.tokens) / spec.rateRps
            : 1.0;
    retryAfterSeconds =
        std::max(1, static_cast<int>(std::ceil(wait)));
    return false;
}

AdmitDecision
Admission::admit(const server::HttpRequest &request)
{
    AdmitDecision decision;
    const std::shared_ptr<const TenantSnapshot> snap =
        registry_.snapshot();
    if (!snap->enabled())
        return decision; // unauthenticated mode: class 0, admitted
    if (exemptPath(request.path()))
        return decision;

    const std::string token = bearerToken(request);
    if (token.empty()) {
        if (authFailures_)
            authFailures_->inc();
        decision.status = 401;
        decision.error = "missing bearer token";
        return decision;
    }
    const TenantSpec *spec = snap->verify(token);
    if (!spec) {
        if (authFailures_)
            authFailures_->inc();
        decision.status = 401;
        decision.error = "unknown bearer token";
        return decision;
    }

    decision.tenantId = spec->id;
    decision.classId = spec->classId;
    decision.weight = spec->weight;
    State &state = stateFor(*spec);

    if (options_.enforceRate && spec->rateRps > 0.0) {
        int retryAfter = 0;
        if (!takeToken(state, *spec,
                       std::chrono::steady_clock::now(),
                       retryAfter)) {
            if (state.limited)
                state.limited->inc();
            decision.status = 429;
            decision.error = "tenant '" + spec->id +
                             "' rate limit exceeded";
            decision.retryAfterSeconds = retryAfter;
            return decision;
        }
    }

    if (options_.enforceInflight && spec->maxInflight > 0) {
        const std::int64_t now =
            state.inflight.fetch_add(1,
                                     std::memory_order_relaxed) +
            1;
        if (now > static_cast<std::int64_t>(spec->maxInflight)) {
            state.inflight.fetch_sub(1, std::memory_order_relaxed);
            if (state.limited)
                state.limited->inc();
            decision.status = 429;
            decision.error = "tenant '" + spec->id +
                             "' inflight quota exceeded";
            decision.retryAfterSeconds = 1;
            return decision;
        }
        decision.inflightHeld = true;
        if (state.inflightGauge)
            state.inflightGauge->set(now);
    }

    if (state.admitted)
        state.admitted->inc();
    return decision;
}

void
Admission::release(const AdmitDecision &decision)
{
    if (!decision.inflightHeld)
        return;
    std::lock_guard<std::mutex> lock(statesMutex_);
    const auto it = states_.find(decision.tenantId);
    if (it == states_.end())
        return;
    const std::int64_t now =
        it->second->inflight.fetch_sub(1,
                                       std::memory_order_relaxed) -
        1;
    if (it->second->inflightGauge)
        it->second->inflightGauge->set(now);
}

} // namespace fosm::tenant
