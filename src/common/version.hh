/**
 * @file
 * Version constants folded into persistent-store keys. Evaluations
 * are deterministic for a given model implementation, but the
 * implementation itself evolves: when model constants, the response
 * schema, or the persisted characterization encoding change, the
 * corresponding version below must be bumped so entries written by an
 * older build are *ignored* (a clean miss and recompute), never
 * served stale.
 */

#ifndef FOSM_COMMON_VERSION_HH
#define FOSM_COMMON_VERSION_HH

#include <cstdint>

namespace fosm {

/**
 * Version of the model semantics + response schema, folded into every
 * response-cache key (in memory and on disk). Bump whenever a change
 * makes previously computed responses non-reproducible: new or
 * renamed response members, changed model constants or defaults,
 * different rounding/serialization.
 */
inline constexpr std::uint32_t modelSchemaVersion = 1;

/**
 * Version of the binary encoding used for persisted workload
 * characterizations (miss profile + IW curve). Bump when the
 * encoder/decoder layout changes; old entries then miss by key.
 */
inline constexpr std::uint32_t characterizationFormatVersion = 1;

/**
 * Version of the binary encoding used for persisted trend-study rows
 * ("t/" keys, server/trend_studies.cc). Bump when the row layout or
 * the trend computations change; old entries then miss by key.
 */
inline constexpr std::uint32_t trendRowFormatVersion = 1;

/**
 * Version of the application/x-fosm-batch wire format the gateway
 * speaks to backends for /v1/batch (server/batch.hh). Carried in
 * every frame; a receiver rejects frames from a different vintage
 * with 400 rather than misdecoding them. Bump when the frame layout
 * changes.
 */
inline constexpr std::uint32_t batchWireFormatVersion = 1;

} // namespace fosm

#endif // FOSM_COMMON_VERSION_HH
