#include "common/thread_pool.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace fosm {

namespace {
/** Set while the current thread executes pool tasks; a nested
 *  parallelFor then runs inline instead of deadlocking. */
thread_local bool inPoolLoop = false;
} // namespace

std::size_t
ThreadPool::defaultSize()
{
    if (const char *env = std::getenv("FOSM_THREADS")) {
        const long v = std::atol(env);
        if (v >= 1)
            return static_cast<std::size_t>(v);
        warn("ignoring FOSM_THREADS=", env, " (need >= 1)");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(std::size_t threads)
{
    if (threads == 0)
        threads = defaultSize();
    // A pool of one runs everything inline on the caller; spawning a
    // lone worker would only add handoff latency.
    if (threads == 1)
        return;
    threads_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        threads_.emplace_back([this] { workerMain(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool(0);
    return pool;
}

void
ThreadPool::runLoop(Loop &loop)
{
    const bool was_in_loop = inPoolLoop;
    inPoolLoop = true;
    for (;;) {
        const std::size_t i = loop.next.fetch_add(1);
        if (i >= loop.n)
            break;
        try {
            (*loop.fn)(i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(loop.errMutex);
            // Keep the lowest-index exception so reruns fail the
            // same way regardless of thread interleaving.
            if (!loop.error || i < loop.errorIndex) {
                loop.error = std::current_exception();
                loop.errorIndex = i;
            }
        }
        if (loop.done.fetch_add(1) + 1 == loop.n) {
            std::lock_guard<std::mutex> lock(mutex_);
            idle_.notify_all();
        }
    }
    inPoolLoop = was_in_loop;
}

void
ThreadPool::workerMain()
{
    std::uint64_t seen = 0;
    for (;;) {
        Loop *loop = nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [&] {
                return stop_ || generation_ != seen;
            });
            if (stop_)
                return;
            seen = generation_;
            loop = current_;
            if (loop)
                ++loop->active;
        }
        if (!loop)
            continue;
        runLoop(*loop);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --loop->active;
        }
        idle_.notify_all();
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    if (threads_.empty() || inPoolLoop) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i); // inline; exceptions propagate directly
        return;
    }

    std::lock_guard<std::mutex> submit(submitMutex_);
    Loop loop;
    loop.n = n;
    loop.fn = &fn;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        fosm_assert(current_ == nullptr,
                    "parallelFor state corrupted");
        current_ = &loop;
        ++generation_;
    }
    wake_.notify_all();

    // The caller is a worker too: with k threads the loop runs k+1
    // strands, and a pool used from its own task cannot deadlock.
    runLoop(loop);

    {
        // Wait until every task finished AND no worker still holds a
        // pointer into this stack frame.
        std::unique_lock<std::mutex> lock(mutex_);
        idle_.wait(lock, [&] {
            return loop.done.load() == loop.n && loop.active == 0;
        });
        current_ = nullptr;
    }
    if (loop.error)
        std::rethrow_exception(loop.error);
}

} // namespace fosm
