/**
 * @file
 * Fixed-size thread pool with deterministic fork-join helpers.
 *
 * The experiment drivers are embarrassingly parallel: every design
 * point (benchmark x configuration) is independent, and the serial
 * drivers spent almost all their wall-clock waiting on one design
 * point at a time. parallelFor / parallelMap fan such loops out over
 * a fixed set of worker threads while keeping the *results* in input
 * order, so tables printed from the mapped values are byte-identical
 * to a serial run.
 *
 * Design notes:
 *  - No work stealing: tasks are claimed from a shared atomic index,
 *    which is enough when every task is coarse (a whole simulation).
 *  - Exceptions thrown by a task are captured and rethrown on the
 *    calling thread after the loop finishes (first one wins).
 *  - Pool size 1 (or FOSM_THREADS=1, or a single-core host) runs the
 *    loop inline on the caller with no thread handoff at all, so the
 *    serial path stays exactly as debuggable as before.
 */

#ifndef FOSM_COMMON_THREAD_POOL_HH
#define FOSM_COMMON_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fosm {

/**
 * A fixed set of worker threads executing queued tasks. Construct
 * with the desired size; 0 picks a default from FOSM_THREADS or
 * std::thread::hardware_concurrency().
 */
class ThreadPool
{
  public:
    explicit ThreadPool(std::size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads (>= 1). */
    std::size_t size() const { return threads_.empty()
                                   ? 1
                                   : threads_.size(); }

    /**
     * Run fn(i) for i in [0, n) across the pool and block until all
     * iterations finish. Iterations are claimed in index order, one
     * at a time (coarse tasks). If any iteration throws, the
     * lowest-index exception is rethrown here after the join.
     *
     * Re-entrant: a parallelFor issued from inside a pool task runs
     * inline on that task's thread (nested parallelism serializes
     * rather than deadlocking). Concurrent top-level calls from
     * different threads are serialized against each other.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

    /** The process-wide pool used by the experiment drivers. */
    static ThreadPool &global();

    /** Default size: FOSM_THREADS env var, else hardware threads. */
    static std::size_t defaultSize();

  private:
    struct Loop
    {
        std::size_t n = 0;
        const std::function<void(std::size_t)> *fn = nullptr;
        std::atomic<std::size_t> next{0};
        std::atomic<std::size_t> done{0};
        int active = 0; ///< workers inside runLoop; guarded by mutex_
        std::mutex errMutex;
        std::exception_ptr error;
        std::size_t errorIndex = 0;
    };

    void workerMain();
    void runLoop(Loop &loop);

    std::vector<std::thread> threads_;
    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable idle_;
    /** Serializes concurrent top-level parallelFor calls. */
    std::mutex submitMutex_;
    Loop *current_ = nullptr;
    std::uint64_t generation_ = 0;
    bool stop_ = false;
};

/**
 * Map fn over [0, n) on the global pool, collecting the results in
 * index order. fn must be callable concurrently from several threads.
 */
template <typename Fn>
auto
parallelMapIndex(std::size_t n, Fn &&fn)
    -> std::vector<decltype(fn(std::size_t{0}))>
{
    using R = decltype(fn(std::size_t{0}));
    std::vector<R> out(n);
    ThreadPool::global().parallelFor(
        n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
}

/**
 * Map fn over the items of a vector on the global pool; result i is
 * fn(items[i]), in input order regardless of completion order.
 */
template <typename T, typename Fn>
auto
parallelMap(const std::vector<T> &items, Fn &&fn)
    -> std::vector<decltype(fn(items[std::size_t{0}]))>
{
    return parallelMapIndex(
        items.size(), [&](std::size_t i) { return fn(items[i]); });
}

/** parallelFor over the global pool (see ThreadPool::parallelFor). */
template <typename Fn>
void
parallelFor(std::size_t n, Fn &&fn)
{
    ThreadPool::global().parallelFor(
        n, [&](std::size_t i) { fn(i); });
}

} // namespace fosm

#endif // FOSM_COMMON_THREAD_POOL_HH
