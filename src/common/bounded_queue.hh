/**
 * @file
 * Bounded multi-producer / multi-consumer task queue. The serving
 * layer admits work through one of these so that overload turns into
 * fast, explicit rejection (the producer sees a full queue and can
 * answer 503) instead of unbounded memory growth and collapsing tail
 * latency. Closing the queue lets consumers drain the remaining items
 * and exit cleanly, which is exactly the graceful-shutdown contract
 * the server needs.
 */

#ifndef FOSM_COMMON_BOUNDED_QUEUE_HH
#define FOSM_COMMON_BOUNDED_QUEUE_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace fosm {

/**
 * Fixed-capacity FIFO. tryPush never blocks (returns false when
 * full); pop blocks until an item arrives or the queue is closed and
 * empty. All methods are thread-safe.
 */
template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

    BoundedQueue(const BoundedQueue &) = delete;
    BoundedQueue &operator=(const BoundedQueue &) = delete;

    /**
     * Enqueue if there is room and the queue is open. Returns false
     * on a full or closed queue — the caller decides how to shed the
     * load.
     */
    bool
    tryPush(T item)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (closed_ || items_.size() >= capacity_)
                return false;
            items_.push_back(std::move(item));
        }
        ready_.notify_one();
        return true;
    }

    /**
     * Dequeue the oldest item, blocking while the queue is open but
     * empty. Returns false only when the queue is closed and fully
     * drained, which is the consumer's signal to exit.
     */
    bool
    pop(T &out)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
        if (items_.empty())
            return false;
        out = std::move(items_.front());
        items_.pop_front();
        return true;
    }

    /**
     * Dequeue up to max items in FIFO order into out (cleared
     * first), blocking while the queue is open but empty. One
     * wakeup, one lock acquisition, several items — the batch-
     * admission path that amortizes the handoff under load. Returns
     * false only when the queue is closed and fully drained.
     */
    bool
    popBatch(std::vector<T> &out, std::size_t max)
    {
        out.clear();
        std::unique_lock<std::mutex> lock(mutex_);
        ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
        if (items_.empty())
            return false;
        const std::size_t n = std::min(max, items_.size());
        out.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            out.push_back(std::move(items_.front()));
            items_.pop_front();
        }
        return true;
    }

    /**
     * Refuse new items; queued items remain poppable. Idempotent.
     * Wakes every blocked consumer.
     */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        ready_.notify_all();
    }

    /** Items currently queued (racy snapshot, for metrics). */
    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }

    bool
    closed() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }

    std::size_t capacity() const { return capacity_; }

  private:
    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable ready_;
    std::deque<T> items_;
    bool closed_ = false;
};

} // namespace fosm

#endif // FOSM_COMMON_BOUNDED_QUEUE_HH
