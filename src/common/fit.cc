#include "common/fit.hh"

#include <cmath>

#include "common/logging.hh"

namespace fosm {

LineFit
fitLine(const std::vector<double> &x, const std::vector<double> &y)
{
    fosm_assert(x.size() == y.size(), "fitLine: size mismatch");
    fosm_assert(x.size() >= 2, "fitLine: need at least 2 points");

    const double n = static_cast<double>(x.size());
    double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        sx += x[i];
        sy += y[i];
        sxx += x[i] * x[i];
        sxy += x[i] * y[i];
    }
    const double denom = n * sxx - sx * sx;
    fosm_assert(denom != 0.0, "fitLine: degenerate x values");

    LineFit fit;
    fit.slope = (n * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / n;
    fit.points = x.size();

    const double ybar = sy / n;
    double ssRes = 0.0, ssTot = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double pred = fit.slope * x[i] + fit.intercept;
        ssRes += (y[i] - pred) * (y[i] - pred);
        ssTot += (y[i] - ybar) * (y[i] - ybar);
    }
    fit.r2 = ssTot == 0.0 ? 1.0 : 1.0 - ssRes / ssTot;
    return fit;
}

double
PowerFit::operator()(double x) const
{
    return alpha * std::pow(x, beta);
}

PowerFit
fitPowerLaw(const std::vector<double> &x, const std::vector<double> &y)
{
    fosm_assert(x.size() == y.size(), "fitPowerLaw: size mismatch");
    std::vector<double> lx, ly;
    lx.reserve(x.size());
    ly.reserve(y.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
        fosm_assert(x[i] > 0.0 && y[i] > 0.0,
                    "fitPowerLaw: samples must be positive");
        lx.push_back(std::log2(x[i]));
        ly.push_back(std::log2(y[i]));
    }
    const LineFit line = fitLine(lx, ly);

    PowerFit fit;
    fit.beta = line.slope;
    fit.alpha = std::exp2(line.intercept);
    fit.r2 = line.r2;
    fit.points = x.size();
    return fit;
}

} // namespace fosm
