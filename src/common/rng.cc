#include "common/rng.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace fosm {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
}

std::uint64_t
Rng::rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    fosm_assert(bound > 0, "nextBounded requires bound > 0");
    // Lemire's nearly-divisionless method.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < bound) {
        std::uint64_t t = -bound % bound;
        while (l < t) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            l = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

double
Rng::nextDouble()
{
    return (next() >> 11) * 0x1.0p-53;
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    fosm_assert(lo <= hi, "uniformInt requires lo <= hi");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBounded(span));
}

bool
Rng::bernoulli(double p)
{
    return nextDouble() < p;
}

std::uint64_t
Rng::geometric(double p)
{
    fosm_assert(p > 0.0 && p <= 1.0, "geometric requires p in (0,1]");
    if (p >= 1.0)
        return 0;
    const double u = 1.0 - nextDouble(); // in (0, 1]
    return static_cast<std::uint64_t>(
        std::floor(std::log(u) / std::log1p(-p)));
}

double
Rng::normal(double mean, double stddev)
{
    if (haveSpare_) {
        haveSpare_ = false;
        return mean + stddev * spareNormal_;
    }
    double u1 = 0.0;
    do {
        u1 = nextDouble();
    } while (u1 <= 0.0);
    const double u2 = nextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    spareNormal_ = r * std::sin(theta);
    haveSpare_ = true;
    return mean + stddev * r * std::cos(theta);
}

double
Rng::exponential(double mean)
{
    fosm_assert(mean > 0.0, "exponential requires mean > 0");
    double u = 0.0;
    do {
        u = nextDouble();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

std::size_t
Rng::discrete(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights)
        total += w;
    fosm_assert(total > 0.0, "discrete requires positive total weight");
    double u = nextDouble() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        u -= weights[i];
        if (u < 0.0)
            return i;
    }
    return weights.size() - 1;
}

std::uint64_t
Rng::zipf(std::uint64_t n, double s)
{
    fosm_assert(n > 0, "zipf requires n > 0");
    // Inverse-CDF on the continuous approximation; adequate for workload
    // skew purposes and O(1) per draw.
    if (s <= 0.0)
        return nextBounded(n);
    const double u = nextDouble();
    if (std::abs(s - 1.0) < 1e-9) {
        const double hn = std::log(static_cast<double>(n) + 1.0);
        const double x = std::exp(u * hn) - 1.0;
        return std::min<std::uint64_t>(
            static_cast<std::uint64_t>(x), n - 1);
    }
    const double oneMinusS = 1.0 - s;
    const double hn =
        (std::pow(static_cast<double>(n) + 1.0, oneMinusS) - 1.0) /
        oneMinusS;
    const double x =
        std::pow(u * hn * oneMinusS + 1.0, 1.0 / oneMinusS) - 1.0;
    return std::min<std::uint64_t>(static_cast<std::uint64_t>(x), n - 1);
}

DiscreteSampler::DiscreteSampler(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        fosm_assert(w >= 0.0, "DiscreteSampler weights must be >= 0");
        total += w;
    }
    fosm_assert(total > 0.0, "DiscreteSampler requires positive weight");
    cdf_.reserve(weights.size());
    double acc = 0.0;
    for (double w : weights) {
        acc += w / total;
        cdf_.push_back(acc);
    }
    cdf_.back() = 1.0;
}

std::size_t
DiscreteSampler::operator()(Rng &rng) const
{
    fosm_assert(!cdf_.empty(), "sampling from empty DiscreteSampler");
    const double u = rng.nextDouble();
    const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
    return std::min<std::size_t>(it - cdf_.begin(), cdf_.size() - 1);
}

double
DiscreteSampler::probability(std::size_t idx) const
{
    fosm_assert(idx < cdf_.size(), "probability index out of range");
    return idx == 0 ? cdf_[0] : cdf_[idx] - cdf_[idx - 1];
}

} // namespace fosm
