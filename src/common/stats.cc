#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace fosm {

void
RunningStats::add(double x)
{
    if (n_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
RunningStats::reset()
{
    *this = RunningStats();
}

double
RunningStats::mean() const
{
    return n_ == 0 ? 0.0 : mean_;
}

double
RunningStats::variance() const
{
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStats::min() const
{
    return n_ == 0 ? 0.0 : min_;
}

double
RunningStats::max() const
{
    return n_ == 0 ? 0.0 : max_;
}

Histogram::Histogram(std::uint64_t max_value)
    : buckets_(max_value + 1, 0)
{
}

void
Histogram::add(std::uint64_t value, std::uint64_t weight)
{
    samples_ += weight;
    weightedSum_ += static_cast<double>(value) *
                    static_cast<double>(weight);
    if (value < buckets_.size())
        buckets_[value] += weight;
    else
        overflow_ += weight;
}

Histogram
Histogram::restore(std::vector<std::uint64_t> counts,
                   std::uint64_t samples, std::uint64_t overflow,
                   double weighted_sum)
{
    Histogram h(counts.empty() ? 0 : counts.size() - 1);
    h.buckets_ = std::move(counts);
    h.samples_ = samples;
    h.overflow_ = overflow;
    h.weightedSum_ = weighted_sum;
    return h;
}

std::uint64_t
Histogram::countAt(std::uint64_t value) const
{
    return value < buckets_.size() ? buckets_[value] : 0;
}

double
Histogram::mean() const
{
    return samples_ == 0
        ? 0.0
        : weightedSum_ / static_cast<double>(samples_);
}

double
Histogram::cdf(std::uint64_t value) const
{
    if (samples_ == 0)
        return 0.0;
    std::uint64_t acc = 0;
    const std::uint64_t cap =
        std::min<std::uint64_t>(value, buckets_.size() - 1);
    for (std::uint64_t v = 0; v <= cap; ++v)
        acc += buckets_[v];
    return static_cast<double>(acc) / static_cast<double>(samples_);
}

std::vector<double>
Histogram::pmf() const
{
    std::vector<double> out(buckets_.size(), 0.0);
    if (samples_ == 0)
        return out;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        out[i] = static_cast<double>(buckets_[i]) /
                 static_cast<double>(samples_);
    }
    return out;
}

} // namespace fosm
