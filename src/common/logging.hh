/**
 * @file
 * Status and error reporting helpers in the gem5 spirit: panic() for
 * internal invariant violations, fatal() for user/configuration errors,
 * warn()/inform() for non-fatal diagnostics.
 */

#ifndef FOSM_COMMON_LOGGING_HH
#define FOSM_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace fosm {

namespace detail {

/** Format the variadic tail of a log call into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

/** Emit a tagged message to stderr and optionally terminate. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/**
 * Abort on a condition that indicates a bug in fosm itself.
 * Mirrors gem5's panic(): never the user's fault.
 */
#define fosm_panic(...) \
    ::fosm::detail::panicImpl(__FILE__, __LINE__, \
                              ::fosm::detail::concat(__VA_ARGS__))

/**
 * Exit on a condition caused by invalid user input or configuration.
 * Mirrors gem5's fatal().
 */
#define fosm_fatal(...) \
    ::fosm::detail::fatalImpl(__FILE__, __LINE__, \
                              ::fosm::detail::concat(__VA_ARGS__))

/** Panic unless the given invariant holds. */
#define fosm_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            ::fosm::detail::panicImpl(__FILE__, __LINE__, \
                ::fosm::detail::concat("assertion failed: " #cond " ", \
                                       ##__VA_ARGS__)); \
        } \
    } while (0)

/** Non-fatal warning about questionable but survivable conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Informational status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

} // namespace fosm

#endif // FOSM_COMMON_LOGGING_HH
