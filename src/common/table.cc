#include "common/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace fosm {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    fosm_assert(!headers_.empty(), "TextTable needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    fosm_assert(cells.size() == headers_.size(),
                "TextTable row width ", cells.size(),
                " != header width ", headers_.size());
    rows_.push_back(std::move(cells));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]))
               << row[c];
            if (c + 1 != row.size())
                os << "  ";
        }
        os << '\n';
    };

    emit_row(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 != widths.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit_row(row);
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 != row.size())
                os << ',';
        }
        os << '\n';
    };
    emit_row(headers_);
    for (const auto &row : rows_)
        emit_row(row);
}

std::string
TextTable::num(double value, int decimals)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(decimals) << value;
    return os.str();
}

std::string
TextTable::num(std::uint64_t value)
{
    return std::to_string(value);
}

void
printBanner(std::ostream &os, const std::string &title)
{
    os << "\n=== " << title << " ===\n";
}

} // namespace fosm
