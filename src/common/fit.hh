/**
 * @file
 * Least-squares fitting helpers. The paper fits the IW characteristic
 * to a power law I = alpha * W^beta by linear regression in log-log
 * space (Section 3, Table 1, Figure 5); this module provides that
 * regression plus goodness-of-fit measures.
 */

#ifndef FOSM_COMMON_FIT_HH
#define FOSM_COMMON_FIT_HH

#include <cstddef>
#include <vector>

namespace fosm {

/** Result of an ordinary least-squares line fit y = slope*x + intercept. */
struct LineFit
{
    double slope = 0.0;
    double intercept = 0.0;
    /** Coefficient of determination in the fitted space. */
    double r2 = 0.0;
    std::size_t points = 0;
};

/**
 * Fit a straight line through (x, y) samples by ordinary least squares.
 * Requires at least two distinct x values.
 */
LineFit fitLine(const std::vector<double> &x, const std::vector<double> &y);

/** Result of a power-law fit y = alpha * x^beta. */
struct PowerFit
{
    double alpha = 0.0;
    double beta = 0.0;
    /** R^2 of the underlying log-log line fit. */
    double r2 = 0.0;
    std::size_t points = 0;

    /** Evaluate the fitted law at x. */
    double operator()(double x) const;
};

/**
 * Fit y = alpha * x^beta by regressing log2(y) on log2(x).
 * All samples must be strictly positive.
 */
PowerFit fitPowerLaw(const std::vector<double> &x,
                     const std::vector<double> &y);

} // namespace fosm

#endif // FOSM_COMMON_FIT_HH
