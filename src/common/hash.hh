/**
 * @file
 * FNV-1a 64-bit hashing, shared by the serving layer (cache shard
 * selection, request digests) and the persistent store (record key
 * digests, trace content digests). Header-only: the hash is a few
 * instructions per byte and inlining matters on the digest paths.
 */

#ifndef FOSM_COMMON_HASH_HH
#define FOSM_COMMON_HASH_HH

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace fosm {

inline constexpr std::uint64_t fnvOffsetBasis =
    1469598103934665603ull;
inline constexpr std::uint64_t fnvPrime = 1099511628211ull;

/**
 * Incremental FNV-1a hasher for digesting structured data
 * field-by-field (never hash raw struct bytes: padding is
 * indeterminate).
 */
class Fnv1a
{
  public:
    void
    update(const void *data, std::size_t size)
    {
        const auto *bytes = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < size; ++i) {
            hash_ ^= bytes[i];
            hash_ *= fnvPrime;
        }
    }

    void
    update(std::string_view s)
    {
        update(s.data(), s.size());
    }

    /** Hash one integral value by its little-endian byte image. */
    template <typename T>
    void
    updateInt(T v)
    {
        const auto u = static_cast<std::uint64_t>(v);
        for (unsigned i = 0; i < sizeof(T); ++i) {
            hash_ ^= static_cast<unsigned char>(u >> (8 * i));
            hash_ *= fnvPrime;
        }
    }

    std::uint64_t digest() const { return hash_; }

  private:
    std::uint64_t hash_ = fnvOffsetBasis;
};

/** One-shot FNV-1a over a byte string. */
inline std::uint64_t
fnv1a64(std::string_view data)
{
    Fnv1a h;
    h.update(data);
    return h.digest();
}

} // namespace fosm

#endif // FOSM_COMMON_HASH_HH
