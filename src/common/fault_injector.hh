/**
 * @file
 * Deterministic fault injection for resilience drills. Production
 * code marks hook points by name ("store.write", "upstream.recv",
 * "serve.handler", ...); a process-wide injector — configured from
 * the FOSM_FAULTS environment variable or programmatically by tests
 * — decides per hook whether to inject a fault and which kind:
 *
 *   delay  sleep N milliseconds, then proceed normally
 *   stall  like delay but meant to exceed peer timeouts (a socket
 *          that accepts and then hangs, a disk that takes seconds)
 *   error  fail the operation (EIO-style) without touching state
 *   short  perform only a prefix of a write, then fail — the torn
 *          record a crash mid-write leaves behind
 *   flip   corrupt one payload byte after checksumming — the silent
 *          media corruption scrub and verify-on-read exist to catch
 *
 * The spec grammar is a comma-separated rule list:
 *
 *   FOSM_FAULTS="store.write=short:0.05,upstream.recv=stall:0.1:800"
 *   FOSM_FAULT_SEED=42
 *
 * i.e. point=kind:probability[:millis]. Every rule draws from its own
 * RNG stream seeded from (seed, point name), so a drill replays
 * identically for a given seed regardless of thread interleaving at
 * OTHER points; runs are deterministic per point, which is what a
 * chaos script asserts against. When no rules are configured (the
 * default), the hot-path cost is one relaxed atomic load.
 */

#ifndef FOSM_COMMON_FAULT_INJECTOR_HH
#define FOSM_COMMON_FAULT_INJECTOR_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <random>
#include <string>
#include <vector>

namespace fosm {

/** What a hook point should do, as decided by the injector. */
enum class FaultKind
{
    None,       ///< proceed normally
    Delay,      ///< sleep delayMs, then proceed
    Stall,      ///< sleep delayMs (meant to exceed peer timeouts)
    Error,      ///< fail the operation
    ShortWrite, ///< write a prefix, then fail (torn record)
    FlipByte,   ///< flip one payload byte (latent corruption)
};

/** One sampled decision. */
struct FaultAction
{
    FaultKind kind = FaultKind::None;
    int delayMs = 0;

    explicit operator bool() const { return kind != FaultKind::None; }
};

/**
 * The process-wide injector. instance() lazily configures itself from
 * FOSM_FAULTS / FOSM_FAULT_SEED; tests call configure() directly.
 * sample() and the counters are thread-safe.
 */
class FaultInjector
{
  public:
    static FaultInjector &instance();

    /**
     * Replace the rule set from a spec string (see file comment).
     * Returns false with a diagnostic on a malformed spec; the
     * previous rules are kept in that case. An empty spec disables
     * injection entirely.
     */
    bool configure(const std::string &spec, std::uint64_t seed,
                   std::string &error);

    /** Drop every rule (used by tests). */
    void reset();

    /** Whether any rule is armed — the only hot-path check. */
    static bool active()
    {
        return active_.load(std::memory_order_relaxed);
    }

    /**
     * Decide what the named hook point should do this time. Returns
     * kind None when no rule matches the point or the rule's coin
     * toss says "no fault this time".
     */
    FaultAction sample(const std::string &point);

    /** Faults actually injected at a point so far (drill assertions,
     *  /metrics). */
    std::uint64_t injected(const std::string &point) const;

    /** Total faults injected across all points. */
    std::uint64_t injectedTotal() const;

    /** Points with at least one armed rule, for introspection. */
    std::vector<std::string> armedPoints() const;

  private:
    FaultInjector() = default;

    struct Rule
    {
        FaultKind kind = FaultKind::None;
        double probability = 0.0;
        int delayMs = 0;
        std::uint64_t hits = 0;
        std::minstd_rand rng;
    };

    static std::atomic<bool> active_;

    mutable std::mutex mutex_;
    std::map<std::string, Rule> rules_;
};

/**
 * Sample the injector at a hook point. The disabled path is one
 * relaxed atomic load — cheap enough for file-I/O and socket paths.
 * The first call primes instance() so FOSM_FAULTS rules arm even
 * when nothing else touches the injector; active() alone can never
 * become true from the environment otherwise.
 */
inline FaultAction
faultAt(const char *point)
{
    static const bool primed = (FaultInjector::instance(), true);
    (void)primed;
    if (!FaultInjector::active())
        return {};
    return FaultInjector::instance().sample(point);
}

/** Sleep out a Delay/Stall action (no-op for other kinds). */
void faultSleep(const FaultAction &action);

} // namespace fosm

#endif // FOSM_COMMON_FAULT_INJECTOR_HH
