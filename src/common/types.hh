/**
 * @file
 * Basic scalar types shared by every fosm library.
 */

#ifndef FOSM_COMMON_TYPES_HH
#define FOSM_COMMON_TYPES_HH

#include <cstdint>

namespace fosm {

/** A memory (byte) address in the simulated machine. */
using Addr = std::uint64_t;

/** A cycle count or timestamp measured in processor clock cycles. */
using Cycle = std::uint64_t;

/** A dynamic-instruction sequence number within a trace. */
using InstSeq = std::uint64_t;

/** An architectural register index. */
using RegIndex = std::int16_t;

/** Sentinel register index meaning "no register". */
constexpr RegIndex invalidReg = -1;

} // namespace fosm

#endif // FOSM_COMMON_TYPES_HH
