#include "common/fault_injector.hh"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "common/hash.hh"
#include "common/logging.hh"

namespace fosm {

std::atomic<bool> FaultInjector::active_{false};

namespace {

bool
parseKind(const std::string &word, FaultKind &kind)
{
    if (word == "delay")
        kind = FaultKind::Delay;
    else if (word == "stall")
        kind = FaultKind::Stall;
    else if (word == "error")
        kind = FaultKind::Error;
    else if (word == "short")
        kind = FaultKind::ShortWrite;
    else if (word == "flip")
        kind = FaultKind::FlipByte;
    else
        return false;
    return true;
}

int
defaultDelayMs(FaultKind kind)
{
    switch (kind) {
    case FaultKind::Delay:
        return 50;
    case FaultKind::Stall:
        return 2000;
    default:
        return 0;
    }
}

} // namespace

FaultInjector &
FaultInjector::instance()
{
    static FaultInjector injector;
    static std::once_flag fromEnv;
    std::call_once(fromEnv, [] {
        const char *spec = std::getenv("FOSM_FAULTS");
        if (!spec || !*spec)
            return;
        std::uint64_t seed = 1;
        if (const char *s = std::getenv("FOSM_FAULT_SEED"))
            seed = std::strtoull(s, nullptr, 10);
        std::string error;
        if (!injector.configure(spec, seed, error))
            fosm_fatal("FOSM_FAULTS: ", error);
        fosm::inform("fault injection armed: ", spec,
                     " (seed ", seed, ")");
    });
    return injector;
}

bool
FaultInjector::configure(const std::string &spec, std::uint64_t seed,
                         std::string &error)
{
    std::map<std::string, Rule> rules;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string item = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            continue;

        const std::size_t eq = item.find('=');
        if (eq == std::string::npos || eq == 0) {
            error = "rule '" + item + "' is not point=kind:prob[:ms]";
            return false;
        }
        const std::string point = item.substr(0, eq);
        const std::string rhs = item.substr(eq + 1);
        const std::size_t c1 = rhs.find(':');
        if (c1 == std::string::npos || c1 + 1 >= rhs.size()) {
            error = "rule '" + item + "' is missing a probability";
            return false;
        }
        Rule rule;
        if (!parseKind(rhs.substr(0, c1), rule.kind)) {
            error = "unknown fault kind '" + rhs.substr(0, c1) +
                    "' (valid: delay, stall, error, short, flip)";
            return false;
        }
        const std::size_t c2 = rhs.find(':', c1 + 1);
        char *end = nullptr;
        const std::string probStr =
            rhs.substr(c1 + 1, c2 == std::string::npos
                                   ? std::string::npos
                                   : c2 - c1 - 1);
        rule.probability = std::strtod(probStr.c_str(), &end);
        if (end == probStr.c_str() || *end != '\0' ||
            rule.probability < 0.0 || rule.probability > 1.0) {
            error = "probability '" + probStr +
                    "' must be a number in [0, 1]";
            return false;
        }
        rule.delayMs = defaultDelayMs(rule.kind);
        if (c2 != std::string::npos) {
            const std::string msStr = rhs.substr(c2 + 1);
            const long ms = std::strtol(msStr.c_str(), &end, 10);
            if (end == msStr.c_str() || *end != '\0' || ms < 0 ||
                ms > 600000) {
                error = "millis '" + msStr +
                        "' must be an integer in [0, 600000]";
                return false;
            }
            rule.delayMs = static_cast<int>(ms);
        }
        // Per-point stream: the same seed replays the same decision
        // sequence at this point no matter what other points do.
        // Fold into minstd's valid seed range [1, 2^31-2]; masking
        // the low bit instead would alias adjacent seeds.
        rule.rng.seed(static_cast<unsigned>(
            (seed ^ fnv1a64(point)) % 2147483646ull + 1ull));
        rules[point] = std::move(rule);
    }

    std::lock_guard<std::mutex> lock(mutex_);
    rules_ = std::move(rules);
    active_.store(!rules_.empty(), std::memory_order_relaxed);
    return true;
}

void
FaultInjector::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    rules_.clear();
    active_.store(false, std::memory_order_relaxed);
}

FaultAction
FaultInjector::sample(const std::string &point)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = rules_.find(point);
    if (it == rules_.end())
        return {};
    Rule &rule = it->second;
    const double roll =
        static_cast<double>(rule.rng() - rule.rng.min()) /
        static_cast<double>(rule.rng.max() - rule.rng.min());
    if (roll >= rule.probability)
        return {};
    ++rule.hits;
    return {rule.kind, rule.delayMs};
}

std::uint64_t
FaultInjector::injected(const std::string &point) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = rules_.find(point);
    return it == rules_.end() ? 0 : it->second.hits;
}

std::uint64_t
FaultInjector::injectedTotal() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t total = 0;
    for (const auto &entry : rules_)
        total += entry.second.hits;
    return total;
}

std::vector<std::string>
FaultInjector::armedPoints() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> points;
    points.reserve(rules_.size());
    for (const auto &entry : rules_)
        points.push_back(entry.first);
    return points;
}

void
faultSleep(const FaultAction &action)
{
    if ((action.kind == FaultKind::Delay ||
         action.kind == FaultKind::Stall) &&
        action.delayMs > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(action.delayMs));
    }
}

} // namespace fosm
