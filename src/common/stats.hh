/**
 * @file
 * Lightweight statistics containers used throughout fosm: running
 * scalar statistics, integer histograms, and discrete distributions.
 * These fill the role of gem5's stats package at the scale this model
 * needs.
 */

#ifndef FOSM_COMMON_STATS_HH
#define FOSM_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fosm {

/**
 * Running mean / variance / min / max over a stream of samples
 * (Welford's algorithm, numerically stable).
 */
class RunningStats
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const RunningStats &other);

    /** Reset to the empty state. */
    void reset();

    std::uint64_t count() const { return n_; }
    double mean() const;
    double variance() const;
    double stddev() const;
    double min() const;
    double max() const;
    double sum() const { return mean_ * static_cast<double>(n_); }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Histogram over non-negative integer values with a dense bucket array
 * up to a cap and an overflow bucket beyond it.
 */
class Histogram
{
  public:
    /** @param max_value largest value tracked exactly. */
    explicit Histogram(std::uint64_t max_value = 1024);

    /** Record one occurrence of the given value. */
    void add(std::uint64_t value, std::uint64_t weight = 1);

    /** Number of samples recorded (including overflowed ones). */
    std::uint64_t samples() const { return samples_; }

    /** Count recorded at exactly this value (0 beyond the cap). */
    std::uint64_t countAt(std::uint64_t value) const;

    /** Count of samples strictly greater than the cap. */
    std::uint64_t overflow() const { return overflow_; }

    /** Mean of recorded values (overflow counted at cap + 1). */
    double mean() const;

    /** Fraction of samples <= value. */
    double cdf(std::uint64_t value) const;

    /** Largest tracked value. */
    std::uint64_t maxValue() const { return buckets_.size() - 1; }

    /**
     * Normalized probability mass at each value [0, maxValue];
     * overflow mass is excluded.
     */
    std::vector<double> pmf() const;

    // -- Raw state, for exact serialization --------------------------

    /** Bucket counts for values [0, maxValue]. */
    const std::vector<std::uint64_t> &counts() const
    {
        return buckets_;
    }

    /** Accumulated value*weight sum (overflow counted at cap + 1). */
    double weightedSum() const { return weightedSum_; }

    /**
     * Reconstitute a histogram from previously serialized raw state.
     * weighted_sum is restored verbatim rather than re-accumulated:
     * floating-point addition order would otherwise differ from the
     * original run and mean() must be bit-identical after a reload.
     */
    static Histogram restore(std::vector<std::uint64_t> counts,
                             std::uint64_t samples,
                             std::uint64_t overflow,
                             double weighted_sum);

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t samples_ = 0;
    std::uint64_t overflow_ = 0;
    double weightedSum_ = 0.0;
};

/**
 * A named value for report generation: simple (name, value, unit)
 * records a bench binary can format.
 */
struct StatRecord
{
    std::string name;
    double value;
    std::string unit;
};

/** Ratio helper that is well-defined for a zero denominator. */
inline double
safeRatio(double num, double den)
{
    return den == 0.0 ? 0.0 : num / den;
}

} // namespace fosm

#endif // FOSM_COMMON_STATS_HH
