/**
 * @file
 * Deterministic pseudo-random number generation for synthetic workload
 * construction. All fosm experiments must be exactly reproducible from a
 * seed, so we carry our own xoshiro256** implementation rather than rely
 * on implementation-defined std::default_random_engine behaviour.
 */

#ifndef FOSM_COMMON_RNG_HH
#define FOSM_COMMON_RNG_HH

#include <cstdint>
#include <vector>

namespace fosm {

/**
 * xoshiro256** by Blackman & Vigna: fast, high-quality, 256-bit state.
 * Seeded through splitmix64 so that any 64-bit seed yields a
 * well-distributed initial state.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) using Lemire's rejection method. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Bernoulli trial with success probability p. */
    bool bernoulli(double p);

    /**
     * Geometric distribution: number of failures before first success
     * with per-trial probability p. Mean (1-p)/p.
     */
    std::uint64_t geometric(double p);

    /** Standard normal via Box-Muller (cached spare value). */
    double normal(double mean = 0.0, double stddev = 1.0);

    /**
     * Exponentially distributed double with the given mean.
     * Used for miss-gap spacing in synthetic address streams.
     */
    double exponential(double mean);

    /** Draw an index according to a discrete weight vector. */
    std::size_t discrete(const std::vector<double> &weights);

    /**
     * Bounded Zipf-like draw over [0, n): probability of k proportional
     * to 1/(k+1)^s. Used for skewed working-set reuse.
     */
    std::uint64_t zipf(std::uint64_t n, double s);

  private:
    std::uint64_t s_[4];
    double spareNormal_ = 0.0;
    bool haveSpare_ = false;

    static std::uint64_t rotl(std::uint64_t x, int k);
};

/**
 * Discrete distribution with precomputed cumulative weights, for hot
 * loops that draw from the same weights millions of times.
 */
class DiscreteSampler
{
  public:
    DiscreteSampler() = default;
    explicit DiscreteSampler(const std::vector<double> &weights);

    /** Draw an index using the supplied RNG. */
    std::size_t operator()(Rng &rng) const;

    /** Number of categories. */
    std::size_t size() const { return cdf_.size(); }

    /** Probability of the given category. */
    double probability(std::size_t idx) const;

  private:
    std::vector<double> cdf_;
};

} // namespace fosm

#endif // FOSM_COMMON_RNG_HH
