/**
 * @file
 * Consistent-hash ring with virtual nodes, the gateway's routing
 * core. Model evaluations are deterministic and cache-keyed by the
 * canonical request digest, so hashing that digest onto a ring of
 * replicas gives every design point exactly one home shard: N
 * replicas' response caches and persistent stores compose into one
 * large, non-overlapping cache instead of N overlapping copies.
 * Virtual nodes (many ring positions per backend) smooth the
 * keyspace split, and consistency means membership changes move only
 * ~1/N of the keys — the rest keep their warm shard.
 *
 * The ring itself is membership-only and immutable-after-setup by
 * convention (backends are configured at gateway start); liveness is
 * layered on top by the caller, which walks the preference order
 * returned by route() and skips ejected backends. That way a dead
 * replica's keys spill to the next replica on the ring and snap back
 * on reinstatement, with zero movement among surviving keys.
 */

#ifndef FOSM_CLUSTER_HASH_RING_HH
#define FOSM_CLUSTER_HASH_RING_HH

#include <cstdint>
#include <string>
#include <vector>

namespace fosm::cluster {

/**
 * The ring. add()/remove() are not thread-safe; build the membership
 * before sharing, then route() freely from any thread.
 */
class HashRing
{
  public:
    /** @param vnodes ring positions per node (keyspace smoothing). */
    explicit HashRing(std::size_t vnodes = 128) : vnodes_(vnodes) {}

    /** Add a node (its name is the identity, e.g. "host:port"). */
    void add(const std::string &node);

    /** Remove a node; only its keys change homes. */
    void remove(const std::string &node);

    /**
     * Preference-ordered distinct node indices for a key hash: the
     * primary (first vnode at or after the hash, wrapping) followed
     * by the successor nodes around the ring. At most maxNodes
     * entries; fewer when the ring has fewer nodes.
     */
    std::vector<std::uint32_t> route(std::uint64_t keyHash,
                                     std::size_t maxNodes) const;

    /** The primary node index for a key hash (ring must be
     *  non-empty). */
    std::uint32_t primary(std::uint64_t keyHash) const;

    const std::string &name(std::uint32_t index) const
    {
        return names_[index];
    }

    std::size_t nodes() const { return names_.size(); }
    std::size_t positions() const { return ring_.size(); }
    std::size_t vnodesPerNode() const { return vnodes_; }

    /**
     * Fraction of the 2^64 keyspace owned by each node (arc lengths
     * of its vnodes) — the ring-occupancy metric. Sums to 1 for a
     * non-empty ring.
     */
    std::vector<double> keyspaceShare() const;

  private:
    void rebuild();

    std::size_t vnodes_;
    std::vector<std::string> names_;
    /** Sorted (position, node index) pairs. */
    std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_;
};

} // namespace fosm::cluster

#endif // FOSM_CLUSTER_HASH_RING_HH
