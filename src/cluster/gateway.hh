/**
 * @file
 * The L7 gateway: shards model-evaluation requests across a pool of
 * fosm-serve replicas by the same canonical request digest the
 * response cache keys on, so N replicas' caches compose into one
 * large non-overlapping cache. Failed or slow attempts are retried
 * on the next ring replica (bounded, jittered backoff) and tail
 * latency is clipped by hedging: once an attempt outlives the
 * configured latency-percentile budget, a single duplicate goes to
 * the next replica and the first response wins. Model evaluation is
 * pure computation, so duplicates are always safe.
 */

#ifndef FOSM_CLUSTER_GATEWAY_HH
#define FOSM_CLUSTER_GATEWAY_HH

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/hash_ring.hh"
#include "cluster/upstream.hh"
#include "server/http.hh"
#include "server/json.hh"
#include "server/metrics.hh"
#include "tenant/admission.hh"
#include "tenant/registry.hh"

namespace fosm::cluster {

/** Extra request headers forwarded to the upstream replicas. */
using HeaderList =
    std::vector<std::pair<std::string, std::string>>;

/** Gateway tuning knobs. */
struct GatewayConfig
{
    std::vector<BackendAddress> backends;
    /**
     * Tenant registry (docs/TENANCY.md). When set, the proxied
     * endpoints require a tenant bearer token and the gateway
     * enforces each tenant's rate limit and inflight quota; the
     * verified identity is stamped upstream as X-Fosm-Tenant. Null
     * keeps the gateway fully open, exactly as before.
     */
    std::shared_ptr<tenant::Registry> registry;
    /** Virtual nodes per backend on the hash ring. */
    std::size_t vnodes = 128;
    UpstreamConfig upstream;
    /** Extra attempts after the first (connect failure or 5xx). */
    int retries = 2;
    /** Base of the jittered exponential retry backoff. */
    int retryBaseMs = 2;
    /**
     * Hedge when an attempt outlives this quantile of observed
     * upstream latency, clamped to [hedgeMinMs, hedgeMaxMs].
     */
    double hedgeQuantile = 0.95;
    int hedgeMinMs = 1;
    int hedgeMaxMs = 50;
    /** Observations required before the quantile is trusted. */
    std::uint64_t hedgeMinSamples = 100;
    /**
     * Default whole-request deadline when the client sends no
     * X-Fosm-Deadline-Ms; 0 disables the synthetic deadline (each
     * attempt still has requestTimeoutMs).
     */
    int defaultDeadlineMs = 0;
};

/**
 * One immutable routing topology: the hash ring plus the backend
 * pointers its node indices refer to. Membership changes build a new
 * Topology and atomically swap the shared_ptr (RCU-style); requests
 * in flight keep using the snapshot they started with, and a drained
 * Backend is destroyed when the last such request drops its
 * reference.
 */
struct Topology
{
    HashRing ring;
    std::vector<std::shared_ptr<Backend>> backends;

    explicit Topology(std::size_t vnodes) : ring(vnodes) {}
};

/**
 * The gateway application: construct, start() (spawns the health
 * checker), hand handler() to an HttpServer, and stop() on the way
 * down. The handler is thread-safe; each invocation drives its own
 * upstream sockets from a private poll loop, so hedging needs no
 * extra threads.
 */
class Gateway
{
  public:
    Gateway(GatewayConfig config, server::MetricsRegistry *metrics);
    ~Gateway();

    Gateway(const Gateway &) = delete;
    Gateway &operator=(const Gateway &) = delete;

    void start();
    void stop();

    server::HttpServer::Handler handler();

    /** Paths to use as bounded metric labels. */
    std::vector<std::string> metricPaths() const;

    /**
     * The shard digest for a request: the 64-bit hash of the exact
     * cache key the backends use (schema version + path + canonical
     * body), so one backend owns each cache entry. Unparsable bodies
     * hash path + raw body — the owning backend answers 400
     * deterministically.
     */
    std::uint64_t shardDigest(const std::string &path,
                              const std::string &body) const;

    BackendPool &pool() { return *pool_; }
    /** The current topology's ring (a stable snapshot copy). */
    HashRing ring() const { return topology()->ring; }
    /** The current routing topology snapshot. */
    std::shared_ptr<const Topology> topology() const;

    /**
     * Live membership change: join every address in add, drain every
     * label in remove, then publish a rebuilt topology. In-flight
     * requests complete on the snapshot they hold. Returns the new
     * membership summary (the GET /admin/backends body).
     */
    server::HttpResponse
    adminChangeBackends(const std::string &body);
    /** Membership + health + breaker state, as JSON. */
    server::HttpResponse adminListBackends() const;

  private:
    using Clock = std::chrono::steady_clock;

    server::HttpResponse proxy(const server::HttpRequest &request,
                               const HeaderList &tenantHeaders);
    /**
     * /v1/batch: split the client's JSON batch into per-backend row
     * groups by each row's cache digest, send every group upstream
     * as one binary frame, and reassemble the columnar response in
     * the client's row order. A failed group degrades to per-row
     * error slots, never a whole-batch failure.
     */
    server::HttpResponse
    proxyBatch(const server::HttpRequest &request,
               const HeaderList &tenantHeaders);
    /**
     * The shared retry/hedge engine: route digest onto topo's ring
     * and walk the preference order (healthy tier first) with
     * bounded, jittered backoff until a response, the retry budget,
     * or the overall deadline. contentType overrides the JSON
     * default on the upstream wire when non-empty; extraHeaders ride
     * on every upstream attempt (tenant identity).
     */
    server::HttpResponse routedExchange(
        const Topology &topo, std::uint64_t digest,
        const std::string &path, const std::string &body,
        const std::string &contentType,
        const HeaderList &extraHeaders, bool hasOverall,
        Clock::time_point overall);
    /** One attempt (with optional hedge) bounded by deadline. */
    server::HttpResponse exchangeWithHedge(
        Backend &primary, Backend *hedgeTarget,
        const std::string &path, const std::string &body,
        const std::string &contentType,
        const HeaderList &extraHeaders,
        Clock::time_point deadline, bool &transportOk);
    /** Current hedge trigger delay in milliseconds. */
    int hedgeDelayMs() const;
    bool blockingExchange(Backend &backend,
                          const std::string &method,
                          const std::string &target,
                          const std::string &body, int timeoutMs,
                          server::ClientResponse &out);
    server::HttpResponse health() const;
    server::HttpResponse aggregateStoreStats();
    /** /admin/scrub fan-out: GET collects every backend's scrub
     *  status; POST forwards the body (force-full-scrub) to all. */
    server::HttpResponse
    adminScrub(const server::HttpRequest &request);
    /** Rebuild + publish the topology from the pool membership. */
    void rebuildTopology();

    GatewayConfig config_;
    server::MetricsRegistry *metrics_;
    std::unique_ptr<BackendPool> pool_;
    /** Null when no tenant registry is configured. */
    std::unique_ptr<tenant::Admission> admission_;

    mutable std::mutex topologyMutex_;
    std::shared_ptr<const Topology> topology_;

    server::Counter *retries_ = nullptr;
    server::Counter *hedges_ = nullptr;
    server::Counter *hedgeWins_ = nullptr;
    server::Counter *deadlineExceeded_ = nullptr;
    server::Counter *retryAfterHonored_ = nullptr;
    server::Counter *breakerRejections_ = nullptr;
    server::Counter *membershipChanges_ = nullptr;
    server::Counter *batchRequests_ = nullptr;
    server::Counter *batchShardCalls_ = nullptr;
    server::Counter *batchRows_ = nullptr;
    server::Counter *batchRowErrors_ = nullptr;
    server::Histogram *upstreamLatency_ = nullptr;
};

} // namespace fosm::cluster

#endif // FOSM_CLUSTER_GATEWAY_HH
