#include "cluster/upstream.hh"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hh"

namespace fosm::cluster {

namespace {

using Clock = std::chrono::steady_clock;

int
millisLeft(Clock::time_point deadline)
{
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - Clock::now())
            .count();
    return left > 0 ? static_cast<int>(left) : 0;
}

/**
 * Non-blocking connect with a deadline: dial, poll for writability,
 * then confirm with SO_ERROR. The socket stays non-blocking — every
 * later read is driven from a poll loop anyway.
 */
int
dialNonBlocking(const BackendAddress &address, int timeoutMs)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(address.port);
    if (::inet_pton(AF_INET, address.host.c_str(), &addr.sin_addr) !=
        1) {
        ::close(fd);
        return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        if (errno != EINPROGRESS) {
            ::close(fd);
            return -1;
        }
        pollfd pfd{fd, POLLOUT, 0};
        if (::poll(&pfd, 1, timeoutMs) <= 0) {
            ::close(fd);
            return -1;
        }
        int soError = 0;
        socklen_t len = sizeof(soError);
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soError, &len) !=
                0 ||
            soError != 0) {
            ::close(fd);
            return -1;
        }
    }
    return fd;
}

/** Blocking-style send on a non-blocking socket (polls on EAGAIN). */
bool
sendAll(int fd, const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::send(fd, data.data() + off,
                                 data.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                pollfd pfd{fd, POLLOUT, 0};
                if (::poll(&pfd, 1, 1000) <= 0)
                    return false;
                continue;
            }
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

bool
parseBackendList(const std::string &list,
                 std::vector<BackendAddress> &out, std::string &error)
{
    out.clear();
    std::size_t pos = 0;
    while (pos <= list.size()) {
        std::size_t comma = list.find(',', pos);
        if (comma == std::string::npos)
            comma = list.size();
        const std::string item = list.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            continue;
        const std::size_t colon = item.rfind(':');
        if (colon == std::string::npos || colon + 1 >= item.size()) {
            error = "backend '" + item + "' is missing a port";
            return false;
        }
        char *end = nullptr;
        const long port =
            std::strtol(item.c_str() + colon + 1, &end, 10);
        if (*end != '\0' || port <= 0 || port > 65535) {
            error = "backend '" + item + "' has an invalid port";
            return false;
        }
        BackendAddress addr;
        addr.host = item.substr(0, colon);
        addr.port = static_cast<std::uint16_t>(port);
        addr.label = item;
        out.push_back(std::move(addr));
    }
    if (out.empty()) {
        error = "backend list is empty";
        return false;
    }
    return true;
}

Backend::Backend(BackendAddress address,
                 server::MetricsRegistry *metrics)
    : address_(std::move(address))
{
    if (!metrics)
        return;
    const std::string label = "backend=\"" + address_.label + "\"";
    requests = &metrics->counter(
        "fosm_gateway_upstream_requests_total",
        "Requests proxied to each backend", label);
    errors = &metrics->counter(
        "fosm_gateway_upstream_errors_total",
        "Failed upstream exchanges per backend", label);
    ejections_ = &metrics->counter(
        "fosm_gateway_backend_ejections_total",
        "Health ejections per backend", label);
    reinstatements_ = &metrics->counter(
        "fosm_gateway_backend_reinstatements_total",
        "Health reinstatements per backend", label);
}

Backend::~Backend()
{
    std::lock_guard<std::mutex> lock(poolMutex_);
    for (int fd : idle_)
        ::close(fd);
    idle_.clear();
}

int
Backend::checkoutConn()
{
    std::lock_guard<std::mutex> lock(poolMutex_);
    if (idle_.empty())
        return -1;
    const int fd = idle_.back();
    idle_.pop_back();
    return fd;
}

void
Backend::checkinConn(int fd)
{
    std::lock_guard<std::mutex> lock(poolMutex_);
    if (idle_.size() >= 16) {
        ::close(fd);
        return;
    }
    idle_.push_back(fd);
}

void
Backend::noteSuccess()
{
    failures_.store(0);
}

void
Backend::noteFailure(int ejectAfter)
{
    const int streak = failures_.fetch_add(1) + 1;
    if (streak >= ejectAfter && healthy_.exchange(false)) {
        if (ejections_)
            ejections_->inc();
        fosm::warn("gateway: ejecting backend ", address_.label,
                   " after ", streak, " consecutive failures");
    }
}

void
Backend::noteProbeSuccess()
{
    failures_.store(0);
    if (!healthy_.exchange(true)) {
        if (reinstatements_)
            reinstatements_->inc();
        fosm::inform("gateway: reinstating backend ",
                     address_.label);
    }
}

void
Backend::setHealthy(bool healthy)
{
    healthy_.store(healthy);
    if (healthy)
        failures_.store(0);
}

bool
UpstreamCall::start(Backend &backend, const std::string &wire,
                    int connectTimeoutMs, bool forceFresh)
{
    abandon();
    backend_ = &backend;
    inbuf_.clear();
    response_ = server::ClientResponse{};
    pooled_ = false;

    if (!forceFresh) {
        fd_ = backend.checkoutConn();
        pooled_ = fd_ >= 0;
    }
    if (fd_ < 0)
        fd_ = dialNonBlocking(backend.address(), connectTimeoutMs);
    if (fd_ < 0) {
        state_ = State::Failed;
        return false;
    }
    if (!sendAll(fd_, wire)) {
        ::close(fd_);
        fd_ = -1;
        state_ = State::Failed;
        return false;
    }
    state_ = State::Receiving;
    return true;
}

UpstreamCall::State
UpstreamCall::onReadable()
{
    if (state_ != State::Receiving)
        return state_;
    char buf[16 * 1024];
    for (;;) {
        const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n > 0) {
            inbuf_.append(buf, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break;
        // Peer closed (or hard error) before a complete response.
        std::size_t consumed = 0;
        state_ = parseHttpResponse(inbuf_, response_, consumed) ==
                         server::ParseStatus::Ok
                     ? State::Done
                     : State::Failed;
        return state_;
    }
    std::size_t consumed = 0;
    switch (parseHttpResponse(inbuf_, response_, consumed)) {
    case server::ParseStatus::Ok:
        state_ = State::Done;
        break;
    case server::ParseStatus::Incomplete:
        break;
    default:
        state_ = State::Failed;
        break;
    }
    return state_;
}

void
UpstreamCall::finish()
{
    if (fd_ < 0)
        return;
    if (state_ == State::Done && response_.keepAlive() && backend_) {
        backend_->checkinConn(fd_);
    } else {
        ::close(fd_);
    }
    fd_ = -1;
    state_ = State::Unstarted;
}

void
UpstreamCall::abandon()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    state_ = State::Unstarted;
}

BackendPool::BackendPool(std::vector<BackendAddress> addresses,
                         UpstreamConfig config,
                         server::MetricsRegistry *metrics)
    : config_(config)
{
    backends_.reserve(addresses.size());
    for (auto &addr : addresses)
        backends_.push_back(
            std::make_unique<Backend>(std::move(addr), metrics));
}

BackendPool::~BackendPool()
{
    stop();
}

std::size_t
BackendPool::healthyCount() const
{
    std::size_t n = 0;
    for (const auto &b : backends_)
        if (b->healthy())
            ++n;
    return n;
}

bool
BackendPool::probe(Backend &backend)
{
    UpstreamCall call;
    const std::string wire = server::serializeRequest(
        "GET", "/healthz", backend.address().label, "");
    // Probes always dial fresh: a probe must test connectivity, not
    // an idle pooled socket's liveness.
    if (!call.start(backend, wire, config_.connectTimeoutMs,
                    /*forceFresh=*/true))
        return false;
    const auto deadline =
        Clock::now() +
        std::chrono::milliseconds(config_.probeTimeoutMs);
    while (call.state() == UpstreamCall::State::Receiving) {
        pollfd pfd{call.fd(), POLLIN, 0};
        const int left = millisLeft(deadline);
        if (left == 0 || ::poll(&pfd, 1, left) <= 0)
            return false;
        call.onReadable();
    }
    if (call.state() != UpstreamCall::State::Done)
        return false;
    const bool ok = call.response().status == 200;
    call.finish();
    return ok;
}

void
BackendPool::start()
{
    if (started_)
        return;
    started_ = true;
    // One synchronous round so routing starts with accurate health.
    for (auto &b : backends_)
        b->setHealthy(probe(*b));
    prober_ = std::thread([this] { proberMain(); });
}

void
BackendPool::stop()
{
    {
        std::lock_guard<std::mutex> lock(stopMutex_);
        if (stopping_)
            return;
        stopping_ = true;
    }
    stopCv_.notify_all();
    if (prober_.joinable())
        prober_.join();
}

void
BackendPool::proberMain()
{
    // Per-backend next-probe schedule; unhealthy backends back off
    // exponentially so a dead replica is not hammered.
    std::vector<Clock::time_point> next(backends_.size(),
                                        Clock::now());
    std::vector<int> backoffMs(backends_.size(),
                               config_.healthIntervalMs);

    for (;;) {
        {
            std::unique_lock<std::mutex> lock(stopMutex_);
            stopCv_.wait_for(
                lock,
                std::chrono::milliseconds(
                    std::max(10, config_.healthIntervalMs / 4)),
                [&] { return stopping_; });
            if (stopping_)
                return;
        }
        const auto now = Clock::now();
        for (std::size_t i = 0; i < backends_.size(); ++i) {
            if (now < next[i])
                continue;
            Backend &b = *backends_[i];
            if (probe(b)) {
                b.noteProbeSuccess();
                backoffMs[i] = config_.healthIntervalMs;
            } else {
                b.noteFailure(config_.ejectAfter);
                if (!b.healthy())
                    backoffMs[i] =
                        std::min(backoffMs[i] * 2,
                                 config_.maxProbeBackoffMs);
            }
            next[i] = Clock::now() +
                      std::chrono::milliseconds(backoffMs[i]);
        }
    }
}

} // namespace fosm::cluster
