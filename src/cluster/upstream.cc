#include "cluster/upstream.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/fault_injector.hh"
#include "common/hash.hh"
#include "common/logging.hh"

namespace fosm::cluster {

namespace {

using Clock = std::chrono::steady_clock;

int
millisLeft(Clock::time_point deadline)
{
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - Clock::now())
            .count();
    return left > 0 ? static_cast<int>(left) : 0;
}

/**
 * Non-blocking connect with a deadline: dial, poll for writability,
 * then confirm with SO_ERROR. The socket stays non-blocking — every
 * later read is driven from a poll loop anyway.
 */
int
dialNonBlocking(const BackendAddress &address, int timeoutMs)
{
    // Unconditional faultAt: it arms FOSM_FAULTS on first use and
    // checks active() itself, so a pre-guard would defeat arming.
    if (const FaultAction fault = faultAt("upstream.connect")) {
        faultSleep(fault);
        if (fault.kind == FaultKind::Error)
            return -1;
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(address.port);
    if (::inet_pton(AF_INET, address.host.c_str(), &addr.sin_addr) !=
        1) {
        ::close(fd);
        return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        if (errno != EINPROGRESS) {
            ::close(fd);
            return -1;
        }
        pollfd pfd{fd, POLLOUT, 0};
        if (::poll(&pfd, 1, timeoutMs) <= 0) {
            ::close(fd);
            return -1;
        }
        int soError = 0;
        socklen_t len = sizeof(soError);
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soError, &len) !=
                0 ||
            soError != 0) {
            ::close(fd);
            return -1;
        }
    }
    return fd;
}

/** Blocking-style send on a non-blocking socket (polls on EAGAIN). */
bool
sendAll(int fd, const std::string &data)
{
    if (const FaultAction fault = faultAt("upstream.send")) {
        faultSleep(fault);
        if (fault.kind == FaultKind::Error)
            return false;
    }
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::send(fd, data.data() + off,
                                 data.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                pollfd pfd{fd, POLLOUT, 0};
                if (::poll(&pfd, 1, 1000) <= 0)
                    return false;
                continue;
            }
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

bool
parseBackendList(const std::string &list,
                 std::vector<BackendAddress> &out, std::string &error)
{
    out.clear();
    std::size_t pos = 0;
    while (pos <= list.size()) {
        std::size_t comma = list.find(',', pos);
        if (comma == std::string::npos)
            comma = list.size();
        const std::string item = list.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            continue;
        const std::size_t colon = item.rfind(':');
        if (colon == std::string::npos || colon + 1 >= item.size()) {
            error = "backend '" + item + "' is missing a port";
            return false;
        }
        char *end = nullptr;
        const long port =
            std::strtol(item.c_str() + colon + 1, &end, 10);
        if (*end != '\0' || port <= 0 || port > 65535) {
            error = "backend '" + item + "' has an invalid port";
            return false;
        }
        BackendAddress addr;
        addr.host = item.substr(0, colon);
        addr.port = static_cast<std::uint16_t>(port);
        addr.label = item;
        out.push_back(std::move(addr));
    }
    if (out.empty()) {
        error = "backend list is empty";
        return false;
    }
    return true;
}

const char *
breakerStateName(BreakerState state)
{
    switch (state) {
    case BreakerState::Closed:
        return "closed";
    case BreakerState::Open:
        return "open";
    case BreakerState::HalfOpen:
        return "half-open";
    }
    return "unknown";
}

CircuitBreaker::CircuitBreaker(const UpstreamConfig &config,
                               std::uint64_t seed)
    : failures_(std::max(1, config.breakerFailures)),
      minSamples_(std::max(1, config.breakerMinSamples)),
      errorRate_(config.breakerErrorRate),
      windowMs_(std::max(1, config.breakerWindowMs)),
      openBaseMs_(std::max(1, config.breakerOpenBaseMs)),
      openMaxMs_(std::max(config.breakerOpenBaseMs,
                          config.breakerOpenMaxMs)),
      openMs_(openBaseMs_)
{
    rng_.seed(static_cast<unsigned>(seed | 1u));
}

void
CircuitBreaker::bindMetrics(server::Gauge *stateGauge,
                            server::Counter *opens,
                            server::Counter *closes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    stateGauge_ = stateGauge;
    opens_ = opens;
    closes_ = closes;
    if (stateGauge_)
        stateGauge_->set(static_cast<std::int64_t>(state_));
}

BreakerState
CircuitBreaker::state() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return state_;
}

bool
CircuitBreaker::routable(Clock::time_point now) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return state_ != BreakerState::Open || now >= reopenAt_;
}

bool
CircuitBreaker::allowRequest(Clock::time_point now)
{
    std::lock_guard<std::mutex> lock(mutex_);
    switch (state_) {
    case BreakerState::Closed:
        return true;
    case BreakerState::Open:
        if (now < reopenAt_)
            return false;
        setStateLocked(BreakerState::HalfOpen);
        trialStart_ = now;
        return true;
    case BreakerState::HalfOpen:
        // One trial at a time — unless it was abandoned (a hedge
        // loser records no outcome) long enough ago that waiting
        // would wedge the breaker half-open forever.
        if (now < trialStart_ + std::chrono::milliseconds(openMs_))
            return false;
        trialStart_ = now;
        return true;
    }
    return true;
}

void
CircuitBreaker::onSuccess()
{
    std::lock_guard<std::mutex> lock(mutex_);
    streak_ = 0;
    ++windowTotal_;
    if (state_ == BreakerState::HalfOpen) {
        // Trial succeeded: the backend is back.
        setStateLocked(BreakerState::Closed);
        openMs_ = openBaseMs_;
        windowTotal_ = 0;
        windowFailures_ = 0;
        if (closes_)
            closes_->inc();
    }
}

void
CircuitBreaker::onFailure(Clock::time_point now)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (state_ == BreakerState::Open)
        return; // already open; nothing new to learn
    if (state_ == BreakerState::HalfOpen) {
        // Trial failed: back off harder.
        openMs_ = std::min(openMs_ * 2, openMaxMs_);
        openLocked(now);
        return;
    }
    ++streak_;
    if (windowStart_ == Clock::time_point{} ||
        now - windowStart_ > std::chrono::milliseconds(windowMs_)) {
        windowStart_ = now;
        windowTotal_ = 0;
        windowFailures_ = 0;
    }
    ++windowTotal_;
    ++windowFailures_;
    const bool streakTrips = streak_ >= failures_;
    const bool rateTrips =
        windowTotal_ >= minSamples_ &&
        static_cast<double>(windowFailures_) >=
            errorRate_ * static_cast<double>(windowTotal_);
    if (streakTrips || rateTrips)
        openLocked(now);
}

void
CircuitBreaker::openLocked(Clock::time_point now)
{
    // Jitter the reinstatement (0.75x..1.25x) so breakers across a
    // fleet that opened together do not retry in lockstep.
    const double unit =
        static_cast<double>(rng_() - decltype(rng_)::min()) /
        static_cast<double>(decltype(rng_)::max() -
                            decltype(rng_)::min());
    const int wait = std::max(
        1, static_cast<int>(openMs_ * (0.75 + 0.5 * unit)));
    reopenAt_ = now + std::chrono::milliseconds(wait);
    setStateLocked(BreakerState::Open);
    streak_ = 0;
    windowTotal_ = 0;
    windowFailures_ = 0;
    windowStart_ = Clock::time_point{};
    if (opens_)
        opens_->inc();
}

void
CircuitBreaker::setStateLocked(BreakerState state)
{
    state_ = state;
    if (stateGauge_)
        stateGauge_->set(static_cast<std::int64_t>(state));
}

Backend::Backend(BackendAddress address,
                 const UpstreamConfig &config,
                 server::MetricsRegistry *metrics)
    : address_(std::move(address)),
      breaker_(config, fnv1a64(address_.label))
{
    if (!metrics)
        return;
    const std::string label = "backend=\"" + address_.label + "\"";
    requests = &metrics->counter(
        "fosm_gateway_upstream_requests_total",
        "Requests proxied to each backend", label);
    errors = &metrics->counter(
        "fosm_gateway_upstream_errors_total",
        "Failed upstream exchanges per backend", label);
    ejections_ = &metrics->counter(
        "fosm_gateway_backend_ejections_total",
        "Health ejections per backend", label);
    reinstatements_ = &metrics->counter(
        "fosm_gateway_backend_reinstatements_total",
        "Health reinstatements per backend", label);
    // find-or-create: re-adding a drained backend reuses the same
    // metric objects, so counters survive membership churn.
    breaker_.bindMetrics(
        &metrics->gauge("fosm_gateway_breaker_state",
                        "Circuit breaker state per backend "
                        "(0=closed, 1=open, 2=half-open)",
                        label),
        &metrics->counter("fosm_gateway_breaker_opens_total",
                          "Breaker open transitions per backend",
                          label),
        &metrics->counter("fosm_gateway_breaker_closes_total",
                          "Breaker half-open-to-closed transitions "
                          "per backend",
                          label));
}

Backend::~Backend()
{
    std::lock_guard<std::mutex> lock(poolMutex_);
    for (int fd : idle_)
        ::close(fd);
    idle_.clear();
}

int
Backend::checkoutConn()
{
    std::lock_guard<std::mutex> lock(poolMutex_);
    if (idle_.empty())
        return -1;
    const int fd = idle_.back();
    idle_.pop_back();
    return fd;
}

void
Backend::checkinConn(int fd)
{
    std::lock_guard<std::mutex> lock(poolMutex_);
    if (draining_.load() || idle_.size() >= 16) {
        ::close(fd);
        return;
    }
    idle_.push_back(fd);
}

void
Backend::noteFailure(int ejectAfter)
{
    const int streak = failures_.fetch_add(1) + 1;
    if (streak >= ejectAfter && healthy_.exchange(false)) {
        if (ejections_)
            ejections_->inc();
        fosm::warn("gateway: ejecting backend ", address_.label,
                   " after ", streak, " consecutive failures");
    }
}

void
Backend::noteProbeSuccess()
{
    failures_.store(0);
    if (!healthy_.exchange(true)) {
        if (reinstatements_)
            reinstatements_->inc();
        fosm::inform("gateway: reinstating backend ",
                     address_.label);
    }
}

void
Backend::noteProbeFailure(int ejectAfter)
{
    noteFailure(ejectAfter);
}

void
Backend::noteProxySuccess()
{
    failures_.store(0);
    breaker_.onSuccess();
}

void
Backend::noteProxyFailure(int ejectAfter)
{
    noteFailure(ejectAfter);
    breaker_.onFailure(Clock::now());
}

void
Backend::setHealthy(bool healthy)
{
    healthy_.store(healthy);
    if (healthy)
        failures_.store(0);
}

void
Backend::deferFor(int ms)
{
    const auto until =
        Clock::now() + std::chrono::milliseconds(std::max(0, ms));
    deferUntilNs_.store(
        until.time_since_epoch().count(),
        std::memory_order_relaxed);
}

bool
Backend::deferred(Clock::time_point now) const
{
    return now.time_since_epoch().count() <
           deferUntilNs_.load(std::memory_order_relaxed);
}

void
Backend::drain()
{
    draining_.store(true);
    std::lock_guard<std::mutex> lock(poolMutex_);
    for (int fd : idle_)
        ::close(fd);
    idle_.clear();
}

bool
UpstreamCall::start(Backend &backend, const std::string &wire,
                    int connectTimeoutMs, bool forceFresh)
{
    abandon();
    backend_ = &backend;
    inbuf_.clear();
    response_ = server::ClientResponse{};
    pooled_ = false;

    if (!forceFresh) {
        fd_ = backend.checkoutConn();
        pooled_ = fd_ >= 0;
    }
    if (fd_ < 0)
        fd_ = dialNonBlocking(backend.address(), connectTimeoutMs);
    if (fd_ < 0) {
        state_ = State::Failed;
        return false;
    }
    if (!sendAll(fd_, wire)) {
        ::close(fd_);
        fd_ = -1;
        state_ = State::Failed;
        return false;
    }
    state_ = State::Receiving;
    return true;
}

UpstreamCall::State
UpstreamCall::onReadable()
{
    if (state_ != State::Receiving)
        return state_;
    if (const FaultAction fault = faultAt("upstream.recv")) {
        faultSleep(fault);
        if (fault.kind == FaultKind::Error) {
            state_ = State::Failed;
            return state_;
        }
    }
    char buf[16 * 1024];
    for (;;) {
        const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n > 0) {
            inbuf_.append(buf, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break;
        // Peer closed (or hard error) before a complete response.
        std::size_t consumed = 0;
        state_ = parseHttpResponse(inbuf_, response_, consumed) ==
                         server::ParseStatus::Ok
                     ? State::Done
                     : State::Failed;
        return state_;
    }
    std::size_t consumed = 0;
    switch (parseHttpResponse(inbuf_, response_, consumed)) {
    case server::ParseStatus::Ok:
        state_ = State::Done;
        break;
    case server::ParseStatus::Incomplete:
        break;
    default:
        state_ = State::Failed;
        break;
    }
    return state_;
}

void
UpstreamCall::finish()
{
    if (fd_ < 0)
        return;
    if (state_ == State::Done && response_.keepAlive() && backend_) {
        backend_->checkinConn(fd_);
    } else {
        ::close(fd_);
    }
    fd_ = -1;
    state_ = State::Unstarted;
}

void
UpstreamCall::abandon()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    state_ = State::Unstarted;
}

BackendPool::BackendPool(std::vector<BackendAddress> addresses,
                         UpstreamConfig config,
                         server::MetricsRegistry *metrics)
    : config_(config), metrics_(metrics)
{
    backends_.reserve(addresses.size());
    for (auto &addr : addresses)
        backends_.push_back(std::make_shared<Backend>(
            std::move(addr), config_, metrics_));
}

BackendPool::~BackendPool()
{
    stop();
}

std::vector<std::shared_ptr<Backend>>
BackendPool::snapshot() const
{
    std::lock_guard<std::mutex> lock(membershipMutex_);
    return backends_;
}

std::shared_ptr<Backend>
BackendPool::find(const std::string &label) const
{
    std::lock_guard<std::mutex> lock(membershipMutex_);
    for (const auto &b : backends_)
        if (b->address().label == label)
            return b;
    return nullptr;
}

std::shared_ptr<Backend>
BackendPool::add(const BackendAddress &address)
{
    if (std::shared_ptr<Backend> existing = find(address.label))
        return existing;
    auto backend =
        std::make_shared<Backend>(address, config_, metrics_);
    // Probe before the backend becomes routable so a dead address
    // joins ejected instead of eating its first ejectAfter requests.
    if (started_.load())
        backend->setHealthy(probe(*backend));
    std::lock_guard<std::mutex> lock(membershipMutex_);
    for (const auto &b : backends_)
        if (b->address().label == address.label)
            return b;
    backends_.push_back(backend);
    fosm::inform("gateway: added backend ", address.label,
                 backend->healthy() ? " (healthy)" : " (unhealthy)");
    return backend;
}

bool
BackendPool::remove(const std::string &label)
{
    std::shared_ptr<Backend> victim;
    {
        std::lock_guard<std::mutex> lock(membershipMutex_);
        for (auto it = backends_.begin(); it != backends_.end();
             ++it) {
            if ((*it)->address().label == label) {
                victim = *it;
                backends_.erase(it);
                break;
            }
        }
    }
    if (!victim)
        return false;
    victim->drain();
    fosm::inform("gateway: draining backend ", label);
    return true;
}

std::size_t
BackendPool::size() const
{
    std::lock_guard<std::mutex> lock(membershipMutex_);
    return backends_.size();
}

Backend &
BackendPool::backend(std::size_t i)
{
    std::lock_guard<std::mutex> lock(membershipMutex_);
    return *backends_[i];
}

std::size_t
BackendPool::healthyCount() const
{
    std::lock_guard<std::mutex> lock(membershipMutex_);
    std::size_t n = 0;
    for (const auto &b : backends_)
        if (b->healthy())
            ++n;
    return n;
}

bool
BackendPool::probe(Backend &backend)
{
    UpstreamCall call;
    const std::string wire = server::serializeRequest(
        "GET", "/healthz", backend.address().label, "");
    // Probes always dial fresh: a probe must test connectivity, not
    // an idle pooled socket's liveness.
    if (!call.start(backend, wire, config_.connectTimeoutMs,
                    /*forceFresh=*/true))
        return false;
    const auto deadline =
        Clock::now() +
        std::chrono::milliseconds(config_.probeTimeoutMs);
    while (call.state() == UpstreamCall::State::Receiving) {
        pollfd pfd{call.fd(), POLLIN, 0};
        const int left = millisLeft(deadline);
        if (left == 0 || ::poll(&pfd, 1, left) <= 0)
            return false;
        call.onReadable();
    }
    if (call.state() != UpstreamCall::State::Done)
        return false;
    const bool ok = call.response().status == 200;
    call.finish();
    return ok;
}

void
BackendPool::start()
{
    if (started_.exchange(true))
        return;
    // One synchronous round so routing starts with accurate health.
    for (const auto &b : snapshot())
        b->setHealthy(probe(*b));
    prober_ = std::thread([this] { proberMain(); });
}

void
BackendPool::stop()
{
    {
        std::lock_guard<std::mutex> lock(stopMutex_);
        if (stopping_)
            return;
        stopping_ = true;
    }
    stopCv_.notify_all();
    if (prober_.joinable())
        prober_.join();
}

void
BackendPool::proberMain()
{
    // Per-backend next-probe schedule keyed by label (membership
    // changes under us); unhealthy backends back off exponentially
    // so a dead replica is not hammered.
    struct Schedule
    {
        Clock::time_point next{};
        int backoffMs = 0;
    };
    std::map<std::string, Schedule> schedule;

    for (;;) {
        {
            std::unique_lock<std::mutex> lock(stopMutex_);
            stopCv_.wait_for(
                lock,
                std::chrono::milliseconds(
                    std::max(10, config_.healthIntervalMs / 4)),
                [&] { return stopping_; });
            if (stopping_)
                return;
        }
        const auto members = snapshot();
        const auto now = Clock::now();
        for (const auto &b : members) {
            Schedule &s = schedule[b->address().label];
            if (s.backoffMs == 0)
                s.backoffMs = config_.healthIntervalMs;
            if (now < s.next)
                continue;
            if (probe(*b)) {
                b->noteProbeSuccess();
                s.backoffMs = config_.healthIntervalMs;
            } else {
                b->noteProbeFailure(config_.ejectAfter);
                if (!b->healthy())
                    s.backoffMs =
                        std::min(s.backoffMs * 2,
                                 config_.maxProbeBackoffMs);
            }
            s.next = Clock::now() +
                     std::chrono::milliseconds(s.backoffMs);
        }
        // Forget schedules for departed members so the map does not
        // grow without bound across membership churn.
        for (auto it = schedule.begin(); it != schedule.end();) {
            bool present = false;
            for (const auto &b : members)
                if (b->address().label == it->first) {
                    present = true;
                    break;
                }
            it = present ? std::next(it) : schedule.erase(it);
        }
    }
}

} // namespace fosm::cluster
