/**
 * @file
 * Upstream side of the gateway: the backend table (address, health
 * state, pooled keep-alive connections, per-backend counters), an
 * active health checker with ejection and exponential-backoff
 * reinstatement, and UpstreamCall — one asynchronous HTTP exchange
 * whose socket is driven from a caller-owned poll loop, so a worker
 * thread can race a hedged duplicate against a slow primary without
 * spawning threads. Reuses the HTTP wire machinery from src/server/
 * (serializeRequest / parseHttpResponse).
 */

#ifndef FOSM_CLUSTER_UPSTREAM_HH
#define FOSM_CLUSTER_UPSTREAM_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "server/client.hh"
#include "server/metrics.hh"

namespace fosm::cluster {

/** One backend's location. label is "host:port", the node identity
 *  on the hash ring and in metric labels. */
struct BackendAddress
{
    std::string host;
    std::uint16_t port = 0;
    std::string label;
};

/**
 * Parse "host:port[,host:port...]" into addresses. Returns false
 * with a diagnostic on malformed input (missing port, bad number,
 * empty list).
 */
bool parseBackendList(const std::string &list,
                      std::vector<BackendAddress> &out,
                      std::string &error);

/** Upstream tuning knobs shared by the proxy path and the prober. */
struct UpstreamConfig
{
    /** Non-blocking connect budget per dial. */
    int connectTimeoutMs = 250;
    /** Whole-exchange budget per proxy attempt. */
    int requestTimeoutMs = 5000;
    /** Whole-exchange budget per health probe. */
    int probeTimeoutMs = 500;
    /** Interval between probes of a healthy backend. */
    int healthIntervalMs = 500;
    /** Probe backoff cap while a backend stays ejected. */
    int maxProbeBackoffMs = 8000;
    /** Consecutive failures (probe or proxy) that eject. */
    int ejectAfter = 2;

    // Circuit breaker (live-traffic outcomes only — probes keep
    // their own ejection path, because a backend can accept
    // connections and answer /healthz while timing out real work).
    /** Consecutive proxy failures that open the breaker. */
    int breakerFailures = 5;
    /** Minimum window samples before the error rate can trip. */
    int breakerMinSamples = 20;
    /** Window error fraction that opens the breaker. */
    double breakerErrorRate = 0.5;
    /** Sliding error-rate window length. */
    int breakerWindowMs = 10000;
    /** First open duration; doubles per consecutive reopen. */
    int breakerOpenBaseMs = 1000;
    /** Open-duration cap. */
    int breakerOpenMaxMs = 30000;
};

/** Circuit breaker states (gauge values on /metrics). */
enum class BreakerState
{
    Closed = 0,  ///< normal traffic
    Open = 1,    ///< no traffic until reopenAt
    HalfOpen = 2 ///< one trial request in flight
};

/** A state's metric/display name. */
const char *breakerStateName(BreakerState state);

/**
 * Per-backend circuit breaker driven by live proxy outcomes. Opens
 * on a consecutive-failure streak or a windowed error rate, stays
 * open for a jittered exponentially-growing interval, then admits a
 * single half-open trial whose outcome closes or re-opens it. All
 * methods are thread-safe.
 */
class CircuitBreaker
{
  public:
    using Clock = std::chrono::steady_clock;

    CircuitBreaker(const UpstreamConfig &config, std::uint64_t seed);

    /** Attach /metrics objects (optional; set once at startup). */
    void bindMetrics(server::Gauge *stateGauge,
                     server::Counter *opens,
                     server::Counter *closes);

    BreakerState state() const;

    /**
     * Whether the routing order should consider this backend at all:
     * true unless Open with reinstatement time still in the future.
     * An Open breaker whose backoff has elapsed IS routable — that is
     * how the half-open trial gets scheduled.
     */
    bool routable(Clock::time_point now) const;

    /**
     * Admission check immediately before an exchange. Closed admits;
     * Open transitions to HalfOpen and admits exactly one trial once
     * the backoff elapsed; HalfOpen admits nothing while the trial is
     * in flight (with a timeout so an abandoned trial cannot wedge
     * the breaker half-open forever).
     */
    bool allowRequest(Clock::time_point now);

    /** Record a live-traffic outcome. */
    void onSuccess();
    void onFailure(Clock::time_point now);

  private:
    void openLocked(Clock::time_point now);
    void setStateLocked(BreakerState state);

    const int failures_;
    const int minSamples_;
    const double errorRate_;
    const int windowMs_;
    const int openBaseMs_;
    const int openMaxMs_;

    mutable std::mutex mutex_;
    BreakerState state_ = BreakerState::Closed;
    int streak_ = 0;            ///< consecutive failures
    int windowTotal_ = 0;       ///< outcomes in the current window
    int windowFailures_ = 0;    ///< failures in the current window
    Clock::time_point windowStart_{};
    Clock::time_point reopenAt_{};   ///< when Open admits a trial
    Clock::time_point trialStart_{}; ///< HalfOpen trial admission
    int openMs_ = 0;                 ///< current (undoubled) backoff
    std::minstd_rand rng_;           ///< reopen jitter
    server::Gauge *stateGauge_ = nullptr;
    server::Counter *opens_ = nullptr;
    server::Counter *closes_ = nullptr;
};

/**
 * One backend: health state updated by the prober and by passive
 * proxy outcomes, a pool of idle keep-alive connections, and
 * per-backend metric objects. All methods are thread-safe.
 */
class Backend
{
  public:
    using Clock = std::chrono::steady_clock;

    Backend(BackendAddress address, const UpstreamConfig &config,
            server::MetricsRegistry *metrics);
    ~Backend();

    Backend(const Backend &) = delete;
    Backend &operator=(const Backend &) = delete;

    const BackendAddress &address() const { return address_; }

    bool healthy() const { return healthy_.load(); }

    /** An idle pooled connection, or -1. */
    int checkoutConn();
    /** Return a reusable keep-alive connection to the pool. */
    void checkinConn(int fd);

    /** Probe success: reset streak, reinstate if ejected. */
    void noteProbeSuccess();
    /**
     * Probe failure: count toward the ejection streak (healthy ->
     * false at ejectAfter). Probes never touch the breaker.
     */
    void noteProbeFailure(int ejectAfter);
    /** Live-traffic success: streak reset + breaker success. */
    void noteProxySuccess();
    /** Live-traffic failure: ejection streak + breaker failure. */
    void noteProxyFailure(int ejectAfter);
    /** Force the health bit (initial synchronous probe round). */
    void setHealthy(bool healthy);

    CircuitBreaker &breaker() { return breaker_; }
    const CircuitBreaker &breaker() const { return breaker_; }

    /**
     * Honor an upstream Retry-After: keep proxy traffic off this
     * backend until the moment passes (no breaker/ejection penalty —
     * the backend is alive, just shedding).
     */
    void deferFor(int ms);
    bool deferred(Clock::time_point now) const;

    /**
     * Begin graceful removal: the backend leaves new routing
     * topologies and its idle connections close now; in-flight
     * requests holding a shared_ptr complete normally.
     */
    void drain();
    bool draining() const { return draining_.load(); }

    // Hot-path metric objects; null when metrics are disabled.
    server::Counter *requests = nullptr;
    server::Counter *errors = nullptr;

  private:
    void noteFailure(int ejectAfter);

    BackendAddress address_;
    std::atomic<bool> healthy_{true};
    std::atomic<bool> draining_{false};
    std::atomic<int> failures_{0};
    std::atomic<std::int64_t> deferUntilNs_{0};
    std::mutex poolMutex_;
    std::vector<int> idle_;
    server::Counter *ejections_ = nullptr;
    server::Counter *reinstatements_ = nullptr;
    CircuitBreaker breaker_;
};

/**
 * One asynchronous upstream HTTP exchange. start() dials (or reuses
 * a pooled connection) and sends the request; the caller then polls
 * fd() for readability and calls onReadable() until the state is
 * Done or Failed. finish() recycles the connection; abandon() closes
 * it (hedge losers, timeouts — the response would arrive on a
 * connection whose stream position we no longer trust).
 */
class UpstreamCall
{
  public:
    enum class State
    {
        Unstarted,
        Receiving, ///< sent; awaiting (more of) the response
        Done,      ///< response() is valid
        Failed,    ///< transport failure or malformed response
    };

    UpstreamCall() = default;
    ~UpstreamCall() { abandon(); }

    UpstreamCall(const UpstreamCall &) = delete;
    UpstreamCall &operator=(const UpstreamCall &) = delete;

    /**
     * Checkout a pooled connection (unless forceFresh) or dial a
     * fresh one, then send the serialized request. Returns false —
     * with state() == Failed — on connect or send failure.
     */
    bool start(Backend &backend, const std::string &wire,
               int connectTimeoutMs, bool forceFresh = false);

    State state() const { return state_; }
    int fd() const { return fd_; }
    Backend *backend() const { return backend_; }
    /** Whether start() used a pooled (possibly stale) connection. */
    bool usedPooledConn() const { return pooled_; }
    /** Whether any response bytes arrived (stale-conn detection). */
    bool receivedBytes() const { return !inbuf_.empty(); }

    /** Drive reads after poll() reports fd() readable. */
    State onReadable();

    /** Valid when state() == Done. */
    const server::ClientResponse &response() const
    {
        return response_;
    }

    /** Recycle the connection if reusable, else close. Done only. */
    void finish();
    /** Close the connection unconditionally. Idempotent. */
    void abandon();

  private:
    Backend *backend_ = nullptr;
    int fd_ = -1;
    bool pooled_ = false;
    std::string inbuf_;
    server::ClientResponse response_;
    State state_ = State::Unstarted;
};

/**
 * The live backend set plus its active health checker. Membership is
 * dynamic: add() joins a replica (probing it synchronously first so
 * it starts with accurate health) and remove() drains one without
 * disturbing in-flight requests — callers hold shared_ptrs, so a
 * drained Backend dies when its last request completes. start() runs
 * one synchronous probe round and then probes in a background
 * thread: healthy backends every healthIntervalMs, ejected ones on
 * an exponential backoff capped at maxProbeBackoffMs, reinstating on
 * the first successful probe.
 */
class BackendPool
{
  public:
    BackendPool(std::vector<BackendAddress> addresses,
                UpstreamConfig config,
                server::MetricsRegistry *metrics);
    ~BackendPool();

    BackendPool(const BackendPool &) = delete;
    BackendPool &operator=(const BackendPool &) = delete;

    void start();
    void stop();

    /** The current membership (a stable point-in-time copy). */
    std::vector<std::shared_ptr<Backend>> snapshot() const;

    /** Member with this "host:port" label, or null. */
    std::shared_ptr<Backend> find(const std::string &label) const;

    /**
     * Join a replica. Returns the new (or existing — add is
     * idempotent) member. When the pool is already started the new
     * backend is probed synchronously so it joins with accurate
     * health.
     */
    std::shared_ptr<Backend> add(const BackendAddress &address);

    /**
     * Begin draining the member with this label; it leaves the
     * membership immediately (no new routing) and closes idle
     * connections. Returns false if no such member.
     */
    bool remove(const std::string &label);

    std::size_t size() const;
    /** Member i of the current membership (test convenience). */
    Backend &backend(std::size_t i);
    std::size_t healthyCount() const;

    const UpstreamConfig &config() const { return config_; }

    /** One blocking GET probe of /healthz; true on HTTP 200. */
    bool probe(Backend &backend);

  private:
    void proberMain();

    UpstreamConfig config_;
    server::MetricsRegistry *metrics_;
    mutable std::mutex membershipMutex_;
    std::vector<std::shared_ptr<Backend>> backends_;
    std::thread prober_;
    std::mutex stopMutex_;
    std::condition_variable stopCv_;
    bool stopping_ = false;
    std::atomic<bool> started_{false};
};

} // namespace fosm::cluster

#endif // FOSM_CLUSTER_UPSTREAM_HH
