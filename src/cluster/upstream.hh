/**
 * @file
 * Upstream side of the gateway: the backend table (address, health
 * state, pooled keep-alive connections, per-backend counters), an
 * active health checker with ejection and exponential-backoff
 * reinstatement, and UpstreamCall — one asynchronous HTTP exchange
 * whose socket is driven from a caller-owned poll loop, so a worker
 * thread can race a hedged duplicate against a slow primary without
 * spawning threads. Reuses the HTTP wire machinery from src/server/
 * (serializeRequest / parseHttpResponse).
 */

#ifndef FOSM_CLUSTER_UPSTREAM_HH
#define FOSM_CLUSTER_UPSTREAM_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/client.hh"
#include "server/metrics.hh"

namespace fosm::cluster {

/** One backend's location. label is "host:port", the node identity
 *  on the hash ring and in metric labels. */
struct BackendAddress
{
    std::string host;
    std::uint16_t port = 0;
    std::string label;
};

/**
 * Parse "host:port[,host:port...]" into addresses. Returns false
 * with a diagnostic on malformed input (missing port, bad number,
 * empty list).
 */
bool parseBackendList(const std::string &list,
                      std::vector<BackendAddress> &out,
                      std::string &error);

/** Upstream tuning knobs shared by the proxy path and the prober. */
struct UpstreamConfig
{
    /** Non-blocking connect budget per dial. */
    int connectTimeoutMs = 250;
    /** Whole-exchange budget per proxy attempt. */
    int requestTimeoutMs = 5000;
    /** Whole-exchange budget per health probe. */
    int probeTimeoutMs = 500;
    /** Interval between probes of a healthy backend. */
    int healthIntervalMs = 500;
    /** Probe backoff cap while a backend stays ejected. */
    int maxProbeBackoffMs = 8000;
    /** Consecutive failures (probe or proxy) that eject. */
    int ejectAfter = 2;
};

/**
 * One backend: health state updated by the prober and by passive
 * proxy outcomes, a pool of idle keep-alive connections, and
 * per-backend metric objects. All methods are thread-safe.
 */
class Backend
{
  public:
    Backend(BackendAddress address,
            server::MetricsRegistry *metrics);
    ~Backend();

    Backend(const Backend &) = delete;
    Backend &operator=(const Backend &) = delete;

    const BackendAddress &address() const { return address_; }

    bool healthy() const { return healthy_.load(); }

    /** An idle pooled connection, or -1. */
    int checkoutConn();
    /** Return a reusable keep-alive connection to the pool. */
    void checkinConn(int fd);

    /** Reset the failure streak (any successful exchange). */
    void noteSuccess();
    /**
     * Count one failure; ejects (healthy -> false) when the streak
     * reaches ejectAfter. Used by both proxy attempts and probes.
     */
    void noteFailure(int ejectAfter);
    /** Probe success: reinstate if ejected. */
    void noteProbeSuccess();
    /** Force the health bit (initial synchronous probe round). */
    void setHealthy(bool healthy);

    // Hot-path metric objects; null when metrics are disabled.
    server::Counter *requests = nullptr;
    server::Counter *errors = nullptr;

  private:
    BackendAddress address_;
    std::atomic<bool> healthy_{true};
    std::atomic<int> failures_{0};
    std::mutex poolMutex_;
    std::vector<int> idle_;
    server::Counter *ejections_ = nullptr;
    server::Counter *reinstatements_ = nullptr;
};

/**
 * One asynchronous upstream HTTP exchange. start() dials (or reuses
 * a pooled connection) and sends the request; the caller then polls
 * fd() for readability and calls onReadable() until the state is
 * Done or Failed. finish() recycles the connection; abandon() closes
 * it (hedge losers, timeouts — the response would arrive on a
 * connection whose stream position we no longer trust).
 */
class UpstreamCall
{
  public:
    enum class State
    {
        Unstarted,
        Receiving, ///< sent; awaiting (more of) the response
        Done,      ///< response() is valid
        Failed,    ///< transport failure or malformed response
    };

    UpstreamCall() = default;
    ~UpstreamCall() { abandon(); }

    UpstreamCall(const UpstreamCall &) = delete;
    UpstreamCall &operator=(const UpstreamCall &) = delete;

    /**
     * Checkout a pooled connection (unless forceFresh) or dial a
     * fresh one, then send the serialized request. Returns false —
     * with state() == Failed — on connect or send failure.
     */
    bool start(Backend &backend, const std::string &wire,
               int connectTimeoutMs, bool forceFresh = false);

    State state() const { return state_; }
    int fd() const { return fd_; }
    Backend *backend() const { return backend_; }
    /** Whether start() used a pooled (possibly stale) connection. */
    bool usedPooledConn() const { return pooled_; }
    /** Whether any response bytes arrived (stale-conn detection). */
    bool receivedBytes() const { return !inbuf_.empty(); }

    /** Drive reads after poll() reports fd() readable. */
    State onReadable();

    /** Valid when state() == Done. */
    const server::ClientResponse &response() const
    {
        return response_;
    }

    /** Recycle the connection if reusable, else close. Done only. */
    void finish();
    /** Close the connection unconditionally. Idempotent. */
    void abandon();

  private:
    Backend *backend_ = nullptr;
    int fd_ = -1;
    bool pooled_ = false;
    std::string inbuf_;
    server::ClientResponse response_;
    State state_ = State::Unstarted;
};

/**
 * The backend set plus its active health checker. start() runs one
 * synchronous probe round (so routing starts with accurate health)
 * and then probes in a background thread: healthy backends every
 * healthIntervalMs, ejected ones on an exponential backoff capped at
 * maxProbeBackoffMs, reinstating on the first successful probe.
 */
class BackendPool
{
  public:
    BackendPool(std::vector<BackendAddress> addresses,
                UpstreamConfig config,
                server::MetricsRegistry *metrics);
    ~BackendPool();

    BackendPool(const BackendPool &) = delete;
    BackendPool &operator=(const BackendPool &) = delete;

    void start();
    void stop();

    std::size_t size() const { return backends_.size(); }
    Backend &backend(std::size_t i) { return *backends_[i]; }
    const Backend &backend(std::size_t i) const
    {
        return *backends_[i];
    }
    std::size_t healthyCount() const;

    const UpstreamConfig &config() const { return config_; }

    /** One blocking GET probe of /healthz; true on HTTP 200. */
    bool probe(Backend &backend);

  private:
    void proberMain();

    UpstreamConfig config_;
    std::vector<std::unique_ptr<Backend>> backends_;
    std::thread prober_;
    std::mutex stopMutex_;
    std::condition_variable stopCv_;
    bool stopping_ = false;
    bool started_ = false;
};

} // namespace fosm::cluster

#endif // FOSM_CLUSTER_UPSTREAM_HH
