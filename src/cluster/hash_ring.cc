#include "cluster/hash_ring.hh"

#include <algorithm>

#include "common/hash.hh"
#include "common/logging.hh"

namespace fosm::cluster {

namespace {

/** splitmix64 finalizer: spreads entropy across all 64 bits. */
std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

/**
 * Position of one virtual node. FNV-1a over "name#i", remixed with a
 * 64-bit finalizer: FNV alone is weak for short suffix changes, and
 * ring positions need all 64 bits well spread. Key hashes get the
 * same remix on lookup (route()/primary()), so a caller may feed raw
 * FNV digests and still land uniformly on the ring.
 */
std::uint64_t
vnodePosition(const std::string &name, std::size_t index)
{
    Fnv1a h;
    h.update(name);
    h.update("#", 1);
    h.updateInt(static_cast<std::uint64_t>(index));
    return mix64(h.digest());
}

} // namespace

void
HashRing::add(const std::string &node)
{
    for (const std::string &existing : names_)
        fosm_assert(existing != node, "duplicate ring node");
    names_.push_back(node);
    rebuild();
}

void
HashRing::remove(const std::string &node)
{
    const auto it = std::find(names_.begin(), names_.end(), node);
    if (it == names_.end())
        return;
    names_.erase(it);
    rebuild();
}

void
HashRing::rebuild()
{
    ring_.clear();
    ring_.reserve(names_.size() * vnodes_);
    for (std::uint32_t n = 0; n < names_.size(); ++n)
        for (std::size_t v = 0; v < vnodes_; ++v)
            ring_.emplace_back(vnodePosition(names_[n], v), n);
    std::sort(ring_.begin(), ring_.end());
}

std::vector<std::uint32_t>
HashRing::route(std::uint64_t keyHash, std::size_t maxNodes) const
{
    std::vector<std::uint32_t> out;
    if (ring_.empty())
        return out;
    const std::size_t want = std::min(maxNodes, names_.size());
    out.reserve(want);
    // First vnode at or after the (remixed) key hash, wrapping.
    std::size_t i =
        std::lower_bound(
            ring_.begin(), ring_.end(),
            std::make_pair(mix64(keyHash), std::uint32_t{0})) -
        ring_.begin();
    for (std::size_t walked = 0;
         out.size() < want && walked < ring_.size(); ++walked, ++i) {
        const std::uint32_t node = ring_[i % ring_.size()].second;
        if (std::find(out.begin(), out.end(), node) == out.end())
            out.push_back(node);
    }
    return out;
}

std::uint32_t
HashRing::primary(std::uint64_t keyHash) const
{
    fosm_assert(!ring_.empty(), "routing on an empty ring");
    const std::size_t i =
        std::lower_bound(
            ring_.begin(), ring_.end(),
            std::make_pair(mix64(keyHash), std::uint32_t{0})) -
        ring_.begin();
    return ring_[i % ring_.size()].second;
}

std::vector<double>
HashRing::keyspaceShare() const
{
    std::vector<double> share(names_.size(), 0.0);
    if (ring_.empty())
        return share;
    if (ring_.size() == 1) {
        share[ring_[0].second] = 1.0;
        return share;
    }
    // Each vnode owns the arc from its predecessor (exclusive) to
    // itself (inclusive); the first vnode also owns the wrap-around.
    for (std::size_t i = 0; i < ring_.size(); ++i) {
        const std::uint64_t here = ring_[i].first;
        const std::uint64_t prev =
            i == 0 ? ring_.back().first : ring_[i - 1].first;
        const std::uint64_t arc = here - prev; // mod 2^64 wraps right
        share[ring_[i].second] +=
            static_cast<double>(arc) / 18446744073709551615.0;
    }
    return share;
}

} // namespace fosm::cluster
