#include "cluster/gateway.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <map>
#include <random>
#include <thread>

#include <poll.h>

#include "common/hash.hh"
#include "common/logging.hh"
#include "server/service.hh"

namespace fosm::cluster {

namespace {

using Clock = std::chrono::steady_clock;

server::HttpResponse
jsonError(int status, const std::string &message)
{
    json::Value body = json::Value::object();
    body.set("error", message);
    return server::HttpResponse::json(status, body.dump());
}

/** Jitter in [0, limitMs] from a cheap thread-local generator. */
int
jitterMs(int limitMs)
{
    thread_local std::minstd_rand rng(static_cast<unsigned>(
        Clock::now().time_since_epoch().count()));
    if (limitMs <= 0)
        return 0;
    return static_cast<int>(rng() % (limitMs + 1));
}

int
millisLeft(Clock::time_point deadline)
{
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - Clock::now())
            .count();
    if (left <= 0)
        return 0;
    return static_cast<int>(std::min<long long>(
        left, std::numeric_limits<int>::max()));
}

/** The first Retry-After value on a response, or empty. */
const std::string &
retryAfterOf(const server::ClientResponse &response)
{
    return response.header("retry-after");
}

/**
 * Recursively sum numeric leaves of src into dst (by key path).
 * skipKey names one top-level subtree to leave out: the backends'
 * "repl" block holds per-node state (watermark LSNs, store epochs,
 * the replication factor) whose sum is meaningless.
 */
void
sumNumericLeaves(json::Value &dst, const json::Value &src,
                 const char *skipKey = nullptr)
{
    for (const auto &member : src.members()) {
        if (skipKey && member.first == skipKey)
            continue;
        const json::Value &v = member.second;
        if (v.isNumber()) {
            const json::Value *prev = dst.find(member.first);
            dst.set(member.first,
                    (prev ? prev->asDouble() : 0.0) + v.asDouble());
        } else if (v.isObject()) {
            json::Value *slot =
                const_cast<json::Value *>(dst.find(member.first));
            if (!slot)
                slot = &dst.set(member.first,
                                json::Value::object());
            sumNumericLeaves(*slot, v);
        }
    }
}

// /v1/optimize rides the same digest routing as the point queries:
// its whole-request digest keys the shard, so repeated/overlapping
// space searches land on the replica whose caches and store already
// hold the space's rows.
const char *const kProxyPaths[] = {"/v1/cpi", "/v1/iw-curve",
                                   "/v1/trends", "/v1/optimize"};

bool
isProxyPath(const std::string &path)
{
    for (const char *p : kProxyPaths)
        if (path == p)
            return true;
    return false;
}

} // namespace

Gateway::Gateway(GatewayConfig config,
                 server::MetricsRegistry *metrics)
    : config_(std::move(config)), metrics_(metrics)
{
    fosm_assert(!config_.backends.empty(),
                "gateway needs at least one backend");
    pool_ = std::make_unique<BackendPool>(
        config_.backends, config_.upstream, metrics_);

    // The gateway is where quotas bite: rate limits and inflight
    // caps are enforced here, before any upstream work is spent.
    // The serving nodes re-check only authentication.
    if (config_.registry) {
        tenant::AdmissionOptions options;
        options.enforceRate = true;
        options.enforceInflight = true;
        admission_ = std::make_unique<tenant::Admission>(
            *config_.registry, metrics_, options);
    }

    if (metrics_) {
        retries_ = &metrics_->counter(
            "fosm_gateway_retries_total",
            "Upstream attempts beyond the first per request");
        hedges_ = &metrics_->counter(
            "fosm_gateway_hedges_total",
            "Hedged duplicate requests fired");
        hedgeWins_ = &metrics_->counter(
            "fosm_gateway_hedge_wins_total",
            "Hedged duplicates that answered first");
        deadlineExceeded_ = &metrics_->counter(
            "fosm_deadline_exceeded_total",
            "Requests answered 504 at the gateway because the "
            "client's deadline budget ran out");
        retryAfterHonored_ = &metrics_->counter(
            "fosm_gateway_retry_after_honored_total",
            "503 responses whose Retry-After deferred a backend");
        breakerRejections_ = &metrics_->counter(
            "fosm_gateway_breaker_rejections_total",
            "Proxy attempts not sent because the target's breaker "
            "was open");
        membershipChanges_ = &metrics_->counter(
            "fosm_gateway_membership_changes_total",
            "Topology rebuilds from POST /admin/backends");
        batchRequests_ = &metrics_->counter(
            "fosm_gateway_batch_requests_total",
            "Client /v1/batch requests split across backends");
        batchShardCalls_ = &metrics_->counter(
            "fosm_gateway_batch_shard_calls_total",
            "Per-backend binary batch frames sent upstream");
        batchRows_ = &metrics_->counter(
            "fosm_gateway_batch_rows_total",
            "Design-point rows carried by /v1/batch requests");
        batchRowErrors_ = &metrics_->counter(
            "fosm_gateway_batch_row_errors_total",
            "Batch rows answered with an error slot (invalid row "
            "or failed shard)");
        upstreamLatency_ = &metrics_->histogram(
            "fosm_gateway_upstream_latency_seconds",
            "Latency of winning upstream exchanges");
        metrics_->addCallbackGauge(
            "fosm_gateway_healthy_backends",
            "Backends currently passing health checks",
            [this] {
                return static_cast<double>(pool_->healthyCount());
            });
    }
    rebuildTopology();
}

std::shared_ptr<const Topology>
Gateway::topology() const
{
    std::lock_guard<std::mutex> lock(topologyMutex_);
    return topology_;
}

void
Gateway::rebuildTopology()
{
    auto topo = std::make_shared<Topology>(config_.vnodes);
    // Ring node index i == topology backend index i: both are built
    // from the same membership snapshot in order.
    for (const auto &b : pool_->snapshot()) {
        topo->ring.add(b->address().label);
        topo->backends.push_back(b);
    }
    if (metrics_) {
        const std::vector<double> share =
            topo->ring.keyspaceShare();
        for (std::size_t i = 0; i < share.size(); ++i) {
            metrics_
                ->gauge("fosm_gateway_ring_share_milli",
                        "Keyspace share per backend (x1000)",
                        "backend=\"" + topo->ring.name(i) + "\"")
                .set(static_cast<std::int64_t>(share[i] * 1000.0 +
                                               0.5));
        }
    }
    std::lock_guard<std::mutex> lock(topologyMutex_);
    topology_ = std::move(topo);
}

Gateway::~Gateway()
{
    stop();
}

void
Gateway::start()
{
    pool_->start();
}

void
Gateway::stop()
{
    pool_->stop();
}

std::vector<std::string>
Gateway::metricPaths() const
{
    std::vector<std::string> paths(std::begin(kProxyPaths),
                                   std::end(kProxyPaths));
    paths.emplace_back("/v1/batch");
    paths.emplace_back("/healthz");
    paths.emplace_back("/metrics");
    paths.emplace_back("/v1/store/stats");
    paths.emplace_back("/admin/backends");
    return paths;
}

std::uint64_t
Gateway::shardDigest(const std::string &path,
                     const std::string &body) const
{
    json::Value parsed;
    std::string error;
    if (json::parse(body, parsed, &error))
        return fnv1a64(server::ModelService::cacheKey(path, parsed));
    // Unparsable: still deterministic — the owning backend will
    // answer 400 the same way every time.
    return fnv1a64(path + "\n" + body);
}

int
Gateway::hedgeDelayMs() const
{
    if (!upstreamLatency_ ||
        upstreamLatency_->count() <
            std::max<std::uint64_t>(1, config_.hedgeMinSamples))
        return config_.hedgeMaxMs;
    const double q =
        upstreamLatency_->quantile(config_.hedgeQuantile) * 1000.0;
    return std::clamp(static_cast<int>(q + 0.5), config_.hedgeMinMs,
                      config_.hedgeMaxMs);
}

server::HttpResponse
Gateway::exchangeWithHedge(Backend &primary, Backend *hedgeTarget,
                           const std::string &path,
                           const std::string &body,
                           const std::string &contentType,
                           const HeaderList &extraHeaders,
                           Clock::time_point deadline,
                           bool &transportOk)
{
    transportOk = false;
    const auto start = Clock::now();
    // Propagate the remaining budget so the replica can shed work
    // this gateway has already given up on. The upstream request is
    // built from scratch here: only headers this gateway chooses to
    // forward exist on the wire, so a client-supplied X-Fosm-Tenant
    // can never reach a backend.
    const auto wireFor = [&](const Backend &b) {
        std::vector<std::pair<std::string, std::string>> extra{
            {server::deadlineHeader,
             std::to_string(millisLeft(deadline))}};
        if (!contentType.empty())
            extra.emplace_back("Content-Type", contentType);
        for (const auto &header : extraHeaders)
            extra.push_back(header);
        return server::serializeRequest(
            "POST", path, b.address().label, body, extra);
    };

    UpstreamCall calls[2];
    bool refreshed[2] = {false, false};
    Backend *owners[2] = {&primary, hedgeTarget};
    int active = 1;
    bool hedged = false;

    if (primary.requests)
        primary.requests->inc();
    if (!calls[0].start(primary, wireFor(primary),
                        config_.upstream.connectTimeoutMs)) {
        if (primary.errors)
            primary.errors->inc();
        primary.noteProxyFailure(config_.upstream.ejectAfter);
        return server::HttpResponse(502);
    }

    auto hedgeAt =
        start + std::chrono::milliseconds(hedgeDelayMs());

    for (;;) {
        pollfd pfds[2];
        int idx[2];
        int n = 0;
        for (int i = 0; i < active; ++i) {
            if (calls[i].state() ==
                UpstreamCall::State::Receiving) {
                pfds[n] = {calls[i].fd(), POLLIN, 0};
                idx[n] = i;
                ++n;
            }
        }
        if (n == 0) {
            // Every outstanding call failed.
            for (int i = 0; i < active; ++i)
                if (owners[i] && owners[i]->errors)
                    owners[i]->errors->inc();
            primary.noteProxyFailure(config_.upstream.ejectAfter);
            return server::HttpResponse(502);
        }

        auto wakeAt = deadline;
        const bool canHedge = !hedged && hedgeTarget;
        if (canHedge && hedgeAt < wakeAt)
            wakeAt = hedgeAt;
        const int waitMs = millisLeft(wakeAt);
        const int ready = ::poll(pfds, n, waitMs);

        if (ready > 0) {
            for (int k = 0; k < n; ++k) {
                if (!(pfds[k].revents & (POLLIN | POLLHUP | POLLERR)))
                    continue;
                const int i = idx[k];
                switch (calls[i].onReadable()) {
                case UpstreamCall::State::Done: {
                    // First complete response wins.
                    transportOk = true;
                    const server::ClientResponse &r =
                        calls[i].response();
                    const std::string &retryAfter =
                        retryAfterOf(r);
                    if (r.status < 500) {
                        owners[i]->noteProxySuccess();
                    } else if (r.status == 503 &&
                               !retryAfter.empty()) {
                        // The replica is alive and shedding with a
                        // hint; honor it instead of punishing the
                        // backend or retrying into the overload.
                        owners[i]->deferFor(
                            std::atoi(retryAfter.c_str()) * 1000);
                        if (retryAfterHonored_)
                            retryAfterHonored_->inc();
                        if (owners[i]->errors)
                            owners[i]->errors->inc();
                    } else {
                        owners[i]->noteProxyFailure(
                            config_.upstream.ejectAfter);
                        if (owners[i]->errors)
                            owners[i]->errors->inc();
                    }
                    if (upstreamLatency_)
                        upstreamLatency_->observe(
                            std::chrono::duration<double>(
                                Clock::now() - start)
                                .count());
                    if (i == 1) {
                        if (hedgeWins_)
                            hedgeWins_->inc();
                        // The primary burned its whole hedge window
                        // without producing a byte before the hedge
                        // finished — slowness, not bad luck. Charge
                        // it, or a consistently hedge-lost backend
                        // never trips its breaker and taxes every
                        // request homed on it with a hedge.
                        if (calls[0].state() ==
                                UpstreamCall::State::Receiving &&
                            !calls[0].receivedBytes()) {
                            if (primary.errors)
                                primary.errors->inc();
                            primary.noteProxyFailure(
                                config_.upstream.ejectAfter);
                        }
                    }
                    server::HttpResponse out(r.status);
                    out.body = r.body;
                    const std::string &ct =
                        r.header("content-type");
                    if (!ct.empty())
                        out.setHeader("Content-Type", ct);
                    if (!retryAfter.empty())
                        out.setHeader("Retry-After", retryAfter);
                    out.setHeader("X-Fosm-Backend",
                                  owners[i]->address().label);
                    calls[i].finish();
                    for (int j = 0; j < active; ++j)
                        if (j != i)
                            calls[j].abandon();
                    return out;
                }
                case UpstreamCall::State::Failed:
                    // A pooled connection may have been closed by
                    // the backend while idle; one fresh re-dial on
                    // the same backend, not counted as a retry.
                    if (calls[i].usedPooledConn() &&
                        !calls[i].receivedBytes() &&
                        !refreshed[i]) {
                        refreshed[i] = true;
                        calls[i].start(
                            *owners[i], wireFor(*owners[i]),
                            config_.upstream.connectTimeoutMs,
                            /*forceFresh=*/true);
                    }
                    break;
                default:
                    break;
                }
            }
            continue;
        }

        // Timeout: fire the (single) hedge, or give up.
        const auto now = Clock::now();
        if (now >= deadline) {
            for (int i = 0; i < active; ++i) {
                calls[i].abandon();
                if (owners[i] && owners[i]->errors)
                    owners[i]->errors->inc();
            }
            primary.noteProxyFailure(config_.upstream.ejectAfter);
            return server::HttpResponse(504);
        }
        if (canHedge && now >= hedgeAt) {
            hedged = true;
            // A deferred or breaker-guarded backend does not get a
            // speculative duplicate (allowRequest consumes the
            // half-open trial only when we really send).
            if (!hedgeTarget->deferred(now) &&
                hedgeTarget->breaker().allowRequest(now)) {
                active = 2;
                if (hedges_)
                    hedges_->inc();
                if (hedgeTarget->requests)
                    hedgeTarget->requests->inc();
                calls[1].start(*hedgeTarget, wireFor(*hedgeTarget),
                               config_.upstream.connectTimeoutMs);
            }
        }
    }
}

server::HttpResponse
Gateway::proxy(const server::HttpRequest &request,
               const HeaderList &tenantHeaders)
{
    const std::string path = request.path();
    const std::string &body = request.body;

    // Overall budget: the client's propagated deadline, or the
    // configured synthetic default. Attempts are clipped to it, and
    // a spent budget answers 504 immediately — wasted upstream work
    // helps nobody.
    const auto entry = Clock::now();
    const bool hasOverall =
        request.hasDeadline() || config_.defaultDeadlineMs > 0;
    const Clock::time_point overall =
        request.hasDeadline()
            ? request.deadline
            : entry + std::chrono::milliseconds(
                          config_.defaultDeadlineMs);
    if (hasOverall && entry >= overall) {
        if (deadlineExceeded_)
            deadlineExceeded_->inc();
        return jsonError(504, "deadline exhausted before proxying");
    }

    // One topology snapshot per request: membership changes swap in
    // a new Topology, but this request completes on the one it
    // started with (the shared_ptrs keep draining backends alive).
    const std::shared_ptr<const Topology> topo = topology();
    if (topo->backends.empty())
        return jsonError(503, "no backends in topology");
    return routedExchange(*topo, shardDigest(path, body), path,
                          body, std::string(), tenantHeaders,
                          hasOverall, overall);
}

server::HttpResponse
Gateway::routedExchange(const Topology &topo, std::uint64_t digest,
                        const std::string &path,
                        const std::string &body,
                        const std::string &contentType,
                        const HeaderList &extraHeaders,
                        bool hasOverall, Clock::time_point overall)
{
    const auto entry = Clock::now();
    // The full ring walk from the key's owner. Its leading
    // `replication` entries are exactly the key's preference list on
    // the replicated store side (docs/REPLICATION.md): when the
    // owner dies, the next healthy backend this loop lands on is the
    // one already holding the shard's replicated entries, so
    // failover stays on the warm cached path with no routing change
    // needed here.
    const std::vector<std::uint32_t> pref =
        topo.ring.route(digest, topo.backends.size());

    // Preference order within each tier: fully routable backends
    // first, then deferred/breaker-open ones, ejected ones last
    // (every backend may be flapping).
    const auto rank = [&](const Backend &b) {
        if (!b.healthy())
            return 2;
        if (b.deferred(entry) || !b.breaker().routable(entry))
            return 1;
        return 0;
    };
    std::vector<std::uint32_t> order;
    order.reserve(pref.size());
    for (int tier = 0; tier <= 2; ++tier)
        for (std::uint32_t i : pref)
            if (rank(*topo.backends[i]) == tier)
                order.push_back(i);

    // The configured retry count is a floor, not a ceiling: while
    // the overall deadline still has budget, transport-level
    // failures keep cycling the preference ring rather than
    // surfacing 502 with time left on the clock. Replica-generated
    // 5xx (other than Retry-After failovers) still stop at the
    // configured count — retrying those amplifies load on a backend
    // that is answering, just badly. The hard cap only guards
    // against a topology where every dial fails instantly.
    const int attempts = 1 + std::max(0, config_.retries);
    const int maxAttempts =
        hasOverall ? std::max(attempts, 32) : attempts;
    server::HttpResponse last5xx(0);
    bool have5xx = false;
    bool skipBackoff = false;

    for (int attempt = 0; attempt < maxAttempts; ++attempt) {
        if (attempt > 0) {
            if (retries_)
                retries_->inc();
            // No backoff sleep when nothing was actually sent
            // (breaker rejection) or the backend asked us to fail
            // over (Retry-After) — the next backend is fine now.
            if (!skipBackoff) {
                const int backoff =
                    (config_.retryBaseMs
                     << std::min(attempt - 1, 8)) +
                    jitterMs(config_.retryBaseMs);
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(backoff));
            }
            skipBackoff = false;
        }
        const auto now = Clock::now();
        if (hasOverall && now >= overall) {
            if (deadlineExceeded_)
                deadlineExceeded_->inc();
            return jsonError(504, "deadline exhausted during retry");
        }

        Backend &target =
            *topo.backends[order[static_cast<std::size_t>(
                                     attempt) %
                                 order.size()]];
        if (!target.breaker().allowRequest(now)) {
            if (breakerRejections_)
                breakerRejections_->inc();
            skipBackoff = true;
            continue;
        }
        // The hedge goes to the next distinct backend in preference
        // order, if there is one.
        Backend *hedgeTarget = nullptr;
        if (order.size() > 1)
            hedgeTarget =
                topo.backends[order[(static_cast<std::size_t>(
                                         attempt) +
                                     1) %
                                    order.size()]]
                    .get();

        Clock::time_point attemptDeadline =
            now + std::chrono::milliseconds(
                      config_.upstream.requestTimeoutMs);
        if (hasOverall && overall < attemptDeadline)
            attemptDeadline = overall;

        bool transportOk = false;
        server::HttpResponse response =
            exchangeWithHedge(target, hedgeTarget, path, body,
                              contentType, extraHeaders,
                              attemptDeadline, transportOk);
        if (!transportOk)
            continue;
        if (response.status >= 500) {
            // A shedding replica's Retry-After already deferred it
            // in exchangeWithHedge; fail over to the next ring
            // replica without the backoff sleep.
            if (response.status == 503) {
                for (const auto &h : response.headers)
                    if (h.first == "Retry-After") {
                        skipBackoff = true;
                        break;
                    }
            }
            last5xx = std::move(response);
            have5xx = true;
            // Only transport failures and Retry-After failovers
            // earn deadline-extended attempts; a replica answering
            // plain 5xx gets the configured count and no more.
            if (!skipBackoff && attempt + 1 >= attempts)
                break;
            continue;
        }
        // 2xx–4xx pass through unchanged: a 400 is the client's
        // problem, not the backend's.
        return response;
    }

    if (have5xx)
        return last5xx;
    return jsonError(502, "all upstream attempts failed");
}

server::HttpResponse
Gateway::proxyBatch(const server::HttpRequest &request,
                    const HeaderList &tenantHeaders)
{
    namespace batch = server::batch;

    // The binary frame is a gateway-to-backend wire; clients of the
    // gateway speak JSON on both sides of /v1/batch.
    if (request.header("content-type")
            .rfind(batch::contentType, 0) == 0) {
        return jsonError(415,
                         "the gateway accepts JSON batches; "
                         "application/x-fosm-batch is the upstream "
                         "wire format");
    }

    json::Value parsed;
    std::string error;
    if (!json::parse(request.body, parsed, &error))
        return jsonError(400, "invalid JSON body: " + error);
    batch::Request req;
    try {
        req = batch::parseRequest(parsed);
    } catch (const server::ServiceError &e) {
        return jsonError(e.status(), e.what());
    }

    const auto entry = Clock::now();
    const bool hasOverall =
        request.hasDeadline() || config_.defaultDeadlineMs > 0;
    const Clock::time_point overall =
        request.hasDeadline()
            ? request.deadline
            : entry + std::chrono::milliseconds(
                          config_.defaultDeadlineMs);
    if (hasOverall && entry >= overall) {
        if (deadlineExceeded_)
            deadlineExceeded_->inc();
        return jsonError(504, "deadline exhausted before proxying");
    }

    const std::shared_ptr<const Topology> topo = topology();
    if (topo->backends.empty())
        return jsonError(503, "no backends in topology");

    const std::size_t n = req.rows.size();
    if (batchRequests_)
        batchRequests_->inc();
    if (batchRows_)
        batchRows_->inc(n);

    // Every row starts as an error slot; evaluated rows overwrite
    // theirs when the owning shard's response is scattered back.
    batch::Result result;
    result.workload = req.workload;
    for (std::size_t i = 0; i < n; ++i)
        result.pushError("row not evaluated");

    // Split by the same digest the backends' response caches key on:
    // each row lands on the backend that owns (and has likely
    // cached) the identical single-request /v1/cpi entry.
    struct Group
    {
        std::uint64_t digest = 0;
        std::vector<std::size_t> rows;
    };
    std::map<std::uint32_t, Group> groups;
    for (std::size_t i = 0; i < n; ++i) {
        json::Value merged;
        try {
            merged = batch::mergedRowBody(req, req.rows[i]);
        } catch (const server::ServiceError &e) {
            // Same per-row message the backend's own validation
            // produces; no point shipping the row upstream.
            result.errors[i] = e.what();
            continue;
        }
        const std::uint64_t digest = fnv1a64(
            server::ModelService::cacheKey("/v1/cpi", merged));
        const std::uint32_t owner =
            topo->ring.route(digest, topo->backends.size())[0];
        auto [it, fresh] = groups.try_emplace(owner);
        if (fresh)
            it->second.digest = digest;
        it->second.rows.push_back(i);
    }

    const json::Value *sharedMachine =
        req.sharedMachine.isObject() ? &req.sharedMachine : nullptr;
    const json::Value *sharedOptions =
        req.sharedOptions.isObject() ? &req.sharedOptions : nullptr;

    for (const auto &[owner, group] : groups) {
        if (batchShardCalls_)
            batchShardCalls_->inc();
        std::vector<const json::Value *> rowPtrs;
        rowPtrs.reserve(group.rows.size());
        for (std::size_t i : group.rows)
            rowPtrs.push_back(&req.rows[i]);
        const std::string wire = batch::encodeRequest(
            req.workload, sharedMachine, sharedOptions, rowPtrs);

        // The group digest routes to the shard owner first; retries
        // and hedges walk the same ring order as single requests.
        server::HttpResponse upstream = routedExchange(
            *topo, group.digest, "/v1/batch", wire,
            batch::contentType, tenantHeaders, hasOverall,
            overall);

        batch::Result shard;
        std::string decodeError;
        if (upstream.status == 200 &&
            batch::decodeResponse(upstream.body, shard,
                                  &decodeError) &&
            shard.rows() == group.rows.size()) {
            for (std::size_t j = 0; j < group.rows.size(); ++j) {
                const std::size_t i = group.rows[j];
                result.ideal[i] = shard.ideal[j];
                result.brmisp[i] = shard.brmisp[j];
                result.icacheL1[i] = shard.icacheL1[j];
                result.icacheL2[i] = shard.icacheL2[j];
                result.dcacheLong[i] = shard.dcacheLong[j];
                result.dtlb[i] = shard.dtlb[j];
                result.total[i] = shard.total[j];
                result.ipc[i] = shard.ipc[j];
                result.errors[i] = shard.errors[j];
            }
        } else {
            // A failed shard degrades to error slots for its rows
            // only — the rest of the batch still answers.
            const std::string why =
                upstream.status == 200
                    ? "bad upstream batch frame: " + decodeError
                    : "upstream shard answered " +
                          std::to_string(upstream.status);
            for (std::size_t i : group.rows)
                result.errors[i] = why;
        }
    }

    if (batchRowErrors_) {
        std::uint64_t bad = 0;
        for (const std::string &e : result.errors)
            if (!e.empty())
                ++bad;
        if (bad > 0)
            batchRowErrors_->inc(bad);
    }

    server::HttpResponse out = server::HttpResponse::json(
        200, batch::toJson(result).dump());
    out.setHeader("X-Fosm-Batch-Shards",
                  std::to_string(groups.size()));
    return out;
}

bool
Gateway::blockingExchange(Backend &backend,
                          const std::string &method,
                          const std::string &target,
                          const std::string &body, int timeoutMs,
                          server::ClientResponse &out)
{
    UpstreamCall call;
    if (!call.start(backend,
                    server::serializeRequest(
                        method, target, backend.address().label,
                        body),
                    config_.upstream.connectTimeoutMs,
                    /*forceFresh=*/true))
        return false;
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(timeoutMs);
    while (call.state() == UpstreamCall::State::Receiving) {
        pollfd pfd{call.fd(), POLLIN, 0};
        const int left = millisLeft(deadline);
        if (left == 0 || ::poll(&pfd, 1, left) <= 0)
            return false;
        call.onReadable();
    }
    if (call.state() != UpstreamCall::State::Done)
        return false;
    out = call.response();
    call.finish();
    return true;
}

server::HttpResponse
Gateway::health() const
{
    const auto members = pool_->snapshot();
    std::size_t healthy = 0;
    json::Value detail = json::Value::object();
    for (const auto &b : members) {
        if (b->healthy())
            ++healthy;
        detail.set(b->address().label, b->healthy());
    }
    json::Value body = json::Value::object();
    body.set("status", healthy > 0 ? "ok" : "unavailable");
    body.set("backends",
             static_cast<std::uint64_t>(members.size()));
    body.set("healthy", static_cast<std::uint64_t>(healthy));
    body.set("backend_health", std::move(detail));
    return server::HttpResponse::json(healthy > 0 ? 200 : 503,
                                      body.dump());
}

server::HttpResponse
Gateway::aggregateStoreStats()
{
    json::Value aggregate = json::Value::object();
    json::Value perBackend = json::Value::object();
    std::size_t reachable = 0;

    // With replication every entry exists on up to N backends, so a
    // naive sum of liveRecords double-counts. Backends that report a
    // repl.ownership split let us count each entry exactly once (at
    // its ring owner) and expose the replica copies separately.
    double ownedTotal = 0, replicaTotal = 0, foreignTotal = 0;
    std::size_t replReporting = 0;

    // Cluster-level integrity rollup: corruption found/quarantined
    // by each backend's scrubber, standing quarantines, and records
    // re-committed from ring peers.
    double corruptFound = 0, quarantined = 0, quarantineLive = 0;
    double repairedRecords = 0;
    std::size_t scrubReporting = 0;

    for (const auto &member : pool_->snapshot()) {
        Backend &b = *member;
        server::ClientResponse r;
        json::Value stats;
        std::string error;
        if (b.healthy() &&
            blockingExchange(b, "GET", "/v1/store/stats", "",
                             config_.upstream.requestTimeoutMs,
                             r) &&
            r.status == 200 &&
            json::parse(r.body, stats, &error)) {
            ++reachable;
            sumNumericLeaves(aggregate, stats, "repl");
            if (const json::Value *repl = stats.find("repl")) {
                if (const json::Value *own =
                        repl->find("ownership")) {
                    ++replReporting;
                    if (const json::Value *v = own->find("owned"))
                        ownedTotal += v->asDouble();
                    if (const json::Value *v = own->find("replica"))
                        replicaTotal += v->asDouble();
                    if (const json::Value *v = own->find("foreign"))
                        foreignTotal += v->asDouble();
                }
                if (const json::Value *counters =
                        repl->find("counters")) {
                    if (const json::Value *v =
                            counters->find("repairSuccess"))
                        repairedRecords += v->asDouble();
                }
            }
            if (const json::Value *scrub = stats.find("scrub")) {
                ++scrubReporting;
                if (const json::Value *v =
                        scrub->find("corruptFound"))
                    corruptFound += v->asDouble();
                if (const json::Value *v =
                        scrub->find("quarantined"))
                    quarantined += v->asDouble();
            }
            if (const json::Value *store = stats.find("store")) {
                if (const json::Value *v =
                        store->find("quarantineLive"))
                    quarantineLive += v->asDouble();
            }
            perBackend.set(b.address().label, std::move(stats));
        } else {
            perBackend.set(b.address().label, json::Value());
        }
    }

    json::Value body = json::Value::object();
    body.set("backends_reporting",
             static_cast<std::uint64_t>(reachable));
    if (replReporting > 0 || scrubReporting > 0) {
        json::Value cluster = json::Value::object();
        if (replReporting > 0) {
            cluster.set("owned_records", ownedTotal);
            cluster.set("replica_records", replicaTotal);
            cluster.set("foreign_records", foreignTotal);
            cluster.set("backends_with_repl",
                        static_cast<std::uint64_t>(replReporting));
            cluster.set("repaired_records", repairedRecords);
        }
        if (scrubReporting > 0) {
            cluster.set("scrub_corrupt_found", corruptFound);
            cluster.set("scrub_quarantined", quarantined);
            cluster.set("quarantine_live", quarantineLive);
            cluster.set("backends_with_scrub",
                        static_cast<std::uint64_t>(scrubReporting));
        }
        body.set("cluster", std::move(cluster));
    }
    body.set("aggregate", std::move(aggregate));
    body.set("per_backend", std::move(perBackend));
    return server::HttpResponse::json(reachable > 0 ? 200 : 502,
                                      body.dump());
}

server::HttpResponse
Gateway::adminScrub(const server::HttpRequest &request)
{
    if (request.method != "GET" && request.method != "POST")
        return jsonError(405, "use GET or POST");
    json::Value perBackend = json::Value::object();
    std::size_t reachable = 0;
    for (const auto &member : pool_->snapshot()) {
        Backend &b = *member;
        server::ClientResponse r;
        json::Value doc;
        std::string error;
        if (b.healthy() &&
            blockingExchange(b, request.method, "/admin/scrub",
                             request.body,
                             config_.upstream.requestTimeoutMs,
                             r) &&
            r.status == 200 && json::parse(r.body, doc, &error)) {
            ++reachable;
            perBackend.set(b.address().label, std::move(doc));
        } else {
            perBackend.set(b.address().label, json::Value());
        }
    }
    json::Value body = json::Value::object();
    body.set("backends_reporting",
             static_cast<std::uint64_t>(reachable));
    body.set("per_backend", std::move(perBackend));
    return server::HttpResponse::json(reachable > 0 ? 200 : 502,
                                      body.dump());
}

server::HttpResponse
Gateway::adminListBackends() const
{
    const auto now = Clock::now();
    const auto members = pool_->snapshot();
    const std::shared_ptr<const Topology> topo = topology();
    json::Value list = json::Value::array();
    for (const auto &b : members) {
        json::Value entry = json::Value::object();
        entry.set("backend", b->address().label);
        entry.set("healthy", b->healthy());
        entry.set("breaker",
                  breakerStateName(b->breaker().state()));
        entry.set("deferred", b->deferred(now));
        list.push(std::move(entry));
    }
    json::Value body = json::Value::object();
    body.set("backends", std::move(list));
    body.set("topology_backends",
             static_cast<std::uint64_t>(topo->backends.size()));
    return server::HttpResponse::json(200, body.dump());
}

server::HttpResponse
Gateway::adminChangeBackends(const std::string &body)
{
    json::Value v;
    std::string error;
    if (!json::parse(body, v, &error) || !v.isObject()) {
        return jsonError(400,
                         "body must be a JSON object: " + error);
    }
    for (const auto &member : v.members()) {
        if (member.first != "add" && member.first != "remove") {
            return jsonError(400, "unknown member '" +
                                      member.first +
                                      "' (valid: add, remove)");
        }
    }

    // Validate fully before mutating anything, so a bad request
    // leaves the membership untouched.
    std::vector<BackendAddress> toAdd;
    std::vector<std::string> toRemove;
    if (const json::Value *add = v.find("add")) {
        if (!add->isArray())
            return jsonError(
                400, "'add' must be an array of host:port strings");
        for (const json::Value &item : add->items()) {
            std::vector<BackendAddress> parsed;
            if (!item.isString() ||
                !parseBackendList(item.asString(), parsed, error) ||
                parsed.size() != 1) {
                return jsonError(400, "bad backend in 'add': " +
                                          error);
            }
            toAdd.push_back(std::move(parsed[0]));
        }
    }
    if (const json::Value *remove = v.find("remove")) {
        if (!remove->isArray())
            return jsonError(
                400,
                "'remove' must be an array of host:port labels");
        for (const json::Value &item : remove->items()) {
            if (!item.isString())
                return jsonError(400,
                                 "'remove' entries must be strings");
            if (!pool_->find(item.asString()))
                return jsonError(400, "unknown backend '" +
                                          item.asString() + "'");
            toRemove.push_back(item.asString());
        }
    }
    if (toAdd.empty() && toRemove.empty())
        return jsonError(400, "nothing to do: give add or remove");
    // Refuse a change that would leave no backends at all.
    std::size_t projected = pool_->size() + toAdd.size();
    for (const std::string &label : toRemove) {
        bool alsoAdded = false;
        for (const auto &a : toAdd)
            if (a.label == label)
                alsoAdded = true;
        if (!alsoAdded)
            --projected;
    }
    if (projected == 0)
        return jsonError(400,
                         "refusing to remove the last backend");

    for (const auto &addr : toAdd)
        pool_->add(addr);
    for (const std::string &label : toRemove)
        pool_->remove(label);
    rebuildTopology();
    if (membershipChanges_)
        membershipChanges_->inc();
    fosm::inform("gateway: membership now ", pool_->size(),
                 " backends (+", toAdd.size(), "/-",
                 toRemove.size(), ")");
    return adminListBackends();
}

server::HttpServer::Handler
Gateway::handler()
{
    return [this](const server::HttpRequest &request) {
        const std::string path = request.path();
        if (request.method == "GET" && path == "/healthz")
            return health();
        if (request.method == "GET" && path == "/metrics") {
            return metrics_
                       ? server::HttpResponse::text(
                             200, metrics_->renderPrometheus())
                       : server::HttpResponse::text(404,
                                                    "no metrics\n");
        }
        if (request.method == "GET" && path == "/v1/store/stats")
            return aggregateStoreStats();
        if (path == "/admin/backends") {
            if (request.method == "GET")
                return adminListBackends();
            if (request.method == "POST")
                return adminChangeBackends(request.body);
            return jsonError(405, "use GET or POST");
        }
        if (path == "/admin/scrub")
            return adminScrub(request);
        if (path == "/admin/tenants") {
            if (!config_.registry)
                return jsonError(404,
                                 "no tenant registry configured "
                                 "(start with --tenants-file)");
            return config_.registry->handleAdmin(request);
        }
        if (path == "/v1/batch" || isProxyPath(path)) {
            if (request.method != "POST")
                return jsonError(405, "use POST");
            // Admission (auth + rate + inflight quota) happens once,
            // here, for every proxied endpoint; the verified tenant
            // identity rides upstream on every attempt.
            tenant::AdmitDecision decision;
            HeaderList tenantHeaders;
            if (admission_) {
                decision = admission_->admit(request);
                if (!decision.admitted()) {
                    server::HttpResponse out = jsonError(
                        decision.status, decision.error);
                    if (decision.retryAfterSeconds > 0)
                        out.setHeader(
                            "Retry-After",
                            std::to_string(
                                decision.retryAfterSeconds));
                    return out;
                }
                if (!decision.tenantId.empty()) {
                    // The backend re-verifies the token itself, so a
                    // direct hit on a replica cannot bypass auth;
                    // the stamp carries the identity this gateway
                    // already checked.
                    tenantHeaders.emplace_back(
                        "Authorization",
                        request.header("authorization"));
                    tenantHeaders.emplace_back(
                        "X-Fosm-Tenant", decision.tenantId);
                }
            }
            server::HttpResponse out =
                path == "/v1/batch"
                    ? proxyBatch(request, tenantHeaders)
                    : proxy(request, tenantHeaders);
            if (admission_)
                admission_->release(decision);
            return out;
        }
        return jsonError(404, "unknown path: " + path);
    };
}

} // namespace fosm::cluster
