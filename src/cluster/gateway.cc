#include "cluster/gateway.hh"

#include <algorithm>
#include <chrono>
#include <random>
#include <thread>

#include <poll.h>

#include "common/hash.hh"
#include "common/logging.hh"
#include "server/service.hh"

namespace fosm::cluster {

namespace {

using Clock = std::chrono::steady_clock;

server::HttpResponse
jsonError(int status, const std::string &message)
{
    json::Value body = json::Value::object();
    body.set("error", message);
    return server::HttpResponse::json(status, body.dump());
}

/** Jitter in [0, limitMs] from a cheap thread-local generator. */
int
jitterMs(int limitMs)
{
    thread_local std::minstd_rand rng(static_cast<unsigned>(
        Clock::now().time_since_epoch().count()));
    if (limitMs <= 0)
        return 0;
    return static_cast<int>(rng() % (limitMs + 1));
}

int
millisLeft(Clock::time_point deadline)
{
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - Clock::now())
            .count();
    return left > 0 ? static_cast<int>(left) : 0;
}

/** Recursively sum numeric leaves of src into dst (by key path). */
void
sumNumericLeaves(json::Value &dst, const json::Value &src)
{
    for (const auto &member : src.members()) {
        const json::Value &v = member.second;
        if (v.isNumber()) {
            const json::Value *prev = dst.find(member.first);
            dst.set(member.first,
                    (prev ? prev->asDouble() : 0.0) + v.asDouble());
        } else if (v.isObject()) {
            json::Value *slot =
                const_cast<json::Value *>(dst.find(member.first));
            if (!slot)
                slot = &dst.set(member.first,
                                json::Value::object());
            sumNumericLeaves(*slot, v);
        }
    }
}

const char *const kProxyPaths[] = {"/v1/cpi", "/v1/iw-curve",
                                   "/v1/trends"};

bool
isProxyPath(const std::string &path)
{
    for (const char *p : kProxyPaths)
        if (path == p)
            return true;
    return false;
}

} // namespace

Gateway::Gateway(GatewayConfig config,
                 server::MetricsRegistry *metrics)
    : config_(std::move(config)), metrics_(metrics),
      ring_(config_.vnodes)
{
    fosm_assert(!config_.backends.empty(),
                "gateway needs at least one backend");
    // Ring node index i == pool backend index i: both are built from
    // config_.backends in order.
    for (const auto &addr : config_.backends)
        ring_.add(addr.label);
    pool_ = std::make_unique<BackendPool>(
        config_.backends, config_.upstream, metrics_);

    if (metrics_) {
        retries_ = &metrics_->counter(
            "fosm_gateway_retries_total",
            "Upstream attempts beyond the first per request");
        hedges_ = &metrics_->counter(
            "fosm_gateway_hedges_total",
            "Hedged duplicate requests fired");
        hedgeWins_ = &metrics_->counter(
            "fosm_gateway_hedge_wins_total",
            "Hedged duplicates that answered first");
        upstreamLatency_ = &metrics_->histogram(
            "fosm_gateway_upstream_latency_seconds",
            "Latency of winning upstream exchanges");
        metrics_->addCallbackGauge(
            "fosm_gateway_healthy_backends",
            "Backends currently passing health checks",
            [this] {
                return static_cast<double>(pool_->healthyCount());
            });
        const std::vector<double> share = ring_.keyspaceShare();
        for (std::size_t i = 0; i < share.size(); ++i) {
            metrics_
                ->gauge("fosm_gateway_ring_share_milli",
                        "Keyspace share per backend (x1000)",
                        "backend=\"" + ring_.name(i) + "\"")
                .set(static_cast<std::int64_t>(share[i] * 1000.0 +
                                               0.5));
        }
    }
}

Gateway::~Gateway()
{
    stop();
}

void
Gateway::start()
{
    pool_->start();
}

void
Gateway::stop()
{
    pool_->stop();
}

std::vector<std::string>
Gateway::metricPaths() const
{
    std::vector<std::string> paths(std::begin(kProxyPaths),
                                   std::end(kProxyPaths));
    paths.emplace_back("/healthz");
    paths.emplace_back("/metrics");
    paths.emplace_back("/v1/store/stats");
    return paths;
}

std::uint64_t
Gateway::shardDigest(const std::string &path,
                     const std::string &body) const
{
    json::Value parsed;
    std::string error;
    if (json::parse(body, parsed, &error))
        return fnv1a64(server::ModelService::cacheKey(path, parsed));
    // Unparsable: still deterministic — the owning backend will
    // answer 400 the same way every time.
    return fnv1a64(path + "\n" + body);
}

int
Gateway::hedgeDelayMs() const
{
    if (!upstreamLatency_ ||
        upstreamLatency_->count() <
            std::max<std::uint64_t>(1, config_.hedgeMinSamples))
        return config_.hedgeMaxMs;
    const double q =
        upstreamLatency_->quantile(config_.hedgeQuantile) * 1000.0;
    return std::clamp(static_cast<int>(q + 0.5), config_.hedgeMinMs,
                      config_.hedgeMaxMs);
}

server::HttpResponse
Gateway::exchangeWithHedge(Backend &primary, Backend *hedgeTarget,
                           const std::string &path,
                           const std::string &body,
                           bool &transportOk)
{
    transportOk = false;
    const auto start = Clock::now();
    const auto deadline =
        start + std::chrono::milliseconds(
                    config_.upstream.requestTimeoutMs);

    UpstreamCall calls[2];
    bool refreshed[2] = {false, false};
    Backend *owners[2] = {&primary, hedgeTarget};
    int active = 1;
    bool hedged = false;

    if (primary.requests)
        primary.requests->inc();
    if (!calls[0].start(primary,
                        server::serializeRequest(
                            "POST", path, primary.address().label,
                            body),
                        config_.upstream.connectTimeoutMs)) {
        if (primary.errors)
            primary.errors->inc();
        primary.noteFailure(config_.upstream.ejectAfter);
        return server::HttpResponse(502);
    }

    auto hedgeAt =
        start + std::chrono::milliseconds(hedgeDelayMs());

    for (;;) {
        pollfd pfds[2];
        int idx[2];
        int n = 0;
        for (int i = 0; i < active; ++i) {
            if (calls[i].state() ==
                UpstreamCall::State::Receiving) {
                pfds[n] = {calls[i].fd(), POLLIN, 0};
                idx[n] = i;
                ++n;
            }
        }
        if (n == 0) {
            // Every outstanding call failed.
            for (int i = 0; i < active; ++i)
                if (owners[i] && owners[i]->errors)
                    owners[i]->errors->inc();
            primary.noteFailure(config_.upstream.ejectAfter);
            return server::HttpResponse(502);
        }

        auto wakeAt = deadline;
        const bool canHedge = !hedged && hedgeTarget;
        if (canHedge && hedgeAt < wakeAt)
            wakeAt = hedgeAt;
        const int waitMs = millisLeft(wakeAt);
        const int ready = ::poll(pfds, n, waitMs);

        if (ready > 0) {
            for (int k = 0; k < n; ++k) {
                if (!(pfds[k].revents & (POLLIN | POLLHUP | POLLERR)))
                    continue;
                const int i = idx[k];
                switch (calls[i].onReadable()) {
                case UpstreamCall::State::Done: {
                    // First complete response wins.
                    transportOk = true;
                    owners[i]->noteSuccess();
                    if (upstreamLatency_)
                        upstreamLatency_->observe(
                            std::chrono::duration<double>(
                                Clock::now() - start)
                                .count());
                    if (i == 1 && hedgeWins_)
                        hedgeWins_->inc();
                    const server::ClientResponse &r =
                        calls[i].response();
                    server::HttpResponse out(r.status);
                    out.body = r.body;
                    const std::string &ct =
                        r.header("content-type");
                    if (!ct.empty())
                        out.setHeader("Content-Type", ct);
                    out.setHeader("X-Fosm-Backend",
                                  owners[i]->address().label);
                    calls[i].finish();
                    for (int j = 0; j < active; ++j)
                        if (j != i)
                            calls[j].abandon();
                    return out;
                }
                case UpstreamCall::State::Failed:
                    // A pooled connection may have been closed by
                    // the backend while idle; one fresh re-dial on
                    // the same backend, not counted as a retry.
                    if (calls[i].usedPooledConn() &&
                        !calls[i].receivedBytes() &&
                        !refreshed[i]) {
                        refreshed[i] = true;
                        calls[i].start(
                            *owners[i],
                            server::serializeRequest(
                                "POST", path,
                                owners[i]->address().label, body),
                            config_.upstream.connectTimeoutMs,
                            /*forceFresh=*/true);
                    }
                    break;
                default:
                    break;
                }
            }
            continue;
        }

        // Timeout: fire the (single) hedge, or give up.
        const auto now = Clock::now();
        if (now >= deadline) {
            for (int i = 0; i < active; ++i) {
                calls[i].abandon();
                if (owners[i] && owners[i]->errors)
                    owners[i]->errors->inc();
            }
            primary.noteFailure(config_.upstream.ejectAfter);
            return server::HttpResponse(504);
        }
        if (canHedge && now >= hedgeAt) {
            hedged = true;
            active = 2;
            if (hedges_)
                hedges_->inc();
            if (hedgeTarget->requests)
                hedgeTarget->requests->inc();
            calls[1].start(*hedgeTarget,
                           server::serializeRequest(
                               "POST", path,
                               hedgeTarget->address().label, body),
                           config_.upstream.connectTimeoutMs);
        }
    }
}

server::HttpResponse
Gateway::proxy(const std::string &path, const std::string &body)
{
    const std::uint64_t digest = shardDigest(path, body);
    const std::vector<std::uint32_t> pref =
        ring_.route(digest, pool_->size());

    // Healthy backends first, in ring preference order; ejected ones
    // only as a last resort (every backend may be flapping).
    std::vector<std::uint32_t> order;
    order.reserve(pref.size());
    for (std::uint32_t i : pref)
        if (pool_->backend(i).healthy())
            order.push_back(i);
    for (std::uint32_t i : pref)
        if (!pool_->backend(i).healthy())
            order.push_back(i);

    const int attempts = 1 + std::max(0, config_.retries);
    server::HttpResponse last5xx(0);
    bool have5xx = false;

    for (int attempt = 0; attempt < attempts; ++attempt) {
        Backend &target = pool_->backend(
            order[static_cast<std::size_t>(attempt) %
                  order.size()]);
        // The hedge goes to the next distinct backend in preference
        // order, if there is one.
        Backend *hedgeTarget = nullptr;
        if (order.size() > 1)
            hedgeTarget = &pool_->backend(
                order[(static_cast<std::size_t>(attempt) + 1) %
                      order.size()]);

        if (attempt > 0) {
            if (retries_)
                retries_->inc();
            const int backoff =
                (config_.retryBaseMs << (attempt - 1)) +
                jitterMs(config_.retryBaseMs);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(backoff));
        }

        bool transportOk = false;
        server::HttpResponse response = exchangeWithHedge(
            target, hedgeTarget, path, body, transportOk);
        if (!transportOk)
            continue;
        if (response.status >= 500) {
            if (target.errors)
                target.errors->inc();
            last5xx = std::move(response);
            have5xx = true;
            continue;
        }
        // 2xx–4xx pass through unchanged: a 400 is the client's
        // problem, not the backend's.
        return response;
    }

    if (have5xx)
        return last5xx;
    return jsonError(502, "all upstream attempts failed");
}

bool
Gateway::blockingExchange(Backend &backend,
                          const std::string &method,
                          const std::string &target,
                          const std::string &body, int timeoutMs,
                          server::ClientResponse &out)
{
    UpstreamCall call;
    if (!call.start(backend,
                    server::serializeRequest(
                        method, target, backend.address().label,
                        body),
                    config_.upstream.connectTimeoutMs,
                    /*forceFresh=*/true))
        return false;
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(timeoutMs);
    while (call.state() == UpstreamCall::State::Receiving) {
        pollfd pfd{call.fd(), POLLIN, 0};
        const int left = millisLeft(deadline);
        if (left == 0 || ::poll(&pfd, 1, left) <= 0)
            return false;
        call.onReadable();
    }
    if (call.state() != UpstreamCall::State::Done)
        return false;
    out = call.response();
    call.finish();
    return true;
}

server::HttpResponse
Gateway::health() const
{
    json::Value body = json::Value::object();
    const std::size_t healthy = pool_->healthyCount();
    body.set("status", healthy > 0 ? "ok" : "unavailable");
    body.set("backends",
             static_cast<std::uint64_t>(pool_->size()));
    body.set("healthy", static_cast<std::uint64_t>(healthy));
    json::Value detail = json::Value::object();
    for (std::size_t i = 0; i < pool_->size(); ++i) {
        const Backend &b = pool_->backend(i);
        detail.set(b.address().label, b.healthy());
    }
    body.set("backend_health", std::move(detail));
    return server::HttpResponse::json(healthy > 0 ? 200 : 503,
                                      body.dump());
}

server::HttpResponse
Gateway::aggregateStoreStats()
{
    json::Value aggregate = json::Value::object();
    json::Value perBackend = json::Value::object();
    std::size_t reachable = 0;

    for (std::size_t i = 0; i < pool_->size(); ++i) {
        Backend &b = pool_->backend(i);
        server::ClientResponse r;
        json::Value stats;
        std::string error;
        if (b.healthy() &&
            blockingExchange(b, "GET", "/v1/store/stats", "",
                             config_.upstream.requestTimeoutMs,
                             r) &&
            r.status == 200 &&
            json::parse(r.body, stats, &error)) {
            ++reachable;
            sumNumericLeaves(aggregate, stats);
            perBackend.set(b.address().label, std::move(stats));
        } else {
            perBackend.set(b.address().label, json::Value());
        }
    }

    json::Value body = json::Value::object();
    body.set("backends_reporting",
             static_cast<std::uint64_t>(reachable));
    body.set("aggregate", std::move(aggregate));
    body.set("per_backend", std::move(perBackend));
    return server::HttpResponse::json(reachable > 0 ? 200 : 502,
                                      body.dump());
}

server::HttpServer::Handler
Gateway::handler()
{
    return [this](const server::HttpRequest &request) {
        const std::string path = request.path();
        if (request.method == "GET" && path == "/healthz")
            return health();
        if (request.method == "GET" && path == "/metrics") {
            return metrics_
                       ? server::HttpResponse::text(
                             200, metrics_->renderPrometheus())
                       : server::HttpResponse::text(404,
                                                    "no metrics\n");
        }
        if (request.method == "GET" && path == "/v1/store/stats")
            return aggregateStoreStats();
        if (isProxyPath(path)) {
            if (request.method != "POST")
                return jsonError(405, "use POST");
            return proxy(path, request.body);
        }
        return jsonError(404, "unknown path: " + path);
    };
}

} // namespace fosm::cluster
