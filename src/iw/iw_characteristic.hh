/**
 * @file
 * The IW characteristic (paper Section 3): the power-law relationship
 * I = alpha * W^beta between window occupancy and issue rate, adjusted
 * for non-unit latency via Little's law (I_L = I_1 / L) and saturated
 * at the machine's maximum issue width (as in Jouppi [16]).
 */

#ifndef FOSM_IW_IW_CHARACTERISTIC_HH
#define FOSM_IW_IW_CHARACTERISTIC_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/fit.hh"
#include "iw/window_sim.hh"

namespace fosm {

/**
 * A fitted, implementation-adjusted IW characteristic.
 *
 * alpha and beta describe the unit-latency, unbounded-issue curve
 * (implementation independent, a property of the program's data
 * dependences). avgLatency and issueWidth specialise it to a machine.
 */
class IWCharacteristic
{
  public:
    IWCharacteristic() = default;

    /**
     * @param alpha unit-latency power-law coefficient
     * @param beta power-law exponent
     * @param avg_latency average FU latency L (>= 1)
     * @param issue_width machine issue width; 0 means unbounded
     */
    IWCharacteristic(double alpha, double beta, double avg_latency,
                     std::uint32_t issue_width);

    /** Fit from measured unit-latency IW points (paper Figure 4/5). */
    static IWCharacteristic fromPoints(const std::vector<IwPoint> &points,
                                       double avg_latency,
                                       std::uint32_t issue_width);

    /**
     * Average issue rate with W instructions in the window:
     * min(issueWidth, alpha * W^beta / L). W=0 issues nothing.
     *
     * Defined inline in the header so the scalar transient walks and
     * the structure-of-arrays batch kernels (model/kernels.hh) compile
     * the exact same expression: one definition means both paths get
     * identical floating-point results bit for bit, which the batch
     * endpoint's bit-identity contract depends on.
     */
    double
    issueRate(double window_occupancy) const
    {
        double rate = unitRate(window_occupancy) / avgLatency_;
        if (issueWidth_ != 0)
            rate = std::min(rate, static_cast<double>(issueWidth_));
        if (saturationCap_ > 0.0)
            rate = std::min(rate, saturationCap_);
        return rate;
    }

    /** Unit-latency, unbounded-width rate alpha * W^beta. */
    double
    unitRate(double window_occupancy) const
    {
        if (window_occupancy <= 0.0)
            return 0.0;
        return alpha_ * std::pow(window_occupancy, beta_);
    }

    /**
     * Steady-state sustainable IPC for the given window size
     * (Section 5 step 1).
     */
    double steadyStateIpc(std::uint32_t window_size) const;

    /** Steady-state CPI = 1 / steadyStateIpc. */
    double steadyStateCpi(std::uint32_t window_size) const;

    /**
     * Window occupancy at which the (latency-adjusted, unbounded)
     * rate reaches the given IPC: the inverse of the power law.
     */
    double occupancyForRate(double ipc) const;

    /**
     * Additional saturation bound below the issue width, e.g. a
     * functional-unit throughput limit (Section 7 future-work 1).
     * 0 disables the cap.
     */
    void setSaturationCap(double cap);
    double saturationCap() const { return saturationCap_; }

    double alpha() const { return alpha_; }
    double beta() const { return beta_; }
    double avgLatency() const { return avgLatency_; }
    std::uint32_t issueWidth() const { return issueWidth_; }
    double fitR2() const { return r2_; }

  private:
    double alpha_ = 1.0;
    double beta_ = 0.5;
    double avgLatency_ = 1.0;
    std::uint32_t issueWidth_ = 0;
    double saturationCap_ = 0.0;
    double r2_ = 1.0;
};

} // namespace fosm

#endif // FOSM_IW_IW_CHARACTERISTIC_HH
