#include "iw/window_sim.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace fosm {

namespace {

constexpr Cycle notIssued = std::numeric_limits<Cycle>::max();

Cycle
latencyOf(const InstRecord &inst, const WindowSimConfig &config)
{
    return config.unitLatency ? 1 : config.latency.latencyFor(inst.cls);
}

WindowSimResult
resultFor(std::size_t n, Cycle last_cycle)
{
    WindowSimResult result;
    result.instructions = n;
    result.cycles = n == 0 ? 0 : last_cycle + 1;
    result.ipc = result.cycles == 0
        ? 0.0
        : static_cast<double>(n) / static_cast<double>(result.cycles);
    return result;
}

/**
 * One-shot unbounded simulation fused with producer resolution: a
 * single pass over the trace, no dependence arrays materialized.
 * Used when the caller needs only one window size; measureIwCurve
 * amortizes a TraceDeps across sizes instead.
 */
WindowSimResult
simulateUnboundedFused(const Trace &trace,
                       const WindowSimConfig &config)
{
    const std::size_t n = trace.size();
    const std::uint32_t w = config.windowSize;

    std::vector<Cycle> issue(n, 0);
    std::vector<Cycle> latency(n, 1);
    std::vector<std::int32_t> last_writer(numArchRegs, -1);
    Cycle last_cycle = 0;

    for (std::size_t i = 0; i < n; ++i) {
        const InstRecord &inst = trace[i];
        latency[i] = latencyOf(inst, config);

        const std::int32_t p1 =
            inst.src1 != invalidReg ? last_writer[inst.src1] : -1;
        const std::int32_t p2 =
            inst.src2 != invalidReg ? last_writer[inst.src2] : -1;
        if (inst.dst != invalidReg)
            last_writer[inst.dst] = static_cast<std::int32_t>(i);

        // Enters the window the cycle after the instruction W older
        // issues (its slot frees at issue).
        Cycle t = i >= w ? issue[i - w] + 1 : 0;
        if (p1 >= 0)
            t = std::max(t, issue[p1] + latency[p1]);
        if (p2 >= 0)
            t = std::max(t, issue[p2] + latency[p2]);
        issue[i] = t;
        last_cycle = std::max(last_cycle, t);
    }
    return resultFor(n, last_cycle);
}

WindowSimResult
simulateUnbounded(const Trace &trace, const WindowSimConfig &config,
                  const TraceDeps &deps)
{
    const std::size_t n = trace.size();
    const std::uint32_t w = config.windowSize;

    std::vector<Cycle> issue(n, 0);
    Cycle last_cycle = 0;

    for (std::size_t i = 0; i < n; ++i) {
        // Enters the window the cycle after the instruction W older
        // issues (its slot frees at issue).
        Cycle t = i >= w ? issue[i - w] + 1 : 0;
        const std::int32_t p1 = deps.prod1[i];
        const std::int32_t p2 = deps.prod2[i];
        if (p1 >= 0)
            t = std::max(t, issue[p1] + deps.latency[p1]);
        if (p2 >= 0)
            t = std::max(t, issue[p2] + deps.latency[p2]);
        issue[i] = t;
        last_cycle = std::max(last_cycle, t);
    }
    return resultFor(n, last_cycle);
}

WindowSimResult
simulateLimited(const Trace &trace, const WindowSimConfig &config,
                const TraceDeps &deps)
{
    const std::size_t n = trace.size();
    const std::uint32_t w = config.windowSize;
    const std::uint32_t width = config.issueWidth;

    std::vector<Cycle> issue(n, notIssued);

    // Intrusive doubly-linked list of window residents in dispatch
    // (= age) order, with node n as the sentinel: O(1) removal on
    // issue instead of the former erase(find(...)) deque scan.
    std::vector<std::uint32_t> next(n + 1), prev(n + 1);
    const std::uint32_t sentinel = static_cast<std::uint32_t>(n);
    next[sentinel] = sentinel;
    prev[sentinel] = sentinel;
    std::uint32_t window_count = 0;

    auto window_push_back = [&](std::uint32_t i) {
        const std::uint32_t tail = prev[sentinel];
        next[tail] = i;
        prev[i] = tail;
        next[i] = sentinel;
        prev[sentinel] = i;
        ++window_count;
    };
    auto window_remove = [&](std::uint32_t i) {
        next[prev[i]] = next[i];
        prev[next[i]] = prev[i];
        --window_count;
    };

    std::size_t head = 0;
    Cycle cycle = 0;
    Cycle last_cycle = 0;

    auto ready_at = [&](std::size_t i) -> Cycle {
        Cycle t = 0;
        for (std::int32_t p : {deps.prod1[i], deps.prod2[i]}) {
            if (p < 0)
                continue;
            if (issue[p] == notIssued)
                return notIssued;
            t = std::max(t, issue[p] + deps.latency[p]);
        }
        return t;
    };

    std::vector<std::uint32_t> issued_this_cycle;
    while (head < n || window_count > 0) {
        // Dispatch: refill the window (unbounded dispatch bandwidth in
        // the idealized machine; only the window size limits).
        while (window_count < w && head < n)
            window_push_back(static_cast<std::uint32_t>(head++));

        // Issue oldest-first up to the width limit.
        issued_this_cycle.clear();
        std::uint32_t issued = 0;
        for (std::uint32_t idx = next[sentinel]; idx != sentinel;
             idx = next[idx]) {
            if (issued >= width)
                break;
            const Cycle r = ready_at(idx);
            if (r != notIssued && r <= cycle) {
                issued_this_cycle.push_back(idx);
                ++issued;
            }
        }
        for (std::uint32_t idx : issued_this_cycle) {
            issue[idx] = cycle;
            last_cycle = cycle;
            window_remove(idx);
        }
        ++cycle;
        fosm_assert(cycle < 64 * n + 1024,
                    "limited window sim failed to make progress");
    }
    return resultFor(n, last_cycle);
}

} // namespace

TraceDeps
resolveTraceDeps(const Trace &trace, const WindowSimConfig &config)
{
    const std::size_t n = trace.size();
    fosm_assert(n < static_cast<std::size_t>(
                        std::numeric_limits<std::int32_t>::max()),
                "trace too long for 32-bit producer indices");

    TraceDeps deps;
    deps.latency.resize(n);
    deps.prod1.resize(n);
    deps.prod2.resize(n);

    std::vector<std::int32_t> last_writer(numArchRegs, -1);
    for (std::size_t i = 0; i < n; ++i) {
        const InstRecord &inst = trace[i];
        deps.latency[i] = latencyOf(inst, config);
        deps.prod1[i] =
            inst.src1 != invalidReg ? last_writer[inst.src1] : -1;
        deps.prod2[i] =
            inst.src2 != invalidReg ? last_writer[inst.src2] : -1;
        if (inst.dst != invalidReg)
            last_writer[inst.dst] = static_cast<std::int32_t>(i);
    }
    return deps;
}

WindowSimResult
simulateWindow(const Trace &trace, const WindowSimConfig &config,
               const TraceDeps &deps)
{
    fosm_assert(config.windowSize > 0, "window size must be positive");
    fosm_assert(deps.latency.size() == trace.size(),
                "deps resolved for a different trace");
    if (config.issueWidth == 0)
        return simulateUnbounded(trace, config, deps);
    return simulateLimited(trace, config, deps);
}

WindowSimResult
simulateWindow(const Trace &trace, const WindowSimConfig &config)
{
    fosm_assert(config.windowSize > 0, "window size must be positive");
    if (config.issueWidth == 0)
        return simulateUnboundedFused(trace, config);
    return simulateWindow(trace, config,
                          resolveTraceDeps(trace, config));
}

std::vector<IwPoint>
measureIwCurve(const Trace &trace,
               const std::vector<std::uint32_t> &sizes,
               const WindowSimConfig &base)
{
    // Producer resolution depends only on the trace and the latency
    // config, so it is shared across all window sizes; the sizes then
    // fan out over the pool (results stay in input order).
    const TraceDeps deps = resolveTraceDeps(trace, base);
    return parallelMap(sizes, [&](std::uint32_t w) {
        WindowSimConfig config = base;
        config.windowSize = w;
        const WindowSimResult r = simulateWindow(trace, config, deps);
        return IwPoint{w, r.ipc};
    });
}

std::vector<std::uint32_t>
defaultIwSizes()
{
    return {4, 8, 16, 32, 64, 128, 256};
}

} // namespace fosm
