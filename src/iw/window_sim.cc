#include "iw/window_sim.hh"

#include <algorithm>
#include <deque>
#include <limits>

#include "common/logging.hh"

namespace fosm {

namespace {

constexpr Cycle notIssued = std::numeric_limits<Cycle>::max();

/** Resolve the producing instruction index of each source operand. */
struct ProducerResolver
{
    std::vector<std::int64_t> lastWriter;

    ProducerResolver() : lastWriter(numArchRegs, -1) {}

    /** Producers (or -1) of inst i; call in trace order. */
    void
    resolve(const InstRecord &inst, std::int64_t i, std::int64_t &p1,
            std::int64_t &p2)
    {
        p1 = inst.src1 != invalidReg ? lastWriter[inst.src1] : -1;
        p2 = inst.src2 != invalidReg ? lastWriter[inst.src2] : -1;
        if (inst.dst != invalidReg)
            lastWriter[inst.dst] = i;
    }
};

Cycle
latencyOf(const InstRecord &inst, const WindowSimConfig &config)
{
    return config.unitLatency ? 1 : config.latency.latencyFor(inst.cls);
}

WindowSimResult
simulateUnbounded(const Trace &trace, const WindowSimConfig &config)
{
    const std::size_t n = trace.size();
    const std::uint32_t w = config.windowSize;

    std::vector<Cycle> issue(n, 0);
    std::vector<Cycle> latency(n, 1);
    ProducerResolver producers;
    Cycle last_cycle = 0;

    for (std::size_t i = 0; i < n; ++i) {
        const InstRecord &inst = trace[i];
        latency[i] = latencyOf(inst, config);

        std::int64_t p1 = -1, p2 = -1;
        producers.resolve(inst, static_cast<std::int64_t>(i), p1, p2);

        // Enters the window the cycle after the instruction W older
        // issues (its slot frees at issue).
        Cycle t = i >= w ? issue[i - w] + 1 : 0;
        if (p1 >= 0)
            t = std::max(t, issue[p1] + latency[p1]);
        if (p2 >= 0)
            t = std::max(t, issue[p2] + latency[p2]);
        issue[i] = t;
        last_cycle = std::max(last_cycle, t);
    }

    WindowSimResult result;
    result.instructions = n;
    result.cycles = n == 0 ? 0 : last_cycle + 1;
    result.ipc = result.cycles == 0
        ? 0.0
        : static_cast<double>(n) / static_cast<double>(result.cycles);
    return result;
}

WindowSimResult
simulateLimited(const Trace &trace, const WindowSimConfig &config)
{
    const std::size_t n = trace.size();
    const std::uint32_t w = config.windowSize;
    const std::uint32_t width = config.issueWidth;

    std::vector<Cycle> issue(n, notIssued);
    std::vector<Cycle> latency(n, 1);
    std::vector<std::int64_t> prod1(n, -1), prod2(n, -1);

    {
        ProducerResolver producers;
        for (std::size_t i = 0; i < n; ++i) {
            latency[i] = latencyOf(trace[i], config);
            producers.resolve(trace[i], static_cast<std::int64_t>(i),
                              prod1[i], prod2[i]);
        }
    }

    std::deque<std::size_t> window;
    std::size_t head = 0;
    Cycle cycle = 0;
    Cycle last_cycle = 0;

    auto ready_at = [&](std::size_t i) -> Cycle {
        Cycle t = 0;
        for (std::int64_t p : {prod1[i], prod2[i]}) {
            if (p < 0)
                continue;
            if (issue[p] == notIssued)
                return notIssued;
            t = std::max(t, issue[p] + latency[p]);
        }
        return t;
    };

    std::vector<std::size_t> issued_this_cycle;
    while (head < n || !window.empty()) {
        // Dispatch: refill the window (unbounded dispatch bandwidth in
        // the idealized machine; only the window size limits).
        while (window.size() < w && head < n)
            window.push_back(head++);

        // Issue oldest-first up to the width limit.
        issued_this_cycle.clear();
        std::uint32_t issued = 0;
        for (std::size_t idx : window) {
            if (issued >= width)
                break;
            const Cycle r = ready_at(idx);
            if (r != notIssued && r <= cycle) {
                issued_this_cycle.push_back(idx);
                ++issued;
            }
        }
        for (std::size_t idx : issued_this_cycle) {
            issue[idx] = cycle;
            last_cycle = cycle;
            window.erase(std::find(window.begin(), window.end(), idx));
        }
        ++cycle;
        fosm_assert(cycle < 64 * n + 1024,
                    "limited window sim failed to make progress");
    }

    WindowSimResult result;
    result.instructions = n;
    result.cycles = n == 0 ? 0 : last_cycle + 1;
    result.ipc = result.cycles == 0
        ? 0.0
        : static_cast<double>(n) / static_cast<double>(result.cycles);
    return result;
}

} // namespace

WindowSimResult
simulateWindow(const Trace &trace, const WindowSimConfig &config)
{
    fosm_assert(config.windowSize > 0, "window size must be positive");
    if (config.issueWidth == 0)
        return simulateUnbounded(trace, config);
    return simulateLimited(trace, config);
}

std::vector<IwPoint>
measureIwCurve(const Trace &trace,
               const std::vector<std::uint32_t> &sizes,
               const WindowSimConfig &base)
{
    std::vector<IwPoint> points;
    points.reserve(sizes.size());
    for (std::uint32_t w : sizes) {
        WindowSimConfig config = base;
        config.windowSize = w;
        const WindowSimResult r = simulateWindow(trace, config);
        points.push_back({w, r.ipc});
    }
    return points;
}

std::vector<std::uint32_t>
defaultIwSizes()
{
    return {4, 8, 16, 32, 64, 128, 256};
}

} // namespace fosm
