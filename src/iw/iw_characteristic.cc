#include "iw/iw_characteristic.hh"

#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace fosm {

IWCharacteristic::IWCharacteristic(double alpha, double beta,
                                   double avg_latency,
                                   std::uint32_t issue_width)
    : alpha_(alpha),
      beta_(beta),
      avgLatency_(avg_latency),
      issueWidth_(issue_width)
{
    fosm_assert(alpha > 0.0, "alpha must be positive");
    fosm_assert(beta >= 0.0 && beta <= 1.0,
                "beta must be in [0,1], got ", beta);
    fosm_assert(avg_latency >= 1.0, "average latency must be >= 1");
}

IWCharacteristic
IWCharacteristic::fromPoints(const std::vector<IwPoint> &points,
                             double avg_latency,
                             std::uint32_t issue_width)
{
    fosm_assert(points.size() >= 2,
                "need at least two IW points to fit");
    std::vector<double> w, i;
    for (const IwPoint &p : points) {
        w.push_back(static_cast<double>(p.windowSize));
        i.push_back(p.ipc);
    }
    const PowerFit fit = fitPowerLaw(w, i);
    // Clamp pathological fits rather than reject them: a perfectly
    // parallel stream fits beta ~ 1.
    const double beta = std::min(std::max(fit.beta, 0.0), 1.0);
    IWCharacteristic iw(fit.alpha, beta, avg_latency, issue_width);
    iw.r2_ = fit.r2;
    return iw;
}

void
IWCharacteristic::setSaturationCap(double cap)
{
    fosm_assert(cap >= 0.0, "saturation cap must be >= 0");
    saturationCap_ = cap;
}

double
IWCharacteristic::steadyStateIpc(std::uint32_t window_size) const
{
    fosm_assert(window_size > 0, "window size must be positive");
    return issueRate(static_cast<double>(window_size));
}

double
IWCharacteristic::steadyStateCpi(std::uint32_t window_size) const
{
    const double ipc = steadyStateIpc(window_size);
    fosm_assert(ipc > 0.0, "steady-state IPC must be positive");
    return 1.0 / ipc;
}

double
IWCharacteristic::occupancyForRate(double ipc) const
{
    fosm_assert(ipc >= 0.0, "rate must be non-negative");
    if (ipc == 0.0)
        return 0.0;
    if (beta_ == 0.0)
        return std::numeric_limits<double>::infinity();
    return std::pow(ipc * avgLatency_ / alpha_, 1.0 / beta_);
}

} // namespace fosm
