/**
 * @file
 * Idealized issue-window simulation (paper Section 3). The paper
 * generates IW curves by "idealized (no miss-events) trace-driven
 * simulations with an unlimited number of unit-latency functional
 * units and unbounded issue width. The only thing that is limited is
 * the issue window size." This module implements exactly that, plus
 * the limited-issue-width variant used for Figure 6.
 */

#ifndef FOSM_IW_WINDOW_SIM_HH
#define FOSM_IW_WINDOW_SIM_HH

#include <cstdint>
#include <vector>

#include "trace/latency.hh"
#include "trace/trace.hh"

namespace fosm {

/** Options for one idealized window simulation. */
struct WindowSimConfig
{
    /** Issue window size W (the only structural limit). */
    std::uint32_t windowSize = 48;
    /** 0 means unbounded issue width. */
    std::uint32_t issueWidth = 0;
    /** Use unit latency for every operation (the paper's base case). */
    bool unitLatency = true;
    /** Latencies when unitLatency is false. */
    LatencyConfig latency;
};

/** Result of one idealized window simulation. */
struct WindowSimResult
{
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    double ipc = 0.0;
};

/**
 * Per-instruction dependence information shared by every window
 * simulation of one trace: the producing instruction of each source
 * operand (-1 if none) and the operation latency. Resolving this once
 * per trace and reusing it across window sizes removes the dominant
 * per-size setup cost of an IW-curve measurement.
 */
struct TraceDeps
{
    std::vector<Cycle> latency;
    std::vector<std::int32_t> prod1;
    std::vector<std::int32_t> prod2;
};

/** Resolve producers and latencies for one trace / latency config. */
TraceDeps resolveTraceDeps(const Trace &trace,
                           const WindowSimConfig &config);

/**
 * Run the idealized window simulation.
 *
 * With unbounded issue width the oldest-first schedule admits a closed
 * recurrence: an instruction issues at
 *   max(window-entry time, max over producers of issue + latency)
 * where it enters the window once the instruction windowSize older has
 * issued. This runs in O(n).
 *
 * With a finite issue width a cycle-driven oldest-first scheduler is
 * used instead (O(1) window insertion/removal via an intrusive list).
 */
WindowSimResult simulateWindow(const Trace &trace,
                               const WindowSimConfig &config);

/** As above, but with dependences resolved ahead of time. deps must
 *  come from resolveTraceDeps on the same trace and latency config. */
WindowSimResult simulateWindow(const Trace &trace,
                               const WindowSimConfig &config,
                               const TraceDeps &deps);

/** One measured point of an IW curve. */
struct IwPoint
{
    std::uint32_t windowSize = 0;
    double ipc = 0.0;
};

/**
 * Measure the IW curve at the given window sizes (paper Figure 4 uses
 * powers of two from 4 to 64). Producer resolution is hoisted out of
 * the per-size loop, and the sizes are measured concurrently on the
 * global thread pool (deterministic: points come back in input
 * order).
 */
std::vector<IwPoint> measureIwCurve(const Trace &trace,
                                    const std::vector<std::uint32_t> &sizes,
                                    const WindowSimConfig &base =
                                        WindowSimConfig{});

/** Default window-size sweep: powers of two, 4..256. */
std::vector<std::uint32_t> defaultIwSizes();

} // namespace fosm

#endif // FOSM_IW_WINDOW_SIM_HH
