/**
 * @file
 * The miss-event penalty models of Section 4: equations (2)-(8).
 * All penalties are derived from the drain and ramp-up walks of the
 * TransientAnalyzer plus the machine's miss delays.
 */

#ifndef FOSM_MODEL_PENALTIES_HH
#define FOSM_MODEL_PENALTIES_HH

#include "model/transient.hh"

namespace fosm {

/** How the branch misprediction penalty is charged (Section 5 step 2). */
enum class BranchPenaltyMode
{
    /** Equation (2): win_drain + DeltaP + ramp_up, the isolated upper
     *  bound. */
    Isolated,
    /** The paper's evaluation choice: the mean of the isolated bound
     *  and the fully-clustered bound DeltaP ("the average of 5 and 10
     *  cycles, i.e. 7.5" for the baseline). */
    PaperAverage,
    /** Equation (3) with the measured mean burst length n. */
    BurstAware,
};

/** How the instruction cache penalty is charged (Section 5 step 3). */
enum class IcachePenaltyMode
{
    /** The paper's evaluation choice: penalty = the miss delay
     *  (DeltaI for L1 misses, DeltaD for L2 misses); equation (4)
     *  with ramp_up and win_drain cancelling. */
    MissDelay,
    /** Equation (4) evaluated exactly: delay + ramp_up - win_drain. */
    Isolated,
};

/**
 * Penalty calculator for one (IW characteristic, machine) pair.
 */
class PenaltyModel
{
  public:
    explicit PenaltyModel(const TransientAnalyzer &transient);

    /**
     * Construct from already-computed drain/ramp walks (the batch
     * evaluator memoizes them per distinct transient key — the walks
     * are the expensive part, while the penalty formulas below also
     * depend on per-row machine parameters like DeltaP and DeltaD
     * that must come from this row's analyzer).
     */
    PenaltyModel(const TransientAnalyzer &transient,
                 const DrainResult &drain, const RampResult &ramp);

    /** The window drain penalty win_drain (cycles). */
    double winDrain() const { return drain_.penalty; }

    /** The ramp-up penalty ramp_up (cycles). */
    double rampUp() const { return ramp_.penalty; }

    /**
     * Equation (2): penalty of an isolated branch misprediction,
     * win_drain + DeltaP + ramp_up.
     */
    double isolatedBranchPenalty() const;

    /**
     * Equation (3): per-misprediction penalty when n mispredictions
     * cluster: DeltaP + (win_drain + ramp_up) / n.
     */
    double burstBranchPenalty(double n) const;

    /**
     * The branch penalty under the given mode. @param mean_burst the
     * measured mean misprediction cluster size (BurstAware only).
     */
    double branchPenalty(BranchPenaltyMode mode,
                         double mean_burst = 1.0) const;

    /**
     * Equation (4): penalty of an isolated instruction cache miss
     * with the given delivery delay: delay + ramp_up - win_drain.
     */
    double isolatedIcachePenalty(double delay) const;

    /**
     * Equation (5): per-miss penalty for a burst of n instruction
     * cache misses: delay + (ramp_up - win_drain) / n.
     */
    double burstIcachePenalty(double delay, double n) const;

    /** The I-cache penalty under the given mode. */
    double icachePenalty(IcachePenaltyMode mode, double delay,
                         double mean_burst = 1.0) const;

    /**
     * Equation (6): penalty of an isolated long data cache miss:
     * DeltaD - rob_fill - win_drain + ramp_up. @param rob_fill cycles
     * to fill the ROB behind the missing load; the paper's
     * first-order choice is 0 (the load is old when it issues).
     */
    double isolatedDcachePenalty(double rob_fill = 0.0) const;

    /**
     * First-order long-miss penalty: DeltaD (Section 4.3's conclusion
     * that the isolated penalty is essentially the miss delay).
     */
    double firstOrderDcachePenalty() const;

    /**
     * Equation (8): average per-miss penalty given the overlap factor
     * sum_i f_LDM(i)/i computed from the measured long-miss burst
     * distribution.
     */
    double dcachePenalty(double overlap_factor,
                         bool first_order = true) const;

    const TransientAnalyzer &transient() const { return transient_; }

  private:
    TransientAnalyzer transient_;
    DrainResult drain_;
    RampResult ramp_;
};

} // namespace fosm

#endif // FOSM_MODEL_PENALTIES_HH
