#include "model/fu_model.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hh"

namespace fosm {

const FuPool &
FuPoolConfig::poolFor(InstClass cls) const
{
    switch (cls) {
      case InstClass::IntAlu:
      case InstClass::Branch:
        return intAlu;
      case InstClass::IntMul:
        return intMul;
      case InstClass::IntDiv:
        return intDiv;
      case InstClass::FpAlu:
        return fpAlu;
      case InstClass::Load:
      case InstClass::Store:
        return memPort;
    }
    fosm_panic("unknown InstClass");
}

FuPool &
FuPoolConfig::poolFor(InstClass cls)
{
    return const_cast<FuPool &>(
        static_cast<const FuPoolConfig *>(this)->poolFor(cls));
}

bool
FuPoolConfig::anyLimited() const
{
    for (const FuPool *pool :
         {&intAlu, &intMul, &intDiv, &fpAlu, &memPort}) {
        if (pool->count != 0)
            return true;
    }
    return false;
}

FuPoolConfig
FuPoolConfig::typical4Wide()
{
    FuPoolConfig pools;
    pools.intAlu = {4, true};
    pools.intMul = {1, true};
    pools.intDiv = {1, false};
    pools.fpAlu = {2, true};
    pools.memPort = {2, true};
    return pools;
}

namespace {

/** Demand of one pool (ops/cycle at unit rate, scaled by latency for
 *  unpipelined units). */
double
poolDemandPerIssue(const FuPoolConfig &pools, const InstMix &mix,
                   const LatencyConfig &lat, InstClass cls)
{
    const FuPool &pool = pools.poolFor(cls);
    double demand = mix.of(cls);
    if (!pool.pipelined) {
        demand *= static_cast<double>(lat.latencyFor(cls));
    }
    return demand;
}

/** Classes sharing a pool, grouped as poolFor does. */
constexpr InstClass allClasses[] = {
    InstClass::IntAlu, InstClass::IntMul, InstClass::IntDiv,
    InstClass::FpAlu,  InstClass::Load,   InstClass::Store,
    InstClass::Branch,
};

} // namespace

double
effectiveIssueWidth(std::uint32_t width, const FuPoolConfig &pools,
                    const InstMix &mix, const LatencyConfig &lat)
{
    double bound = static_cast<double>(width);

    // Aggregate demand per distinct pool object.
    const FuPool *seen[8] = {};
    int n_seen = 0;
    for (InstClass cls : allClasses) {
        const FuPool &pool = pools.poolFor(cls);
        if (pool.count == 0)
            continue; // unbounded
        bool counted = false;
        for (int i = 0; i < n_seen; ++i) {
            if (seen[i] == &pool)
                counted = true;
        }
        if (counted)
            continue;
        seen[n_seen++] = &pool;

        // Total demand on this pool across all classes it serves.
        double demand = 0.0;
        for (InstClass other : allClasses) {
            if (&pools.poolFor(other) == &pool)
                demand += poolDemandPerIssue(pools, mix, lat, other);
        }
        if (demand <= 0.0)
            continue;
        bound = std::min(bound,
                         static_cast<double>(pool.count) / demand);
    }
    return bound;
}

FuPoolConfig
requiredPools(double target_ipc, const InstMix &mix,
              const LatencyConfig &lat)
{
    fosm_assert(target_ipc > 0.0, "target IPC must be positive");
    FuPoolConfig pools;
    // Start from pipelined units (divide unpipelined) and size each
    // pool to its demand at the target rate.
    pools.intDiv.pipelined = false;

    auto size_pool = [&](FuPool &pool,
                         std::initializer_list<InstClass> classes) {
        double demand = 0.0;
        for (InstClass cls : classes) {
            double d = mix.of(cls);
            if (!pool.pipelined)
                d *= static_cast<double>(lat.latencyFor(cls));
            demand += d;
        }
        pool.count = static_cast<std::uint32_t>(
            std::max(1.0, std::ceil(target_ipc * demand - 1e-9)));
    };

    size_pool(pools.intAlu, {InstClass::IntAlu, InstClass::Branch});
    size_pool(pools.intMul, {InstClass::IntMul});
    size_pool(pools.intDiv, {InstClass::IntDiv});
    size_pool(pools.fpAlu, {InstClass::FpAlu});
    size_pool(pools.memPort, {InstClass::Load, InstClass::Store});
    return pools;
}

std::string
describePools(const FuPoolConfig &pools)
{
    auto one = [](const char *name, const FuPool &pool) {
        std::ostringstream os;
        os << name << "=";
        if (pool.count == 0)
            os << "inf";
        else
            os << pool.count << (pool.pipelined ? "" : "u");
        return os.str();
    };
    std::ostringstream os;
    os << one("alu", pools.intAlu) << " " << one("mul", pools.intMul)
       << " " << one("div", pools.intDiv) << " "
       << one("fp", pools.fpAlu) << " " << one("mem", pools.memPort);
    return os.str();
}

} // namespace fosm
