#include "model/first_order_model.hh"

#include <algorithm>

#include "common/logging.hh"

namespace fosm {

double
CpiBreakdown::total() const
{
    return ideal + brmisp + icacheL1 + icacheL2 + dcacheLong + dtlb;
}

double
CpiBreakdown::ipc() const
{
    const double cpi = total();
    fosm_assert(cpi > 0.0, "CPI must be positive");
    return 1.0 / cpi;
}

double
meanBurstFromGaps(const Histogram &gaps, std::uint64_t threshold)
{
    if (gaps.samples() == 0)
        return 1.0;
    const double p = gaps.cdf(threshold);
    if (p >= 0.999)
        return 1000.0;
    return 1.0 / (1.0 - p);
}

FirstOrderModel::FirstOrderModel(const MachineConfig &machine,
                                 const ModelOptions &options)
    : machine_(machine), options_(options)
{
}

CpiBreakdown
FirstOrderModel::evaluate(const IWCharacteristic &iw,
                          const MissProfile &profile) const
{
    const IWCharacteristic effective = effectiveIw(iw, profile);
    const TransientAnalyzer transient(effective, machine_);
    return evaluateWithWalks(transient, transient.windowDrain(),
                             transient.rampUp(), profile);
}

IWCharacteristic
FirstOrderModel::effectiveIw(const IWCharacteristic &iw,
                             const MissProfile &profile) const
{
    // Future-work 1: limited functional units lower the saturation
    // level below the issue width, given the workload's mix.
    IWCharacteristic effective = iw;
    if (options_.fuPools.anyLimited()) {
        effective.setSaturationCap(effectiveIssueWidth(
            machine_.width, options_.fuPools, profile.mix,
            options_.latency));
    }
    // Future-work 3: clustered windows. With round-robin steering a
    // producer lands in the consumer's cluster with probability 1/K,
    // so the average operand pays (K-1)/K of the forwarding delay -
    // to first order, a longer effective latency L in Little's law.
    if (machine_.clusters > 1) {
        const double k = static_cast<double>(machine_.clusters);
        const double l_eff =
            effective.avgLatency() +
            static_cast<double>(machine_.interClusterDelay) *
                (k - 1.0) / k;
        IWCharacteristic clustered(effective.alpha(),
                                   effective.beta(), l_eff,
                                   effective.issueWidth());
        clustered.setSaturationCap(effective.saturationCap());
        effective = clustered;
    }
    return effective;
}

CpiBreakdown
FirstOrderModel::evaluateWithWalks(const TransientAnalyzer &transient,
                                   const DrainResult &drain,
                                   const RampResult &ramp,
                                   const MissProfile &profile,
                                   const double *ldm_overlap,
                                   const double *dtlb_overlap) const
{
    const PenaltyModel penalties(transient, drain, ramp);

    // The overlap factor at this machine's ROB size feeds both the
    // D-miss term and the compensation term; compute (or take the
    // injected value) once.
    const bool need_ldm =
        options_.dcacheOverlap || options_.compensateOverlaps;
    const double ldm_factor = !need_ldm
        ? 1.0
        : (ldm_overlap != nullptr
               ? *ldm_overlap
               : profile.ldmOverlapFactor(machine_.robSize));

    CpiBreakdown breakdown;
    breakdown.ideal = 1.0 / transient.steadyIpc();

    // Branch mispredictions (Section 4.1).
    const double mean_branch_burst = meanBurstFromGaps(
        profile.mispredictGap, options_.burstGapThreshold);
    breakdown.branchPenaltyPerEvent =
        penalties.branchPenalty(options_.branchMode, mean_branch_burst);
    breakdown.brmisp =
        profile.mispredictsPerInst() * breakdown.branchPenaltyPerEvent;

    // Instruction cache misses (Section 4.2). L1 misses that hit in
    // L2 cost DeltaI; fetches that miss in L2 cost the memory delay.
    // A full fetch buffer (future-work 2) hides buffer/width cycles
    // of either delay.
    const double buffer_slack =
        static_cast<double>(options_.fetchBufferEntries) /
        static_cast<double>(machine_.width);
    const double mean_icache_burst = meanBurstFromGaps(
        profile.icacheMissGap, options_.burstGapThreshold);
    const double l1_only_rate =
        profile.icacheMissesPerInst() - profile.icacheL2MissesPerInst();
    breakdown.icachePenaltyPerEvent = std::max(
        0.0,
        penalties.icachePenalty(options_.icacheMode,
                                static_cast<double>(machine_.deltaI),
                                mean_icache_burst) -
            buffer_slack);
    breakdown.icacheL1 =
        l1_only_rate * breakdown.icachePenaltyPerEvent;
    breakdown.icacheL2 =
        profile.icacheL2MissesPerInst() *
        std::max(0.0,
                 penalties.icachePenalty(
                     options_.icacheMode,
                     static_cast<double>(machine_.deltaD),
                     mean_icache_burst) -
                     buffer_slack);

    // Long data cache misses (Section 4.3, equation 8).
    breakdown.ldmOverlapFactor =
        options_.dcacheOverlap ? ldm_factor : 1.0;
    breakdown.dcachePenaltyPerEvent = penalties.dcachePenalty(
        breakdown.ldmOverlapFactor, options_.dcacheFirstOrder);
    breakdown.dcacheLong =
        profile.longLoadMissesPerInst() *
        breakdown.dcachePenaltyPerEvent;

    // Data-TLB walks (future-work 4): "much like long data cache
    // misses" - the walk latency, shared within ROB-reach groups.
    if (profile.dtlbLoadMisses > 0) {
        const double tlb_factor = options_.dcacheOverlap
            ? (dtlb_overlap != nullptr
                   ? *dtlb_overlap
                   : profile.dtlbOverlapFactor(machine_.robSize))
            : 1.0;
        breakdown.dtlb = profile.dtlbLoadMissesPerInst() *
                         static_cast<double>(machine_.deltaT) *
                         tlb_factor;
    }

    // Second-order overlap compensation (Section 5's deferred
    // refinement): a branch misprediction or I-cache miss whose
    // recovery happens under an outstanding long D-miss adds no
    // time. Events attach to instructions, and no instructions flow
    // during the stall itself, so the exposure is the fraction of
    // *instructions* that sit within ROB reach of a long-miss group:
    // groups/instruction x rob_size.
    if (options_.compensateOverlaps) {
        const double groups_per_inst =
            profile.longLoadMissesPerInst() * ldm_factor;
        const double f = std::min(
            0.9, groups_per_inst * static_cast<double>(machine_.robSize));
        breakdown.brmisp *= 1.0 - f;
        breakdown.icacheL1 *= 1.0 - f;
        breakdown.icacheL2 *= 1.0 - f;
    }

    return breakdown;
}

} // namespace fosm
