/**
 * @file
 * Limited functional units - the paper's future-work item 1
 * (Section 7): "Here, we will have to collect instruction mix
 * statistics. To sustain the estimated sustained performance, the mix
 * can be used to determine the number of units required to meet this
 * performance. Or, if the number of units is too small, we can
 * generate a lower saturation level than the maximum issue width."
 *
 * A pool of n_c units for operation class c bounds the sustainable
 * issue rate I by throughput: pipelined units accept one operation
 * per cycle each (I * mix_c <= n_c); unpipelined units are busy for
 * the full latency (I * mix_c * lat_c <= n_c). The binding class
 * gives the machine's effective saturation width
 *   I_sat = min(width, min_c bound_c),
 * which simply replaces the issue width in the IW characteristic.
 */

#ifndef FOSM_MODEL_FU_MODEL_HH
#define FOSM_MODEL_FU_MODEL_HH

#include <cstdint>
#include <string>

#include "trace/latency.hh"
#include "trace/mix.hh"

namespace fosm {

/** One functional-unit pool. */
struct FuPool
{
    /** Number of units; 0 means unbounded (the paper's base model). */
    std::uint32_t count = 0;
    /** Whether the units accept a new operation every cycle. */
    bool pipelined = true;
};

/**
 * Functional-unit pools per operation class. The default is the
 * paper's machine: an unbounded number of units of each type.
 */
struct FuPoolConfig
{
    /** Pool serving IntAlu operations (and branches). */
    FuPool intAlu;
    /** Pool serving IntMul. */
    FuPool intMul;
    /** Pool serving IntDiv (typically unpipelined). */
    FuPool intDiv{0, false};
    /** Pool serving FpAlu. */
    FuPool fpAlu;
    /** Load/store ports. */
    FuPool memPort;

    /** The pool that serves the given class. */
    const FuPool &poolFor(InstClass cls) const;
    FuPool &poolFor(InstClass cls);

    /** True if any pool is bounded. */
    bool anyLimited() const;

    /** A conventional 4-wide configuration for experiments. */
    static FuPoolConfig typical4Wide();
};

/**
 * The effective saturation issue width once functional-unit pools are
 * considered (Section 7, future work 1).
 *
 * @param width the machine issue width
 * @param pools the FU pool configuration
 * @param mix dynamic operation mix
 * @param lat class latencies (for unpipelined pools)
 * @return the sustainable issue rate bound, <= width
 */
double effectiveIssueWidth(std::uint32_t width,
                           const FuPoolConfig &pools,
                           const InstMix &mix,
                           const LatencyConfig &lat = LatencyConfig{});

/**
 * The minimum pool sizes needed to sustain a target issue rate with
 * the given mix - the paper's "determine the number of units
 * required to meet this performance".
 */
FuPoolConfig requiredPools(double target_ipc, const InstMix &mix,
                           const LatencyConfig &lat = LatencyConfig{});

/** Short report of a pool configuration for bench output. */
std::string describePools(const FuPoolConfig &pools);

} // namespace fosm

#endif // FOSM_MODEL_FU_MODEL_HH
