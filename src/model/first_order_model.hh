/**
 * @file
 * The assembled first-order superscalar model (paper Sections 2 and
 * 5): overall CPI as the sum of the steady-state CPI and the CPI
 * contributions of branch mispredictions, instruction cache misses,
 * and long data cache misses (equation 1), each computed from
 * trace-derived statistics and the machine parameters — no detailed
 * simulation involved.
 */

#ifndef FOSM_MODEL_FIRST_ORDER_MODEL_HH
#define FOSM_MODEL_FIRST_ORDER_MODEL_HH

#include "analysis/miss_profiler.hh"
#include "iw/iw_characteristic.hh"
#include "model/fu_model.hh"
#include "model/machine_config.hh"
#include "model/penalties.hh"

namespace fosm {

/** Model evaluation options (defaults follow the paper's Section 5). */
struct ModelOptions
{
    BranchPenaltyMode branchMode = BranchPenaltyMode::PaperAverage;
    IcachePenaltyMode icacheMode = IcachePenaltyMode::MissDelay;
    /** Apply the equation-(8) overlap correction to long D-misses. */
    bool dcacheOverlap = true;
    /** Charge DeltaD per long miss (true) or the exact equation (6). */
    bool dcacheFirstOrder = true;
    /**
     * Gap threshold (dynamic instructions) under which two
     * mispredictions count as one burst, for BurstAware mode.
     */
    std::uint64_t burstGapThreshold = 64;
    /**
     * Functional-unit pools (Section 7 future-work 1). Default:
     * unbounded units of every type, the paper's base machine. When
     * limited, the sustainable issue rate saturates at the pools'
     * throughput bound given the workload's operation mix.
     */
    FuPoolConfig fuPools;
    /** Latencies used for unpipelined-pool throughput demand. */
    LatencyConfig latency;
    /**
     * Instruction fetch buffer entries (Section 7 future-work 2).
     * A full buffer hides fetchBufferEntries / width cycles of every
     * I-cache miss delay: the effective delay becomes
     * max(0, delay - buffer/width).
     */
    std::uint32_t fetchBufferEntries = 0;
    /**
     * Second-order refinement the paper defers to "future research"
     * (Section 5): branch mispredictions and I-cache misses that
     * fall inside a long D-miss shadow are already paid for. When
     * enabled, the branch and I-cache CPI terms are discounted by
     * the fraction of time covered by long-miss stalls, solved
     * self-consistently (the coverage depends on total CPI).
     */
    bool compensateOverlaps = false;
};

/**
 * The CPI "stack model" of Figure 16: additive contributions per
 * equation (1), plus the per-event penalties that produced them.
 */
struct CpiBreakdown
{
    double ideal = 0.0;       ///< CPI_steadystate
    double brmisp = 0.0;      ///< CPI_brmisp
    double icacheL1 = 0.0;    ///< CPI from L1I misses that hit in L2
    double icacheL2 = 0.0;    ///< CPI from instruction fetches to memory
    double dcacheLong = 0.0;  ///< CPI_dcachemiss (long misses)
    double dtlb = 0.0;        ///< CPI from D-TLB walks (future-work 4)

    // Per-event penalties, for the Figure 9/11/14 comparisons.
    double branchPenaltyPerEvent = 0.0;
    double icachePenaltyPerEvent = 0.0;
    double dcachePenaltyPerEvent = 0.0;
    /** Equation (8) multiplier actually applied. */
    double ldmOverlapFactor = 1.0;

    /** Total CPI per equation (1). */
    double total() const;

    /** 1 / total(). */
    double ipc() const;
};

/**
 * Estimate the mean miss-event burst length from a gap histogram: the
 * fraction p of gaps below the threshold is read off the histogram
 * and the mean cluster size is 1/(1-p) (geometric clustering
 * approximation).
 */
double meanBurstFromGaps(const Histogram &gaps,
                         std::uint64_t threshold);

/** The first-order model for a fixed machine configuration. */
class FirstOrderModel
{
  public:
    explicit FirstOrderModel(const MachineConfig &machine,
                             const ModelOptions &options = ModelOptions{});

    /**
     * Evaluate equation (1) for a workload described by its fitted IW
     * characteristic and functional miss profile.
     */
    CpiBreakdown evaluate(const IWCharacteristic &iw,
                          const MissProfile &profile) const;

    /**
     * The IW characteristic actually walked for this machine: the
     * fitted curve with the functional-unit saturation cap
     * (future-work 1) and the clustered-window latency stretch
     * (future-work 3) applied. evaluate() is effectiveIw +
     * TransientAnalyzer + evaluateWithWalks; the batch evaluator
     * calls the pieces so it can memoize the walks across rows.
     */
    IWCharacteristic effectiveIw(const IWCharacteristic &iw,
                                 const MissProfile &profile) const;

    /**
     * Equation (1) given precomputed drain/ramp walks for the
     * effective transient. When non-null, ldm_overlap / dtlb_overlap
     * inject the equation-(8) overlap factors at this machine's ROB
     * size (the batch evaluator computes them for all distinct ROB
     * sizes in one sweep of the gap vector); null recomputes them
     * from the profile, which yields the same bits.
     */
    CpiBreakdown evaluateWithWalks(const TransientAnalyzer &transient,
                                   const DrainResult &drain,
                                   const RampResult &ramp,
                                   const MissProfile &profile,
                                   const double *ldm_overlap = nullptr,
                                   const double *dtlb_overlap =
                                       nullptr) const;

    const MachineConfig &machine() const { return machine_; }
    const ModelOptions &options() const { return options_; }

  private:
    MachineConfig machine_;
    ModelOptions options_;
};

} // namespace fosm

#endif // FOSM_MODEL_FIRST_ORDER_MODEL_HH
