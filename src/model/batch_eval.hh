/**
 * @file
 * Batched equation-(1) evaluation for many design points of one
 * workload. The /v1/batch endpoint amortizes what the single-request
 * path pays per design point:
 *
 *  - drain/ramp transient walks are memoized per distinct effective
 *    (IW curve, width, windowSize) and walked in lockstep by the
 *    structure-of-arrays kernels (model/kernels.hh); rows that vary
 *    only the miss delays or ROB size share one walk.
 *  - equation-(8) overlap factors for all distinct ROB sizes come
 *    from a single sweep over the profile's gap vectors.
 *
 * Every row's final numbers are assembled by the exact scalar
 * FirstOrderModel::evaluateWithWalks, so a batch row is bit-identical
 * to FirstOrderModel::evaluate for the same machine.
 */

#ifndef FOSM_MODEL_BATCH_EVAL_HH
#define FOSM_MODEL_BATCH_EVAL_HH

#include <vector>

#include "model/first_order_model.hh"

namespace fosm {

/**
 * Evaluate one workload (profile + per-row fitted IW curve) against
 * many machines under shared options. iws[i] is the curve fitted for
 * machines[i] (the fit's alpha/beta are machine independent, but the
 * specialised issue width follows machines[i].width); iws and
 * machines must be the same length. Row i of the result equals
 * FirstOrderModel(machines[i], options).evaluate(iws[i], profile)
 * bit for bit.
 */
std::vector<CpiBreakdown>
evaluateBatch(const std::vector<IWCharacteristic> &iws,
              const std::vector<MachineConfig> &machines,
              const MissProfile &profile, const ModelOptions &options);

} // namespace fosm

#endif // FOSM_MODEL_BATCH_EVAL_HH
