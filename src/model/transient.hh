/**
 * @file
 * Numeric evaluation of the miss-event transients of Section 4. The
 * paper derives drain and ramp-up penalties by walking the IW
 * characteristic (the "Excel" curve of Figure 8); this module performs
 * that walk programmatically:
 *
 *  - window drain: occupancy starts at the steady-state level and
 *    falls as W -= I(W) each cycle until the window is empty of useful
 *    instructions (when the mispredicted branch, assumed oldest,
 *    issues).
 *  - ramp-up ("leaky bucket" [7]): the empty window fills at the
 *    dispatch width while issuing I(W), approaching the steady rate
 *    asymptotically.
 *
 * It also generates whole transient time-series — the curves of
 * Figures 7, 8, 10, 12 and 19 — and the saturation-time analysis of
 * Figures 18/19.
 */

#ifndef FOSM_MODEL_TRANSIENT_HH
#define FOSM_MODEL_TRANSIENT_HH

#include <cstdint>
#include <vector>

#include "iw/iw_characteristic.hh"
#include "model/machine_config.hh"

namespace fosm {

/** Outcome of the window-drain walk. */
struct DrainResult
{
    /** Cycles from fetch stop until the window is empty of useful
     *  instructions. */
    double cycles = 0.0;
    /** Useful instructions issued while draining. */
    double instructions = 0.0;
    /** Penalty relative to issuing the same instructions at the
     *  steady-state rate: the paper's win_drain. */
    double penalty = 0.0;
    /** Occupancy left when the walk stops (should be small; the paper
     *  measured ~1.3 useful instructions). */
    double residual = 0.0;
};

/** Outcome of the ramp-up walk. */
struct RampResult
{
    /** Cycles until the issue rate is within tolerance of steady. */
    double cycles = 0.0;
    /** Instructions issued during the ramp. */
    double instructions = 0.0;
    /** Lost issue opportunity in cycles: the paper's ramp_up. */
    double penalty = 0.0;
};

/**
 * Transient analyzer for one (IW characteristic, machine) pair.
 * All results are memoized; the object is cheap to copy.
 */
class TransientAnalyzer
{
  public:
    TransientAnalyzer(const IWCharacteristic &iw,
                      const MachineConfig &machine);

    /** Steady-state issue rate min(i, alpha*W^beta/L) at win_size. */
    double steadyIpc() const { return steadyIpc_; }

    /**
     * Steady-state *useful* occupancy: the occupancy at which the IW
     * curve sustains the steady rate, capped at win_size. At
     * saturation this is below win_size (e.g. 16 for the square-law
     * curve at issue width 4), which is why Figure 8's drain lasts
     * ~6 cycles, not win_size/i.
     */
    double steadyOccupancy() const { return steadyOccupancy_; }

    /** Walk the drain transient (Section 4.1, Figure 8 left part). */
    DrainResult windowDrain() const;

    /** Walk the ramp-up transient (Figure 8 right part). */
    RampResult rampUp() const;

    /**
     * Full branch-misprediction transient: per-cycle useful issue rate
     * from steady state through drain, pipeline refill, and ramp-up
     * back to steady state (Figure 8). The series starts with
     * lead_cycles of steady-state issue.
     */
    std::vector<double> branchTransientSeries(int lead_cycles = 2) const;

    /**
     * Full instruction-cache-miss transient (Figure 10): buffered
     * front-end instructions keep the window fed for DeltaP cycles,
     * the window drains, the miss delay passes, the pipeline refills,
     * and issue ramps up.
     */
    std::vector<double> icacheTransientSeries(int lead_cycles = 2) const;

    /**
     * Per-cycle issue rate between two branch mispredictions that are
     * inter_inst useful instructions apart (Figure 19): pipeline
     * refill, ramp toward steady state, possible steady phase, then
     * the drain triggered by the next misprediction.
     */
    std::vector<double>
    interMispredictSeries(double inter_inst) const;

    /**
     * Fraction of cycles in the inter-misprediction interval during
     * which the issue rate is within `closeness` of the issue width
     * (Section 6.2 counts a cycle at >= 87.5% of the width as
     * achieving it).
     */
    double saturationTimeFraction(double inter_inst,
                                  double closeness = 0.875) const;

    /**
     * Inverse of saturationTimeFraction: instructions between
     * mispredictions required to spend the target fraction of time
     * near the issue width (Figure 18). Binary search; returns
     * infinity when the target is unreachable.
     */
    double instructionsForSaturationFraction(double target_fraction,
                                             double closeness =
                                                 0.875) const;

    const IWCharacteristic &iw() const { return iw_; }
    const MachineConfig &machine() const { return machine_; }

    // Walk constants, public so the structure-of-arrays batch kernels
    // (model/kernels.hh) run the exact same recurrence.
    /** Occupancy below which the window counts as drained. */
    static constexpr double drainFloor = 1.0;
    /** Ramp terminates when the rate reaches this fraction of steady. */
    static constexpr double rampTolerance = 0.999;
    /** Hard iteration cap for the walks. */
    static constexpr int maxWalk = 100000;

  private:
    IWCharacteristic iw_;
    MachineConfig machine_;
    double steadyIpc_;
    double steadyOccupancy_;
};

} // namespace fosm

#endif // FOSM_MODEL_TRANSIENT_HH
