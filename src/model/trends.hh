/**
 * @file
 * Microarchitecture trend studies of Section 6: the pipeline-depth
 * analysis (Figure 17) and the issue-width / branch-prediction
 * analysis (Figures 18 and 19). Both use the model with the
 * SPECint2000-average square-law IW characteristic (alpha = 1,
 * beta = 0.5) and the assumption that one in five instructions is a
 * branch with a 5% misprediction rate.
 */

#ifndef FOSM_MODEL_TRENDS_HH
#define FOSM_MODEL_TRENDS_HH

#include <cstdint>
#include <vector>

#include "model/penalties.hh"
#include "model/transient.hh"

namespace fosm {

/** Shared assumptions of the Section 6 studies. */
struct TrendConfig
{
    /** Average IW characteristic (square law). */
    double alpha = 1.0;
    double beta = 0.5;
    double avgLatency = 1.0;

    /** One in five instructions is a branch... */
    double branchFraction = 0.2;
    /** ...and 5% of branches are mispredicted. */
    double mispredictRate = 0.05;

    /** Total front-end logic delay (Sprangle & Carmean [4]). */
    double totalLogicPs = 8200.0;
    /** Per-stage flip-flop overhead [4]. */
    double flipFlopPs = 90.0;

    /** Mispredictions per instruction. */
    double mispredictsPerInst() const
    {
        return branchFraction * mispredictRate;
    }
};

/** One point of the Figure 17 sweep. */
struct PipelineDepthPoint
{
    std::uint32_t depth = 0;
    double ipc = 0.0;
    /** Clock frequency in GHz for this depth (Figure 17b). */
    double clockGhz = 0.0;
    /** Billions of instructions per second (Figure 17b). */
    double bips = 0.0;
};

/**
 * Sweep front-end pipeline depth for one issue width (Figure 17).
 * CPI = 1/width + B * isolated_brmisp_penalty(depth); absolute
 * performance uses cycle time totalLogicPs/depth + flipFlopPs.
 */
std::vector<PipelineDepthPoint>
pipelineDepthSweep(std::uint32_t issue_width,
                   const std::vector<std::uint32_t> &depths,
                   const TrendConfig &config = TrendConfig{});

/** The depth with maximal BIPS in a sweep. */
PipelineDepthPoint
optimalPipelineDepth(std::uint32_t issue_width,
                     const TrendConfig &config = TrendConfig{},
                     std::uint32_t max_depth = 100);

/** One point of the Figure 18 analysis. */
struct SaturationPoint
{
    /** Target fraction of time spent near the issue width. */
    double timeFraction = 0.0;
    /** Required instructions between mispredictions. */
    double instructionsBetween = 0.0;
};

/**
 * Figure 18: for the given issue width, the number of instructions
 * between mispredictions needed to spend each target fraction of time
 * within 12.5% of the issue width. Uses a five-stage front end.
 */
std::vector<SaturationPoint>
issueWidthRequirement(std::uint32_t issue_width,
                      const std::vector<double> &fractions,
                      const TrendConfig &config = TrendConfig{},
                      std::uint32_t front_end_depth = 5);

/**
 * Figure 19: per-cycle issue rate between two mispredictions for the
 * given issue width, with the inter-misprediction distance implied by
 * the TrendConfig branch statistics.
 */
std::vector<double>
issueRampSeries(std::uint32_t issue_width,
                const TrendConfig &config = TrendConfig{},
                std::uint32_t front_end_depth = 5);

/**
 * A machine suitable for the trend studies: window scaled to keep the
 * square-law curve saturated at the issue width.
 */
MachineConfig trendMachine(std::uint32_t issue_width,
                           std::uint32_t front_end_depth,
                           const TrendConfig &config);

} // namespace fosm

#endif // FOSM_MODEL_TRENDS_HH
