/**
 * @file
 * Structure-of-arrays batch kernels for the model arithmetic that
 * dominates a /v1/batch evaluation: the IW power-law (the inner
 * expression of trends.cc and transient.cc walks), the drain/ramp
 * transient walks, and the f_LDM overlap sums of penalties.cc /
 * miss_profiler.cc. Each kernel evaluates many lanes per pass —
 * occupancies gathered into contiguous arrays for the power-law, one
 * shared sweep over the (long) gap vector for all ROB sizes — while
 * calling the exact same inline per-element helpers the scalar path
 * uses (IWCharacteristic::issueRate, the overlapFractionsFromGroups /
 * overlapFactorFromFractions finish). One definition of the math
 * means batch results are bit-identical to the scalar walks — the
 * /v1/batch bit-identity contract — and the scalar members of
 * TransientAnalyzer remain the single-lane fallback.
 */

#ifndef FOSM_MODEL_KERNELS_HH
#define FOSM_MODEL_KERNELS_HH

#include <cstdint>
#include <vector>

#include "model/transient.hh"

namespace fosm::kernels {

/** Precomputed drain + ramp walks for one (IW, machine) pair. */
struct TransientWalks
{
    DrainResult drain;
    RampResult ramp;
};

/**
 * Power-law array kernel: out[i] = iw.issueRate(w[i]) for n
 * occupancies. The per-element expression is the inline
 * IWCharacteristic member, so results match scalar calls bit for
 * bit; the contiguous loop is what the compiler can vectorize.
 */
void issueRateArray(const IWCharacteristic &iw, const double *w,
                    double *out, std::size_t n);

/**
 * Walk the drain and ramp transients of every lane in lockstep:
 * per-iteration, the live lanes' occupancies are evaluated as one
 * array (issueRateArray) and advanced together. Each lane terminates
 * independently under the scalar walk's exact conditions
 * (TransientAnalyzer::drainFloor / rampTolerance / maxWalk), so lane
 * i's results equal lanes[i]->windowDrain() / rampUp() bitwise.
 */
std::vector<TransientWalks>
drainRampBatch(const std::vector<const TransientAnalyzer *> &lanes);

/**
 * Equation-(8) overlap factors for many ROB sizes in one pass over
 * the gap vector. The scalar path re-walks the whole gap list per
 * rob_size; a batch sweeping robSize pays that walk once here. Lane
 * results equal overlapFactor(gaps, events, robSizes[i]) bitwise
 * (shared grouping recurrence and summation order).
 */
std::vector<double>
overlapFactorBatch(const std::vector<std::uint32_t> &gaps,
                   std::uint64_t events,
                   const std::vector<std::uint64_t> &robSizes);

} // namespace fosm::kernels

#endif // FOSM_MODEL_KERNELS_HH
