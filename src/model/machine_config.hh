/**
 * @file
 * Machine parameters of the first-order superscalar model (paper
 * Sections 1.1 and 2). The pipeline width, issue width and retire
 * width are one parameter i; the front-end depth is DeltaP; DeltaI and
 * DeltaD are the instruction-miss and long-data-miss delays.
 */

#ifndef FOSM_MODEL_MACHINE_CONFIG_HH
#define FOSM_MODEL_MACHINE_CONFIG_HH

#include <cstdint>

#include "common/types.hh"

namespace fosm {

/** The paper's baseline machine (Section 1.1). */
struct MachineConfig
{
    /** Fetch = dispatch = issue = retire width (the parameter i). */
    std::uint32_t width = 4;

    /** Front-end pipeline depth DeltaP in cycles. */
    std::uint32_t frontEndDepth = 5;

    /** Issue window entries (win_size). */
    std::uint32_t windowSize = 48;

    /** Reorder buffer entries (rob_size). */
    std::uint32_t robSize = 128;

    /** Instruction cache miss delay DeltaI (L2 hit latency). */
    Cycle deltaI = 8;

    /** Long data cache miss delay DeltaD (memory latency). */
    Cycle deltaD = 200;

    /**
     * Data-TLB walk latency DeltaT (Section 7 future-work 4; only
     * used when TLB modeling is enabled).
     */
    Cycle deltaT = 30;

    /**
     * Issue-window clusters (Section 7 future-work 3: "partitioned
     * issue windows and clustered functional units"). 1 is the
     * paper's single homogeneous window; K > 1 splits the window and
     * issue width K ways, with an extra forwarding delay for values
     * crossing clusters. width and windowSize must be divisible by K.
     */
    std::uint32_t clusters = 1;

    /** Inter-cluster forwarding delay in cycles. */
    Cycle interClusterDelay = 1;

    /** Maximum ROB fill time rob_size / dispatch_width (Section 4.3). */
    double
    maxRobFillTime() const
    {
        return static_cast<double>(robSize) / static_cast<double>(width);
    }
};

} // namespace fosm

#endif // FOSM_MODEL_MACHINE_CONFIG_HH
