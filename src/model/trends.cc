#include "model/trends.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace fosm {

MachineConfig
trendMachine(std::uint32_t issue_width, std::uint32_t front_end_depth,
             const TrendConfig &config)
{
    MachineConfig machine;
    machine.width = issue_width;
    machine.frontEndDepth = front_end_depth;
    // Window large enough that alpha * W^beta / L reaches the issue
    // width (saturation), with headroom.
    const double needed = std::pow(
        static_cast<double>(issue_width) * config.avgLatency /
            config.alpha,
        1.0 / config.beta);
    machine.windowSize = static_cast<std::uint32_t>(
        std::max(64.0, 4.0 * needed));
    machine.robSize = 4 * machine.windowSize;
    return machine;
}

std::vector<PipelineDepthPoint>
pipelineDepthSweep(std::uint32_t issue_width,
                   const std::vector<std::uint32_t> &depths,
                   const TrendConfig &config)
{
    const IWCharacteristic iw(config.alpha, config.beta,
                              config.avgLatency, issue_width);

    // Each depth is an independent design point; evaluate them
    // concurrently, results indexed so the order is deterministic.
    return parallelMap(depths, [&](std::uint32_t depth) {
        const MachineConfig machine =
            trendMachine(issue_width, depth, config);
        const TransientAnalyzer transient(iw, machine);
        const PenaltyModel penalties(transient);

        const double cpi = 1.0 / transient.steadyIpc() +
                           config.mispredictsPerInst() *
                               penalties.isolatedBranchPenalty();

        PipelineDepthPoint point;
        point.depth = depth;
        point.ipc = 1.0 / cpi;
        const double cycle_ps =
            config.totalLogicPs / static_cast<double>(depth) +
            config.flipFlopPs;
        point.clockGhz = 1000.0 / cycle_ps;
        point.bips = point.ipc * point.clockGhz;
        return point;
    });
}

PipelineDepthPoint
optimalPipelineDepth(std::uint32_t issue_width,
                     const TrendConfig &config,
                     std::uint32_t max_depth)
{
    std::vector<std::uint32_t> depths;
    for (std::uint32_t d = 1; d <= max_depth; ++d)
        depths.push_back(d);
    const std::vector<PipelineDepthPoint> points =
        pipelineDepthSweep(issue_width, depths, config);

    PipelineDepthPoint best = points.front();
    for (const PipelineDepthPoint &p : points) {
        if (p.bips > best.bips)
            best = p;
    }
    return best;
}

std::vector<SaturationPoint>
issueWidthRequirement(std::uint32_t issue_width,
                      const std::vector<double> &fractions,
                      const TrendConfig &config,
                      std::uint32_t front_end_depth)
{
    const IWCharacteristic iw(config.alpha, config.beta,
                              config.avgLatency, issue_width);
    const MachineConfig machine =
        trendMachine(issue_width, front_end_depth, config);
    const TransientAnalyzer transient(iw, machine);

    std::vector<SaturationPoint> points;
    points.reserve(fractions.size());
    for (double f : fractions) {
        SaturationPoint point;
        point.timeFraction = f;
        point.instructionsBetween =
            transient.instructionsForSaturationFraction(f);
        points.push_back(point);
    }
    return points;
}

std::vector<double>
issueRampSeries(std::uint32_t issue_width, const TrendConfig &config,
                std::uint32_t front_end_depth)
{
    const IWCharacteristic iw(config.alpha, config.beta,
                              config.avgLatency, issue_width);
    const MachineConfig machine =
        trendMachine(issue_width, front_end_depth, config);
    const TransientAnalyzer transient(iw, machine);

    // Average distance between mispredictions implied by the branch
    // statistics: 1 / (branchFraction * mispredictRate) instructions.
    const double inter =
        1.0 / std::max(config.mispredictsPerInst(), 1e-9);
    return transient.interMispredictSeries(inter);
}

} // namespace fosm
