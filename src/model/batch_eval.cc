#include "model/batch_eval.hh"

#include <cstdint>
#include <deque>
#include <map>
#include <tuple>

#include "common/logging.hh"
#include "model/kernels.hh"

namespace fosm {

namespace {

/**
 * Everything the drain/ramp walks read: the effective curve's
 * parameters plus the machine's width and window size. Rows that
 * agree on these share one walk regardless of their miss delays or
 * ROB size. Doubles are compared exactly — equal keys come from
 * identical inputs, so they carry identical bits.
 */
using TransientKey = std::tuple<double, double, double, std::uint32_t,
                                double, std::uint32_t, std::uint32_t>;

TransientKey
transientKey(const IWCharacteristic &iw, const MachineConfig &m)
{
    return {iw.alpha(),      iw.beta(),  iw.avgLatency(),
            iw.issueWidth(), iw.saturationCap(),
            m.width,         m.windowSize};
}

} // namespace

std::vector<CpiBreakdown>
evaluateBatch(const std::vector<IWCharacteristic> &iws,
              const std::vector<MachineConfig> &machines,
              const MissProfile &profile, const ModelOptions &options)
{
    fosm_assert(iws.size() == machines.size(),
                "one IW curve per machine");
    const std::size_t n = machines.size();
    std::vector<CpiBreakdown> out(n);
    if (n == 0)
        return out;

    // Per-row models and effective curves (cheap; the walks are the
    // expensive part).
    std::vector<FirstOrderModel> models;
    models.reserve(n);
    std::vector<IWCharacteristic> effective;
    effective.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        models.emplace_back(machines[i], options);
        effective.push_back(models[i].effectiveIw(iws[i], profile));
    }

    // Deduplicate transients. deque keeps analyzer addresses stable
    // while lanes grow.
    std::map<TransientKey, std::size_t> laneOf;
    std::deque<TransientAnalyzer> analyzers;
    std::vector<const TransientAnalyzer *> lanes;
    std::vector<std::size_t> rowLane(n);
    for (std::size_t i = 0; i < n; ++i) {
        const TransientKey key = transientKey(effective[i], machines[i]);
        auto [it, inserted] = laneOf.emplace(key, lanes.size());
        if (inserted) {
            analyzers.emplace_back(effective[i], machines[i]);
            lanes.push_back(&analyzers.back());
        }
        rowLane[i] = it->second;
    }
    const std::vector<kernels::TransientWalks> walks =
        kernels::drainRampBatch(lanes);

    // Overlap factors for all distinct ROB sizes in one sweep of the
    // gap vectors (only when the options read them).
    const bool needOverlap =
        options.dcacheOverlap || options.compensateOverlaps;
    std::map<std::uint64_t, std::size_t> robOf;
    std::vector<std::uint64_t> robs;
    std::vector<std::size_t> rowRob(n, 0);
    std::vector<double> ldmFactors, dtlbFactors;
    if (needOverlap) {
        for (std::size_t i = 0; i < n; ++i) {
            auto [it, inserted] =
                robOf.emplace(machines[i].robSize, robs.size());
            if (inserted)
                robs.push_back(machines[i].robSize);
            rowRob[i] = it->second;
        }
        ldmFactors = kernels::overlapFactorBatch(
            profile.ldmGaps, profile.longLoadMisses, robs);
        if (profile.dtlbLoadMisses > 0 && options.dcacheOverlap)
            dtlbFactors = kernels::overlapFactorBatch(
                profile.dtlbGaps, profile.dtlbLoadMisses, robs);
    }

    for (std::size_t i = 0; i < n; ++i) {
        const kernels::TransientWalks &w = walks[rowLane[i]];
        const double *ldm =
            needOverlap ? &ldmFactors[rowRob[i]] : nullptr;
        const double *dtlb =
            dtlbFactors.empty() ? nullptr : &dtlbFactors[rowRob[i]];
        // The memoized walks only depend on the lane key, but the
        // penalty formulas read the row's own machine (deltaD,
        // frontEndDepth, ...) — so hand them a per-row analyzer
        // (O(1) to build; the walks are the expensive part), not the
        // shared lane's, whose machine is the lane creator's.
        const TransientAnalyzer rowTransient(effective[i],
                                             machines[i]);
        out[i] = models[i].evaluateWithWalks(rowTransient, w.drain,
                                             w.ramp, profile, ldm,
                                             dtlb);
    }
    return out;
}

} // namespace fosm
