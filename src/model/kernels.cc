#include "model/kernels.hh"

#include <algorithm>

#include "analysis/miss_profiler.hh"

namespace fosm::kernels {

void
issueRateArray(const IWCharacteristic &iw, const double *w,
               double *out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = iw.issueRate(w[i]);
}

namespace {

/**
 * One lockstep iteration of either walk needs the live lanes' rates;
 * gather their occupancies into a contiguous scratch array, evaluate
 * the power-law once per lane per iteration, and scatter back. The
 * per-lane arithmetic and its order are exactly the scalar loop's.
 */
struct Gather
{
    std::vector<std::size_t> live; ///< indices of active lanes
    std::vector<double> w;         ///< their occupancies, packed
    std::vector<double> rate;      ///< issueRate results, packed
};

} // namespace

std::vector<TransientWalks>
drainRampBatch(const std::vector<const TransientAnalyzer *> &lanes)
{
    const std::size_t n = lanes.size();
    std::vector<TransientWalks> out(n);

    // ---- Drain: w starts at steady occupancy and falls by the issue
    // rate each cycle until below drainFloor (scalar windowDrain).
    std::vector<double> w(n), inst(n, 0.0);
    std::vector<int> cycles(n, 0);
    Gather g;
    g.live.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        w[i] = lanes[i]->steadyOccupancy();
        g.live.push_back(i);
    }
    while (!g.live.empty()) {
        g.w.clear();
        g.rate.clear();
        std::vector<std::size_t> next;
        next.reserve(g.live.size());
        for (const std::size_t i : g.live) {
            if (!(w[i] > TransientAnalyzer::drainFloor &&
                  cycles[i] < TransientAnalyzer::maxWalk))
                continue;
            next.push_back(i);
            g.w.push_back(w[i]);
        }
        g.rate.resize(g.w.size());
        g.live.clear();
        // Per-lane rate via the shared inline power-law; grouping by
        // IW is unnecessary for correctness (each element calls its
        // own lane's characteristic).
        for (std::size_t k = 0; k < next.size(); ++k)
            g.rate[k] =
                lanes[next[k]]->iw().issueRate(g.w[k]);
        for (std::size_t k = 0; k < next.size(); ++k) {
            const std::size_t i = next[k];
            const double rate = std::min(g.rate[k], w[i]);
            if (rate <= 1e-9)
                continue; // lane terminates (scalar break)
            inst[i] += rate;
            w[i] -= rate;
            ++cycles[i];
            g.live.push_back(i);
        }
    }
    for (std::size_t i = 0; i < n; ++i) {
        DrainResult &d = out[i].drain;
        d.cycles = cycles[i];
        d.instructions = inst[i];
        d.residual = w[i];
        d.penalty =
            d.cycles - d.instructions / lanes[i]->steadyIpc();
    }

    // ---- Ramp: the empty window fills at the dispatch width while
    // issuing, until the rate is within tolerance of steady (scalar
    // rampUp). Same lockstep structure.
    std::vector<double> lost(n, 0.0);
    std::fill(w.begin(), w.end(), 0.0);
    std::fill(inst.begin(), inst.end(), 0.0);
    std::fill(cycles.begin(), cycles.end(), 0);
    g.live.clear();
    for (std::size_t i = 0; i < n; ++i)
        g.live.push_back(i);
    while (!g.live.empty()) {
        std::vector<std::size_t> next;
        next.reserve(g.live.size());
        g.w.clear();
        for (const std::size_t i : g.live) {
            if (cycles[i] >= TransientAnalyzer::maxWalk)
                continue;
            const MachineConfig &m = lanes[i]->machine();
            w[i] = std::min(w[i] + m.width,
                            static_cast<double>(m.windowSize));
            next.push_back(i);
            g.w.push_back(w[i]);
        }
        g.rate.resize(g.w.size());
        g.live.clear();
        for (std::size_t k = 0; k < next.size(); ++k)
            g.rate[k] =
                lanes[next[k]]->iw().issueRate(g.w[k]);
        for (std::size_t k = 0; k < next.size(); ++k) {
            const std::size_t i = next[k];
            const double rate = std::min(g.rate[k], w[i]);
            const double steady = lanes[i]->steadyIpc();
            if (rate >= TransientAnalyzer::rampTolerance * steady)
                continue; // lane terminates (scalar break)
            inst[i] += rate;
            lost[i] += steady - rate;
            w[i] -= rate;
            ++cycles[i];
            g.live.push_back(i);
        }
    }
    for (std::size_t i = 0; i < n; ++i) {
        RampResult &r = out[i].ramp;
        r.cycles = cycles[i];
        r.instructions = inst[i];
        r.penalty = lost[i] / lanes[i]->steadyIpc();
    }
    return out;
}

std::vector<double>
overlapFactorBatch(const std::vector<std::uint32_t> &gaps,
                   std::uint64_t events,
                   const std::vector<std::uint64_t> &robSizes)
{
    const std::size_t n = robSizes.size();
    std::vector<double> out(n, 1.0);
    if (events == 0)
        return out;

    // The group-collection recurrence of overlapGroupSizes, run for
    // every ROB size in one sweep of the gap vector. The gap list is
    // proportional to the long-miss count (can be hundreds of
    // thousands of entries), so for a batch sweeping robSize this
    // single pass replaces robSizes.size() full passes.
    std::vector<std::uint64_t> current(n, 1), span(n, 0);
    std::vector<std::vector<std::uint64_t>> groups(n);
    for (const std::uint32_t gap : gaps) {
        for (std::size_t i = 0; i < n; ++i) {
            if (span[i] + gap < robSizes[i]) {
                ++current[i];
                span[i] += gap;
            } else {
                groups[i].push_back(current[i]);
                current[i] = 1;
                span[i] = 0;
            }
        }
    }
    for (std::size_t i = 0; i < n; ++i) {
        groups[i].push_back(current[i]);
        // Finish through the same fraction/summation code as the
        // scalar overlapFactor, preserving bit-identical results.
        out[i] = overlapFactorFromFractions(
            overlapFractionsFromGroups(groups[i], events));
    }
    return out;
}

} // namespace fosm::kernels
