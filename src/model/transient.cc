#include "model/transient.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace fosm {

TransientAnalyzer::TransientAnalyzer(const IWCharacteristic &iw,
                                     const MachineConfig &machine)
    : iw_(iw), machine_(machine)
{
    // The machine's issue width saturates the characteristic; rebuild
    // the characteristic with the machine width in case the caller
    // fitted it unbounded.
    if (iw_.issueWidth() != machine.width) {
        IWCharacteristic rebuilt(iw.alpha(), iw.beta(),
                                 iw.avgLatency(), machine.width);
        rebuilt.setSaturationCap(iw.saturationCap());
        iw_ = rebuilt;
    }
    steadyIpc_ = iw_.steadyStateIpc(machine_.windowSize);
    // Occupancy that sustains the steady rate. At saturation this is
    // the equilibrium occupancy (dispatch == issue == width holds the
    // window here); unsaturated it equals the window size.
    steadyOccupancy_ = std::min(
        static_cast<double>(machine_.windowSize),
        iw_.occupancyForRate(steadyIpc_));
}

DrainResult
TransientAnalyzer::windowDrain() const
{
    DrainResult result;
    double w = steadyOccupancy_;
    int cycles = 0;
    while (w > drainFloor && cycles < maxWalk) {
        const double rate = std::min(iw_.issueRate(w), w);
        if (rate <= 1e-9)
            break;
        result.instructions += rate;
        w -= rate;
        ++cycles;
    }
    result.cycles = cycles;
    result.residual = w;
    result.penalty =
        result.cycles - result.instructions / steadyIpc_;
    return result;
}

RampResult
TransientAnalyzer::rampUp() const
{
    RampResult result;
    double w = 0.0;
    double lost = 0.0;
    int cycles = 0;
    while (cycles < maxWalk) {
        w = std::min(w + machine_.width,
                     static_cast<double>(machine_.windowSize));
        const double rate = std::min(iw_.issueRate(w), w);
        if (rate >= rampTolerance * steadyIpc_)
            break;
        result.instructions += rate;
        lost += steadyIpc_ - rate;
        w -= rate;
        ++cycles;
    }
    result.cycles = cycles;
    result.penalty = lost / steadyIpc_;
    return result;
}

std::vector<double>
TransientAnalyzer::branchTransientSeries(int lead_cycles) const
{
    std::vector<double> series;

    for (int i = 0; i < lead_cycles; ++i)
        series.push_back(steadyIpc_);

    // Drain: fetch of useful instructions has stopped; the window
    // empties following the IW characteristic.
    double w = steadyOccupancy_;
    int guard = 0;
    while (w > drainFloor && guard++ < maxWalk) {
        const double rate = std::min(iw_.issueRate(w), w);
        if (rate <= 1e-9)
            break;
        series.push_back(rate);
        w -= rate;
    }

    // The branch resolves; the pipeline refills for DeltaP cycles.
    for (std::uint32_t i = 0; i < machine_.frontEndDepth; ++i)
        series.push_back(0.0);

    // Ramp-up: leaky bucket back to steady state.
    w = 0.0;
    guard = 0;
    while (guard++ < maxWalk) {
        w = std::min(w + machine_.width,
                     static_cast<double>(machine_.windowSize));
        const double rate = std::min(iw_.issueRate(w), w);
        series.push_back(rate);
        if (rate >= rampTolerance * steadyIpc_)
            break;
        w -= rate;
    }

    for (int i = 0; i < lead_cycles; ++i)
        series.push_back(steadyIpc_);
    return series;
}

std::vector<double>
TransientAnalyzer::icacheTransientSeries(int lead_cycles) const
{
    std::vector<double> series;
    for (int i = 0; i < lead_cycles; ++i)
        series.push_back(steadyIpc_);

    // Instructions buffered in the front-end pipe keep the window fed
    // for DeltaP cycles after the miss.
    for (std::uint32_t i = 0; i < machine_.frontEndDepth; ++i)
        series.push_back(steadyIpc_);

    // Window drains. Fetch resumes at DeltaI; instructions re-enter
    // the window at DeltaI + DeltaP.
    const double reentry =
        static_cast<double>(machine_.deltaI + machine_.frontEndDepth);
    double t = machine_.frontEndDepth; // cycles since the miss
    double w = steadyOccupancy_;
    int guard = 0;
    while (w > drainFloor && t < reentry && guard++ < maxWalk) {
        const double rate = std::min(iw_.issueRate(w), w);
        if (rate <= 1e-9)
            break;
        series.push_back(rate);
        w -= rate;
        t += 1.0;
    }

    // Idle until the refilled pipe reaches the window.
    while (t < reentry) {
        series.push_back(0.0);
        t += 1.0;
    }

    // Ramp-up from whatever occupancy remained.
    guard = 0;
    while (guard++ < maxWalk) {
        w = std::min(w + machine_.width,
                     static_cast<double>(machine_.windowSize));
        const double rate = std::min(iw_.issueRate(w), w);
        series.push_back(rate);
        if (rate >= rampTolerance * steadyIpc_)
            break;
        w -= rate;
    }

    for (int i = 0; i < lead_cycles; ++i)
        series.push_back(steadyIpc_);
    return series;
}

std::vector<double>
TransientAnalyzer::interMispredictSeries(double inter_inst) const
{
    fosm_assert(inter_inst > 0.0,
                "inter-misprediction distance must be positive");
    std::vector<double> series;

    // Pipeline refill after the previous misprediction resolved.
    for (std::uint32_t i = 0; i < machine_.frontEndDepth; ++i)
        series.push_back(0.0);

    // Dispatch a budget of inter_inst useful instructions; the next
    // mispredicted branch follows immediately after, so once the
    // budget is dispatched the window drains and issue falls to zero
    // (Figure 19's rise-and-fall shape).
    double to_dispatch = inter_inst;
    double in_window = 0.0;
    int guard = 0;
    while ((to_dispatch > 0.0 || in_window > 1e-9) &&
           guard++ < maxWalk) {
        const double dispatched = std::min(
            {static_cast<double>(machine_.width), to_dispatch,
             static_cast<double>(machine_.windowSize) - in_window});
        to_dispatch -= dispatched;
        in_window += dispatched;
        const double rate =
            std::min(iw_.issueRate(in_window), in_window);
        series.push_back(rate);
        in_window -= rate;
        if (rate <= 1e-9 && to_dispatch <= 0.0)
            break;
    }
    return series;
}

double
TransientAnalyzer::saturationTimeFraction(double inter_inst,
                                          double closeness) const
{
    const std::vector<double> series =
        interMispredictSeries(inter_inst);
    if (series.empty())
        return 0.0;
    const double threshold =
        closeness * static_cast<double>(machine_.width);
    std::size_t close = 0;
    for (double rate : series) {
        if (rate >= threshold)
            ++close;
    }
    return static_cast<double>(close) /
           static_cast<double>(series.size());
}

double
TransientAnalyzer::instructionsForSaturationFraction(
    double target_fraction, double closeness) const
{
    fosm_assert(target_fraction > 0.0 && target_fraction < 1.0,
                "target fraction must be in (0,1)");
    double lo = 1.0;
    double hi = 1.0;
    // Exponential search for an upper bracket.
    for (int i = 0; i < 40; ++i) {
        if (saturationTimeFraction(hi, closeness) >= target_fraction)
            break;
        hi *= 2.0;
        if (hi > 1e9)
            return std::numeric_limits<double>::infinity();
    }
    if (saturationTimeFraction(hi, closeness) < target_fraction)
        return std::numeric_limits<double>::infinity();
    for (int i = 0; i < 60; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (saturationTimeFraction(mid, closeness) >= target_fraction)
            hi = mid;
        else
            lo = mid;
    }
    return hi;
}

} // namespace fosm
