#include "model/penalties.hh"

#include <algorithm>

#include "common/logging.hh"

namespace fosm {

PenaltyModel::PenaltyModel(const TransientAnalyzer &transient)
    : transient_(transient),
      drain_(transient.windowDrain()),
      ramp_(transient.rampUp())
{
}

PenaltyModel::PenaltyModel(const TransientAnalyzer &transient,
                           const DrainResult &drain,
                           const RampResult &ramp)
    : transient_(transient), drain_(drain), ramp_(ramp)
{
}

double
PenaltyModel::isolatedBranchPenalty() const
{
    return drain_.penalty +
           static_cast<double>(transient_.machine().frontEndDepth) +
           ramp_.penalty;
}

double
PenaltyModel::burstBranchPenalty(double n) const
{
    fosm_assert(n >= 1.0, "burst length must be >= 1");
    return static_cast<double>(transient_.machine().frontEndDepth) +
           (drain_.penalty + ramp_.penalty) / n;
}

double
PenaltyModel::branchPenalty(BranchPenaltyMode mode,
                            double mean_burst) const
{
    switch (mode) {
      case BranchPenaltyMode::Isolated:
        return isolatedBranchPenalty();
      case BranchPenaltyMode::PaperAverage:
        // Midpoint of the isolated bound and the infinite-burst bound
        // DeltaP: the paper's "average of 5 and 10 cycles".
        return 0.5 * (isolatedBranchPenalty() +
                      static_cast<double>(
                          transient_.machine().frontEndDepth));
      case BranchPenaltyMode::BurstAware:
        return burstBranchPenalty(std::max(mean_burst, 1.0));
    }
    fosm_panic("unknown branch penalty mode");
}

double
PenaltyModel::isolatedIcachePenalty(double delay) const
{
    return delay + ramp_.penalty - drain_.penalty;
}

double
PenaltyModel::burstIcachePenalty(double delay, double n) const
{
    fosm_assert(n >= 1.0, "burst length must be >= 1");
    return delay + (ramp_.penalty - drain_.penalty) / n;
}

double
PenaltyModel::icachePenalty(IcachePenaltyMode mode, double delay,
                            double mean_burst) const
{
    switch (mode) {
      case IcachePenaltyMode::MissDelay:
        return delay;
      case IcachePenaltyMode::Isolated:
        return burstIcachePenalty(delay, std::max(mean_burst, 1.0));
    }
    fosm_panic("unknown icache penalty mode");
}

double
PenaltyModel::isolatedDcachePenalty(double rob_fill) const
{
    return static_cast<double>(transient_.machine().deltaD) -
           rob_fill - drain_.penalty + ramp_.penalty;
}

double
PenaltyModel::firstOrderDcachePenalty() const
{
    return static_cast<double>(transient_.machine().deltaD);
}

double
PenaltyModel::dcachePenalty(double overlap_factor,
                            bool first_order) const
{
    fosm_assert(overlap_factor > 0.0 && overlap_factor <= 1.0 + 1e-9,
                "overlap factor must be in (0,1]");
    const double isolated = first_order ? firstOrderDcachePenalty()
                                        : isolatedDcachePenalty();
    return isolated * overlap_factor;
}

} // namespace fosm
