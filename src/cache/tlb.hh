/**
 * @file
 * Translation lookaside buffer model - the paper's future-work item 4
 * (Section 7): "Additional types of miss-events, TLB misses in
 * particular. When added, these will act much like long data cache
 * misses." A TLB is a set-associative cache of page translations;
 * this wraps the generic cache with page-granular geometry and a
 * fixed walk latency on a miss.
 */

#ifndef FOSM_CACHE_TLB_HH
#define FOSM_CACHE_TLB_HH

#include <memory>

#include "cache/cache.hh"

namespace fosm {

/** Geometry and timing of one TLB. */
struct TlbConfig
{
    /** Enable TLB modeling (off preserves the paper's base machine). */
    bool enabled = false;
    /** Number of translation entries; must be a power of two. */
    std::uint32_t entries = 64;
    /** Associativity. */
    std::uint32_t assoc = 4;
    /** Page size in bytes; must be a power of two. */
    std::uint32_t pageBytes = 4096;
    /** Page-table walk latency charged on a miss. */
    Cycle walkLatency = 30;
};

/**
 * A data TLB. access() performs the lookup, fills on a miss, and
 * reports hit/miss; the caller charges walkLatency on misses.
 */
class Tlb
{
  public:
    explicit Tlb(const TlbConfig &config);

    /** Look up the page containing addr; true on a hit. */
    bool access(Addr addr);

    /** Probe without state change. */
    bool probe(Addr addr) const;

    const TlbConfig &config() const { return config_; }
    const CacheStats &stats() const { return cache_.stats(); }
    void resetStats() { cache_.resetStats(); }
    void flush() { cache_.flush(); }

  private:
    TlbConfig config_;
    Cache cache_;

    static CacheConfig asCacheConfig(const TlbConfig &config);
};

} // namespace fosm

#endif // FOSM_CACHE_TLB_HH
