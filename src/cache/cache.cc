#include "cache/cache.hh"

#include <bit>

#include "common/logging.hh"
#include "common/stats.hh"

namespace fosm {

std::uint32_t
CacheConfig::sets() const
{
    fosm_assert(lineBytes > 0 && assoc > 0 && sizeBytes > 0,
                "cache geometry fields must be positive");
    const std::uint64_t line_count = sizeBytes / lineBytes;
    fosm_assert(line_count * lineBytes == sizeBytes,
                "cache size must be a multiple of the line size");
    fosm_assert(line_count % assoc == 0,
                "line count must be a multiple of associativity");
    return static_cast<std::uint32_t>(line_count / assoc);
}

double
CacheStats::missRate() const
{
    return safeRatio(static_cast<double>(misses),
                     static_cast<double>(accesses));
}

Cache::Cache(const CacheConfig &config)
    : config_(config),
      sets_(config.sets()),
      lineShift_(static_cast<std::uint32_t>(
          std::countr_zero(config.lineBytes))),
      repl_(makeReplacementPolicy(config.policy, sets_, config.assoc)),
      lines_(static_cast<std::size_t>(sets_) * config.assoc)
{
    fosm_assert(std::has_single_bit(config.lineBytes),
                "line size must be a power of two");
    fosm_assert(std::has_single_bit(sets_),
                "set count must be a power of two");
}

std::uint32_t
Cache::setIndex(Addr addr) const
{
    return static_cast<std::uint32_t>((addr >> lineShift_) &
                                      (sets_ - 1));
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr >> lineShift_;
}

Cache::Line &
Cache::lineAt(std::uint32_t set, std::uint32_t way)
{
    return lines_[static_cast<std::size_t>(set) * config_.assoc + way];
}

const Cache::Line &
Cache::lineAt(std::uint32_t set, std::uint32_t way) const
{
    return lines_[static_cast<std::size_t>(set) * config_.assoc + way];
}

bool
Cache::access(Addr addr)
{
    ++stats_.accesses;
    const std::uint32_t set = setIndex(addr);
    const Addr tag = tagOf(addr);

    for (std::uint32_t way = 0; way < config_.assoc; ++way) {
        Line &line = lineAt(set, way);
        if (line.valid && line.tag == tag) {
            repl_->touch(set, way);
            return true;
        }
    }

    ++stats_.misses;
    // Prefer an invalid way before evicting.
    std::uint32_t victim = config_.assoc;
    for (std::uint32_t way = 0; way < config_.assoc; ++way) {
        if (!lineAt(set, way).valid) {
            victim = way;
            break;
        }
    }
    if (victim == config_.assoc)
        victim = repl_->victim(set);

    Line &line = lineAt(set, victim);
    line.tag = tag;
    line.valid = true;
    repl_->fill(set, victim);
    return false;
}

bool
Cache::probe(Addr addr) const
{
    const std::uint32_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    for (std::uint32_t way = 0; way < config_.assoc; ++way) {
        const Line &line = lineAt(set, way);
        if (line.valid && line.tag == tag)
            return true;
    }
    return false;
}

void
Cache::flush()
{
    for (Line &line : lines_)
        line.valid = false;
    repl_ = makeReplacementPolicy(config_.policy, sets_, config_.assoc);
}

} // namespace fosm
