#include "cache/replacement.hh"

#include "common/logging.hh"

namespace fosm {

LruPolicy::LruPolicy(std::uint32_t sets, std::uint32_t ways)
    : ways_(ways),
      lastUse_(static_cast<std::size_t>(sets) * ways, 0)
{
}

void
LruPolicy::touch(std::uint32_t set, std::uint32_t way)
{
    lastUse_[static_cast<std::size_t>(set) * ways_ + way] = ++tick_;
}

void
LruPolicy::fill(std::uint32_t set, std::uint32_t way)
{
    touch(set, way);
}

std::uint32_t
LruPolicy::victim(std::uint32_t set)
{
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    std::uint32_t best = 0;
    std::uint64_t bestTick = lastUse_[base];
    for (std::uint32_t w = 1; w < ways_; ++w) {
        if (lastUse_[base + w] < bestTick) {
            bestTick = lastUse_[base + w];
            best = w;
        }
    }
    return best;
}

FifoPolicy::FifoPolicy(std::uint32_t sets, std::uint32_t ways)
    : ways_(ways),
      fillTime_(static_cast<std::size_t>(sets) * ways, 0)
{
}

void
FifoPolicy::touch(std::uint32_t, std::uint32_t)
{
    // Hits do not affect FIFO order.
}

void
FifoPolicy::fill(std::uint32_t set, std::uint32_t way)
{
    fillTime_[static_cast<std::size_t>(set) * ways_ + way] = ++tick_;
}

std::uint32_t
FifoPolicy::victim(std::uint32_t set)
{
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    std::uint32_t best = 0;
    std::uint64_t bestTick = fillTime_[base];
    for (std::uint32_t w = 1; w < ways_; ++w) {
        if (fillTime_[base + w] < bestTick) {
            bestTick = fillTime_[base + w];
            best = w;
        }
    }
    return best;
}

RandomPolicy::RandomPolicy(std::uint32_t, std::uint32_t ways,
                           std::uint64_t seed)
    : ways_(ways), rng_(seed)
{
}

void
RandomPolicy::touch(std::uint32_t, std::uint32_t)
{
}

void
RandomPolicy::fill(std::uint32_t, std::uint32_t)
{
}

std::uint32_t
RandomPolicy::victim(std::uint32_t)
{
    return static_cast<std::uint32_t>(rng_.nextBounded(ways_));
}

std::unique_ptr<ReplacementPolicy>
makeReplacementPolicy(ReplPolicyKind kind, std::uint32_t sets,
                      std::uint32_t ways)
{
    switch (kind) {
      case ReplPolicyKind::Lru:
        return std::make_unique<LruPolicy>(sets, ways);
      case ReplPolicyKind::Fifo:
        return std::make_unique<FifoPolicy>(sets, ways);
      case ReplPolicyKind::Random:
        return std::make_unique<RandomPolicy>(sets, ways);
    }
    fosm_panic("unknown replacement policy kind");
}

} // namespace fosm
