#include "cache/hierarchy.hh"

namespace fosm {

CacheHierarchy::CacheHierarchy(const HierarchyConfig &config)
    : config_(config),
      l1i_(config.l1i),
      l1d_(config.l1d),
      l2_(config.l2)
{
}

AccessResult
CacheHierarchy::accessThrough(Cache &l1, Addr addr)
{
    AccessResult result;
    if (l1.access(addr)) {
        result.level = HitLevel::L1;
        result.latency = config_.l1Latency;
        return result;
    }
    if (l2_.access(addr)) {
        result.level = HitLevel::L2;
        result.latency = config_.l1Latency + config_.l2Latency;
        return result;
    }
    result.level = HitLevel::Memory;
    result.latency = config_.l1Latency + config_.memLatency;
    return result;
}

AccessResult
CacheHierarchy::fetchInst(Addr pc)
{
    return accessThrough(l1i_, pc);
}

AccessResult
CacheHierarchy::accessData(Addr addr)
{
    return accessThrough(l1d_, addr);
}

void
CacheHierarchy::resetStats()
{
    l1i_.resetStats();
    l1d_.resetStats();
    l2_.resetStats();
}

void
CacheHierarchy::flush()
{
    l1i_.flush();
    l1d_.flush();
    l2_.flush();
}

} // namespace fosm
