/**
 * @file
 * Replacement policies for the set-associative cache model. The
 * paper's caches are conventional 4-way set-associative structures;
 * LRU is the default, with FIFO and random provided for ablation.
 */

#ifndef FOSM_CACHE_REPLACEMENT_HH
#define FOSM_CACHE_REPLACEMENT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"

namespace fosm {

/**
 * Per-set replacement state for one cache. Ways are identified by
 * index within the set.
 */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** Called when (set, way) is accessed (hit or fill). */
    virtual void touch(std::uint32_t set, std::uint32_t way) = 0;

    /** Called when (set, way) is filled with a new line. */
    virtual void fill(std::uint32_t set, std::uint32_t way) = 0;

    /** Choose the victim way in the given set. */
    virtual std::uint32_t victim(std::uint32_t set) = 0;

    /** Human-readable policy name. */
    virtual std::string name() const = 0;
};

/** True least-recently-used via per-way timestamps. */
class LruPolicy : public ReplacementPolicy
{
  public:
    LruPolicy(std::uint32_t sets, std::uint32_t ways);

    void touch(std::uint32_t set, std::uint32_t way) override;
    void fill(std::uint32_t set, std::uint32_t way) override;
    std::uint32_t victim(std::uint32_t set) override;
    std::string name() const override { return "lru"; }

  private:
    std::uint32_t ways_;
    std::uint64_t tick_ = 0;
    std::vector<std::uint64_t> lastUse_;
};

/** First-in first-out: victim rotates regardless of hits. */
class FifoPolicy : public ReplacementPolicy
{
  public:
    FifoPolicy(std::uint32_t sets, std::uint32_t ways);

    void touch(std::uint32_t set, std::uint32_t way) override;
    void fill(std::uint32_t set, std::uint32_t way) override;
    std::uint32_t victim(std::uint32_t set) override;
    std::string name() const override { return "fifo"; }

  private:
    std::uint32_t ways_;
    std::uint64_t tick_ = 0;
    std::vector<std::uint64_t> fillTime_;
};

/** Uniform random victim selection (deterministic seed). */
class RandomPolicy : public ReplacementPolicy
{
  public:
    RandomPolicy(std::uint32_t sets, std::uint32_t ways,
                 std::uint64_t seed = 1);

    void touch(std::uint32_t set, std::uint32_t way) override;
    void fill(std::uint32_t set, std::uint32_t way) override;
    std::uint32_t victim(std::uint32_t set) override;
    std::string name() const override { return "random"; }

  private:
    std::uint32_t ways_;
    Rng rng_;
};

/** Policy selector for configuration files / ablations. */
enum class ReplPolicyKind { Lru, Fifo, Random };

/** Factory for the given policy kind. */
std::unique_ptr<ReplacementPolicy>
makeReplacementPolicy(ReplPolicyKind kind, std::uint32_t sets,
                      std::uint32_t ways);

} // namespace fosm

#endif // FOSM_CACHE_REPLACEMENT_HH
