#include "cache/tlb.hh"

#include "common/logging.hh"

namespace fosm {

CacheConfig
Tlb::asCacheConfig(const TlbConfig &config)
{
    fosm_assert(config.entries > 0, "TLB needs at least one entry");
    CacheConfig cache;
    cache.name = "dtlb";
    // A TLB caching N page translations is a cache of N page-sized
    // "lines": the tag/index arithmetic is identical.
    cache.sizeBytes =
        static_cast<std::uint64_t>(config.entries) * config.pageBytes;
    cache.assoc = config.assoc;
    cache.lineBytes = config.pageBytes;
    cache.policy = ReplPolicyKind::Lru;
    return cache;
}

Tlb::Tlb(const TlbConfig &config)
    : config_(config), cache_(asCacheConfig(config))
{
}

bool
Tlb::access(Addr addr)
{
    return cache_.access(addr);
}

bool
Tlb::probe(Addr addr) const
{
    return cache_.probe(addr);
}

} // namespace fosm
