/**
 * @file
 * Three-cache hierarchy of the paper's baseline machine (Section 1.1):
 * split L1 instruction and data caches backed by a unified L2. An
 * access reports the level that served it and the corresponding
 * latency; an L2 miss is a "long" miss served by memory (the paper's
 * DeltaD), an L1 miss that hits in L2 is a "short" miss (DeltaI for
 * instructions; treated as a long-latency functional unit for loads).
 */

#ifndef FOSM_CACHE_HIERARCHY_HH
#define FOSM_CACHE_HIERARCHY_HH

#include <cstdint>

#include "cache/cache.hh"
#include "common/types.hh"

namespace fosm {

/** Which level of the hierarchy served an access. */
enum class HitLevel : std::uint8_t { L1, L2, Memory };

/** Outcome of one hierarchy access. */
struct AccessResult
{
    HitLevel level = HitLevel::L1;
    /** Total access latency in cycles, including the L1 hit time. */
    Cycle latency = 1;

    bool isL1Miss() const { return level != HitLevel::L1; }
    bool isL2Miss() const { return level == HitLevel::Memory; }
};

/** Full hierarchy configuration: geometries plus level latencies. */
struct HierarchyConfig
{
    CacheConfig l1i{"l1i", 4 * 1024, 4, 128, ReplPolicyKind::Lru};
    CacheConfig l1d{"l1d", 4 * 1024, 4, 128, ReplPolicyKind::Lru};
    CacheConfig l2{"l2", 512 * 1024, 4, 128, ReplPolicyKind::Lru};

    /** L1 hit latency in cycles. */
    Cycle l1Latency = 1;
    /** L2 hit latency in cycles: the paper's DeltaI = 8. */
    Cycle l2Latency = 8;
    /** Memory latency in cycles: the paper's DeltaD = 200. */
    Cycle memLatency = 200;
};

/**
 * The L1I/L1D/L2 hierarchy. Inclusive fill path: an L1 miss always
 * accesses and fills L2, then fills L1.
 */
class CacheHierarchy
{
  public:
    explicit CacheHierarchy(const HierarchyConfig &config);

    /** Instruction fetch of the line containing pc. */
    AccessResult fetchInst(Addr pc);

    /** Data load/store access. Stores allocate like loads. */
    AccessResult accessData(Addr addr);

    const HierarchyConfig &config() const { return config_; }
    const Cache &l1i() const { return l1i_; }
    const Cache &l1d() const { return l1d_; }
    const Cache &l2() const { return l2_; }

    /** Reset hit/miss counters on every level. */
    void resetStats();

    /** Invalidate every level. */
    void flush();

  private:
    HierarchyConfig config_;
    Cache l1i_;
    Cache l1d_;
    Cache l2_;

    AccessResult accessThrough(Cache &l1, Addr addr);
};

} // namespace fosm

#endif // FOSM_CACHE_HIERARCHY_HH
