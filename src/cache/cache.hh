/**
 * @file
 * Set-associative cache model used for functional (trace-driven)
 * simulation of hit/miss behaviour. Timing is not modeled here; the
 * hierarchy and the detailed simulator attach latencies to the
 * hit/miss outcomes.
 */

#ifndef FOSM_CACHE_CACHE_HH
#define FOSM_CACHE_CACHE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/replacement.hh"
#include "common/types.hh"

namespace fosm {

/** Geometry and policy of one cache. */
struct CacheConfig
{
    std::string name = "cache";
    /** Total capacity in bytes; must be a power of two. */
    std::uint64_t sizeBytes = 4 * 1024;
    /** Associativity (ways per set). */
    std::uint32_t assoc = 4;
    /** Line size in bytes; must be a power of two. */
    std::uint32_t lineBytes = 128;
    ReplPolicyKind policy = ReplPolicyKind::Lru;

    /** Number of sets implied by the geometry. */
    std::uint32_t sets() const;
};

/** Hit/miss counters of one cache. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;

    double missRate() const;
};

/**
 * Functional set-associative cache. access() returns hit/miss and
 * allocates the line on a miss (allocate-on-miss for both reads and
 * writes, matching the paper's simple hierarchy).
 */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /** Access the line containing addr; returns true on a hit. */
    bool access(Addr addr);

    /** Probe without updating state; returns true if resident. */
    bool probe(Addr addr) const;

    /** Invalidate all lines and reset replacement state. */
    void flush();

    const CacheConfig &config() const { return config_; }
    const CacheStats &stats() const { return stats_; }

    /** Reset counters but keep cache contents (for warmup). */
    void resetStats() { stats_ = CacheStats{}; }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
    };

    CacheConfig config_;
    std::uint32_t sets_;
    std::uint32_t lineShift_;
    std::unique_ptr<ReplacementPolicy> repl_;
    std::vector<Line> lines_;
    CacheStats stats_;

    std::uint32_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;
    Line &lineAt(std::uint32_t set, std::uint32_t way);
    const Line &lineAt(std::uint32_t set, std::uint32_t way) const;
};

} // namespace fosm

#endif // FOSM_CACHE_CACHE_HH
