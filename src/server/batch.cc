#include "server/batch.hh"

#include <cmath>
#include <limits>

#include "common/version.hh"
#include "server/params.hh"
#include "store/codec.hh"

namespace fosm::server::batch {

namespace {

constexpr std::uint32_t kRequestMagic = 0x46424154;  // "FBAT"
constexpr std::uint32_t kResponseMagic = 0x46425253; // "FBRS"

/** Machine members a row may set, in wire bit order. */
constexpr const char *kMachineFields[] = {
    "width",  "frontEndDepth", "windowSize",
    "robSize", "deltaI",        "deltaD",
    "deltaT", "clusters",       "interClusterDelay",
};
constexpr std::size_t kFieldCount =
    sizeof(kMachineFields) / sizeof(kMachineFields[0]);

/** Mask bit marking a row that is not a JSON object (carried whole
 *  in the extra-JSON slot so the backend can reject it with the same
 *  per-row error the JSON path produces). */
constexpr std::uint32_t kNonObjectRow = 0x80000000u;

int
fieldIndex(const std::string &name)
{
    for (std::size_t i = 0; i < kFieldCount; ++i)
        if (name == kMachineFields[i])
            return static_cast<int>(i);
    return -1;
}

bool
failDecode(std::string *error, const char *what)
{
    if (error)
        *error = what;
    return false;
}

} // namespace

Request
parseRequest(const json::Value &body)
{
    if (!body.isObject())
        badRequest("request body must be a JSON object");
    requireMembers(body, "request",
                   {"workload", "machine", "options", "rows"});
    Request out;
    out.workload = workloadMember(body);
    if (const json::Value *m = body.find("machine")) {
        if (!m->isObject())
            badRequest("'machine' must be an object");
        out.sharedMachine = *m;
    }
    if (const json::Value *o = body.find("options")) {
        if (!o->isObject())
            badRequest("'options' must be an object");
        out.sharedOptions = *o;
    }
    const json::Value *rows = body.find("rows");
    if (!rows || !rows->isArray() || rows->items().empty())
        badRequest("'rows' must be a non-empty array");
    if (rows->items().size() > maxRows) {
        throw ServiceError(413, "'rows' too long (max " +
                                    std::to_string(maxRows) + ")");
    }
    out.rows = rows->items();
    return out;
}

json::Value
mergedRowBody(const Request &request, const json::Value &row)
{
    if (!row.isObject())
        badRequest("batch row must be an object");
    json::Value body = json::Value::object();
    body.set("workload", request.workload);
    const bool haveShared = request.sharedMachine.isObject();
    if (haveShared || row.size() > 0) {
        json::Value machine =
            haveShared ? request.sharedMachine : json::Value::object();
        for (const auto &member : row.members())
            machine.set(member.first, member.second);
        body.set("machine", std::move(machine));
    }
    if (request.sharedOptions.isObject())
        body.set("options", request.sharedOptions);
    return body;
}

std::string
encodeRequest(const std::string &workload,
              const json::Value *sharedMachine,
              const json::Value *sharedOptions,
              const std::vector<const json::Value *> &rows)
{
    store::Encoder e;
    e.u32(kRequestMagic);
    e.u32(batchWireFormatVersion);
    e.bytes(workload);
    e.bytes(sharedMachine ? sharedMachine->canonical()
                          : std::string());
    e.bytes(sharedOptions ? sharedOptions->canonical()
                          : std::string());
    e.u64(rows.size());
    for (const json::Value *row : rows) {
        if (!row->isObject()) {
            e.u32(kNonObjectRow);
            e.bytes(row->canonical());
            continue;
        }
        std::uint32_t mask = 0;
        std::uint32_t packed[kFieldCount] = {};
        json::Value extra = json::Value::object();
        for (const auto &member : row->members()) {
            const int idx = fieldIndex(member.first);
            const double d = member.second.asDouble();
            if (idx >= 0 && member.second.isNumber() &&
                d == std::floor(d) && d >= 0.0 && d <= 4294967295.0) {
                mask |= 1u << idx;
                packed[idx] = static_cast<std::uint32_t>(d);
            } else {
                // Invalid or non-integral members ride as JSON so
                // the backend rejects them with the exact error the
                // JSON path would have produced.
                extra.set(member.first, member.second);
            }
        }
        e.u32(mask);
        for (std::size_t i = 0; i < kFieldCount; ++i)
            if (mask & (1u << i))
                e.u32(packed[i]);
        e.bytes(extra.size() > 0 ? extra.canonical() : std::string());
    }
    return e.take();
}

bool
decodeRequest(std::string_view wire, json::Value &out,
              std::string *error)
{
    store::Decoder d(wire);
    std::uint32_t magic = 0, version = 0;
    if (!d.u32(magic) || magic != kRequestMagic)
        return failDecode(error, "not a batch request frame");
    if (!d.u32(version) || version != batchWireFormatVersion)
        return failDecode(error,
                          "unsupported batch wire format version");
    std::string workload, machineJson, optionsJson;
    if (!d.bytes(workload) || !d.bytes(machineJson) ||
        !d.bytes(optionsJson)) {
        return failDecode(error, "truncated batch frame header");
    }
    std::uint64_t rowCount = 0;
    // A row costs at least mask + extra-length = 12 bytes; bound the
    // count before looping so a corrupt frame can't demand work
    // proportional to a forged length.
    if (!d.u64(rowCount) || rowCount > wire.size() / 12)
        return failDecode(error, "implausible batch row count");

    out = json::Value::object();
    out.set("workload", workload);
    if (!machineJson.empty()) {
        json::Value machine;
        if (!json::parse(machineJson, machine, nullptr))
            return failDecode(error, "bad shared machine JSON");
        out.set("machine", std::move(machine));
    }
    if (!optionsJson.empty()) {
        json::Value options;
        if (!json::parse(optionsJson, options, nullptr))
            return failDecode(error, "bad shared options JSON");
        out.set("options", std::move(options));
    }
    json::Value rows = json::Value::array();
    std::string extraJson;
    for (std::uint64_t r = 0; r < rowCount; ++r) {
        std::uint32_t mask = 0;
        if (!d.u32(mask))
            return failDecode(error, "truncated batch row");
        if (mask & kNonObjectRow) {
            if (!d.bytes(extraJson))
                return failDecode(error, "truncated batch row");
            json::Value row;
            if (!json::parse(extraJson, row, nullptr))
                return failDecode(error, "bad row JSON");
            rows.push(std::move(row));
            continue;
        }
        json::Value row = json::Value::object();
        for (std::size_t i = 0; i < kFieldCount; ++i) {
            if (!(mask & (1u << i)))
                continue;
            std::uint32_t v = 0;
            if (!d.u32(v))
                return failDecode(error, "truncated batch row");
            row.set(kMachineFields[i], v);
        }
        if (!d.bytes(extraJson))
            return failDecode(error, "truncated batch row");
        if (!extraJson.empty()) {
            json::Value extra;
            if (!json::parse(extraJson, extra, nullptr) ||
                !extra.isObject()) {
                return failDecode(error, "bad row JSON");
            }
            for (const auto &member : extra.members())
                row.set(member.first, member.second);
        }
        rows.push(std::move(row));
    }
    if (!d.atEnd())
        return failDecode(error, "trailing bytes in batch frame");
    out.set("rows", std::move(rows));
    return true;
}

void
Result::pushRow(double ideal_, double brmisp_, double icacheL1_,
                double icacheL2_, double dcacheLong_, double dtlb_,
                double total_, double ipc_)
{
    ideal.push_back(ideal_);
    brmisp.push_back(brmisp_);
    icacheL1.push_back(icacheL1_);
    icacheL2.push_back(icacheL2_);
    dcacheLong.push_back(dcacheLong_);
    dtlb.push_back(dtlb_);
    total.push_back(total_);
    ipc.push_back(ipc_);
    errors.emplace_back();
}

void
Result::pushError(std::string message)
{
    const double nan = std::numeric_limits<double>::quiet_NaN();
    ideal.push_back(nan);
    brmisp.push_back(nan);
    icacheL1.push_back(nan);
    icacheL2.push_back(nan);
    dcacheLong.push_back(nan);
    dtlb.push_back(nan);
    total.push_back(nan);
    ipc.push_back(nan);
    errors.push_back(std::move(message));
}

namespace {

json::Value
column(const std::vector<double> &values,
       const std::vector<std::string> &errors)
{
    json::Value arr = json::Value::array();
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (errors[i].empty())
            arr.push(values[i]);
        else
            arr.push(json::Value()); // null slot for a failed row
    }
    return arr;
}

} // namespace

json::Value
toJson(const Result &result)
{
    json::Value out = json::Value::object();
    out.set("workload", result.workload);
    out.set("rows", static_cast<std::uint64_t>(result.rows()));
    json::Value cpi = json::Value::object();
    cpi.set("ideal", column(result.ideal, result.errors));
    cpi.set("brmisp", column(result.brmisp, result.errors));
    cpi.set("icacheL1", column(result.icacheL1, result.errors));
    cpi.set("icacheL2", column(result.icacheL2, result.errors));
    cpi.set("dcacheLong", column(result.dcacheLong, result.errors));
    cpi.set("dtlb", column(result.dtlb, result.errors));
    cpi.set("total", column(result.total, result.errors));
    out.set("cpi", std::move(cpi));
    out.set("ipc", column(result.ipc, result.errors));
    json::Value errs = json::Value::array();
    for (const std::string &e : result.errors) {
        if (e.empty())
            errs.push(json::Value());
        else
            errs.push(e);
    }
    out.set("errors", std::move(errs));
    return out;
}

std::string
encodeResponse(const Result &result)
{
    store::Encoder e;
    e.u32(kResponseMagic);
    e.u32(batchWireFormatVersion);
    e.bytes(result.workload);
    e.u64(result.rows());
    e.f64Vector(result.ideal);
    e.f64Vector(result.brmisp);
    e.f64Vector(result.icacheL1);
    e.f64Vector(result.icacheL2);
    e.f64Vector(result.dcacheLong);
    e.f64Vector(result.dtlb);
    e.f64Vector(result.total);
    e.f64Vector(result.ipc);
    for (const std::string &err : result.errors)
        e.bytes(err);
    return e.take();
}

bool
decodeResponse(std::string_view wire, Result &out, std::string *error)
{
    store::Decoder d(wire);
    std::uint32_t magic = 0, version = 0;
    if (!d.u32(magic) || magic != kResponseMagic)
        return failDecode(error, "not a batch response frame");
    if (!d.u32(version) || version != batchWireFormatVersion)
        return failDecode(error,
                          "unsupported batch wire format version");
    std::uint64_t rows = 0;
    if (!d.bytes(out.workload) || !d.u64(rows))
        return failDecode(error, "truncated batch response");
    if (!d.f64Vector(out.ideal) || !d.f64Vector(out.brmisp) ||
        !d.f64Vector(out.icacheL1) || !d.f64Vector(out.icacheL2) ||
        !d.f64Vector(out.dcacheLong) || !d.f64Vector(out.dtlb) ||
        !d.f64Vector(out.total) || !d.f64Vector(out.ipc)) {
        return failDecode(error, "truncated batch response columns");
    }
    if (out.ideal.size() != rows || out.brmisp.size() != rows ||
        out.icacheL1.size() != rows || out.icacheL2.size() != rows ||
        out.dcacheLong.size() != rows || out.dtlb.size() != rows ||
        out.total.size() != rows || out.ipc.size() != rows) {
        return failDecode(error, "batch response column mismatch");
    }
    out.errors.clear();
    std::string err;
    for (std::uint64_t i = 0; i < rows; ++i) {
        if (!d.bytes(err))
            return failDecode(error, "truncated batch errors");
        out.errors.push_back(err);
    }
    if (!d.atEnd())
        return failDecode(error, "trailing bytes in batch response");
    return true;
}

} // namespace fosm::server::batch
