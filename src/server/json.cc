#include "server/json.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/hash.hh"

namespace fosm::json {

namespace {

/** Parser state over the raw text; reports errors with an offset. */
struct Parser
{
    const char *cur;
    const char *end;
    const char *begin;
    std::string error;

    /** Nesting limit: deep recursion is an attack, not a request. */
    static constexpr int maxDepth = 64;

    bool
    fail(const std::string &what)
    {
        if (error.empty()) {
            error = what + " at offset " +
                    std::to_string(cur - begin);
        }
        return false;
    }

    void
    skipSpace()
    {
        while (cur < end && (*cur == ' ' || *cur == '\t' ||
                             *cur == '\n' || *cur == '\r')) {
            ++cur;
        }
    }

    bool
    consume(char c)
    {
        if (cur < end && *cur == c) {
            ++cur;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word, std::size_t len)
    {
        if (static_cast<std::size_t>(end - cur) < len ||
            std::memcmp(cur, word, len) != 0) {
            return fail("invalid literal");
        }
        cur += len;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return fail("expected string");
        out.clear();
        while (cur < end) {
            const unsigned char c =
                static_cast<unsigned char>(*cur);
            if (c == '"') {
                ++cur;
                return true;
            }
            if (c < 0x20)
                return fail("unescaped control character in string");
            if (c != '\\') {
                out.push_back(static_cast<char>(c));
                ++cur;
                continue;
            }
            ++cur; // backslash
            if (cur >= end)
                return fail("truncated escape");
            const char esc = *cur++;
            switch (esc) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                unsigned code = 0;
                if (!parseHex4(code))
                    return false;
                // Surrogate pair handling for the full BMP+.
                if (code >= 0xD800 && code <= 0xDBFF) {
                    if (end - cur < 2 || cur[0] != '\\' ||
                        cur[1] != 'u') {
                        return fail("lone high surrogate");
                    }
                    cur += 2;
                    unsigned low = 0;
                    if (!parseHex4(low))
                        return false;
                    if (low < 0xDC00 || low > 0xDFFF)
                        return fail("invalid low surrogate");
                    const unsigned cp = 0x10000 +
                        ((code - 0xD800) << 10) + (low - 0xDC00);
                    appendUtf8(out, cp);
                } else if (code >= 0xDC00 && code <= 0xDFFF) {
                    return fail("lone low surrogate");
                } else {
                    appendUtf8(out, code);
                }
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseHex4(unsigned &out)
    {
        if (end - cur < 4)
            return fail("truncated \\u escape");
        out = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = *cur++;
            out <<= 4;
            if (c >= '0' && c <= '9')
                out |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                out |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                out |= static_cast<unsigned>(c - 'A' + 10);
            else
                return fail("bad hex digit in \\u escape");
        }
        return true;
    }

    static void
    appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else if (cp < 0x10000) {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(
                static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else {
            out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
            out.push_back(
                static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
            out.push_back(
                static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        }
    }

    bool
    parseNumber(Value &out)
    {
        // Validate strict JSON number syntax by hand; strtod accepts
        // more (hex, inf, leading zeros) than the grammar allows.
        const char *start = cur;
        if (cur < end && *cur == '-')
            ++cur;
        if (cur >= end || *cur < '0' || *cur > '9')
            return fail("invalid number");
        if (*cur == '0') {
            ++cur;
        } else {
            while (cur < end && *cur >= '0' && *cur <= '9')
                ++cur;
        }
        if (cur < end && *cur == '.') {
            ++cur;
            if (cur >= end || *cur < '0' || *cur > '9')
                return fail("digit required after decimal point");
            while (cur < end && *cur >= '0' && *cur <= '9')
                ++cur;
        }
        if (cur < end && (*cur == 'e' || *cur == 'E')) {
            ++cur;
            if (cur < end && (*cur == '+' || *cur == '-'))
                ++cur;
            if (cur >= end || *cur < '0' || *cur > '9')
                return fail("digit required in exponent");
            while (cur < end && *cur >= '0' && *cur <= '9')
                ++cur;
        }
        // strtod needs a NUL-terminated copy (the input buffer is
        // not). Numbers overwhelmingly fit a stack buffer; a batch
        // body carries thousands of them, so the per-number heap
        // string this used to build was measurable parse cost.
        const std::size_t len = static_cast<std::size_t>(cur - start);
        char buf[64];
        if (len < sizeof(buf)) {
            std::memcpy(buf, start, len);
            buf[len] = '\0';
            out = Value(std::strtod(buf, nullptr));
        } else {
            const std::string text(start, cur);
            out = Value(std::strtod(text.c_str(), nullptr));
        }
        return true;
    }

    bool
    parseValue(Value &out, int depth)
    {
        if (depth > maxDepth)
            return fail("nesting too deep");
        skipSpace();
        if (cur >= end)
            return fail("unexpected end of input");
        switch (*cur) {
          case 'n':
            out = Value();
            return literal("null", 4);
          case 't':
            out = Value(true);
            return literal("true", 4);
          case 'f':
            out = Value(false);
            return literal("false", 5);
          case '"': {
            std::string s;
            if (!parseString(s))
                return false;
            out = Value(std::move(s));
            return true;
          }
          case '[': {
            ++cur;
            out = Value::array();
            skipSpace();
            if (consume(']'))
                return true;
            while (true) {
                Value item;
                if (!parseValue(item, depth + 1))
                    return false;
                out.push(std::move(item));
                skipSpace();
                if (consume(']'))
                    return true;
                if (!consume(','))
                    return fail("expected ',' or ']'");
            }
          }
          case '{': {
            ++cur;
            out = Value::object();
            skipSpace();
            if (consume('}'))
                return true;
            while (true) {
                skipSpace();
                std::string key;
                if (!parseString(key))
                    return false;
                skipSpace();
                if (!consume(':'))
                    return fail("expected ':'");
                Value item;
                if (!parseValue(item, depth + 1))
                    return false;
                out.set(key, std::move(item));
                skipSpace();
                if (consume('}'))
                    return true;
                if (!consume(','))
                    return fail("expected ',' or '}'");
            }
          }
          default:
            break;
        }
        Value num;
        if (!parseNumber(num))
            return false;
        out = std::move(num);
        return true;
    }
};

void
appendEscaped(std::string &out, const std::string &s)
{
    out.push_back('"');
    for (const char ch : s) {
        const unsigned char c = static_cast<unsigned char>(ch);
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(ch);
            }
        }
    }
    out.push_back('"');
}

} // namespace

std::string
formatDouble(double v)
{
    if (std::isnan(v) || std::isinf(v)) {
        // JSON has no NaN/Inf; null is the conventional stand-in.
        return "null";
    }
    // Integral values small enough to be exact print without a
    // fraction; everything else gets the shortest decimal that
    // round-trips through strtod to the identical bits.
    if (v == std::floor(v) && std::fabs(v) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
        return buf;
    }
    char buf[40];
    for (int prec = 15; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            return buf;
    }
    return buf;
}

void
Value::dumpTo(std::string &out, bool canon) const
{
    switch (type_) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Type::Number:
        out += formatDouble(num_);
        break;
      case Type::String:
        appendEscaped(out, str_);
        break;
      case Type::Array: {
        out.push_back('[');
        bool first = true;
        for (const Value &item : arr_) {
            if (!first)
                out.push_back(',');
            first = false;
            item.dumpTo(out, canon);
        }
        out.push_back(']');
        break;
      }
      case Type::Object: {
        out.push_back('{');
        bool first = true;
        if (canon) {
            std::vector<const std::pair<std::string, Value> *> sorted;
            sorted.reserve(obj_.size());
            for (const auto &member : obj_)
                sorted.push_back(&member);
            std::sort(sorted.begin(), sorted.end(),
                      [](const auto *a, const auto *b) {
                          return a->first < b->first;
                      });
            for (const auto *member : sorted) {
                if (!first)
                    out.push_back(',');
                first = false;
                appendEscaped(out, member->first);
                out.push_back(':');
                member->second.dumpTo(out, canon);
            }
        } else {
            for (const auto &member : obj_) {
                if (!first)
                    out.push_back(',');
                first = false;
                appendEscaped(out, member.first);
                out.push_back(':');
                member.second.dumpTo(out, canon);
            }
        }
        out.push_back('}');
        break;
      }
    }
}

std::string
Value::dump() const
{
    std::string out;
    dumpTo(out, false);
    return out;
}

std::string
Value::canonical() const
{
    std::string out;
    dumpTo(out, true);
    return out;
}

bool
parse(const std::string &text, Value &out, std::string *error)
{
    Parser p{text.data(), text.data() + text.size(), text.data(), {}};
    Value result;
    if (!p.parseValue(result, 0)) {
        out = Value();
        if (error)
            *error = p.error;
        return false;
    }
    p.skipSpace();
    if (p.cur != p.end) {
        out = Value();
        if (error) {
            *error = "trailing garbage at offset " +
                     std::to_string(p.cur - p.begin);
        }
        return false;
    }
    out = std::move(result);
    return true;
}

std::uint64_t
fnv1a(const std::string &data)
{
    return fnv1a64(data);
}

} // namespace fosm::json
