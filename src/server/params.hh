/**
 * @file
 * Request-parameter parsing shared by the service endpoints (/v1/cpi,
 * /v1/iw-curve, /v1/trends) and the batch endpoint (/v1/batch), which
 * validates the same machine/options members per row. All helpers
 * reject unknown members so typos in a request fail loudly instead of
 * silently evaluating the default, and throw ServiceError(400) on any
 * violation.
 */

#ifndef FOSM_SERVER_PARAMS_HH
#define FOSM_SERVER_PARAMS_HH

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "model/first_order_model.hh"
#include "model/trends.hh"
#include "server/json.hh"
#include "server/router.hh"

namespace fosm::server {

/** Throw ServiceError(400, message). */
[[noreturn]] void badRequest(const std::string &message);

/** {"error": message} as a serialized JSON document. */
std::string errorJson(const std::string &message);

/** Reject members of object outside the allowed list. */
void requireMembers(const json::Value &object, const char *what,
                    std::initializer_list<const char *> allowed);

/** Range-checked number member with a fallback when absent. */
double numberMember(const json::Value &object, const char *name,
                    double fallback, double lo, double hi);

/** Range-checked integer member with a fallback when absent. */
std::uint32_t intMember(const json::Value &object, const char *name,
                        std::uint32_t fallback, double lo, double hi);

/** Boolean member with a fallback when absent. */
bool boolMember(const json::Value &object, const char *name,
                bool fallback);

/** The required 'workload' member, validated against the bench set. */
std::string workloadMember(const json::Value &request);

/** The optional 'machine' member over the baseline machine. */
MachineConfig machineFromJson(const json::Value &request);

/** The optional 'options' member over the paper defaults. */
ModelOptions optionsFromJson(const json::Value &request);

/** The machine block of a response, as /v1/cpi has always shaped it. */
json::Value machineToJson(const MachineConfig &machine);

/** Bounded array of range-checked integers. */
std::vector<std::uint32_t>
intArrayMember(const json::Value &request, const char *name,
               std::vector<std::uint32_t> fallback, double lo,
               double hi, std::size_t maxItems);

/** The optional 'config' member of /v1/trends. */
TrendConfig trendConfigFromJson(const json::Value &request);

} // namespace fosm::server

#endif // FOSM_SERVER_PARAMS_HH
