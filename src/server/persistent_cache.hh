/**
 * @file
 * Persistent backing tier for the response cache. The in-memory
 * sharded LRU answers hot repeats; this wrapper writes every cached
 * response through to a PersistentStore and refills LRU misses from
 * disk, so a restarted server serves bit-identical responses for
 * previously evaluated design points without re-running the model.
 *
 * Response entries live under the "r/" key prefix so the same store
 * directory can also hold workload characterizations ("c/" — see
 * experiments/characterization_store.hh) with one segment log and
 * one compaction thread between them.
 */

#ifndef FOSM_SERVER_PERSISTENT_CACHE_HH
#define FOSM_SERVER_PERSISTENT_CACHE_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "store/store.hh"

namespace fosm::server {

class PersistentResponseCache
{
  public:
    explicit PersistentResponseCache(
        std::shared_ptr<store::PersistentStore> store)
        : store_(std::move(store))
    {
    }

    /**
     * Last-resort lookup for a store miss, taking the full (r/
     * prefixed) store key. The replication layer wires this to its
     * read-repair probe: ask the key's other preference-list members
     * before falling back to recomputation. The hook is responsible
     * for writing a fetched value back to the local store.
     */
    using RepairHook =
        std::function<bool(const std::string &storeKey,
                           std::string &value)>;

    /** Wire the read-repair probe (call before serving traffic). */
    void setRepairHook(RepairHook hook) { repair_ = std::move(hook); }

    /** Disk lookup for an LRU miss. Counts a storeHit on success. */
    bool
    get(const std::string &key, std::string &value)
    {
        if (!store_)
            return false;
        if (store_->get(prefixed(key), value)) {
            storeHits_.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
        if (repair_ && repair_(prefixed(key), value)) {
            readRepairs_.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
        return false;
    }

    /** Write-through for a freshly evaluated response. */
    void
    put(const std::string &key, std::string_view value)
    {
        if (store_)
            store_->put(prefixed(key), value);
    }

    /** Responses recovered from disk instead of re-evaluated. */
    std::uint64_t
    storeHits() const
    {
        return storeHits_.load(std::memory_order_relaxed);
    }

    /** Responses recovered from a peer replica (read-repair). */
    std::uint64_t
    readRepairs() const
    {
        return readRepairs_.load(std::memory_order_relaxed);
    }

    store::StoreStats stats() const { return store_->stats(); }

    const std::shared_ptr<store::PersistentStore> &
    store() const
    {
        return store_;
    }

  private:
    static std::string
    prefixed(const std::string &key)
    {
        return "r/" + key;
    }

    std::shared_ptr<store::PersistentStore> store_;
    RepairHook repair_;
    std::atomic<std::uint64_t> storeHits_{0};
    std::atomic<std::uint64_t> readRepairs_{0};
};

} // namespace fosm::server

#endif // FOSM_SERVER_PERSISTENT_CACHE_HH
