/**
 * @file
 * Persistent backing tier for the response cache. The in-memory
 * sharded LRU answers hot repeats; this wrapper writes every cached
 * response through to a PersistentStore and refills LRU misses from
 * disk, so a restarted server serves bit-identical responses for
 * previously evaluated design points without re-running the model.
 *
 * Response entries live under the "r/" key prefix so the same store
 * directory can also hold workload characterizations ("c/" — see
 * experiments/characterization_store.hh) with one segment log and
 * one compaction thread between them.
 */

#ifndef FOSM_SERVER_PERSISTENT_CACHE_HH
#define FOSM_SERVER_PERSISTENT_CACHE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "store/store.hh"

namespace fosm::server {

class PersistentResponseCache
{
  public:
    explicit PersistentResponseCache(
        std::shared_ptr<store::PersistentStore> store)
        : store_(std::move(store))
    {
    }

    /** Disk lookup for an LRU miss. Counts a storeHit on success. */
    bool
    get(const std::string &key, std::string &value)
    {
        if (!store_ || !store_->get(prefixed(key), value))
            return false;
        storeHits_.fetch_add(1, std::memory_order_relaxed);
        return true;
    }

    /** Write-through for a freshly evaluated response. */
    void
    put(const std::string &key, std::string_view value)
    {
        if (store_)
            store_->put(prefixed(key), value);
    }

    /** Responses recovered from disk instead of re-evaluated. */
    std::uint64_t
    storeHits() const
    {
        return storeHits_.load(std::memory_order_relaxed);
    }

    store::StoreStats stats() const { return store_->stats(); }

    const std::shared_ptr<store::PersistentStore> &
    store() const
    {
        return store_;
    }

  private:
    static std::string
    prefixed(const std::string &key)
    {
        return "r/" + key;
    }

    std::shared_ptr<store::PersistentStore> store_;
    std::atomic<std::uint64_t> storeHits_{0};
};

} // namespace fosm::server

#endif // FOSM_SERVER_PERSISTENT_CACHE_HH
