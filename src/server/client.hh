/**
 * @file
 * Minimal blocking HTTP/1.1 client over a keep-alive connection.
 * Exists for the load generator and the golden endpoint tests — it
 * speaks exactly the subset the server implements (Content-Length
 * framing, no chunked encoding) and exposes the raw status line and
 * headers so tests can pin the wire format.
 */

#ifndef FOSM_SERVER_CLIENT_HH
#define FOSM_SERVER_CLIENT_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "server/http.hh"

namespace fosm::server {

/** A response as received on the wire. */
struct ClientResponse
{
    int status = 0;
    std::string reason;
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;

    /** First header with this (lowercase) name, or empty. */
    const std::string &header(const std::string &name) const;

    /** Whether the server will keep the connection open. */
    bool keepAlive() const;
};

/**
 * Incrementally parse one HTTP/1.1 response from the front of data
 * (Content-Length framing only — the subset this stack speaks).
 * Returns Incomplete until the full response is buffered; on Ok
 * fills out and sets consumed so pipelined remainders stay put.
 * Shared by the blocking HttpClient and the gateway's async
 * upstream calls, which drive it from a poll loop.
 */
ParseStatus parseHttpResponse(const std::string &data,
                              ClientResponse &out,
                              std::size_t &consumed);

/**
 * Serialize one request with Host (and, for non-empty bodies, JSON
 * Content-Type and Content-Length) headers — the exact wire form
 * every client in this repo sends.
 */
std::string serializeRequest(const std::string &method,
                             const std::string &target,
                             const std::string &host,
                             const std::string &body);

/**
 * Same, with extra headers appended verbatim after Host — used to
 * forward X-Fosm-Deadline-Ms and other per-request metadata. An
 * extra Content-Type header suppresses the JSON default (the
 * gateway's binary batch hops send application/x-fosm-batch).
 */
std::string serializeRequest(
    const std::string &method, const std::string &target,
    const std::string &host, const std::string &body,
    const std::vector<std::pair<std::string, std::string>>
        &extraHeaders);

/**
 * One TCP connection to the server. request() sends and waits for
 * the full response (closed-loop). Reconnects transparently when the
 * server closed the connection (e.g. after a Connection: close
 * response).
 */
class HttpClient
{
  public:
    HttpClient(std::string host, std::uint16_t port);
    ~HttpClient();

    HttpClient(const HttpClient &) = delete;
    HttpClient &operator=(const HttpClient &) = delete;

    /**
     * Issue one request and block for the response. Returns false on
     * transport failure (connect refused, peer reset mid-response);
     * out is valid only on true.
     */
    bool request(const std::string &method, const std::string &path,
                 const std::string &body, ClientResponse &out);

    /** Same, with extra request headers (e.g. the deadline). */
    bool request(const std::string &method, const std::string &path,
                 const std::string &body,
                 const std::vector<std::pair<std::string, std::string>>
                     &extraHeaders,
                 ClientResponse &out);

    /**
     * Bound send/recv waits (SO_SNDTIMEO/SO_RCVTIMEO) on current and
     * future connections; 0 restores blocking forever. A request that
     * trips the timeout fails with timedOut() set and is NOT retried
     * on a fresh connection — the retry would double the wait.
     */
    void setTimeoutMs(int ms);

    /** Whether the last failed request() hit the socket timeout. */
    bool timedOut() const { return timedOut_; }

    /** Whether a connection is currently open. */
    bool connected() const { return fd_ >= 0; }

    /** Force the next request onto a fresh connection. */
    void disconnect();

  private:
    bool connect();
    bool sendAll(const std::string &data);
    bool readResponse(ClientResponse &out);

    void applyTimeout();

    std::string host_;
    std::uint16_t port_;
    int fd_ = -1;
    int timeoutMs_ = 0;
    bool timedOut_ = false;
    std::string buffer_; ///< bytes read past the previous response
};

} // namespace fosm::server

#endif // FOSM_SERVER_CLIENT_HH
