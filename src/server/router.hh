/**
 * @file
 * Request router: exact method+path dispatch with the HTTP error
 * conventions handled in one place (404 unknown path, 405 wrong
 * method with an Allow header, 400 for unparsable JSON bodies).
 * JSON endpoints register a JsonHandler and never see raw HTTP.
 */

#ifndef FOSM_SERVER_ROUTER_HH
#define FOSM_SERVER_ROUTER_HH

#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "server/http.hh"
#include "server/json.hh"

namespace fosm::server {

/**
 * Thrown by JSON handlers to produce a clean HTTP error response
 * ({"error": message} with the given status) instead of a 500.
 */
class ServiceError : public std::runtime_error
{
  public:
    ServiceError(int status, const std::string &message)
        : std::runtime_error(message), status_(status)
    {
    }

    int status() const { return status_; }

  private:
    int status_;
};

/** Routes requests to handlers registered per method+path. */
class Router
{
  public:
    using RawHandler =
        std::function<HttpResponse(const HttpRequest &)>;
    /** Parsed request body in, response document out. */
    using JsonHandler =
        std::function<json::Value(const json::Value &)>;

    /** Register a raw handler (used by /metrics, /healthz). */
    void add(const std::string &method, const std::string &path,
             RawHandler handler);

    /**
     * Register a JSON endpoint: the body is parsed (400 on failure),
     * the handler's return value serialized with Content-Type
     * application/json, and ServiceError mapped to its status.
     */
    void addJson(const std::string &method, const std::string &path,
                 JsonHandler handler);

    /** Dispatch one request. */
    HttpResponse route(const HttpRequest &request) const;

    /** Registered paths (for bounded metric label sets). */
    std::vector<std::string> paths() const;

  private:
    struct Route
    {
        std::string method;
        std::string path;
        RawHandler handler;
    };

    std::vector<Route> routes_;
};

} // namespace fosm::server

#endif // FOSM_SERVER_ROUTER_HH
