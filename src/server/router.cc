#include "server/router.hh"

#include <algorithm>

namespace fosm::server {

namespace {

std::string
errorBody(const std::string &message)
{
    json::Value v = json::Value::object();
    v.set("error", message);
    return v.dump();
}

} // namespace

void
Router::add(const std::string &method, const std::string &path,
            RawHandler handler)
{
    routes_.push_back(Route{method, path, std::move(handler)});
}

void
Router::addJson(const std::string &method, const std::string &path,
                JsonHandler handler)
{
    add(method, path,
        [handler = std::move(handler)](const HttpRequest &request)
            -> HttpResponse {
            json::Value body = json::Value::object();
            if (!request.body.empty()) {
                std::string error;
                if (!json::parse(request.body, body, &error)) {
                    return HttpResponse::json(
                        400, errorBody("invalid JSON body: " + error));
                }
            }
            try {
                return HttpResponse::json(200,
                                          handler(body).dump());
            } catch (const ServiceError &e) {
                return HttpResponse::json(e.status(),
                                          errorBody(e.what()));
            }
        });
}

HttpResponse
Router::route(const HttpRequest &request) const
{
    const std::string path = request.path();
    bool pathSeen = false;
    std::string allow;
    for (const Route &route : routes_) {
        if (route.path != path)
            continue;
        if (route.method == request.method)
            return route.handler(request);
        pathSeen = true;
        if (!allow.empty())
            allow += ", ";
        allow += route.method;
    }
    if (pathSeen) {
        HttpResponse r = HttpResponse::json(
            405, errorBody("method not allowed for " + path));
        r.setHeader("Allow", allow);
        return r;
    }
    return HttpResponse::json(404,
                              errorBody("unknown path: " + path));
}

std::vector<std::string>
Router::paths() const
{
    std::vector<std::string> out;
    for (const Route &route : routes_) {
        if (std::find(out.begin(), out.end(), route.path) ==
            out.end()) {
            out.push_back(route.path);
        }
    }
    return out;
}

} // namespace fosm::server
