/**
 * @file
 * Sharded LRU cache for evaluated design points. The model answers a
 * design question in microseconds, but a served workload repeats the
 * same questions (dashboards polling a sweep, several users exploring
 * the same region of the design space), so memoizing whole responses
 * keyed by a canonical request digest turns the common case into a
 * hash lookup. Sharding by key hash keeps lock hold times short when
 * many worker threads hit the cache at once.
 */

#ifndef FOSM_SERVER_LRU_CACHE_HH
#define FOSM_SERVER_LRU_CACHE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "server/json.hh"

namespace fosm::server {

/**
 * Thread-safe LRU map from string keys to values, split into
 * independently locked shards. Capacity 0 disables caching entirely
 * (every get misses, put is a no-op), which gives the serving layer a
 * uniform "cache off" mode for benchmarking.
 */
template <typename Value>
class ShardedLruCache
{
  public:
    /**
     * ttlSeconds > 0 bounds every entry's age: a hit older than the
     * TTL is erased and reported as a miss, so the caller refreshes
     * it. 0 keeps the original never-expiring pure-LRU behavior —
     * model results are deterministic, so expiry is about bounding
     * staleness across schema-constant changes and memory held by
     * one-off sweeps, not correctness (fosm-serve --cache-ttl-s).
     */
    explicit ShardedLruCache(std::size_t capacity,
                             std::size_t shards = 8,
                             double ttlSeconds = 0.0)
        : capacity_(capacity),
          ttl_(std::chrono::duration_cast<
               std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(
                  ttlSeconds > 0.0 ? ttlSeconds : 0.0)))
    {
        if (shards == 0)
            shards = 1;
        // Spread the total capacity across shards, rounding up so the
        // configured total is a floor, not a ceiling.
        const std::size_t per =
            capacity == 0 ? 0 : (capacity + shards - 1) / shards;
        shards_.reserve(shards);
        for (std::size_t i = 0; i < shards; ++i)
            shards_.push_back(std::make_unique<Shard>(per));
    }

    /**
     * Look up key; on hit, copies the value and marks it MRU. An
     * entry past the TTL counts as a miss and is dropped.
     */
    bool
    get(const std::string &key, Value &out)
    {
        if (capacity_ == 0) {
            misses_.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        Shard &shard = shardFor(key);
        std::lock_guard<std::mutex> lock(shard.mutex);
        const auto it = shard.map.find(key);
        if (it == shard.map.end()) {
            misses_.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        if (ttl_.count() > 0 &&
            std::chrono::steady_clock::now() -
                    it->second->second.storedAt >
                ttl_) {
            shard.order.erase(it->second);
            shard.map.erase(it);
            expirations_.fetch_add(1, std::memory_order_relaxed);
            misses_.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        shard.order.splice(shard.order.begin(), shard.order,
                           it->second);
        out = it->second->second.value;
        hits_.fetch_add(1, std::memory_order_relaxed);
        return true;
    }

    /** Insert or refresh key, evicting the shard's LRU tail if full. */
    void
    put(const std::string &key, Value value)
    {
        if (capacity_ == 0)
            return;
        const auto now = std::chrono::steady_clock::now();
        Shard &shard = shardFor(key);
        std::lock_guard<std::mutex> lock(shard.mutex);
        const auto it = shard.map.find(key);
        if (it != shard.map.end()) {
            it->second->second.value = std::move(value);
            it->second->second.storedAt = now;
            shard.order.splice(shard.order.begin(), shard.order,
                               it->second);
            return;
        }
        shard.order.emplace_front(
            key, Entry{std::move(value), now});
        shard.map[key] = shard.order.begin();
        if (shard.map.size() > shard.capacity) {
            shard.map.erase(shard.order.back().first);
            shard.order.pop_back();
            evictions_.fetch_add(1, std::memory_order_relaxed);
        }
    }

    /** Total entries across shards (racy snapshot, for metrics). */
    std::size_t
    size() const
    {
        std::size_t total = 0;
        for (const auto &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard->mutex);
            total += shard->map.size();
        }
        return total;
    }

    void
    clear()
    {
        for (const auto &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard->mutex);
            shard->map.clear();
            shard->order.clear();
        }
    }

    std::uint64_t hits() const { return hits_.load(); }
    std::uint64_t misses() const { return misses_.load(); }
    std::uint64_t evictions() const { return evictions_.load(); }
    std::uint64_t expirations() const { return expirations_.load(); }
    std::size_t capacity() const { return capacity_; }
    std::size_t shardCount() const { return shards_.size(); }
    /** Configured TTL in seconds; 0 = entries never expire. */
    double
    ttlSeconds() const
    {
        return std::chrono::duration<double>(ttl_).count();
    }

    /** Hit fraction over the cache's lifetime (0 when unused). */
    double
    hitRate() const
    {
        const std::uint64_t h = hits();
        const std::uint64_t total = h + misses();
        return total == 0 ? 0.0
                          : static_cast<double>(h) /
                                static_cast<double>(total);
    }

  private:
    struct Entry
    {
        Value value;
        std::chrono::steady_clock::time_point storedAt;
    };

    struct Shard
    {
        explicit Shard(std::size_t cap) : capacity(cap) {}
        const std::size_t capacity;
        mutable std::mutex mutex;
        std::list<std::pair<std::string, Entry>> order; ///< front=MRU
        std::unordered_map<
            std::string,
            typename std::list<std::pair<std::string, Entry>>::iterator>
            map;
    };

    Shard &
    shardFor(const std::string &key)
    {
        return *shards_[json::fnv1a(key) % shards_.size()];
    }

    const std::size_t capacity_;
    const std::chrono::steady_clock::duration ttl_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> evictions_{0};
    std::atomic<std::uint64_t> expirations_{0};
};

} // namespace fosm::server

#endif // FOSM_SERVER_LRU_CACHE_HH
