#include "server/client.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

namespace fosm::server {

namespace {

constexpr std::size_t maxResponseHeaderBytes = 16 * 1024;

std::string
toLower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

} // namespace

const std::string &
ClientResponse::header(const std::string &name) const
{
    static const std::string empty;
    for (const auto &h : headers)
        if (h.first == name)
            return h.second;
    return empty;
}

bool
ClientResponse::keepAlive() const
{
    return toLower(header("connection")) != "close";
}

ParseStatus
parseHttpResponse(const std::string &data, ClientResponse &out,
                  std::size_t &consumed)
{
    const std::size_t headerEnd = data.find("\r\n\r\n");
    if (headerEnd == std::string::npos) {
        return data.size() > maxResponseHeaderBytes
                   ? ParseStatus::Bad
                   : ParseStatus::Incomplete;
    }
    if (headerEnd > maxResponseHeaderBytes)
        return ParseStatus::Bad;

    out = ClientResponse{};

    // Status line: HTTP/1.1 NNN Reason.
    const std::size_t lineEnd = data.find("\r\n");
    const std::string line = data.substr(0, lineEnd);
    const std::size_t sp1 = line.find(' ');
    if (sp1 == std::string::npos || line.rfind("HTTP/", 0) != 0)
        return ParseStatus::Bad;
    const std::size_t sp2 = line.find(' ', sp1 + 1);
    out.status = std::atoi(line.substr(sp1 + 1).c_str());
    if (out.status < 100 || out.status > 599)
        return ParseStatus::Bad;
    if (sp2 != std::string::npos)
        out.reason = line.substr(sp2 + 1);

    std::size_t pos = lineEnd + 2;
    while (pos < headerEnd) {
        const std::size_t eol = data.find("\r\n", pos);
        const std::string field = data.substr(pos, eol - pos);
        pos = eol + 2;
        const std::size_t colon = field.find(':');
        if (colon == std::string::npos)
            continue;
        std::string value = field.substr(colon + 1);
        while (!value.empty() && value.front() == ' ')
            value.erase(value.begin());
        out.headers.emplace_back(toLower(field.substr(0, colon)),
                                 value);
    }

    const std::size_t bodyLen = static_cast<std::size_t>(
        std::strtoull(out.header("content-length").c_str(), nullptr,
                      10));
    const std::size_t total = headerEnd + 4 + bodyLen;
    if (data.size() < total)
        return ParseStatus::Incomplete;
    out.body = data.substr(headerEnd + 4, bodyLen);
    consumed = total;
    return ParseStatus::Ok;
}

std::string
serializeRequest(const std::string &method,
                 const std::string &target, const std::string &host,
                 const std::string &body)
{
    return serializeRequest(method, target, host, body, {});
}

std::string
serializeRequest(const std::string &method,
                 const std::string &target, const std::string &host,
                 const std::string &body,
                 const std::vector<std::pair<std::string, std::string>>
                     &extraHeaders)
{
    std::string wire;
    wire.reserve(128 + body.size());
    wire += method;
    wire += " ";
    wire += target;
    wire += " HTTP/1.1\r\nHost: ";
    wire += host;
    wire += "\r\n";
    // An extra Content-Type (the gateway's binary batch hops) replaces
    // the JSON default instead of duplicating the header.
    bool haveContentType = false;
    for (const auto &h : extraHeaders) {
        std::string lower = h.first;
        for (char &c : lower)
            c = static_cast<char>(std::tolower(
                static_cast<unsigned char>(c)));
        if (lower == "content-type")
            haveContentType = true;
        wire += h.first;
        wire += ": ";
        wire += h.second;
        wire += "\r\n";
    }
    if (!body.empty()) {
        if (!haveContentType)
            wire += "Content-Type: application/json\r\n";
        wire += "Content-Length: ";
        wire += std::to_string(body.size());
        wire += "\r\n";
    }
    wire += "\r\n";
    wire += body;
    return wire;
}

HttpClient::HttpClient(std::string host, std::uint16_t port)
    : host_(std::move(host)), port_(port)
{
}

HttpClient::~HttpClient()
{
    disconnect();
}

void
HttpClient::disconnect()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buffer_.clear();
}

bool
HttpClient::connect()
{
    disconnect();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0)
        return false;
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port_);
    if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        disconnect();
        return false;
    }
    applyTimeout();
    return true;
}

void
HttpClient::setTimeoutMs(int ms)
{
    timeoutMs_ = ms > 0 ? ms : 0;
    applyTimeout();
}

void
HttpClient::applyTimeout()
{
    if (fd_ < 0)
        return;
    timeval tv{};
    tv.tv_sec = timeoutMs_ / 1000;
    tv.tv_usec = (timeoutMs_ % 1000) * 1000;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

bool
HttpClient::sendAll(const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::send(fd_, data.data() + off,
                                 data.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                timedOut_ = true;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

bool
HttpClient::readResponse(ClientResponse &out)
{
    out = ClientResponse{};
    std::size_t consumed = 0;
    ParseStatus st;
    while ((st = parseHttpResponse(buffer_, out, consumed)) ==
           ParseStatus::Incomplete) {
        char buf[16 * 1024];
        const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
                timedOut_ = true;
            return false;
        }
        buffer_.append(buf, static_cast<std::size_t>(n));
    }
    if (st != ParseStatus::Ok)
        return false;
    buffer_.erase(0, consumed);

    if (!out.keepAlive())
        disconnect();
    return true;
}

bool
HttpClient::request(const std::string &method,
                    const std::string &path, const std::string &body,
                    ClientResponse &out)
{
    return request(method, path, body, {}, out);
}

bool
HttpClient::request(const std::string &method,
                    const std::string &path, const std::string &body,
                    const std::vector<std::pair<std::string,
                                                std::string>>
                        &extraHeaders,
                    ClientResponse &out)
{
    const std::string wire =
        serializeRequest(method, path, host_, body, extraHeaders);

    // One transparent reconnect: the server may have closed an idle
    // keep-alive connection between requests. A socket timeout does
    // not get that retry — repeating it would double the wait.
    timedOut_ = false;
    for (int attempt = 0; attempt < 2; ++attempt) {
        if (fd_ < 0 && !connect())
            return false;
        if (!sendAll(wire)) {
            disconnect();
            if (timedOut_)
                return false;
            continue;
        }
        if (readResponse(out))
            return true;
        disconnect();
        if (timedOut_)
            return false;
    }
    return false;
}

} // namespace fosm::server
