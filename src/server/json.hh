/**
 * @file
 * Minimal JSON value, parser and serializer for the serving layer.
 * Dependency-free by design (the repo bakes in no third-party JSON
 * library) and tuned for the service's needs:
 *
 *  - doubles round-trip exactly: the serializer emits the shortest
 *    decimal form that strtod() parses back to the same bits, so CPI
 *    numbers computed by the model survive an HTTP round trip
 *    bit-identically;
 *  - objects preserve insertion order for readable responses, and a
 *    canonical form (keys sorted recursively, compact separators) is
 *    available for cache-key digests;
 *  - the parser is strict (no trailing garbage, no bare values with
 *    leading zeros, depth-limited) so malformed requests are rejected
 *    with a clear error instead of being half-understood.
 */

#ifndef FOSM_SERVER_JSON_HH
#define FOSM_SERVER_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace fosm::json {

/** One JSON value; a tree of these represents a document. */
class Value
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Value() = default;
    Value(bool b) : type_(Type::Bool), bool_(b) {}
    Value(double n) : type_(Type::Number), num_(n) {}
    Value(int n) : type_(Type::Number), num_(n) {}
    Value(std::int64_t n)
        : type_(Type::Number), num_(static_cast<double>(n)) {}
    Value(std::uint64_t n)
        : type_(Type::Number), num_(static_cast<double>(n)) {}
    Value(std::uint32_t n) : type_(Type::Number), num_(n) {}
    Value(const char *s) : type_(Type::String), str_(s) {}
    Value(std::string s) : type_(Type::String), str_(std::move(s)) {}

    static Value array() { Value v; v.type_ = Type::Array; return v; }
    static Value object() { Value v; v.type_ = Type::Object; return v; }

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    // -- Building --------------------------------------------------

    /** Append to an array (converts a Null value into an array). */
    Value &
    push(Value v)
    {
        type_ = Type::Array;
        arr_.push_back(std::move(v));
        return arr_.back();
    }

    /**
     * Set (or overwrite) an object member, preserving first-insertion
     * order. Converts a Null value into an object.
     */
    Value &
    set(const std::string &key, Value v)
    {
        type_ = Type::Object;
        for (auto &member : obj_) {
            if (member.first == key) {
                member.second = std::move(v);
                return member.second;
            }
        }
        obj_.emplace_back(key, std::move(v));
        return obj_.back().second;
    }

    // -- Access ----------------------------------------------------

    /** Object member lookup; nullptr when absent or not an object. */
    const Value *
    find(const std::string &key) const
    {
        if (type_ != Type::Object)
            return nullptr;
        for (const auto &member : obj_)
            if (member.first == key)
                return &member.second;
        return nullptr;
    }

    bool asBool(bool fallback = false) const
    {
        return isBool() ? bool_ : fallback;
    }

    double asDouble(double fallback = 0.0) const
    {
        return isNumber() ? num_ : fallback;
    }

    std::int64_t asInt(std::int64_t fallback = 0) const
    {
        return isNumber() ? static_cast<std::int64_t>(num_) : fallback;
    }

    const std::string &
    asString() const
    {
        static const std::string empty;
        return isString() ? str_ : empty;
    }

    const std::vector<Value> &items() const { return arr_; }

    const std::vector<std::pair<std::string, Value>> &
    members() const
    {
        return obj_;
    }

    std::size_t
    size() const
    {
        if (isArray())
            return arr_.size();
        if (isObject())
            return obj_.size();
        return 0;
    }

    // -- Serialization ---------------------------------------------

    /** Compact serialization, members in insertion order. */
    std::string dump() const;

    /**
     * Canonical serialization: compact, object keys sorted
     * recursively. Two semantically equal documents produce the same
     * bytes, making this the right input for cache-key digests.
     */
    std::string canonical() const;

    /**
     * Append-into-buffer variants: serialize into a caller-owned
     * string without clearing it. The batch path serializes thousands
     * of row bodies per request; appending into one arena-style
     * buffer (cleared and reused between rows, capacity retained)
     * replaces a fresh heap allocation per row.
     */
    void dumpTo(std::string &out) const { dumpTo(out, false); }
    void canonicalTo(std::string &out) const { dumpTo(out, true); }

  private:
    void dumpTo(std::string &out, bool canonical) const;

    Type type_ = Type::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<Value> arr_;
    std::vector<std::pair<std::string, Value>> obj_;
};

/**
 * Parse a complete JSON document. Returns true and fills out on
 * success; returns false and describes the problem (with a byte
 * offset) in error otherwise. out is left Null on failure.
 */
bool parse(const std::string &text, Value &out, std::string *error);

/** Serialize one double as the shortest exact round-trip decimal. */
std::string formatDouble(double v);

/** FNV-1a 64-bit hash, used to pick cache shards and digest keys. */
std::uint64_t fnv1a(const std::string &data);

} // namespace fosm::json

#endif // FOSM_SERVER_JSON_HH
