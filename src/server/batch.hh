/**
 * @file
 * The /v1/batch request/response shapes: many design points of one
 * workload per HTTP request, amortizing the HTTP parse and the
 * (seconds-to-build, per-workload) characterization lookup across all
 * of them.
 *
 * JSON request:
 *   { "workload": "...",
 *     "machine":  { shared members ... },        // optional
 *     "options":  { shared members ... },        // optional
 *     "rows": [ { per-row machine deltas }, ... ] }
 *
 * Each row is a flat object of machine members layered over the
 * shared "machine" block; row i is semantically the /v1/cpi request
 * { workload, machine: shared (+) row, options }. mergedRowBody()
 * constructs exactly that body, so a row's response-cache digest is
 * the single-request digest by construction and the two paths share
 * cache entries.
 *
 * The JSON response is columnar: per-component CPI arrays indexed by
 * row, with null (and a message in "errors") at rows that failed
 * validation or were shed at the deadline.
 *
 * The binary wire format (Content-Type application/x-fosm-batch,
 * store/codec.hh conventions: little-endian fixed-width fields,
 * length-prefixed bytes) is what the gateway speaks to backends so a
 * split batch doesn't pay JSON re-serialization per hop. Rows whose
 * members are the nine known machine fields with u32-exact values —
 * in practice all of them — travel as a presence mask + packed u32s;
 * anything else falls back to embedded JSON so error semantics match
 * the JSON path exactly. Doubles in the response travel as raw bit
 * images, preserving the bit-identity contract.
 */

#ifndef FOSM_SERVER_BATCH_HH
#define FOSM_SERVER_BATCH_HH

#include <string>
#include <string_view>
#include <vector>

#include "server/json.hh"

namespace fosm::server::batch {

/** Content-Type negotiating the binary frames below. */
inline constexpr const char *contentType =
    "application/x-fosm-batch";

/** Hard per-request row cap (413 beyond). */
inline constexpr std::size_t maxRows = 4096;

/** Parsed and shape-validated top level of a batch request. */
struct Request
{
    std::string workload;
    /** Shared machine block; Null when absent. */
    json::Value sharedMachine;
    /** Shared options block; Null when absent. */
    json::Value sharedOptions;
    /** Per-row deltas, exactly as received (not yet validated). */
    std::vector<json::Value> rows;
};

/**
 * Validate the top-level shape of a batch body and split it into its
 * parts. Throws ServiceError: 400 for a non-object body, unknown
 * members, a missing workload, or a missing/empty/non-array "rows";
 * 413 when rows exceed maxRows. Individual rows are NOT validated
 * here — bad rows become per-row error slots, not request failures.
 */
Request parseRequest(const json::Value &body);

/**
 * The /v1/cpi-equivalent body for one row: workload + (shared
 * machine layered with the row's deltas) + shared options. Throws
 * ServiceError(400) when the row is not an object. The "machine"
 * member is omitted when the request has no shared block and the row
 * no deltas, matching what a bare single request would carry — so
 * digests line up with /v1/cpi exactly.
 */
json::Value mergedRowBody(const Request &request,
                          const json::Value &row);

/**
 * Encode a batch request for a backend hop. Rows are passed as
 * pointers so the gateway can encode a shard's subset of a client
 * batch without copying the Values.
 */
std::string
encodeRequest(const std::string &workload,
              const json::Value *sharedMachine,
              const json::Value *sharedOptions,
              const std::vector<const json::Value *> &rows);

/**
 * Decode a binary batch request into the equivalent JSON body (the
 * exact Value the JSON path would have parsed, so everything
 * downstream — validation, digests, errors — is shared). Returns
 * false with a diagnostic on malformed or version-mismatched frames.
 */
bool decodeRequest(std::string_view wire, json::Value &out,
                   std::string *error);

/**
 * Columnar batch result. Arrays are indexed by row; error rows carry
 * NaN in every numeric column (serialized as null) and a non-empty
 * message in errors.
 */
struct Result
{
    std::string workload;
    std::vector<double> ideal, brmisp, icacheL1, icacheL2,
        dcacheLong, dtlb, total, ipc;
    std::vector<std::string> errors;

    std::size_t rows() const { return errors.size(); }

    /** Append one evaluated row. */
    void pushRow(double ideal, double brmisp, double icacheL1,
                 double icacheL2, double dcacheLong, double dtlb,
                 double total, double ipc);

    /** Append one failed row. */
    void pushError(std::string message);
};

/** The columnar JSON response document. */
json::Value toJson(const Result &result);

/** Binary response frame for the gateway hop. */
std::string encodeResponse(const Result &result);

/** Inverse of encodeResponse; false + diagnostic on bad frames. */
bool decodeResponse(std::string_view wire, Result &out,
                    std::string *error);

} // namespace fosm::server::batch

#endif // FOSM_SERVER_BATCH_HH
