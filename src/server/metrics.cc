#include "server/metrics.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "server/json.hh"

namespace fosm::server {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1)
{
    fosm_assert(std::is_sorted(bounds_.begin(), bounds_.end()),
                "histogram bounds must be sorted");
}

std::vector<double>
Histogram::latencyBounds()
{
    return {50e-6, 100e-6, 250e-6, 500e-6, 1e-3, 2.5e-3, 5e-3,
            10e-3, 25e-3,  50e-3,  100e-3, 250e-3, 500e-3, 1.0, 2.5};
}

void
Histogram::observe(double seconds)
{
    const auto it =
        std::lower_bound(bounds_.begin(), bounds_.end(), seconds);
    buckets_[static_cast<std::size_t>(it - bounds_.begin())]
        .fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sumNanos_.fetch_add(
        static_cast<std::uint64_t>(std::max(0.0, seconds) * 1e9),
        std::memory_order_relaxed);
}

std::uint64_t
Histogram::cumulativeCount(std::size_t i) const
{
    std::uint64_t total = 0;
    for (std::size_t b = 0; b <= i && b < buckets_.size(); ++b)
        total += buckets_[b].load(std::memory_order_relaxed);
    return total;
}

double
Histogram::quantile(double q) const
{
    const std::uint64_t n = count();
    if (n == 0)
        return 0.0;
    const double target = q * static_cast<double>(n);
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
        const std::uint64_t in =
            buckets_[b].load(std::memory_order_relaxed);
        if (static_cast<double>(cum + in) >= target && in > 0) {
            const double lo = b == 0 ? 0.0 : bounds_[b - 1];
            const double hi = b < bounds_.size()
                                  ? bounds_[b]
                                  : bounds_.empty()
                                        ? 0.0
                                        : bounds_.back() * 2.0;
            const double frac =
                (target - static_cast<double>(cum)) /
                static_cast<double>(in);
            return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
        }
        cum += in;
    }
    return bounds_.empty() ? 0.0 : bounds_.back();
}

MetricsRegistry::Family &
MetricsRegistry::familyFor(const std::string &name,
                           const std::string &help,
                           const std::string &type)
{
    for (Family &family : families_) {
        if (family.name == name) {
            fosm_assert(family.type == type, "metric ", name,
                        " re-registered with type ", type);
            return family;
        }
    }
    families_.push_back(Family{name, help, type, {}});
    return families_.back();
}

MetricsRegistry::Metric *
MetricsRegistry::findMetric(Family &family, const std::string &labels)
{
    for (Metric &metric : family.metrics)
        if (metric.labels == labels)
            return &metric;
    return nullptr;
}

Counter &
MetricsRegistry::counter(const std::string &name,
                         const std::string &help,
                         const std::string &labels)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Family &family = familyFor(name, help, "counter");
    if (Metric *existing = findMetric(family, labels))
        return *existing->counter;
    family.metrics.push_back(Metric{labels,
                                    std::make_unique<Counter>(),
                                    nullptr, nullptr, nullptr});
    return *family.metrics.back().counter;
}

Gauge &
MetricsRegistry::gauge(const std::string &name,
                       const std::string &help,
                       const std::string &labels)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Family &family = familyFor(name, help, "gauge");
    if (Metric *existing = findMetric(family, labels))
        return *existing->gauge;
    family.metrics.push_back(Metric{labels, nullptr,
                                    std::make_unique<Gauge>(),
                                    nullptr, nullptr});
    return *family.metrics.back().gauge;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           const std::string &help,
                           const std::string &labels,
                           std::vector<double> bounds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Family &family = familyFor(name, help, "histogram");
    if (Metric *existing = findMetric(family, labels))
        return *existing->histogram;
    family.metrics.push_back(
        Metric{labels, nullptr, nullptr,
               std::make_unique<Histogram>(std::move(bounds)),
               nullptr});
    return *family.metrics.back().histogram;
}

void
MetricsRegistry::addCallbackGauge(const std::string &name,
                                  const std::string &help,
                                  std::function<double()> sample,
                                  const std::string &labels)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Family &family = familyFor(name, help, "gauge");
    if (Metric *existing = findMetric(family, labels)) {
        existing->sample = std::move(sample);
        return;
    }
    family.metrics.push_back(
        Metric{labels, nullptr, nullptr, nullptr, std::move(sample)});
}

namespace {

/** "name" or "name{labels}" with an optional extra label appended. */
std::string
seriesName(const std::string &name, const std::string &labels,
           const std::string &extra = "")
{
    std::string out = name;
    if (!labels.empty() || !extra.empty()) {
        out.push_back('{');
        out += labels;
        if (!labels.empty() && !extra.empty())
            out.push_back(',');
        out += extra;
        out.push_back('}');
    }
    return out;
}

} // namespace

std::string
MetricsRegistry::renderPrometheus() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out;
    out.reserve(4096);
    for (const Family &family : families_) {
        out += "# HELP " + family.name + " " + family.help + "\n";
        out += "# TYPE " + family.name + " " + family.type + "\n";
        for (const Metric &metric : family.metrics) {
            if (metric.counter) {
                out += seriesName(family.name, metric.labels) + " " +
                       std::to_string(metric.counter->value()) + "\n";
            } else if (metric.gauge) {
                out += seriesName(family.name, metric.labels) + " " +
                       std::to_string(metric.gauge->value()) + "\n";
            } else if (metric.sample) {
                out += seriesName(family.name, metric.labels) + " " +
                       json::formatDouble(metric.sample()) + "\n";
            } else if (metric.histogram) {
                const Histogram &h = *metric.histogram;
                for (std::size_t b = 0; b < h.bounds().size(); ++b) {
                    out += seriesName(
                               family.name + "_bucket", metric.labels,
                               "le=\"" +
                                   json::formatDouble(h.bounds()[b]) +
                                   "\"") +
                           " " +
                           std::to_string(h.cumulativeCount(b)) +
                           "\n";
                }
                out += seriesName(family.name + "_bucket",
                                  metric.labels, "le=\"+Inf\"") +
                       " " + std::to_string(h.count()) + "\n";
                out += seriesName(family.name + "_sum",
                                  metric.labels) +
                       " " + json::formatDouble(h.sumSeconds()) + "\n";
                out += seriesName(family.name + "_count",
                                  metric.labels) +
                       " " + std::to_string(h.count()) + "\n";
            }
        }
    }
    return out;
}

} // namespace fosm::server
