#include "server/trend_studies.hh"

#include "common/hash.hh"
#include "common/thread_pool.hh"
#include "common/version.hh"
#include "opt/planner.hh"
#include "store/codec.hh"

namespace fosm::server {

namespace {

/**
 * Digest of everything a row depends on. Doubles are hashed by bit
 * image: memoization must distinguish any inputs the computation
 * would, and exact-bit identity is the only equality the model's
 * floating-point outputs respect.
 */
void
updateConfig(Fnv1a &h, const TrendConfig &config)
{
    for (const double v :
         {config.alpha, config.beta, config.avgLatency,
          config.branchFraction, config.mispredictRate,
          config.totalLogicPs, config.flipFlopPs}) {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        __builtin_memcpy(&bits, &v, sizeof(bits));
        h.updateInt(bits);
    }
}

std::uint64_t
depthKey(std::uint32_t width,
         const std::vector<std::uint32_t> &depths,
         const TrendConfig &config)
{
    Fnv1a h;
    h.update("depth");
    h.updateInt(width);
    h.updateInt(static_cast<std::uint64_t>(depths.size()));
    for (const std::uint32_t d : depths)
        h.updateInt(d);
    updateConfig(h, config);
    return h.digest();
}

std::uint64_t
widthKey(std::uint32_t width, const std::vector<double> &fractions,
         const TrendConfig &config)
{
    Fnv1a h;
    h.update("width");
    h.updateInt(width);
    h.updateInt(static_cast<std::uint64_t>(fractions.size()));
    for (const double f : fractions) {
        std::uint64_t bits;
        __builtin_memcpy(&bits, &f, sizeof(bits));
        h.updateInt(bits);
    }
    updateConfig(h, config);
    return h.digest();
}

/**
 * Persistent-tier key. The digest already covers every input; the
 * format version makes rows from an older encoding (or older trend
 * math) miss cleanly instead of misdecoding.
 */
std::string
storeKey(std::uint64_t digest)
{
    return "t/v" + std::to_string(trendRowFormatVersion) + "/" +
           std::to_string(digest);
}

// Binary row codecs (store/codec.hh conventions: little-endian,
// doubles by bit image — warm rows must be bit-identical to cold
// ones).

std::string
encodeDepthRow(const DepthRow &row)
{
    store::Encoder e;
    e.u64(row.points.size());
    for (const PipelineDepthPoint &p : row.points) {
        e.u32(p.depth);
        e.f64(p.ipc);
        e.f64(p.clockGhz);
        e.f64(p.bips);
    }
    e.u32(row.optimal.depth);
    e.f64(row.optimal.ipc);
    e.f64(row.optimal.clockGhz);
    e.f64(row.optimal.bips);
    return e.take();
}

bool
decodeDepthRow(const std::string &bytes, DepthRow &row)
{
    store::Decoder d(bytes);
    std::uint64_t n;
    if (!d.u64(n) || n > bytes.size() / 28)
        return false;
    row.points.clear();
    row.points.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        PipelineDepthPoint p;
        if (!d.u32(p.depth) || !d.f64(p.ipc) ||
            !d.f64(p.clockGhz) || !d.f64(p.bips))
            return false;
        row.points.push_back(p);
    }
    if (!d.u32(row.optimal.depth) || !d.f64(row.optimal.ipc) ||
        !d.f64(row.optimal.clockGhz) || !d.f64(row.optimal.bips))
        return false;
    return d.atEnd();
}

std::string
encodeWidthRow(const WidthRow &row)
{
    store::Encoder e;
    e.u64(row.saturation.size());
    for (const SaturationPoint &p : row.saturation) {
        e.f64(p.timeFraction);
        e.f64(p.instructionsBetween);
    }
    e.f64Vector(row.issueRamp);
    return e.take();
}

bool
decodeWidthRow(const std::string &bytes, WidthRow &row)
{
    store::Decoder d(bytes);
    std::uint64_t n;
    if (!d.u64(n) || n > bytes.size() / 16)
        return false;
    row.saturation.clear();
    row.saturation.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        SaturationPoint p;
        if (!d.f64(p.timeFraction) ||
            !d.f64(p.instructionsBetween))
            return false;
        row.saturation.push_back(p);
    }
    if (!d.f64Vector(row.issueRamp))
        return false;
    return d.atEnd();
}

} // namespace

void
TrendStudies::setStore(std::shared_ptr<store::PersistentStore> store)
{
    std::lock_guard<std::mutex> lock(mutex_);
    store_ = std::move(store);
}

bool
TrendStudies::probeDepth(std::uint64_t key, DepthRow &row)
{
    std::shared_ptr<store::PersistentStore> store;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = depthRows_.find(key);
        if (it != depthRows_.end()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            row = it->second;
            return true;
        }
        store = store_;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (store) {
        std::string bytes;
        if (store->get(storeKey(key), bytes) &&
            decodeDepthRow(bytes, row)) {
            storeHits_.fetch_add(1, std::memory_order_relaxed);
            std::lock_guard<std::mutex> lock(mutex_);
            if (depthRows_.size() + widthRows_.size() >= maxRows) {
                depthRows_.clear();
                widthRows_.clear();
            }
            depthRows_.emplace(key, row);
            return true;
        }
    }
    return false;
}

bool
TrendStudies::probeWidth(std::uint64_t key, WidthRow &row)
{
    std::shared_ptr<store::PersistentStore> store;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = widthRows_.find(key);
        if (it != widthRows_.end()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            row = it->second;
            return true;
        }
        store = store_;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (store) {
        std::string bytes;
        if (store->get(storeKey(key), bytes) &&
            decodeWidthRow(bytes, row)) {
            storeHits_.fetch_add(1, std::memory_order_relaxed);
            std::lock_guard<std::mutex> lock(mutex_);
            if (depthRows_.size() + widthRows_.size() >= maxRows) {
                depthRows_.clear();
                widthRows_.clear();
            }
            widthRows_.emplace(key, row);
            return true;
        }
    }
    return false;
}

void
TrendStudies::storeDepth(std::uint64_t key, const DepthRow &row)
{
    std::shared_ptr<store::PersistentStore> store;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (depthRows_.size() + widthRows_.size() >= maxRows) {
            depthRows_.clear();
            widthRows_.clear();
        }
        depthRows_.emplace(key, row);
        store = store_;
    }
    if (store)
        store->put(storeKey(key), encodeDepthRow(row));
}

void
TrendStudies::storeWidth(std::uint64_t key, const WidthRow &row)
{
    std::shared_ptr<store::PersistentStore> store;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (depthRows_.size() + widthRows_.size() >= maxRows) {
            depthRows_.clear();
            widthRows_.clear();
        }
        widthRows_.emplace(key, row);
        store = store_;
    }
    if (store)
        store->put(storeKey(key), encodeWidthRow(row));
}

std::vector<DepthRow>
TrendStudies::depthRows(const std::vector<std::uint32_t> &widths,
                        const std::vector<std::uint32_t> &depths,
                        const TrendConfig &config)
{
    const std::size_t n = widths.size();
    std::vector<DepthRow> rows(n);
    std::vector<std::uint64_t> keys(n);
    for (std::size_t i = 0; i < n; ++i)
        keys[i] = depthKey(widths[i], depths, config);

    // Probe both tiers for every row before scheduling anything;
    // only the misses touch the thread pool.
    const opt::SweepPlan plan = opt::planSweep(
        n, [&](std::size_t i) { return probeDepth(keys[i], rows[i]); },
        nullptr, 0);

    parallelMap(plan.misses, [&](std::size_t i) {
        computes_.fetch_add(1, std::memory_order_relaxed);
        rows[i].points = pipelineDepthSweep(widths[i], depths, config);
        rows[i].optimal = optimalPipelineDepth(widths[i], config);
        storeDepth(keys[i], rows[i]);
        return 0;
    });
    return rows;
}

std::vector<WidthRow>
TrendStudies::widthRows(const std::vector<std::uint32_t> &widths,
                        const std::vector<double> &fractions,
                        const TrendConfig &config)
{
    const std::size_t n = widths.size();
    std::vector<WidthRow> rows(n);
    std::vector<std::uint64_t> keys(n);
    for (std::size_t i = 0; i < n; ++i)
        keys[i] = widthKey(widths[i], fractions, config);

    const opt::SweepPlan plan = opt::planSweep(
        n, [&](std::size_t i) { return probeWidth(keys[i], rows[i]); },
        nullptr, 0);

    parallelMap(plan.misses, [&](std::size_t i) {
        computes_.fetch_add(1, std::memory_order_relaxed);
        rows[i].saturation =
            issueWidthRequirement(widths[i], fractions, config);
        rows[i].issueRamp = issueRampSeries(widths[i], config);
        storeWidth(keys[i], rows[i]);
        return 0;
    });
    return rows;
}

DepthRow
TrendStudies::depthRow(std::uint32_t width,
                       const std::vector<std::uint32_t> &depths,
                       const TrendConfig &config)
{
    const std::uint64_t key = depthKey(width, depths, config);
    DepthRow row;
    if (probeDepth(key, row))
        return row;

    // Compute outside the lock: rows are pure, so two threads racing
    // on the same key just do the work twice and store equal values.
    computes_.fetch_add(1, std::memory_order_relaxed);
    row.points = pipelineDepthSweep(width, depths, config);
    row.optimal = optimalPipelineDepth(width, config);
    storeDepth(key, row);
    return row;
}

WidthRow
TrendStudies::widthRow(std::uint32_t width,
                       const std::vector<double> &fractions,
                       const TrendConfig &config)
{
    const std::uint64_t key = widthKey(width, fractions, config);
    WidthRow row;
    if (probeWidth(key, row))
        return row;

    computes_.fetch_add(1, std::memory_order_relaxed);
    row.saturation = issueWidthRequirement(width, fractions, config);
    row.issueRamp = issueRampSeries(width, config);
    storeWidth(key, row);
    return row;
}

} // namespace fosm::server
