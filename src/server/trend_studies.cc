#include "server/trend_studies.hh"

#include "common/hash.hh"

namespace fosm::server {

namespace {

/**
 * Digest of everything a row depends on. Doubles are hashed by bit
 * image: memoization must distinguish any inputs the computation
 * would, and exact-bit identity is the only equality the model's
 * floating-point outputs respect.
 */
void
updateConfig(Fnv1a &h, const TrendConfig &config)
{
    for (const double v :
         {config.alpha, config.beta, config.avgLatency,
          config.branchFraction, config.mispredictRate,
          config.totalLogicPs, config.flipFlopPs}) {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        __builtin_memcpy(&bits, &v, sizeof(bits));
        h.updateInt(bits);
    }
}

std::uint64_t
depthKey(std::uint32_t width,
         const std::vector<std::uint32_t> &depths,
         const TrendConfig &config)
{
    Fnv1a h;
    h.update("depth");
    h.updateInt(width);
    h.updateInt(static_cast<std::uint64_t>(depths.size()));
    for (const std::uint32_t d : depths)
        h.updateInt(d);
    updateConfig(h, config);
    return h.digest();
}

std::uint64_t
widthKey(std::uint32_t width, const std::vector<double> &fractions,
         const TrendConfig &config)
{
    Fnv1a h;
    h.update("width");
    h.updateInt(width);
    h.updateInt(static_cast<std::uint64_t>(fractions.size()));
    for (const double f : fractions) {
        std::uint64_t bits;
        __builtin_memcpy(&bits, &f, sizeof(bits));
        h.updateInt(bits);
    }
    updateConfig(h, config);
    return h.digest();
}

} // namespace

DepthRow
TrendStudies::depthRow(std::uint32_t width,
                       const std::vector<std::uint32_t> &depths,
                       const TrendConfig &config)
{
    const std::uint64_t key = depthKey(width, depths, config);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = depthRows_.find(key);
        if (it != depthRows_.end()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            return it->second;
        }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);

    // Compute outside the lock: rows are pure, so two threads racing
    // on the same key just do the work twice and store equal values.
    DepthRow row;
    row.points = pipelineDepthSweep(width, depths, config);
    row.optimal = optimalPipelineDepth(width, config);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (depthRows_.size() + widthRows_.size() >= maxRows) {
            depthRows_.clear();
            widthRows_.clear();
        }
        depthRows_.emplace(key, row);
    }
    return row;
}

WidthRow
TrendStudies::widthRow(std::uint32_t width,
                       const std::vector<double> &fractions,
                       const TrendConfig &config)
{
    const std::uint64_t key = widthKey(width, fractions, config);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = widthRows_.find(key);
        if (it != widthRows_.end()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            return it->second;
        }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);

    WidthRow row;
    row.saturation = issueWidthRequirement(width, fractions, config);
    row.issueRamp = issueRampSeries(width, config);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (depthRows_.size() + widthRows_.size() >= maxRows) {
            depthRows_.clear();
            widthRows_.clear();
        }
        widthRows_.emplace(key, row);
    }
    return row;
}

} // namespace fosm::server
