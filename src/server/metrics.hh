/**
 * @file
 * Live service metrics in Prometheus text exposition format. The
 * registry owns counters, gauges and latency histograms; the HTTP
 * layer and the model service update them lock-free on the hot path
 * (plain atomics), and GET /metrics renders the whole registry. No
 * external client library: the text format is simple enough to emit
 * directly, and scraping works with stock Prometheus.
 */

#ifndef FOSM_SERVER_METRICS_HH
#define FOSM_SERVER_METRICS_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace fosm::server {

/** Monotonically increasing counter. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t value() const { return value_.load(); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Settable gauge (queue depth, in-flight requests, cache size). */
class Gauge
{
  public:
    void set(std::int64_t v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    void add(std::int64_t n)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    void sub(std::int64_t n) { add(-n); }

    std::int64_t value() const { return value_.load(); }

  private:
    std::atomic<std::int64_t> value_{0};
};

/**
 * Cumulative histogram with fixed bucket bounds (seconds). observe()
 * is a couple of relaxed atomic increments; the sum is accumulated in
 * nanoseconds to stay integral.
 */
class Histogram
{
  public:
    explicit Histogram(std::vector<double> bounds);

    /** Default request-latency buckets: 50us .. 2.5s. */
    static std::vector<double> latencyBounds();

    void observe(double seconds);

    std::uint64_t count() const { return count_.load(); }
    double sumSeconds() const
    {
        return static_cast<double>(sumNanos_.load()) * 1e-9;
    }

    const std::vector<double> &bounds() const { return bounds_; }

    /** Cumulative count of observations <= bounds()[i]. */
    std::uint64_t cumulativeCount(std::size_t i) const;

    /**
     * Quantile estimate (q in [0,1]) by linear interpolation within
     * the containing bucket; the loadgen and tests use this to report
     * p50/p99 without retaining raw samples.
     */
    double quantile(double q) const;

  private:
    std::vector<double> bounds_;
    std::vector<std::atomic<std::uint64_t>> buckets_; ///< +1 overflow
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sumNanos_{0};
};

/**
 * Named metric families with optional labels, rendered to the
 * Prometheus text format. Metric objects are created once (find-or-
 * create under a mutex) and then updated lock-free; callers should
 * cache the returned pointers on hot paths.
 */
class MetricsRegistry
{
  public:
    Counter &counter(const std::string &name, const std::string &help,
                     const std::string &labels = "");

    Gauge &gauge(const std::string &name, const std::string &help,
                 const std::string &labels = "");

    Histogram &histogram(const std::string &name,
                         const std::string &help,
                         const std::string &labels = "",
                         std::vector<double> bounds =
                             Histogram::latencyBounds());

    /**
     * Gauges whose value is computed at scrape time (cache size,
     * queue depth) register a sampling callback instead of an object.
     */
    void addCallbackGauge(const std::string &name,
                          const std::string &help,
                          std::function<double()> sample,
                          const std::string &labels = "");

    /** Render every family in Prometheus text exposition format. */
    std::string renderPrometheus() const;

  private:
    struct Metric
    {
        std::string labels;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
        std::function<double()> sample;
    };

    struct Family
    {
        std::string name;
        std::string help;
        std::string type;
        std::vector<Metric> metrics;
    };

    Family &familyFor(const std::string &name,
                      const std::string &help,
                      const std::string &type);
    Metric *findMetric(Family &family, const std::string &labels);

    mutable std::mutex mutex_;
    std::vector<Family> families_; ///< render in registration order
};

} // namespace fosm::server

#endif // FOSM_SERVER_METRICS_HH
