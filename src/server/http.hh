/**
 * @file
 * Dependency-free HTTP/1.1 server over POSIX sockets. One or more IO
 * threads (config.ioThreads; N > 1 binds N SO_REUSEPORT listen
 * sockets so the kernel load-balances accepts) each run a poll()
 * loop over their own connections; complete requests are admitted
 * through a shared bounded queue to a pool of worker threads that
 * run the application handler and write the response back on the
 * same connection (keep-alive, one request in flight per connection
 * — no pipelining). Workers drain up to config.batchSize queued
 * requests per wakeup, amortizing the condition-variable handoff
 * under load. When the queue is full the IO thread answers 503 with
 * a Retry-After header immediately, so overload degrades into fast
 * rejection instead of collapsing latency. Shutdown (requestStop, or
 * a byte written to stopFd() from a signal handler) stops accepting
 * work, drains every dispatched request, then closes all
 * connections.
 */

#ifndef FOSM_SERVER_HTTP_HH
#define FOSM_SERVER_HTTP_HH

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "server/metrics.hh"
#include "tenant/fair_queue.hh"

namespace fosm::server {

/** One parsed request. Header names are lowercased. */
struct HttpRequest
{
    std::string method;
    std::string target;
    std::string version;
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;
    bool keepAlive = true;

    /**
     * Absolute processing deadline derived from the
     * X-Fosm-Deadline-Ms request header (stampDeadline); the epoch
     * default means "no deadline". Work past the deadline is wasted —
     * the waiter upstream has already timed out — so the worker pool
     * sheds expired requests with 504 at dequeue and the service
     * checks again before expensive evaluation.
     */
    std::chrono::steady_clock::time_point deadline{};

    bool hasDeadline() const
    {
        return deadline != std::chrono::steady_clock::time_point{};
    }

    bool deadlineExpired() const
    {
        return hasDeadline() &&
               std::chrono::steady_clock::now() >= deadline;
    }

    /** Milliseconds of budget left; 0 when expired, -1 when none. */
    int deadlineRemainingMs() const;

    /** First header with this (lowercase) name, or empty. */
    const std::string &header(const std::string &name) const;

    /** Target without the query string. */
    std::string path() const;
};

/** The request header that carries a relative deadline budget. */
inline constexpr const char *deadlineHeader = "X-Fosm-Deadline-Ms";

/**
 * Parse X-Fosm-Deadline-Ms (non-negative integer milliseconds,
 * capped at one hour) and stamp request.deadline relative to now.
 * Malformed values are ignored — a bad hint must not fail a request
 * that would otherwise succeed.
 */
void stampDeadline(HttpRequest &request,
                   std::chrono::steady_clock::time_point now);

/** One response under construction. */
struct HttpResponse
{
    int status = 200;
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;

    HttpResponse() = default;
    explicit HttpResponse(int s) : status(s) {}

    void
    setHeader(const std::string &name, const std::string &value)
    {
        headers.emplace_back(name, value);
    }

    /** JSON convenience: sets body and content type. */
    static HttpResponse json(int status, const std::string &body);

    /** text/plain convenience. */
    static HttpResponse text(int status, const std::string &body);
};

/** Standard reason phrase for a status code. */
const char *statusReason(int status);

/** Outcome of trying to parse one request from a byte buffer. */
enum class ParseStatus
{
    Ok,         ///< request complete; consumed bytes reported
    Incomplete, ///< need more bytes
    Bad,        ///< malformed; connection should get 400 and close
    TooLarge,   ///< body over the limit; 413 and close
};

/**
 * Parse one HTTP/1.1 request from the front of data. On Ok, fills
 * out and sets consumed to the bytes used (pipelined remainders stay
 * in the buffer). error receives a diagnostic on Bad/TooLarge.
 */
ParseStatus parseHttpRequest(const std::string &data,
                             std::size_t maxBody, HttpRequest &out,
                             std::size_t &consumed,
                             std::string &error);

/** Serialize with Content-Length and Connection headers added. */
std::string serializeResponse(const HttpResponse &response,
                              bool keepAlive);

/**
 * Verdict of the (optional) admission hook, consulted on the IO
 * thread before a parsed request is queued. status 0 admits the
 * request into queueClass's sub-queue at the given DRR weight; a
 * non-zero status (401, 429) is answered immediately without
 * touching the worker pool, with a Retry-After header when
 * retryAfterSeconds > 0.
 */
struct AdmissionVerdict
{
    int status = 0;
    std::string message;
    int retryAfterSeconds = 0;
    std::uint32_t queueClass = 0;
    double weight = 1.0;
};

/** Server tuning knobs. */
struct HttpServerConfig
{
    std::string host = "127.0.0.1";
    /** 0 binds an ephemeral port; see HttpServer::port(). */
    std::uint16_t port = 0;
    /** Worker threads; 0 means one per hardware thread (min 2). */
    std::size_t workers = 0;
    /**
     * Acceptor/IO threads. Values > 1 bind that many SO_REUSEPORT
     * listen sockets, one poll loop per acceptor, so connection
     * handling scales past a single IO thread.
     */
    std::size_t ioThreads = 1;
    /** Max queued requests one worker drains per queue wakeup. */
    std::size_t batchSize = 4;
    /** Bounded request-queue capacity (admission control). */
    std::size_t queueCapacity = 128;
    /** Maximum accepted connections before shedding with 503. */
    std::size_t maxConnections = 1024;
    /** Maximum request body bytes (413 beyond). */
    std::size_t maxBodyBytes = 1 << 20;
    /** Retry-After seconds advertised on 503 responses. */
    int retryAfterSeconds = 1;
    /**
     * Paths used as metric label values; anything else is labeled
     * "other" to bound the metric cardinality.
     */
    std::vector<std::string> metricPaths;
    /**
     * Tenant admission hook (tools wire tenant::Admission here).
     * Runs on the IO thread for every parsed request. Null means
     * every request is admitted as class 0 — the worker queue then
     * degenerates to the original single FIFO.
     */
    std::function<AdmissionVerdict(const HttpRequest &)> admission;
};

/**
 * The server. Construct with a handler, start(), and eventually
 * requestStop() + join(). The handler runs on worker threads and
 * must be thread-safe; exceptions escaping it become 500 responses.
 */
class HttpServer
{
  public:
    using Handler = std::function<HttpResponse(const HttpRequest &)>;

    HttpServer(HttpServerConfig config, Handler handler,
               MetricsRegistry *metrics = nullptr);
    ~HttpServer();

    HttpServer(const HttpServer &) = delete;
    HttpServer &operator=(const HttpServer &) = delete;

    /** Bind, listen and spawn IO + worker threads. Fatal on bind
     *  failure (bad host, port in use). */
    void start();

    /** The bound port (after start()); useful with port 0. */
    std::uint16_t port() const { return boundPort_; }

    /** Begin graceful shutdown: stop accepting, drain in-flight. */
    void requestStop();

    /**
     * Write end of the self-pipe; writing one byte triggers the same
     * graceful shutdown. write() on it is async-signal-safe, so a
     * SIGINT/SIGTERM handler can use it directly.
     */
    int stopFd() const { return stopPipe_[1]; }

    /** Wait for shutdown to complete (all threads joined). */
    void join();

    /** Requests fully served (any status) since start. */
    std::uint64_t requestsServed() const { return served_.load(); }

    /** Requests rejected with 503 (queue full / too many conns). */
    std::uint64_t requestsRejected() const
    {
        return rejected_.load();
    }

    /**
     * Per-class worker-queue counters (pushed/drained/shed/depth),
     * indexed by admission class id — the data behind the
     * fosm_tenant_queue_* metrics.
     */
    std::vector<tenant::FairQueueClassCounts>
    queueClassCounts() const
    {
        return queue_->classCounts();
    }

  private:
    struct Conn;
    struct IoLoop;

    /** One dispatched request bound for a worker. */
    struct Task
    {
        int fd = -1;
        IoLoop *loop = nullptr; ///< acceptor that owns the conn
        HttpRequest request;
        std::chrono::steady_clock::time_point arrival;
        bool keepAlive = true;
        std::uint32_t queueClass = 0; ///< tenant sub-queue
        double weight = 1.0;          ///< DRR drain weight
    };

    void ioMain(IoLoop &loop);
    void workerMain();
    void acceptNew(IoLoop &loop);
    void handleReadable(IoLoop &loop, Conn &conn);
    bool dispatchBuffered(IoLoop &loop, Conn &conn);
    void closeConn(IoLoop &loop, int fd);
    void notifyDone(IoLoop &loop, int fd, bool closeAfter);
    Counter *requestCounter(const std::string &path, int status);
    void countRequest(const std::string &path, int status,
                      std::chrono::steady_clock::time_point arrival);
    void rejectBusy(int fd, const char *why, bool keepAlive);
    void rejectAdmission(int fd, const AdmissionVerdict &verdict,
                         bool keepAlive);

    HttpServerConfig config_;
    Handler handler_;
    MetricsRegistry *metrics_;

    int stopPipe_[2] = {-1, -1};
    std::uint16_t boundPort_ = 0;

    /** shared_ptr so the /metrics queue-depth callback registered in
     *  the registry can outlive the server object safely. With no
     *  admission hook only class 0 exists and the weighted-fair
     *  queue behaves exactly like the old single bounded FIFO. */
    std::shared_ptr<tenant::FairQueue<Task>> queue_;
    std::vector<std::unique_ptr<IoLoop>> loops_;
    std::vector<std::thread> workers_;

    std::atomic<bool> stopping_{false};
    std::atomic<bool> started_{false};
    std::atomic<std::uint64_t> served_{0};
    std::atomic<std::uint64_t> rejected_{0};
    /** IO loops still draining; the last one closes the queue. */
    std::atomic<std::size_t> activeLoops_{0};
    /** Open connections across all loops (limit + gauge). */
    std::atomic<std::size_t> totalConns_{0};

    // Metric objects resolved once at start().
    Histogram *latency_ = nullptr;
    Counter *rejectedCounter_ = nullptr;
    Counter *deadlineShed_ = nullptr;
    Gauge *connectionsGauge_ = nullptr;
    Gauge *inflightGauge_ = nullptr;
    std::mutex counterMutex_;
    std::map<std::pair<std::string, int>, Counter *> counters_;
};

} // namespace fosm::server

#endif // FOSM_SERVER_HTTP_HH
