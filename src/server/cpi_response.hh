/**
 * @file
 * The /v1/cpi response document and its columnar inverse, shared by
 * every path that caches rows under a /v1/cpi digest (the single
 * endpoint, /v1/batch, /v1/optimize). All of them must produce and
 * read byte-identical documents for the same design point — that is
 * the whole digest-composition contract.
 */

#ifndef FOSM_SERVER_CPI_RESPONSE_HH
#define FOSM_SERVER_CPI_RESPONSE_HH

#include <array>
#include <string>

#include "experiments/workbench.hh"
#include "server/json.hh"

namespace fosm::server {

/** The /v1/cpi response document for one evaluated design point. */
json::Value cpiResponseJson(const std::string &workload,
                            const WorkloadData &data,
                            const MachineConfig &machine,
                            const IWCharacteristic &iw,
                            const CpiBreakdown &b);

/**
 * Pull the eight columnar numbers (ideal, brmisp, icacheL1,
 * icacheL2, dcacheLong, dtlb, total, ipc) back out of a cached
 * /v1/cpi response. The serializer emits shortest-round-trip
 * decimals, so the parsed doubles are bit-identical to the ones the
 * evaluation produced.
 */
bool extractColumns(const std::string &responseText,
                    std::array<double, 8> &cols);

} // namespace fosm::server

#endif // FOSM_SERVER_CPI_RESPONSE_HH
