#include "server/params.hh"

#include <algorithm>
#include <cmath>

#include "experiments/workbench.hh"

namespace fosm::server {

void
badRequest(const std::string &message)
{
    throw ServiceError(400, message);
}

std::string
errorJson(const std::string &message)
{
    json::Value v = json::Value::object();
    v.set("error", message);
    return v.dump();
}

void
requireMembers(const json::Value &object, const char *what,
               std::initializer_list<const char *> allowed)
{
    for (const auto &member : object.members()) {
        bool known = false;
        for (const char *name : allowed)
            if (member.first == name)
                known = true;
        if (!known) {
            badRequest(std::string("unknown ") + what + " member '" +
                       member.first + "'");
        }
    }
}

double
numberMember(const json::Value &object, const char *name,
             double fallback, double lo, double hi)
{
    const json::Value *v = object.find(name);
    if (!v)
        return fallback;
    if (!v->isNumber())
        badRequest(std::string("'") + name + "' must be a number");
    const double x = v->asDouble();
    if (x < lo || x > hi) {
        badRequest(std::string("'") + name + "' out of range [" +
                   json::formatDouble(lo) + ", " +
                   json::formatDouble(hi) + "]");
    }
    return x;
}

std::uint32_t
intMember(const json::Value &object, const char *name,
          std::uint32_t fallback, double lo, double hi)
{
    const double x =
        numberMember(object, name, fallback, lo, hi);
    if (x != std::floor(x))
        badRequest(std::string("'") + name + "' must be an integer");
    return static_cast<std::uint32_t>(x);
}

bool
boolMember(const json::Value &object, const char *name, bool fallback)
{
    const json::Value *v = object.find(name);
    if (!v)
        return fallback;
    if (!v->isBool())
        badRequest(std::string("'") + name + "' must be a boolean");
    return v->asBool();
}

std::string
workloadMember(const json::Value &request)
{
    const json::Value *v = request.find("workload");
    if (!v || !v->isString())
        badRequest("'workload' (string) is required");
    const std::string name = v->asString();
    const std::vector<std::string> known = Workbench::benchmarks();
    if (std::find(known.begin(), known.end(), name) == known.end()) {
        std::string valid;
        for (const std::string &k : known) {
            if (!valid.empty())
                valid += ", ";
            valid += k;
        }
        badRequest("unknown workload '" + name + "'; valid: " + valid);
    }
    return name;
}

MachineConfig
machineFromJson(const json::Value &request)
{
    MachineConfig machine = Workbench::baselineMachine();
    const json::Value *m = request.find("machine");
    if (!m)
        return machine;
    if (!m->isObject())
        badRequest("'machine' must be an object");
    requireMembers(*m, "machine",
                   {"width", "frontEndDepth", "windowSize", "robSize",
                    "deltaI", "deltaD", "deltaT", "clusters",
                    "interClusterDelay"});
    machine.width = intMember(*m, "width", machine.width, 1, 64);
    machine.frontEndDepth =
        intMember(*m, "frontEndDepth", machine.frontEndDepth, 1, 100);
    machine.windowSize =
        intMember(*m, "windowSize", machine.windowSize, 1, 4096);
    machine.robSize =
        intMember(*m, "robSize", machine.robSize, 1, 1 << 20);
    machine.deltaI = intMember(*m, "deltaI",
                               static_cast<std::uint32_t>(
                                   machine.deltaI),
                               0, 1e6);
    machine.deltaD = intMember(*m, "deltaD",
                               static_cast<std::uint32_t>(
                                   machine.deltaD),
                               0, 1e6);
    machine.deltaT = intMember(*m, "deltaT",
                               static_cast<std::uint32_t>(
                                   machine.deltaT),
                               0, 1e6);
    machine.clusters =
        intMember(*m, "clusters", machine.clusters, 1, 16);
    machine.interClusterDelay =
        intMember(*m, "interClusterDelay",
                  static_cast<std::uint32_t>(
                      machine.interClusterDelay),
                  0, 100);
    if (machine.width % machine.clusters != 0 ||
        machine.windowSize % machine.clusters != 0) {
        badRequest("width and windowSize must be divisible by "
                   "clusters");
    }
    return machine;
}

ModelOptions
optionsFromJson(const json::Value &request)
{
    ModelOptions options;
    const json::Value *o = request.find("options");
    if (!o)
        return options;
    if (!o->isObject())
        badRequest("'options' must be an object");
    requireMembers(*o, "options",
                   {"branchMode", "icacheMode", "dcacheOverlap",
                    "dcacheFirstOrder", "compensateOverlaps",
                    "fetchBufferEntries", "burstGapThreshold"});

    if (const json::Value *v = o->find("branchMode")) {
        const std::string &mode = v->asString();
        if (mode == "paper-average")
            options.branchMode = BranchPenaltyMode::PaperAverage;
        else if (mode == "isolated")
            options.branchMode = BranchPenaltyMode::Isolated;
        else if (mode == "burst-aware")
            options.branchMode = BranchPenaltyMode::BurstAware;
        else
            badRequest("unknown branchMode '" + mode +
                       "'; valid: paper-average, isolated, "
                       "burst-aware");
    }
    if (const json::Value *v = o->find("icacheMode")) {
        const std::string &mode = v->asString();
        if (mode == "miss-delay")
            options.icacheMode = IcachePenaltyMode::MissDelay;
        else if (mode == "isolated")
            options.icacheMode = IcachePenaltyMode::Isolated;
        else
            badRequest("unknown icacheMode '" + mode +
                       "'; valid: miss-delay, isolated");
    }
    options.dcacheOverlap =
        boolMember(*o, "dcacheOverlap", options.dcacheOverlap);
    options.dcacheFirstOrder =
        boolMember(*o, "dcacheFirstOrder", options.dcacheFirstOrder);
    options.compensateOverlaps = boolMember(
        *o, "compensateOverlaps", options.compensateOverlaps);
    options.fetchBufferEntries =
        intMember(*o, "fetchBufferEntries",
                  options.fetchBufferEntries, 0, 1 << 16);
    options.burstGapThreshold =
        intMember(*o, "burstGapThreshold",
                  static_cast<std::uint32_t>(
                      options.burstGapThreshold),
                  1, 1 << 20);
    return options;
}

json::Value
machineToJson(const MachineConfig &machine)
{
    json::Value m = json::Value::object();
    m.set("width", machine.width);
    m.set("frontEndDepth", machine.frontEndDepth);
    m.set("windowSize", machine.windowSize);
    m.set("robSize", machine.robSize);
    m.set("deltaI", static_cast<std::uint64_t>(machine.deltaI));
    m.set("deltaD", static_cast<std::uint64_t>(machine.deltaD));
    m.set("clusters", machine.clusters);
    m.set("interClusterDelay",
          static_cast<std::uint64_t>(machine.interClusterDelay));
    return m;
}

std::vector<std::uint32_t>
intArrayMember(const json::Value &request, const char *name,
               std::vector<std::uint32_t> fallback, double lo,
               double hi, std::size_t maxItems)
{
    const json::Value *v = request.find(name);
    if (!v)
        return fallback;
    if (!v->isArray() || v->items().empty())
        badRequest(std::string("'") + name +
                   "' must be a non-empty array of integers");
    if (v->items().size() > maxItems)
        badRequest(std::string("'") + name + "' too long (max " +
                   std::to_string(maxItems) + ")");
    std::vector<std::uint32_t> out;
    out.reserve(v->items().size());
    for (const json::Value &item : v->items()) {
        if (!item.isNumber() ||
            item.asDouble() != std::floor(item.asDouble()) ||
            item.asDouble() < lo || item.asDouble() > hi) {
            badRequest(std::string("'") + name +
                       "' entries must be integers in [" +
                       json::formatDouble(lo) + ", " +
                       json::formatDouble(hi) + "]");
        }
        out.push_back(static_cast<std::uint32_t>(item.asDouble()));
    }
    return out;
}

TrendConfig
trendConfigFromJson(const json::Value &request)
{
    TrendConfig config;
    const json::Value *c = request.find("config");
    if (!c)
        return config;
    if (!c->isObject())
        badRequest("'config' must be an object");
    requireMembers(*c, "config",
                   {"alpha", "beta", "avgLatency", "branchFraction",
                    "mispredictRate", "totalLogicPs", "flipFlopPs"});
    config.alpha =
        numberMember(*c, "alpha", config.alpha, 0.01, 100.0);
    config.beta = numberMember(*c, "beta", config.beta, 0.01, 1.0);
    config.avgLatency =
        numberMember(*c, "avgLatency", config.avgLatency, 1.0, 100.0);
    config.branchFraction = numberMember(
        *c, "branchFraction", config.branchFraction, 0.0, 1.0);
    config.mispredictRate = numberMember(
        *c, "mispredictRate", config.mispredictRate, 0.0, 1.0);
    config.totalLogicPs = numberMember(*c, "totalLogicPs",
                                       config.totalLogicPs, 100.0,
                                       1e6);
    config.flipFlopPs = numberMember(*c, "flipFlopPs",
                                     config.flipFlopPs, 1.0, 1e4);
    return config;
}

} // namespace fosm::server
