#include "server/http.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hh"
#include "server/json.hh"

namespace fosm::server {

// ---------------------------------------------------------------
// Messages
// ---------------------------------------------------------------

const std::string &
HttpRequest::header(const std::string &name) const
{
    static const std::string empty;
    for (const auto &h : headers)
        if (h.first == name)
            return h.second;
    return empty;
}

std::string
HttpRequest::path() const
{
    const std::size_t q = target.find('?');
    return q == std::string::npos ? target : target.substr(0, q);
}

int
HttpRequest::deadlineRemainingMs() const
{
    if (!hasDeadline())
        return -1;
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - std::chrono::steady_clock::now())
            .count();
    return left > 0 ? static_cast<int>(left) : 0;
}

void
stampDeadline(HttpRequest &request,
              std::chrono::steady_clock::time_point now)
{
    const std::string &value =
        request.header("x-fosm-deadline-ms");
    if (value.empty())
        return;
    char *end = nullptr;
    const long ms = std::strtol(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0' || ms < 0)
        return; // malformed hint: ignore, don't fail the request
    request.deadline =
        now + std::chrono::milliseconds(
                  std::min(ms, 3600L * 1000L));
}

HttpResponse
HttpResponse::json(int status, const std::string &body)
{
    HttpResponse r(status);
    r.setHeader("Content-Type", "application/json");
    r.body = body;
    return r;
}

HttpResponse
HttpResponse::text(int status, const std::string &body)
{
    HttpResponse r(status);
    r.setHeader("Content-Type", "text/plain; charset=utf-8");
    r.body = body;
    return r;
}

const char *
statusReason(int status)
{
    switch (status) {
      case 200: return "OK";
      case 204: return "No Content";
      case 206: return "Partial Content";
      case 400: return "Bad Request";
      case 401: return "Unauthorized";
      case 403: return "Forbidden";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 413: return "Payload Too Large";
      case 422: return "Unprocessable Content";
      case 429: return "Too Many Requests";
      case 500: return "Internal Server Error";
      case 501: return "Not Implemented";
      case 502: return "Bad Gateway";
      case 503: return "Service Unavailable";
      case 504: return "Gateway Timeout";
      default: return "Unknown";
    }
}

namespace {

constexpr std::size_t maxHeaderBytes = 16 * 1024;

std::string
toLower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && (s[b] == ' ' || s[b] == '\t'))
        ++b;
    while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t'))
        --e;
    return s.substr(b, e - b);
}

} // namespace

ParseStatus
parseHttpRequest(const std::string &data, std::size_t maxBody,
                 HttpRequest &out, std::size_t &consumed,
                 std::string &error)
{
    const std::size_t headerEnd = data.find("\r\n\r\n");
    if (headerEnd == std::string::npos) {
        if (data.size() > maxHeaderBytes) {
            error = "header section too large";
            return ParseStatus::Bad;
        }
        return ParseStatus::Incomplete;
    }
    if (headerEnd > maxHeaderBytes) {
        error = "header section too large";
        return ParseStatus::Bad;
    }

    out = HttpRequest{};

    // Request line.
    const std::size_t lineEnd = data.find("\r\n");
    const std::string line = data.substr(0, lineEnd);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos ||
        line.find(' ', sp2 + 1) != std::string::npos) {
        error = "malformed request line";
        return ParseStatus::Bad;
    }
    out.method = line.substr(0, sp1);
    out.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    out.version = line.substr(sp2 + 1);
    if (out.method.empty() || out.target.empty() ||
        out.target[0] != '/') {
        error = "malformed request line";
        return ParseStatus::Bad;
    }
    if (out.version != "HTTP/1.1" && out.version != "HTTP/1.0") {
        error = "unsupported HTTP version";
        return ParseStatus::Bad;
    }

    // Header fields.
    std::size_t pos = lineEnd + 2;
    while (pos < headerEnd) {
        const std::size_t eol = data.find("\r\n", pos);
        const std::string field = data.substr(pos, eol - pos);
        pos = eol + 2;
        const std::size_t colon = field.find(':');
        if (colon == std::string::npos || colon == 0) {
            error = "malformed header field";
            return ParseStatus::Bad;
        }
        const std::string rawName = field.substr(0, colon);
        for (const char c : rawName) {
            // Whitespace or control bytes in the field name (before
            // the colon) are a smuggling vector; reject them.
            if (c == ' ' || c == '\t' ||
                static_cast<unsigned char>(c) < 0x21) {
                error = "whitespace in header name";
                return ParseStatus::Bad;
            }
        }
        out.headers.emplace_back(toLower(rawName),
                                 trim(field.substr(colon + 1)));
    }

    if (!out.header("transfer-encoding").empty()) {
        error = "transfer-encoding not supported";
        return ParseStatus::Bad;
    }

    // Body.
    std::size_t bodyLen = 0;
    const std::string &cl = out.header("content-length");
    if (!cl.empty()) {
        char *end = nullptr;
        const unsigned long long v =
            std::strtoull(cl.c_str(), &end, 10);
        if (end == cl.c_str() || *end != '\0') {
            error = "malformed content-length";
            return ParseStatus::Bad;
        }
        bodyLen = static_cast<std::size_t>(v);
    }
    if (bodyLen > maxBody) {
        error = "request body too large";
        return ParseStatus::TooLarge;
    }
    const std::size_t total = headerEnd + 4 + bodyLen;
    if (data.size() < total)
        return ParseStatus::Incomplete;
    out.body = data.substr(headerEnd + 4, bodyLen);
    consumed = total;

    const std::string conn = toLower(out.header("connection"));
    out.keepAlive = out.version == "HTTP/1.1" ? conn != "close"
                                              : conn == "keep-alive";
    return ParseStatus::Ok;
}

std::string
serializeResponse(const HttpResponse &response, bool keepAlive)
{
    std::string out;
    out.reserve(128 + response.body.size());
    out += "HTTP/1.1 ";
    out += std::to_string(response.status);
    out += " ";
    out += statusReason(response.status);
    out += "\r\n";
    for (const auto &h : response.headers) {
        out += h.first;
        out += ": ";
        out += h.second;
        out += "\r\n";
    }
    out += "Content-Length: ";
    out += std::to_string(response.body.size());
    out += "\r\nConnection: ";
    out += keepAlive ? "keep-alive" : "close";
    out += "\r\n\r\n";
    out += response.body;
    return out;
}

// ---------------------------------------------------------------
// Server
// ---------------------------------------------------------------

namespace {

void
setNonBlocking(int fd)
{
    const int flags = fcntl(fd, F_GETFL, 0);
    fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/**
 * Write the whole buffer to a non-blocking socket, polling for
 * writability as needed. Returns false on error or a stuck peer.
 */
bool
sendAll(int fd, const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::send(fd, data.data() + off,
                                 data.size() - off, MSG_NOSIGNAL);
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            struct pollfd p{fd, POLLOUT, 0};
            if (::poll(&p, 1, 5000) <= 0)
                return false; // peer stuck for 5s: give up
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        return false;
    }
    return true;
}

void
drainPipe(int fd)
{
    char buf[256];
    while (::read(fd, buf, sizeof(buf)) > 0) {
    }
}

} // namespace

/** Per-connection state, owned by its acceptor's IO thread. */
struct HttpServer::Conn
{
    enum class State
    {
        Reading,    ///< polled for input
        Processing, ///< one request dispatched; reads paused
    };

    explicit Conn(int f) : fd(f) {}

    int fd;
    State state = State::Reading;
    std::string inbuf;
};

/**
 * One acceptor: its own SO_REUSEPORT listen socket, poll loop,
 * connection table and worker-completion queue. All fields except
 * done/doneMutex are touched only by the loop's own thread.
 */
struct HttpServer::IoLoop
{
    ~IoLoop()
    {
        for (const int fd : {listenFd, wakePipe[0], wakePipe[1]}) {
            if (fd >= 0)
                ::close(fd);
        }
    }

    int listenFd = -1;
    int wakePipe[2] = {-1, -1};
    std::thread thread;
    std::map<int, std::unique_ptr<Conn>> conns;
    std::mutex doneMutex;
    std::vector<std::pair<int, bool>> done;
    std::size_t inflight = 0; ///< dispatched tasks; loop thread only
};

HttpServer::HttpServer(HttpServerConfig config, Handler handler,
                       MetricsRegistry *metrics)
    : config_(std::move(config)), handler_(std::move(handler)),
      metrics_(metrics)
{
    queue_ = std::make_shared<tenant::FairQueue<Task>>(
        config_.queueCapacity);
}

HttpServer::~HttpServer()
{
    if (started_.load()) {
        requestStop();
        join();
    }
    loops_.clear(); // closes per-loop fds
    for (const int fd : {stopPipe_[0], stopPipe_[1]}) {
        if (fd >= 0)
            ::close(fd);
    }
}

void
HttpServer::start()
{
    fosm_assert(!started_.load(), "HttpServer started twice");

    if (::pipe(stopPipe_) != 0)
        fosm_fatal("cannot create server pipes: ",
                   std::strerror(errno));
    setNonBlocking(stopPipe_[0]);
    setNonBlocking(stopPipe_[1]);

    const std::size_t nloops =
        std::max<std::size_t>(1, config_.ioThreads);
    loops_.reserve(nloops);
    for (std::size_t i = 0; i < nloops; ++i) {
        auto loop = std::make_unique<IoLoop>();
        if (::pipe(loop->wakePipe) != 0)
            fosm_fatal("cannot create server pipes: ",
                       std::strerror(errno));
        setNonBlocking(loop->wakePipe[0]);
        setNonBlocking(loop->wakePipe[1]);

        loop->listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (loop->listenFd < 0)
            fosm_fatal("cannot create socket: ",
                       std::strerror(errno));
        const int one = 1;
        ::setsockopt(loop->listenFd, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        if (nloops > 1) {
            // Each acceptor binds its own socket to the same port;
            // the kernel spreads incoming connections across them.
            if (::setsockopt(loop->listenFd, SOL_SOCKET,
                             SO_REUSEPORT, &one, sizeof(one)) != 0) {
                fosm_fatal("SO_REUSEPORT unavailable: ",
                           std::strerror(errno));
            }
        }

        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        // Acceptors past the first share whatever port the first
        // one bound (--port 0 resolves to one ephemeral port).
        addr.sin_port = htons(i == 0 ? config_.port : boundPort_);
        if (::inet_pton(AF_INET, config_.host.c_str(),
                        &addr.sin_addr) != 1) {
            fosm_fatal("invalid listen address: ", config_.host);
        }
        if (::bind(loop->listenFd,
                   reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0) {
            fosm_fatal("cannot bind ", config_.host, ":",
                       config_.port, ": ", std::strerror(errno));
        }
        if (::listen(loop->listenFd, 512) != 0)
            fosm_fatal("listen failed: ", std::strerror(errno));
        setNonBlocking(loop->listenFd);

        if (i == 0) {
            socklen_t len = sizeof(addr);
            ::getsockname(loop->listenFd,
                          reinterpret_cast<sockaddr *>(&addr), &len);
            boundPort_ = ntohs(addr.sin_port);
        }
        loops_.push_back(std::move(loop));
    }

    if (metrics_) {
        latency_ = &metrics_->histogram(
            "fosm_http_request_duration_seconds",
            "Request latency from parse completion to response "
            "written");
        rejectedCounter_ = &metrics_->counter(
            "fosm_http_rejected_total",
            "Requests shed with 503 (queue full or connection "
            "limit)");
        deadlineShed_ = &metrics_->counter(
            "fosm_deadline_shed_total",
            "Requests answered 504 because their deadline expired "
            "before a worker picked them up",
            "stage=\"queue\"");
        connectionsGauge_ =
            &metrics_->gauge("fosm_http_connections",
                             "Open client connections");
        inflightGauge_ = &metrics_->gauge(
            "fosm_http_inflight_requests",
            "Requests dispatched to workers and not yet answered");
        // Sampled at scrape time so the hot path never touches it.
        std::shared_ptr<tenant::FairQueue<Task>> queue = queue_;
        metrics_->addCallbackGauge(
            "fosm_http_queue_depth",
            "Requests waiting in the admission queue",
            [queue] { return static_cast<double>(queue->size()); });
    }

    std::size_t workers = config_.workers;
    if (workers == 0) {
        workers = std::max<std::size_t>(
            2, std::thread::hardware_concurrency());
    }
    started_.store(true);
    activeLoops_.store(loops_.size());
    for (auto &loop : loops_) {
        IoLoop *l = loop.get();
        loop->thread = std::thread([this, l] { ioMain(*l); });
    }
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        workers_.emplace_back([this] { workerMain(); });
}

void
HttpServer::requestStop()
{
    if (stopPipe_[1] >= 0) {
        const char b = 's';
        [[maybe_unused]] ssize_t n = ::write(stopPipe_[1], &b, 1);
    }
}

void
HttpServer::join()
{
    for (auto &loop : loops_)
        if (loop->thread.joinable())
            loop->thread.join();
    for (std::thread &t : workers_)
        if (t.joinable())
            t.join();
    workers_.clear();
}

void
HttpServer::notifyDone(IoLoop &loop, int fd, bool closeAfter)
{
    {
        std::lock_guard<std::mutex> lock(loop.doneMutex);
        loop.done.emplace_back(fd, closeAfter);
    }
    const char b = 'd';
    [[maybe_unused]] ssize_t n = ::write(loop.wakePipe[1], &b, 1);
}

Counter *
HttpServer::requestCounter(const std::string &path, int status)
{
    if (!metrics_)
        return nullptr;
    std::string label = "other";
    for (const std::string &known : config_.metricPaths) {
        if (known == path) {
            label = path;
            break;
        }
    }
    std::lock_guard<std::mutex> lock(counterMutex_);
    const auto key = std::make_pair(label, status);
    const auto it = counters_.find(key);
    if (it != counters_.end())
        return it->second;
    Counter &counter = metrics_->counter(
        "fosm_http_requests_total", "Requests served by path and code",
        "path=\"" + label + "\",code=\"" + std::to_string(status) +
            "\"");
    counters_[key] = &counter;
    return &counter;
}

void
HttpServer::countRequest(const std::string &path, int status,
                         std::chrono::steady_clock::time_point arrival)
{
    if (Counter *counter = requestCounter(path, status))
        counter->inc();
    if (latency_) {
        latency_->observe(std::chrono::duration<double>(
                              std::chrono::steady_clock::now() -
                              arrival)
                              .count());
    }
}

namespace {

/** {"error": "..."} with proper string escaping. */
std::string
errorBody(const std::string &message)
{
    json::Value v = json::Value::object();
    v.set("error", message);
    return v.dump();
}

} // namespace

void
HttpServer::workerMain()
{
    const std::size_t batchMax =
        std::max<std::size_t>(1, config_.batchSize);
    std::vector<Task> batch;
    while (queue_->popBatch(batch, batchMax)) {
        // Every task in the batch was admitted by one queue wakeup;
        // handle them back to back without re-taking the queue lock.
        for (Task &task : batch) {
            if (inflightGauge_)
                inflightGauge_->add(1);
            // The waiter has already timed out; answering 504 now is
            // cheaper than computing a result nobody will read.
            if (task.request.deadlineExpired()) {
                if (deadlineShed_)
                    deadlineShed_->inc();
                const bool keepAlive = task.keepAlive;
                const bool ok = sendAll(
                    task.fd,
                    serializeResponse(
                        HttpResponse::json(
                            504,
                            errorBody("deadline exceeded in queue")),
                        keepAlive));
                served_.fetch_add(1, std::memory_order_relaxed);
                countRequest(task.request.path(), 504, task.arrival);
                if (inflightGauge_)
                    inflightGauge_->sub(1);
                notifyDone(*task.loop, task.fd, !keepAlive || !ok);
                continue;
            }
            HttpResponse response;
            try {
                response = handler_(task.request);
            } catch (const std::exception &e) {
                response =
                    HttpResponse::json(500, errorBody(e.what()));
            } catch (...) {
                response = HttpResponse::json(
                    500, errorBody("unknown handler error"));
            }
            const bool keepAlive = task.keepAlive;
            const bool ok = sendAll(
                task.fd, serializeResponse(response, keepAlive));
            served_.fetch_add(1, std::memory_order_relaxed);
            countRequest(task.request.path(), response.status,
                         task.arrival);
            if (inflightGauge_)
                inflightGauge_->sub(1);
            notifyDone(*task.loop, task.fd, !keepAlive || !ok);
        }
    }
}

void
HttpServer::rejectAdmission(int fd, const AdmissionVerdict &verdict,
                            bool keepAlive)
{
    HttpResponse response =
        HttpResponse::json(verdict.status, errorBody(verdict.message));
    if (verdict.retryAfterSeconds > 0) {
        response.setHeader("Retry-After",
                           std::to_string(verdict.retryAfterSeconds));
    }
    sendAll(fd, serializeResponse(response, keepAlive));
}

void
HttpServer::rejectBusy(int fd, const char *why, bool keepAlive)
{
    HttpResponse busy = HttpResponse::json(503, errorBody(why));
    busy.setHeader("Retry-After",
                   std::to_string(config_.retryAfterSeconds));
    rejected_.fetch_add(1, std::memory_order_relaxed);
    if (rejectedCounter_)
        rejectedCounter_->inc();
    sendAll(fd, serializeResponse(busy, keepAlive));
}

void
HttpServer::closeConn(IoLoop &loop, int fd)
{
    const auto it = loop.conns.find(fd);
    if (it == loop.conns.end())
        return;
    ::close(fd);
    loop.conns.erase(it);
    const std::size_t total =
        totalConns_.fetch_sub(1, std::memory_order_relaxed) - 1;
    if (connectionsGauge_)
        connectionsGauge_->set(static_cast<std::int64_t>(total));
}

void
HttpServer::acceptNew(IoLoop &loop)
{
    while (true) {
        const int fd = ::accept(loop.listenFd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK ||
                errno == EINTR) {
                return;
            }
            warn("accept failed: ", std::strerror(errno));
            return;
        }
        setNonBlocking(fd);
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                     sizeof(one));
        if (totalConns_.load(std::memory_order_relaxed) >=
            config_.maxConnections) {
            // Connection-level shedding: tell the client to back off.
            rejectBusy(fd, "too many connections", false);
            ::close(fd);
            continue;
        }
        loop.conns.emplace(fd, std::make_unique<Conn>(fd));
        const std::size_t total =
            totalConns_.fetch_add(1, std::memory_order_relaxed) + 1;
        if (connectionsGauge_)
            connectionsGauge_->set(static_cast<std::int64_t>(total));
    }
}

bool
HttpServer::dispatchBuffered(IoLoop &loop, Conn &conn)
{
    while (conn.state == Conn::State::Reading &&
           !conn.inbuf.empty()) {
        HttpRequest request;
        std::size_t consumed = 0;
        std::string error;
        const ParseStatus st =
            parseHttpRequest(conn.inbuf, config_.maxBodyBytes,
                             request, consumed, error);
        if (st == ParseStatus::Incomplete)
            return true;
        if (st == ParseStatus::Bad || st == ParseStatus::TooLarge) {
            const int code = st == ParseStatus::Bad ? 400 : 413;
            sendAll(conn.fd,
                    serializeResponse(
                        HttpResponse::json(code, errorBody(error)),
                        false));
            countRequest("(bad)", code,
                         std::chrono::steady_clock::now());
            closeConn(loop, conn.fd);
            return false;
        }
        conn.inbuf.erase(0, consumed);

        const std::string path = request.path();
        const bool keepAlive = request.keepAlive;

        Task task;
        task.fd = conn.fd;
        task.loop = &loop;
        task.request = std::move(request);
        task.arrival = std::chrono::steady_clock::now();
        stampDeadline(task.request, task.arrival);
        task.keepAlive = keepAlive;

        // Tenant admission: authenticate and classify before the
        // queue, so a rejected request (401/429) never costs a
        // worker wakeup and an admitted one lands in its own
        // tenant's sub-queue.
        if (config_.admission) {
            const AdmissionVerdict verdict =
                config_.admission(task.request);
            if (verdict.status != 0) {
                rejectAdmission(conn.fd, verdict, keepAlive);
                countRequest(path, verdict.status,
                             std::chrono::steady_clock::now());
                if (!keepAlive) {
                    closeConn(loop, conn.fd);
                    return false;
                }
                continue;
            }
            task.queueClass = verdict.queueClass;
            task.weight = verdict.weight;
        }

        const std::uint32_t queueClass = task.queueClass;
        const double weight = task.weight;
        if (queue_->tryPush(std::move(task), queueClass, weight)) {
            conn.state = Conn::State::Processing;
            ++loop.inflight;
            return true;
        }

        // Queue full (or closing): shed this request, keep the
        // connection so the client can retry after the hint.
        rejectBusy(conn.fd, "server overloaded", keepAlive);
        countRequest(path, 503, std::chrono::steady_clock::now());
        if (!keepAlive) {
            closeConn(loop, conn.fd);
            return false;
        }
    }
    return true;
}

void
HttpServer::handleReadable(IoLoop &loop, Conn &conn)
{
    char buf[16 * 1024];
    while (true) {
        const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
        if (n > 0) {
            conn.inbuf.append(buf, static_cast<std::size_t>(n));
            // Cap runaway buffers from clients that never finish a
            // request header.
            if (conn.state == Conn::State::Reading &&
                conn.inbuf.size() >
                    maxHeaderBytes + config_.maxBodyBytes) {
                closeConn(loop, conn.fd);
                return;
            }
            continue;
        }
        if (n == 0) {
            // Peer closed. If a request is in flight the worker
            // still owns the fd for writing; defer the close to the
            // done notification (the write will just fail).
            if (conn.state != Conn::State::Processing)
                closeConn(loop, conn.fd);
            return;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        if (errno == EINTR)
            continue;
        if (conn.state != Conn::State::Processing)
            closeConn(loop, conn.fd);
        return;
    }
    dispatchBuffered(loop, conn);
}

void
HttpServer::ioMain(IoLoop &loop)
{
    std::vector<struct pollfd> fds;
    std::vector<int> readable;
    while (true) {
        bool stopping = stopping_.load();
        fds.clear();
        // The stop pipe is never drained, so its POLLIN is level-
        // triggered and every acceptor observes the same stop byte;
        // once observed, drop it from the poll set.
        const bool watchStop = !stopping;
        if (watchStop)
            fds.push_back({stopPipe_[0], POLLIN, 0});
        const std::size_t wakeIdx = fds.size();
        fds.push_back({loop.wakePipe[0], POLLIN, 0});
        const bool accepting = !stopping && loop.listenFd >= 0;
        std::size_t listenIdx = 0;
        if (accepting) {
            listenIdx = fds.size();
            fds.push_back({loop.listenFd, POLLIN, 0});
        }
        const std::size_t connsFrom = fds.size();
        if (!stopping) {
            for (const auto &entry : loop.conns) {
                if (entry.second->state == Conn::State::Reading)
                    fds.push_back({entry.first, POLLIN, 0});
            }
        }

        const int rc =
            ::poll(fds.data(), static_cast<nfds_t>(fds.size()), -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            warn("poll failed: ", std::strerror(errno));
            break;
        }

        // Stop signal: stop accepting and parsing; drain below.
        if (watchStop && (fds[0].revents & POLLIN)) {
            stopping_.store(true);
            stopping = true;
        }
        if (stopping && loop.listenFd >= 0) {
            ::close(loop.listenFd);
            loop.listenFd = -1;
        }

        // Worker completions.
        if (fds[wakeIdx].revents & POLLIN) {
            drainPipe(loop.wakePipe[0]);
            std::vector<std::pair<int, bool>> done;
            {
                std::lock_guard<std::mutex> lock(loop.doneMutex);
                done.swap(loop.done);
            }
            for (const auto &[fd, closeAfter] : done) {
                --loop.inflight;
                const auto it = loop.conns.find(fd);
                if (it == loop.conns.end())
                    continue;
                if (closeAfter || stopping_.load()) {
                    closeConn(loop, fd);
                    continue;
                }
                it->second->state = Conn::State::Reading;
                // A pipelined or half-buffered next request may
                // already be waiting.
                dispatchBuffered(loop, *it->second);
            }
        }

        if (stopping_.load()) {
            if (loop.inflight == 0)
                break;
            continue;
        }

        if (accepting &&
            (fds[listenIdx].revents & (POLLIN | POLLERR)))
            acceptNew(loop);
        // Collect fds first: handleReadable can erase conns, and
        // the conns iteration order must not be disturbed mid-walk.
        readable.clear();
        for (std::size_t idx = connsFrom; idx < fds.size(); ++idx) {
            if (fds[idx].revents &
                (POLLIN | POLLERR | POLLHUP)) {
                readable.push_back(fds[idx].fd);
            }
        }
        for (const int fd : readable) {
            const auto it = loop.conns.find(fd);
            if (it != loop.conns.end())
                handleReadable(loop, *it->second);
        }
    }

    // This acceptor has drained (its inflight hit zero). The last
    // one out closes the queue, releasing the workers once the
    // remaining queued work — all of it counted in some loop's
    // inflight, hence already zero — is done.
    if (activeLoops_.fetch_sub(1) == 1)
        queue_->close();
    std::vector<int> open;
    open.reserve(loop.conns.size());
    for (const auto &entry : loop.conns)
        open.push_back(entry.first);
    for (const int fd : open)
        closeConn(loop, fd);
}

} // namespace fosm::server
