/**
 * @file
 * The model-evaluation service: first-order model queries behind
 * HTTP. The paper's point is that equation (1) answers design
 * questions in microseconds that a detailed simulator needs seconds
 * for — exactly the latency profile worth putting behind a service.
 * Endpoints:
 *
 *   POST /v1/cpi       equation-(1) CPI stack for one machine config
 *                      x workload profile
 *   POST /v1/iw-curve  measured IW curve points + power-law fit
 *   POST /v1/trends    Section 6 pipeline-depth / issue-width sweeps,
 *                      fanned out over the global thread pool
 *   GET  /healthz      liveness
 *   GET  /metrics      Prometheus text metrics
 *
 * Evaluated design points are memoized in a sharded LRU cache keyed
 * by a canonical digest of the request (path + canonicalized JSON
 * body), sitting above the Workbench's per-workload data cache: the
 * Workbench caches the expensive trace/profile/IW characterization,
 * this cache the whole serialized response.
 */

#ifndef FOSM_SERVER_SERVICE_HH
#define FOSM_SERVER_SERVICE_HH

#include <memory>
#include <string>

#include "experiments/workbench.hh"
#include "server/batch.hh"
#include "server/lru_cache.hh"
#include "server/metrics.hh"
#include "server/persistent_cache.hh"
#include "server/router.hh"
#include "server/trend_studies.hh"

namespace fosm::server {

/** Service tuning knobs. */
struct ServiceConfig
{
    /** Response-cache entries; 0 disables the cache. */
    std::size_t cacheCapacity = 8192;
    std::size_t cacheShards = 8;
    /**
     * In-memory response-cache entry TTL in seconds; 0 keeps the
     * original never-expiring LRU (fosm-serve --cache-ttl-s). The
     * persistent tier is unaffected.
     */
    double cacheTtlS = 0.0;

    /**
     * Directory for the persistent result store (responses +
     * workload characterizations). Empty disables persistence: the
     * server runs memory-only, exactly as before the store existed.
     */
    std::string storeDir;

    /**
     * Largest unfiltered design-space cardinality /v1/optimize will
     * expand; larger spaces are rejected 413 before anything is
     * allocated (fosm-serve --optimize-max-points).
     */
    std::uint64_t optimizeMaxPoints = 65536;

    /**
     * Re-verify the record CRC on every store get (fosm-serve
     * --store-verify-reads). A failed check degrades to a miss,
     * counts store.corruptReads and feeds the scrub/repair channel
     * — it is never a client-visible error.
     */
    bool storeVerifyReads = false;
};

/**
 * Stateless-per-request evaluation service over a shared Workbench.
 * All public methods are thread-safe; handler() may be called from
 * any number of server worker threads.
 */
class ModelService
{
  public:
    ModelService(ServiceConfig config, MetricsRegistry &metrics);

    /**
     * The complete request handler (routing + caching), to be passed
     * to HttpServer.
     */
    HttpServer::Handler handler();

    /** Paths to use as bounded metric labels. */
    std::vector<std::string> metricPaths() const;

    /** Build all 12 workload characterizations up front so the first
     *  queries don't pay the (seconds-long) build. */
    void warmup();

    // Endpoint logic, exposed for direct unit testing. Each throws
    // ServiceError for invalid requests.
    json::Value cpi(const json::Value &request);
    json::Value iwCurve(const json::Value &request);
    json::Value trends(const json::Value &request);
    json::Value storeStats() const;

    /**
     * /v1/batch for a parsed JSON body: many machine configs against
     * one workload, columnar response (server/batch.hh). Invalid
     * rows become per-row error slots; only request-level problems
     * (bad workload, malformed shared blocks, empty or oversized
     * rows) throw ServiceError.
     */
    json::Value batch(const json::Value &request);

    /**
     * The raw /v1/batch HTTP handler: negotiates JSON vs the binary
     * wire format by Content-Type and applies per-chunk deadline
     * shedding from the request's X-Fosm-Deadline-Ms budget.
     */
    HttpResponse batchHttp(const HttpRequest &request);

    /**
     * /v1/optimize for a parsed JSON body: expand a declarative
     * design space, plan the sweep against the response caches,
     * evaluate the misses through the batched kernels, and return
     * the Pareto frontier over the requested objectives
     * (docs/OPTIMIZE.md). Throws ServiceError: 400 malformed spec,
     * 413 cardinality over the row limit, 422 empty or all-
     * infeasible space.
     */
    json::Value optimize(const json::Value &request);

    /**
     * The raw /v1/optimize HTTP handler: adds deadline-aware
     * shedding of the remaining evaluation batches; a shed (partial)
     * frontier returns 206 so only complete responses are memoized.
     */
    HttpResponse optimizeHttp(const HttpRequest &request);

    /**
     * The cache key for a request: schema version + path + canonical
     * JSON body (keys sorted, compact), so semantically equal
     * requests share an entry regardless of member order or
     * whitespace. The version prefix makes persisted entries from an
     * older model vintage invisible instead of silently stale — see
     * common/version.hh.
     */
    static std::string cacheKey(const std::string &path,
                                const json::Value &body);

    Workbench &workbench() { return bench_; }
    const ShardedLruCache<std::string> &cache() const
    {
        return cache_;
    }
    /** Null when persistence is disabled. */
    const PersistentResponseCache *persistentCache() const
    {
        return persistent_.get();
    }
    /** Mutable access for wiring (read-repair hook). */
    PersistentResponseCache *persistentCache()
    {
        return persistent_.get();
    }

    /**
     * Extra document merged into storeStats() under "repl" — wired
     * by fosm-serve to the Replicator's status (ownership split,
     * watermarks, catch-up counters) so GET /v1/store/stats reports
     * replication state per backend. Set before serving traffic.
     */
    void
    setReplStatsProvider(std::function<json::Value()> provider)
    {
        replStats_ = std::move(provider);
    }

    /**
     * Extra document merged into storeStats() under "scrub" — wired
     * by fosm-serve to the Scrubber's counters. Keep it counters
     * only: the gateway sums numeric leaves across backends, and
     * config values would sum into nonsense.
     */
    void
    setScrubStatsProvider(std::function<json::Value()> provider)
    {
        scrubStats_ = std::move(provider);
    }
    const TrendStudies &trendStudies() const { return trends_; }

  private:
    json::Value health() const;

    /**
     * Shared batch core: validate rows, consult the per-row response
     * caches, evaluate the misses through the batched model kernels,
     * write fresh rows back through the caches. request (when
     * non-null) supplies the deadline checked between evaluation
     * chunks; rows past an expired deadline are shed into error
     * slots instead of evaluated.
     */
    batch::Result batchEvaluate(const json::Value &body,
                                const HttpRequest *request);

    /**
     * Shared /v1/optimize core (server/optimize.cc). request (when
     * non-null) supplies the deadline checked between evaluation
     * waves; the document's "complete" member reports whether any
     * batches were shed.
     */
    json::Value optimizeEvaluate(const json::Value &body,
                                 const HttpRequest *request);

    ServiceConfig config_;
    MetricsRegistry &metrics_;
    Workbench bench_;
    ShardedLruCache<std::string> cache_;
    std::shared_ptr<store::PersistentStore> store_;
    std::unique_ptr<PersistentResponseCache> persistent_;
    TrendStudies trends_;
    Router router_;
    std::function<json::Value()> replStats_;
    std::function<json::Value()> scrubStats_;

    Counter &cacheHits_;
    Counter &cacheMisses_;
    Counter &evaluations_;
    Counter &storeRefills_;
    Counter &deadlineShed_;
    Counter &batchRows_;
    Counter &batchRowErrors_;
    Counter &batchShedRows_;
    Counter &optSpaces_;
    Counter &optPointsPlanned_;
    Counter &optPointsDeduped_;
    Counter &optPointsEvaluated_;
    Counter &optIwFits_;
    Counter &optBatchesShed_;
    Counter &optPointsShed_;
};

} // namespace fosm::server

#endif // FOSM_SERVER_SERVICE_HH
