/**
 * @file
 * Memoized Section 6 trend computations for /v1/trends. Sweep
 * requests routinely overlap — a client exploring widths {2,4,6,8}
 * then {2,4,6,8,12} recomputes four of five rows — so each
 * (study, width, sweep-axis, config) row is cached by digest and
 * reused across requests, with an optional persistent tier ("t/"
 * keys in the fosm-store) so rows survive restarts too.
 *
 * Whole sweeps go through the opt sweep planner (opt/planner.hh):
 * every row is probed against the memo and the store *before*
 * anything is scheduled, and only the misses fan out over the thread
 * pool. Rows are pure functions of their inputs, which makes the
 * memo safe and unbounded growth the only risk; the table is cleared
 * wholesale past a generous cap.
 */

#ifndef FOSM_SERVER_TREND_STUDIES_HH
#define FOSM_SERVER_TREND_STUDIES_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "model/trends.hh"
#include "store/store.hh"

namespace fosm::server {

/** One memoized pipeline-depth row (Figure 17, one issue width). */
struct DepthRow
{
    std::vector<PipelineDepthPoint> points;
    PipelineDepthPoint optimal;
};

/** One memoized issue-width row (Figures 18/19, one issue width). */
struct WidthRow
{
    std::vector<SaturationPoint> saturation;
    std::vector<double> issueRamp;
};

class TrendStudies
{
  public:
    /**
     * Attach a persistent tier: rows are probed in the store after a
     * memo miss and written back after computation, so overlapping
     * sweeps dedupe against everything any previous *process*
     * computed, not just this one.
     */
    void setStore(std::shared_ptr<store::PersistentStore> store);

    /**
     * Planner-driven sweep: one row per width, probed against memo +
     * store before scheduling, misses computed in parallel, results
     * in input order.
     */
    std::vector<DepthRow>
    depthRows(const std::vector<std::uint32_t> &widths,
              const std::vector<std::uint32_t> &depths,
              const TrendConfig &config);

    /** Planner-driven width-study sweep; see depthRows. */
    std::vector<WidthRow>
    widthRows(const std::vector<std::uint32_t> &widths,
              const std::vector<double> &fractions,
              const TrendConfig &config);

    /** Cached-or-computed row for one width of a depth sweep. */
    DepthRow depthRow(std::uint32_t width,
                      const std::vector<std::uint32_t> &depths,
                      const TrendConfig &config);

    /** Cached-or-computed row for one width of a width study. */
    WidthRow widthRow(std::uint32_t width,
                      const std::vector<double> &fractions,
                      const TrendConfig &config);

    std::uint64_t
    memoHits() const
    {
        return hits_.load(std::memory_order_relaxed);
    }

    std::uint64_t
    memoMisses() const
    {
        return misses_.load(std::memory_order_relaxed);
    }

    /** Rows served from the persistent tier after a memo miss. */
    std::uint64_t
    storeHits() const
    {
        return storeHits_.load(std::memory_order_relaxed);
    }

    /** Rows actually computed (all tiers missed). */
    std::uint64_t
    computes() const
    {
        return computes_.load(std::memory_order_relaxed);
    }

    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return depthRows_.size() + widthRows_.size();
    }

  private:
    /** Rows memoized per service, not per process. */
    static constexpr std::size_t maxRows = 65536;

    /** Memo-then-store probe; fills row on a hit. */
    bool probeDepth(std::uint64_t key, DepthRow &row);
    bool probeWidth(std::uint64_t key, WidthRow &row);

    /** Insert into the memo (evicting wholesale past the cap) and
     *  write through to the store when attached. */
    void storeDepth(std::uint64_t key, const DepthRow &row);
    void storeWidth(std::uint64_t key, const WidthRow &row);

    mutable std::mutex mutex_;
    std::unordered_map<std::uint64_t, DepthRow> depthRows_;
    std::unordered_map<std::uint64_t, WidthRow> widthRows_;
    std::shared_ptr<store::PersistentStore> store_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> storeHits_{0};
    std::atomic<std::uint64_t> computes_{0};
};

} // namespace fosm::server

#endif // FOSM_SERVER_TREND_STUDIES_HH
