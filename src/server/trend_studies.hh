/**
 * @file
 * Memoized Section 6 trend computations for /v1/trends. Sweep
 * requests routinely overlap — a client exploring widths {2,4,6,8}
 * then {2,4,6,8,12} recomputes four of five rows — so each
 * (study, width, sweep-axis, config) row is cached by digest and
 * reused across requests. Rows are pure functions of their inputs,
 * which makes the memo safe and unbounded growth the only risk; the
 * table is cleared wholesale past a generous cap.
 */

#ifndef FOSM_SERVER_TREND_STUDIES_HH
#define FOSM_SERVER_TREND_STUDIES_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "model/trends.hh"

namespace fosm::server {

/** One memoized pipeline-depth row (Figure 17, one issue width). */
struct DepthRow
{
    std::vector<PipelineDepthPoint> points;
    PipelineDepthPoint optimal;
};

/** One memoized issue-width row (Figures 18/19, one issue width). */
struct WidthRow
{
    std::vector<SaturationPoint> saturation;
    std::vector<double> issueRamp;
};

class TrendStudies
{
  public:
    /** Cached-or-computed row for one width of a depth sweep. */
    DepthRow depthRow(std::uint32_t width,
                      const std::vector<std::uint32_t> &depths,
                      const TrendConfig &config);

    /** Cached-or-computed row for one width of a width study. */
    WidthRow widthRow(std::uint32_t width,
                      const std::vector<double> &fractions,
                      const TrendConfig &config);

    std::uint64_t
    memoHits() const
    {
        return hits_.load(std::memory_order_relaxed);
    }

    std::uint64_t
    memoMisses() const
    {
        return misses_.load(std::memory_order_relaxed);
    }

    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return depthRows_.size() + widthRows_.size();
    }

  private:
    /** Rows memoized per service, not per process. */
    static constexpr std::size_t maxRows = 65536;

    mutable std::mutex mutex_;
    std::unordered_map<std::uint64_t, DepthRow> depthRows_;
    std::unordered_map<std::uint64_t, WidthRow> widthRows_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
};

} // namespace fosm::server

#endif // FOSM_SERVER_TREND_STUDIES_HH
