/**
 * @file
 * POST /v1/optimize: declarative design-space search over the
 * first-order model (docs/OPTIMIZE.md).
 *
 * Request:
 *   { "workload":   "gcc",
 *     "space":      { "width": [2,4,6,8],
 *                     "windowSize": {"from":16,"to":256,"step":16},
 *                     ... },                       // axes
 *     "constraint": "depth <= 20 && width*window <= 1024",
 *     "objectives": ["cpi", "windowSize"]          // or
 *                   [{"expr":"ipc","maximize":true}, ...],
 *     "machine":    { baseline overrides },        // optional
 *     "options":    { model options },             // optional
 *     "limit":      10000 }                        // optional cap
 *
 * The pipeline: expand the axes' cross product (413 if the
 * cardinality exceeds the row limit *before* anything is
 * materialized), filter by the constraint (422 when nothing
 * survives), plan the survivors against the response caches so
 * already-evaluated points are never scheduled, fit one IW
 * characterization per distinct width, evaluate the misses through
 * the SoA batch kernels in deterministic waves (deadline-aware:
 * remaining waves are shed and the partial result goes out as 206),
 * and run the Pareto frontier over the requested objectives.
 *
 * Every evaluated point is cached under its single-request /v1/cpi
 * digest — the same key /v1/cpi and /v1/batch use — so optimize
 * sweeps warm the caches for point queries and vice versa, and the
 * frontier is bit-identical to a client-side /v1/batch enumeration
 * of the same space by construction.
 */

#include "server/service.hh"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/thread_pool.hh"
#include "model/batch_eval.hh"
#include "opt/pareto.hh"
#include "opt/planner.hh"
#include "opt/space.hh"
#include "server/cpi_response.hh"
#include "server/params.hh"

namespace fosm::server {

namespace {

/** Rows per planned evaluation batch: large enough to amortize the
 *  SoA kernel setup, small enough that deadline shedding between
 *  waves has useful granularity. */
constexpr std::size_t kOptBatchRows = 1024;

/** Value range for each sweepable member, mirroring machineFromJson
 *  so an axis can never enumerate a machine the single-request path
 *  would reject. */
struct AxisRange
{
    const char *name;
    std::uint64_t lo;
    std::uint64_t hi;
};

constexpr AxisRange kAxisRanges[] = {
    {"width", 1, 64},
    {"frontEndDepth", 1, 100},
    {"windowSize", 1, 4096},
    {"robSize", 1, 1u << 20},
    {"deltaI", 0, 1000000},
    {"deltaD", 0, 1000000},
    {"deltaT", 0, 1000000},
    {"clusters", 1, 16},
    {"interClusterDelay", 0, 100},
};

const AxisRange &
axisRange(const std::string &member)
{
    for (const AxisRange &r : kAxisRanges)
        if (member == r.name)
            return r;
    // Unreachable: the caller resolved member via
    // machineMemberNames() first.
    return kAxisRanges[0];
}

/** Resolve an axis name (canonical or alias) to its canonical
 *  member, or 400. */
std::string
canonicalAxisName(const std::string &name)
{
    const std::string member = opt::canonicalMemberName(name);
    if (member.empty()) {
        std::string valid;
        for (const std::string &m : opt::machineVariableNames()) {
            if (!valid.empty())
                valid += ", ";
            valid += m;
        }
        badRequest("unknown space axis '" + name +
                   "'; valid: " + valid);
    }
    return member;
}

/** One axis value, validated as an in-range integer. */
std::uint64_t
axisValue(const std::string &member, const json::Value &v)
{
    const AxisRange &range = axisRange(member);
    if (!v.isNumber())
        badRequest("space axis '" + member +
                   "' values must be numbers");
    const double x = v.asDouble();
    if (x < static_cast<double>(range.lo) ||
        x > static_cast<double>(range.hi) || x != std::floor(x)) {
        badRequest("space axis '" + member +
                   "' values must be integers in [" +
                   std::to_string(range.lo) + ", " +
                   std::to_string(range.hi) + "]");
    }
    return static_cast<std::uint64_t>(x);
}

/** Parse one axis spec: [v, ...] or {from, to, step}. */
std::vector<std::uint64_t>
axisValues(const std::string &member, const json::Value &spec,
           std::uint64_t maxPoints)
{
    std::vector<std::uint64_t> values;
    if (spec.isArray()) {
        if (spec.items().size() > maxPoints) {
            throw ServiceError(
                413, "space axis '" + member + "' has " +
                         std::to_string(spec.items().size()) +
                         " values (limit " +
                         std::to_string(maxPoints) + ")");
        }
        for (const json::Value &v : spec.items())
            values.push_back(axisValue(member, v));
        return values;
    }
    if (!spec.isObject()) {
        badRequest("space axis '" + member +
                   "' must be an array of values or a "
                   "{from, to, step} range");
    }
    requireMembers(spec, "range", {"from", "to", "step"});
    if (!spec.find("from") || !spec.find("to"))
        badRequest("space axis '" + member +
                   "' range needs 'from' and 'to'");
    const std::uint64_t from =
        axisValue(member, *spec.find("from"));
    const std::uint64_t to = axisValue(member, *spec.find("to"));
    std::uint64_t step = 1;
    if (const json::Value *s = spec.find("step")) {
        if (!s->isNumber() || s->asDouble() < 1.0 ||
            s->asDouble() !=
                static_cast<double>(
                    static_cast<std::uint64_t>(s->asDouble())))
            badRequest("space axis '" + member +
                       "' step must be a positive integer");
        step = static_cast<std::uint64_t>(s->asDouble());
    }
    if (to < from)
        badRequest("space axis '" + member +
                   "' range has to < from");
    // Count before materializing: a {1, 10^6} delta range must 413
    // without allocating a million values.
    const std::uint64_t count = (to - from) / step + 1;
    if (count > maxPoints) {
        throw ServiceError(413, "space axis '" + member +
                                    "' range has " +
                                    std::to_string(count) +
                                    " values (limit " +
                                    std::to_string(maxPoints) + ")");
    }
    for (std::uint64_t v = from; v <= to; v += step)
        values.push_back(v);
    return values;
}

/** One objective: expression + direction. */
struct Objective
{
    opt::Expr expr;
    bool maximize = false;
};

/** Variables objective expressions may reference: the machine
 *  members (+aliases) followed by the eight result columns. */
const std::vector<std::string> &
objectiveVariableNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v = opt::machineVariableNames();
        for (const char *col :
             {"cpi", "ipc", "ideal", "brmisp", "icacheL1",
              "icacheL2", "dcacheLong", "dtlb"})
            v.emplace_back(col);
        return v;
    }();
    return names;
}

std::vector<Objective>
parseObjectives(const json::Value &body)
{
    std::vector<Objective> objectives;
    const auto parseOne = [&](const std::string &text,
                              bool maximize) {
        Objective o;
        o.maximize = maximize;
        std::string error;
        if (!opt::Expr::parse(text, objectiveVariableNames(), o.expr,
                              &error))
            badRequest("bad objective '" + text + "': " + error);
        objectives.push_back(std::move(o));
    };

    const json::Value *spec = body.find("objectives");
    if (!spec) {
        parseOne("cpi", false);
        return objectives;
    }
    if (!spec->isArray() || spec->items().empty() ||
        spec->items().size() > 4) {
        badRequest("'objectives' must be a non-empty array "
                   "(max 4)");
    }
    for (const json::Value &item : spec->items()) {
        if (item.isString()) {
            parseOne(item.asString(), false);
        } else if (item.isObject()) {
            requireMembers(item, "objective", {"expr", "maximize"});
            const json::Value *expr = item.find("expr");
            if (!expr || !expr->isString())
                badRequest("objective 'expr' (string) is required");
            parseOne(expr->asString(),
                     boolMember(item, "maximize", false));
        } else {
            badRequest("objectives must be expression strings or "
                       "{expr, maximize} objects");
        }
    }
    return objectives;
}

/** Bind one evaluated point for objective evaluation. */
void
bindObjectiveVars(const MachineConfig &machine,
                  const std::array<double, 8> &cols,
                  std::vector<double> &vars)
{
    const auto &members = opt::machineMemberNames();
    const std::size_t nMembers = members.size();
    for (std::size_t i = 0; i < nMembers; ++i)
        vars[i] = static_cast<double>(
            opt::machineMember(machine, members[i]));
    // Aliases: depth, window, rob.
    vars[nMembers + 0] = static_cast<double>(machine.frontEndDepth);
    vars[nMembers + 1] = static_cast<double>(machine.windowSize);
    vars[nMembers + 2] = static_cast<double>(machine.robSize);
    // Result columns: cpi (total), ipc, then the breakdown.
    vars[nMembers + 3] = cols[6];
    vars[nMembers + 4] = cols[7];
    vars[nMembers + 5] = cols[0];
    vars[nMembers + 6] = cols[1];
    vars[nMembers + 7] = cols[2];
    vars[nMembers + 8] = cols[3];
    vars[nMembers + 9] = cols[4];
    vars[nMembers + 10] = cols[5];
}

/** One frontier entry of the response document. */
json::Value
pointJson(const MachineConfig &machine,
          const std::array<double, 8> &cols,
          const std::vector<double> &objectiveValues)
{
    json::Value p = json::Value::object();
    p.set("machine", machineToJson(machine));
    json::Value vals = json::Value::array();
    for (const double v : objectiveValues)
        vals.push(v);
    p.set("objectives", std::move(vals));
    p.set("cpi", cols[6]);
    p.set("ipc", cols[7]);
    return p;
}

} // namespace

json::Value
ModelService::optimizeEvaluate(const json::Value &body,
                               const HttpRequest *request)
{
    if (!body.isObject())
        badRequest("request body must be a JSON object");
    requireMembers(body, "request",
                   {"workload", "space", "constraint", "objectives",
                    "machine", "options", "limit"});
    const std::string workload = workloadMember(body);
    const MachineConfig baseline = machineFromJson(body);
    const ModelOptions options = optionsFromJson(body);

    std::uint64_t cap = config_.optimizeMaxPoints;
    const std::uint32_t limit =
        intMember(body, "limit", 0, 0, 1e9);
    if (limit > 0)
        cap = std::min<std::uint64_t>(cap, limit);

    // -- The space spec -------------------------------------------
    const json::Value *spaceSpec = body.find("space");
    if (!spaceSpec || !spaceSpec->isObject())
        badRequest("'space' (object of member -> values) is "
                   "required");
    const json::Value *machineSpec = body.find("machine");

    opt::SpaceSpec spec;
    spec.baseline = baseline;
    for (const auto &member : spaceSpec->members()) {
        opt::AxisSpec axis;
        axis.name = canonicalAxisName(member.first);
        for (const opt::AxisSpec &prior : spec.axes) {
            if (prior.name == axis.name) {
                badRequest("space axis '" + member.first +
                           "' duplicates '" + axis.name + "'");
            }
        }
        if (machineSpec && machineSpec->find(axis.name)) {
            badRequest("'" + axis.name +
                       "' is both a space axis and a 'machine' "
                       "override");
        }
        axis.values = axisValues(axis.name, member.second, cap);
        spec.axes.push_back(std::move(axis));
    }
    // Canonical member order fixes the enumeration order regardless
    // of the order the request listed the axes in.
    const auto &memberNames = opt::machineMemberNames();
    std::sort(spec.axes.begin(), spec.axes.end(),
              [&](const opt::AxisSpec &a, const opt::AxisSpec &b) {
                  const auto pos = [&](const std::string &n) {
                      return std::find(memberNames.begin(),
                                       memberNames.end(), n) -
                             memberNames.begin();
                  };
                  return pos(a.name) < pos(b.name);
              });

    const std::uint64_t cardinality = spec.cardinality();
    if (cardinality > cap) {
        throw ServiceError(
            413, "design space has " + std::to_string(cardinality) +
                     " points (limit " + std::to_string(cap) +
                     "); tighten the axes or raise "
                     "--optimize-max-points");
    }
    if (cardinality == 0)
        throw ServiceError(422, "design space is empty: an axis has "
                                "no values");

    if (const json::Value *c = body.find("constraint")) {
        if (!c->isString())
            badRequest("'constraint' must be an expression string");
        std::string error;
        if (!opt::Expr::parse(c->asString(),
                              opt::machineVariableNames(),
                              spec.constraint, &error))
            badRequest("bad constraint: " + error);
    }
    const std::vector<Objective> objectives = parseObjectives(body);

    // -- Enumerate + plan -----------------------------------------
    const opt::EnumeratedSpace space = opt::enumerate(spec);
    const std::size_t n = space.machines.size();
    if (n == 0) {
        throw ServiceError(
            422, "no feasible points: the constraint (or the "
                 "cluster-divisibility rule) rejected all " +
                     std::to_string(cardinality) + " points");
    }
    optSpaces_.inc();
    optPointsPlanned_.inc(n);

    const WorkloadData &data = bench_.workload(workload);
    const bool useCache = config_.cacheCapacity > 0;
    const bool keyed = useCache || persistent_ != nullptr;

    // Per-point /v1/cpi digest: workload + machine (baseline
    // overrides layered with this point's axis values) + options —
    // exactly batch::mergedRowBody's shape, so optimize, /v1/batch
    // and /v1/cpi share cache entries.
    std::vector<std::string> keys(n);
    if (keyed) {
        const json::Value *optionsSpec = body.find("options");
        for (std::size_t i = 0; i < n; ++i) {
            json::Value row = json::Value::object();
            row.set("workload", workload);
            if (machineSpec || !spec.axes.empty()) {
                json::Value machine = machineSpec
                                          ? *machineSpec
                                          : json::Value::object();
                for (const opt::AxisSpec &axis : spec.axes) {
                    machine.set(axis.name,
                                opt::machineMember(
                                    space.machines[i], axis.name));
                }
                row.set("machine", std::move(machine));
            }
            if (optionsSpec)
                row.set("options", *optionsSpec);
            keys[i] = cacheKey("/v1/cpi", row);
        }
    }

    std::vector<std::array<double, 8>> cols(n);
    const auto probe = [&](std::size_t i) -> bool {
        if (!keyed)
            return false;
        std::string cached;
        if (useCache && cache_.get(keys[i], cached)) {
            cacheHits_.inc();
            if (extractColumns(cached, cols[i]))
                return true;
        }
        if (useCache)
            cacheMisses_.inc();
        if (persistent_ && persistent_->get(keys[i], cached)) {
            storeRefills_.inc();
            if (useCache)
                cache_.put(keys[i], cached);
            if (extractColumns(cached, cols[i]))
                return true;
        }
        return false;
    };
    const auto charKey = [&](std::size_t i) -> std::uint64_t {
        return space.machines[i].width;
    };
    const opt::SweepPlan plan =
        opt::planSweep(n, probe, charKey, kOptBatchRows);
    optPointsDeduped_.inc(plan.stats.cacheHits);

    // One IW fit per distinct width across the whole space — the
    // characterization sharing the planner exists for.
    std::map<std::uint32_t, IWCharacteristic> fitByWidth;
    for (const std::uint64_t width : plan.characterizationKeys) {
        fitByWidth.emplace(
            static_cast<std::uint32_t>(width),
            Workbench::fitIw(data.iwPoints,
                             data.missProfile.avgLatency,
                             static_cast<std::uint32_t>(width)));
    }
    optIwFits_.inc(plan.characterizationKeys.size());

    // -- Evaluate in deterministic waves --------------------------
    // Batches run wave-by-wave over the global pool; results land in
    // per-point slots, so thread count never affects the output.
    // The deadline is checked between waves: remaining batches are
    // shed and the response reports complete=false.
    std::vector<char> evaluated(n, 0);
    for (const std::size_t i : plan.cached)
        evaluated[i] = 1;
    const auto evalBatch = [&](const std::vector<std::size_t>
                                   &batch) {
        std::vector<IWCharacteristic> iws;
        std::vector<MachineConfig> machines;
        iws.reserve(batch.size());
        machines.reserve(batch.size());
        for (const std::size_t i : batch) {
            machines.push_back(space.machines[i]);
            iws.push_back(fitByWidth.at(space.machines[i].width));
        }
        const std::vector<CpiBreakdown> bs =
            evaluateBatch(iws, machines, data.missProfile, options);
        for (std::size_t k = 0; k < batch.size(); ++k) {
            const std::size_t i = batch[k];
            const CpiBreakdown &b = bs[k];
            cols[i] = {b.ideal,      b.brmisp,  b.icacheL1,
                       b.icacheL2,   b.dcacheLong,
                       b.dtlb,       b.total(), b.ipc()};
            if (keyed) {
                const std::string text =
                    cpiResponseJson(workload, data, machines[k],
                                    iws[k], b)
                        .dump();
                if (useCache)
                    cache_.put(keys[i], text);
                if (persistent_)
                    persistent_->put(keys[i], text);
            }
        }
        evaluations_.inc(batch.size());
    };

    const std::size_t wave =
        std::max<std::size_t>(1, ThreadPool::global().size());
    std::size_t shedFromBatch = plan.batches.size();
    for (std::size_t base = 0; base < plan.batches.size();
         base += wave) {
        if (request && request->deadlineExpired()) {
            shedFromBatch = base;
            break;
        }
        const std::size_t count =
            std::min(wave, plan.batches.size() - base);
        parallelMapIndex(count, [&](std::size_t i) {
            evalBatch(plan.batches[base + i]);
            return 0;
        });
        for (std::size_t i = 0; i < count; ++i)
            for (const std::size_t p : plan.batches[base + i])
                evaluated[p] = 1;
    }
    std::uint64_t shedPoints = 0;
    for (std::size_t b = shedFromBatch; b < plan.batches.size(); ++b)
        shedPoints += plan.batches[b].size();
    if (shedFromBatch < plan.batches.size()) {
        optBatchesShed_.inc(plan.batches.size() - shedFromBatch);
        optPointsShed_.inc(shedPoints);
    }
    const bool complete = shedFromBatch == plan.batches.size();
    optPointsEvaluated_.inc(plan.stats.scheduled - shedPoints);

    // -- Objectives + frontier ------------------------------------
    // Compact the evaluated points in ordinal order so Pareto
    // tie-breaking keys off the enumeration ordinal.
    std::vector<std::size_t> alive;
    alive.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        if (evaluated[i])
            alive.push_back(i);

    const std::size_t nObj = objectives.size();
    std::vector<double> scores(alive.size() * nObj);
    std::vector<std::vector<double>> rawValues(alive.size());
    std::vector<double> vars(objectiveVariableNames().size(), 0.0);
    for (std::size_t a = 0; a < alive.size(); ++a) {
        const std::size_t i = alive[a];
        bindObjectiveVars(space.machines[i], cols[i], vars);
        rawValues[a].reserve(nObj);
        for (std::size_t k = 0; k < nObj; ++k) {
            const double v = objectives[k].expr.eval(vars);
            rawValues[a].push_back(v);
            scores[a * nObj + k] =
                objectives[k].maximize ? -v : v;
        }
    }
    const std::vector<std::size_t> frontier =
        opt::paretoFrontier(scores, nObj);

    // best = the frontier point minimizing objective 0 (first
    // enumeration ordinal on ties).
    std::size_t best = frontier.empty() ? 0 : frontier.front();
    for (const std::size_t f : frontier)
        if (scores[f * nObj] < scores[best * nObj])
            best = f;

    // -- Response -------------------------------------------------
    json::Value out = json::Value::object();
    out.set("workload", workload);
    json::Value spaceOut = json::Value::object();
    spaceOut.set("cardinality", cardinality);
    spaceOut.set("feasible", static_cast<std::uint64_t>(n));
    spaceOut.set("infeasible", space.infeasible);
    spaceOut.set("evaluated",
                 static_cast<std::uint64_t>(alive.size()));
    spaceOut.set("shed", shedPoints);
    out.set("space", std::move(spaceOut));
    json::Value objOut = json::Value::array();
    for (const Objective &o : objectives) {
        json::Value entry = json::Value::object();
        entry.set("expr", o.expr.text());
        entry.set("maximize", o.maximize);
        objOut.push(std::move(entry));
    }
    out.set("objectives", std::move(objOut));
    out.set("complete", complete);
    json::Value frontierOut = json::Value::array();
    for (const std::size_t f : frontier) {
        frontierOut.push(pointJson(space.machines[alive[f]],
                                   cols[alive[f]], rawValues[f]));
    }
    out.set("frontier", std::move(frontierOut));
    if (!frontier.empty()) {
        out.set("best", pointJson(space.machines[alive[best]],
                                  cols[alive[best]],
                                  rawValues[best]));
    }
    json::Value planOut = json::Value::object();
    planOut.set("points", plan.stats.points);
    planOut.set("cacheHits", plan.stats.cacheHits);
    planOut.set("scheduled", plan.stats.scheduled);
    planOut.set("characterizations", plan.stats.characterizations);
    planOut.set("batches", plan.stats.batches);
    planOut.set("batchesShed",
                static_cast<std::uint64_t>(plan.batches.size() -
                                           shedFromBatch));
    out.set("planner", std::move(planOut));
    return out;
}

json::Value
ModelService::optimize(const json::Value &request)
{
    return optimizeEvaluate(request, nullptr);
}

HttpResponse
ModelService::optimizeHttp(const HttpRequest &request)
{
    json::Value body = json::Value::object();
    std::string error;
    if (!request.body.empty() &&
        !json::parse(request.body, body, &error)) {
        return HttpResponse::json(
            400, errorJson("invalid JSON body: " + error));
    }
    try {
        const json::Value result = optimizeEvaluate(body, &request);
        const json::Value *complete = result.find("complete");
        // Partial (deadline-shed) frontiers go out 206 so the
        // whole-request memoization never caches them.
        const int status =
            complete && !complete->asBool(true) ? 206 : 200;
        return HttpResponse::json(status, result.dump());
    } catch (const ServiceError &e) {
        return HttpResponse::json(e.status(), errorJson(e.what()));
    }
}

} // namespace fosm::server
