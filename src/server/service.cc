#include "server/service.hh"

#include <algorithm>
#include <cmath>

#include "common/fault_injector.hh"
#include "common/thread_pool.hh"
#include "common/version.hh"
#include "experiments/characterization_store.hh"
#include "model/trends.hh"

namespace fosm::server {

namespace {

// ---------------------------------------------------------------
// Request parsing helpers. All reject unknown members so typos in a
// request fail loudly instead of silently evaluating the default.
// ---------------------------------------------------------------

[[noreturn]] void
badRequest(const std::string &message)
{
    throw ServiceError(400, message);
}

std::string
errorJson(const std::string &message)
{
    json::Value v = json::Value::object();
    v.set("error", message);
    return v.dump();
}

void
requireMembers(const json::Value &object, const char *what,
               std::initializer_list<const char *> allowed)
{
    for (const auto &member : object.members()) {
        bool known = false;
        for (const char *name : allowed)
            if (member.first == name)
                known = true;
        if (!known) {
            badRequest(std::string("unknown ") + what + " member '" +
                       member.first + "'");
        }
    }
}

double
numberMember(const json::Value &object, const char *name,
             double fallback, double lo, double hi)
{
    const json::Value *v = object.find(name);
    if (!v)
        return fallback;
    if (!v->isNumber())
        badRequest(std::string("'") + name + "' must be a number");
    const double x = v->asDouble();
    if (x < lo || x > hi) {
        badRequest(std::string("'") + name + "' out of range [" +
                   json::formatDouble(lo) + ", " +
                   json::formatDouble(hi) + "]");
    }
    return x;
}

std::uint32_t
intMember(const json::Value &object, const char *name,
          std::uint32_t fallback, double lo, double hi)
{
    const double x =
        numberMember(object, name, fallback, lo, hi);
    if (x != std::floor(x))
        badRequest(std::string("'") + name + "' must be an integer");
    return static_cast<std::uint32_t>(x);
}

bool
boolMember(const json::Value &object, const char *name, bool fallback)
{
    const json::Value *v = object.find(name);
    if (!v)
        return fallback;
    if (!v->isBool())
        badRequest(std::string("'") + name + "' must be a boolean");
    return v->asBool();
}

std::string
workloadMember(const json::Value &request)
{
    const json::Value *v = request.find("workload");
    if (!v || !v->isString())
        badRequest("'workload' (string) is required");
    const std::string name = v->asString();
    const std::vector<std::string> known = Workbench::benchmarks();
    if (std::find(known.begin(), known.end(), name) == known.end()) {
        std::string valid;
        for (const std::string &k : known) {
            if (!valid.empty())
                valid += ", ";
            valid += k;
        }
        badRequest("unknown workload '" + name + "'; valid: " + valid);
    }
    return name;
}

MachineConfig
machineFromJson(const json::Value &request)
{
    MachineConfig machine = Workbench::baselineMachine();
    const json::Value *m = request.find("machine");
    if (!m)
        return machine;
    if (!m->isObject())
        badRequest("'machine' must be an object");
    requireMembers(*m, "machine",
                   {"width", "frontEndDepth", "windowSize", "robSize",
                    "deltaI", "deltaD", "deltaT", "clusters",
                    "interClusterDelay"});
    machine.width = intMember(*m, "width", machine.width, 1, 64);
    machine.frontEndDepth =
        intMember(*m, "frontEndDepth", machine.frontEndDepth, 1, 100);
    machine.windowSize =
        intMember(*m, "windowSize", machine.windowSize, 1, 4096);
    machine.robSize =
        intMember(*m, "robSize", machine.robSize, 1, 1 << 20);
    machine.deltaI = intMember(*m, "deltaI",
                               static_cast<std::uint32_t>(
                                   machine.deltaI),
                               0, 1e6);
    machine.deltaD = intMember(*m, "deltaD",
                               static_cast<std::uint32_t>(
                                   machine.deltaD),
                               0, 1e6);
    machine.deltaT = intMember(*m, "deltaT",
                               static_cast<std::uint32_t>(
                                   machine.deltaT),
                               0, 1e6);
    machine.clusters =
        intMember(*m, "clusters", machine.clusters, 1, 16);
    machine.interClusterDelay =
        intMember(*m, "interClusterDelay",
                  static_cast<std::uint32_t>(
                      machine.interClusterDelay),
                  0, 100);
    if (machine.width % machine.clusters != 0 ||
        machine.windowSize % machine.clusters != 0) {
        badRequest("width and windowSize must be divisible by "
                   "clusters");
    }
    return machine;
}

ModelOptions
optionsFromJson(const json::Value &request)
{
    ModelOptions options;
    const json::Value *o = request.find("options");
    if (!o)
        return options;
    if (!o->isObject())
        badRequest("'options' must be an object");
    requireMembers(*o, "options",
                   {"branchMode", "icacheMode", "dcacheOverlap",
                    "dcacheFirstOrder", "compensateOverlaps",
                    "fetchBufferEntries", "burstGapThreshold"});

    if (const json::Value *v = o->find("branchMode")) {
        const std::string &mode = v->asString();
        if (mode == "paper-average")
            options.branchMode = BranchPenaltyMode::PaperAverage;
        else if (mode == "isolated")
            options.branchMode = BranchPenaltyMode::Isolated;
        else if (mode == "burst-aware")
            options.branchMode = BranchPenaltyMode::BurstAware;
        else
            badRequest("unknown branchMode '" + mode +
                       "'; valid: paper-average, isolated, "
                       "burst-aware");
    }
    if (const json::Value *v = o->find("icacheMode")) {
        const std::string &mode = v->asString();
        if (mode == "miss-delay")
            options.icacheMode = IcachePenaltyMode::MissDelay;
        else if (mode == "isolated")
            options.icacheMode = IcachePenaltyMode::Isolated;
        else
            badRequest("unknown icacheMode '" + mode +
                       "'; valid: miss-delay, isolated");
    }
    options.dcacheOverlap =
        boolMember(*o, "dcacheOverlap", options.dcacheOverlap);
    options.dcacheFirstOrder =
        boolMember(*o, "dcacheFirstOrder", options.dcacheFirstOrder);
    options.compensateOverlaps = boolMember(
        *o, "compensateOverlaps", options.compensateOverlaps);
    options.fetchBufferEntries =
        intMember(*o, "fetchBufferEntries",
                  options.fetchBufferEntries, 0, 1 << 16);
    options.burstGapThreshold =
        intMember(*o, "burstGapThreshold",
                  static_cast<std::uint32_t>(
                      options.burstGapThreshold),
                  1, 1 << 20);
    return options;
}

json::Value
machineToJson(const MachineConfig &machine)
{
    json::Value m = json::Value::object();
    m.set("width", machine.width);
    m.set("frontEndDepth", machine.frontEndDepth);
    m.set("windowSize", machine.windowSize);
    m.set("robSize", machine.robSize);
    m.set("deltaI", static_cast<std::uint64_t>(machine.deltaI));
    m.set("deltaD", static_cast<std::uint64_t>(machine.deltaD));
    m.set("clusters", machine.clusters);
    m.set("interClusterDelay",
          static_cast<std::uint64_t>(machine.interClusterDelay));
    return m;
}

std::vector<std::uint32_t>
intArrayMember(const json::Value &request, const char *name,
               std::vector<std::uint32_t> fallback, double lo,
               double hi, std::size_t maxItems)
{
    const json::Value *v = request.find(name);
    if (!v)
        return fallback;
    if (!v->isArray() || v->items().empty())
        badRequest(std::string("'") + name +
                   "' must be a non-empty array of integers");
    if (v->items().size() > maxItems)
        badRequest(std::string("'") + name + "' too long (max " +
                   std::to_string(maxItems) + ")");
    std::vector<std::uint32_t> out;
    out.reserve(v->items().size());
    for (const json::Value &item : v->items()) {
        if (!item.isNumber() ||
            item.asDouble() != std::floor(item.asDouble()) ||
            item.asDouble() < lo || item.asDouble() > hi) {
            badRequest(std::string("'") + name +
                       "' entries must be integers in [" +
                       json::formatDouble(lo) + ", " +
                       json::formatDouble(hi) + "]");
        }
        out.push_back(static_cast<std::uint32_t>(item.asDouble()));
    }
    return out;
}

TrendConfig
trendConfigFromJson(const json::Value &request)
{
    TrendConfig config;
    const json::Value *c = request.find("config");
    if (!c)
        return config;
    if (!c->isObject())
        badRequest("'config' must be an object");
    requireMembers(*c, "config",
                   {"alpha", "beta", "avgLatency", "branchFraction",
                    "mispredictRate", "totalLogicPs", "flipFlopPs"});
    config.alpha =
        numberMember(*c, "alpha", config.alpha, 0.01, 100.0);
    config.beta = numberMember(*c, "beta", config.beta, 0.01, 1.0);
    config.avgLatency =
        numberMember(*c, "avgLatency", config.avgLatency, 1.0, 100.0);
    config.branchFraction = numberMember(
        *c, "branchFraction", config.branchFraction, 0.0, 1.0);
    config.mispredictRate = numberMember(
        *c, "mispredictRate", config.mispredictRate, 0.0, 1.0);
    config.totalLogicPs = numberMember(*c, "totalLogicPs",
                                       config.totalLogicPs, 100.0,
                                       1e6);
    config.flipFlopPs = numberMember(*c, "flipFlopPs",
                                     config.flipFlopPs, 1.0, 1e4);
    return config;
}

} // namespace

ModelService::ModelService(ServiceConfig config,
                           MetricsRegistry &metrics)
    : config_(config), metrics_(metrics),
      cache_(config.cacheCapacity, config.cacheShards),
      cacheHits_(metrics.counter("fosm_cache_hits_total",
                                 "Design-point cache hits")),
      cacheMisses_(metrics.counter("fosm_cache_misses_total",
                                   "Design-point cache misses")),
      evaluations_(metrics.counter(
          "fosm_model_evaluations_total",
          "First-order model evaluations performed")),
      storeRefills_(metrics.counter(
          "fosm_store_refills_total",
          "Responses served from the persistent store after an LRU "
          "miss")),
      deadlineShed_(metrics.counter(
          "fosm_deadline_shed_total",
          "Requests answered 504 because their deadline expired "
          "before model evaluation started",
          "stage=\"pre-eval\""))
{
    if (!config_.storeDir.empty()) {
        store::StoreConfig sc;
        sc.dir = config_.storeDir;
        store_ = std::make_shared<store::PersistentStore>(sc);
        persistent_ =
            std::make_unique<PersistentResponseCache>(store_);
        bench_.setCharacterizationStore(
            std::make_shared<CharacterizationStore>(store_));

        metrics_.addCallbackGauge(
            "fosm_store_live_records",
            "Live records in the persistent store", [this] {
                return static_cast<double>(
                    store_->stats().liveRecords);
            });
        metrics_.addCallbackGauge(
            "fosm_store_live_bytes",
            "Bytes of live data in the persistent store", [this] {
                return static_cast<double>(store_->stats().liveBytes);
            });
        metrics_.addCallbackGauge(
            "fosm_store_dead_bytes",
            "Bytes awaiting compaction in the persistent store",
            [this] {
                return static_cast<double>(store_->stats().deadBytes);
            });
        metrics_.addCallbackGauge(
            "fosm_store_segments",
            "Segment files in the persistent store", [this] {
                return static_cast<double>(store_->stats().segments);
            });
        metrics_.addCallbackGauge(
            "fosm_store_compactions_total",
            "Compactions performed since this store opened", [this] {
                return static_cast<double>(
                    store_->stats().compactions);
            });
    }

    metrics_.addCallbackGauge(
        "fosm_cache_entries", "Design points currently cached",
        [this] { return static_cast<double>(cache_.size()); });
    metrics_.addCallbackGauge(
        "fosm_cache_hit_rate", "Lifetime cache hit fraction",
        [this] { return cache_.hitRate(); });
    metrics_.addCallbackGauge(
        "fosm_trend_memo_rows", "Memoized trend-study rows",
        [this] { return static_cast<double>(trends_.size()); });

    router_.addJson("POST", "/v1/cpi",
                    [this](const json::Value &request) {
                        return cpi(request);
                    });
    router_.addJson("POST", "/v1/iw-curve",
                    [this](const json::Value &request) {
                        return iwCurve(request);
                    });
    router_.addJson("POST", "/v1/trends",
                    [this](const json::Value &request) {
                        return trends(request);
                    });
    router_.add("GET", "/healthz", [this](const HttpRequest &) {
        return HttpResponse::json(200, health().dump());
    });
    router_.add("GET", "/v1/store/stats",
                [this](const HttpRequest &) {
                    return HttpResponse::json(200,
                                              storeStats().dump());
                });
    router_.add("GET", "/metrics", [this](const HttpRequest &) {
        HttpResponse r = HttpResponse::text(
            200, metrics_.renderPrometheus());
        r.headers.clear();
        r.setHeader("Content-Type",
                    "text/plain; version=0.0.4; charset=utf-8");
        return r;
    });
}

std::string
ModelService::cacheKey(const std::string &path,
                       const json::Value &body)
{
    return "v" + std::to_string(modelSchemaVersion) + "\n" + path +
           "\n" + body.canonical();
}

std::vector<std::string>
ModelService::metricPaths() const
{
    return router_.paths();
}

void
ModelService::warmup()
{
    bench_.buildAll();
}

json::Value
ModelService::storeStats() const
{
    json::Value v = json::Value::object();
    v.set("enabled", static_cast<bool>(store_));
    json::Value memo = json::Value::object();
    memo.set("trendRows", static_cast<std::uint64_t>(trends_.size()));
    memo.set("trendHits", trends_.memoHits());
    memo.set("trendMisses", trends_.memoMisses());
    v.set("memo", std::move(memo));
    if (!store_)
        return v;
    const store::StoreStats s = store_->stats();
    v.set("dir", config_.storeDir);
    v.set("schemaVersion",
          static_cast<std::uint64_t>(modelSchemaVersion));
    json::Value d = json::Value::object();
    d.set("segments", s.segments);
    d.set("liveRecords", s.liveRecords);
    d.set("deadRecords", s.deadRecords);
    d.set("liveBytes", s.liveBytes);
    d.set("deadBytes", s.deadBytes);
    d.set("totalBytes", s.totalBytes);
    d.set("appends", s.appends);
    d.set("gets", s.gets);
    d.set("hits", s.hits);
    d.set("compactions", s.compactions);
    d.set("truncatedTails", s.truncatedTails);
    v.set("store", std::move(d));
    v.set("responseRefills", persistent_->storeHits());
    return v;
}

json::Value
ModelService::health() const
{
    json::Value v = json::Value::object();
    v.set("status", "ok");
    v.set("service", "fosm-serve");
    v.set("workloads",
          static_cast<std::uint64_t>(Workbench::benchmarks().size()));
    return v;
}

HttpServer::Handler
ModelService::handler()
{
    return [this](const HttpRequest &request) -> HttpResponse {
        // Chaos hook: lets the fault harness make this replica slow
        // or failing while /healthz stays green — the exact failure
        // mode circuit breakers exist for.
        if (FaultInjector::active()) {
            const FaultAction fault = faultAt("serve.handler");
            faultSleep(fault);
            if (fault.kind == FaultKind::Error) {
                return HttpResponse::json(
                    500, errorJson("injected fault"));
            }
        }
        // Memoize successful POST /v1/* evaluations by canonical
        // request digest. The parse needed for canonicalization is
        // trivial next to the evaluation (and the cache makes even
        // that skippable for the response itself).
        const std::string path = request.path();
        const bool cacheable = request.method == "POST" &&
                               path.rfind("/v1/", 0) == 0;
        if (cacheable) {
            json::Value body = json::Value::object();
            std::string error;
            if (request.body.empty() ||
                json::parse(request.body, body, &error)) {
                const std::string key = cacheKey(path, body);
                std::string cached;
                if (cache_.get(key, cached)) {
                    cacheHits_.inc();
                    return HttpResponse::json(200, cached);
                }
                cacheMisses_.inc();
                // Second tier: the persistent store. A hit serves
                // the byte-identical response a previous process
                // computed, and repopulates the LRU.
                if (persistent_ && persistent_->get(key, cached)) {
                    storeRefills_.inc();
                    cache_.put(key, cached);
                    return HttpResponse::json(200, cached);
                }
                // Both caches missed, so real evaluation is next.
                // If the budget is already spent the waiter has
                // timed out; don't burn the cycles.
                if (request.deadlineExpired()) {
                    deadlineShed_.inc();
                    return HttpResponse::json(
                        504,
                        errorJson(
                            "deadline exceeded before evaluation"));
                }
                HttpResponse response = router_.route(request);
                if (response.status == 200) {
                    cache_.put(key, response.body);
                    if (persistent_)
                        persistent_->put(key, response.body);
                }
                return response;
            }
            // Malformed body: let the router produce the 400.
        }
        return router_.route(request);
    };
}

json::Value
ModelService::cpi(const json::Value &request)
{
    if (!request.isObject())
        badRequest("request body must be a JSON object");
    requireMembers(request, "request",
                   {"workload", "machine", "options"});
    const std::string workload = workloadMember(request);
    const MachineConfig machine = machineFromJson(request);
    const ModelOptions options = optionsFromJson(request);

    const WorkloadData &data = bench_.workload(workload);
    const IWCharacteristic iw = Workbench::fitIw(
        data.iwPoints, data.missProfile.avgLatency, machine.width);
    const FirstOrderModel model(machine, options);
    const CpiBreakdown b = model.evaluate(iw, data.missProfile);
    evaluations_.inc();

    json::Value out = json::Value::object();
    out.set("workload", workload);
    out.set("instructions", data.missProfile.instructions);
    out.set("machine", machineToJson(machine));

    json::Value fit = json::Value::object();
    fit.set("alpha", iw.alpha());
    fit.set("beta", iw.beta());
    fit.set("avgLatency", iw.avgLatency());
    fit.set("r2", iw.fitR2());
    out.set("iw", std::move(fit));

    json::Value cpi = json::Value::object();
    cpi.set("ideal", b.ideal);
    cpi.set("brmisp", b.brmisp);
    cpi.set("icacheL1", b.icacheL1);
    cpi.set("icacheL2", b.icacheL2);
    cpi.set("dcacheLong", b.dcacheLong);
    cpi.set("dtlb", b.dtlb);
    cpi.set("total", b.total());
    out.set("cpi", std::move(cpi));
    out.set("ipc", b.ipc());

    json::Value penalties = json::Value::object();
    penalties.set("branchPerEvent", b.branchPenaltyPerEvent);
    penalties.set("icachePerEvent", b.icachePenaltyPerEvent);
    penalties.set("dcachePerEvent", b.dcachePenaltyPerEvent);
    penalties.set("ldmOverlapFactor", b.ldmOverlapFactor);
    out.set("penalties", std::move(penalties));
    return out;
}

json::Value
ModelService::iwCurve(const json::Value &request)
{
    if (!request.isObject())
        badRequest("request body must be a JSON object");
    requireMembers(request, "request",
                   {"workload", "windows", "width"});
    const std::string workload = workloadMember(request);
    const std::uint32_t width = intMember(request, "width", 4, 0, 64);
    const std::vector<std::uint32_t> windows =
        intArrayMember(request, "windows", {}, 1, 4096, 64);

    const WorkloadData &data = bench_.workload(workload);
    std::vector<IwPoint> points;
    if (windows.empty()) {
        // The standard Figure 4 sweep is part of the cached
        // characterization.
        points = data.iwPoints;
    } else {
        // Custom sweep: re-measure on the cached trace.
        // measureIwCurve fans the window sizes out over the global
        // thread pool internally.
        WindowSimConfig config;
        config.unitLatency = true;
        config.issueWidth = 0;
        points = measureIwCurve(data.trace, windows, config);
    }
    const IWCharacteristic fit = Workbench::fitIw(
        points, data.missProfile.avgLatency, width);

    json::Value out = json::Value::object();
    out.set("workload", workload);
    out.set("width", width);
    out.set("avgLatency", data.missProfile.avgLatency);
    json::Value arr = json::Value::array();
    for (const IwPoint &p : points) {
        json::Value point = json::Value::object();
        point.set("window", p.windowSize);
        point.set("ipc", p.ipc);
        arr.push(std::move(point));
    }
    out.set("points", std::move(arr));
    json::Value f = json::Value::object();
    f.set("alpha", fit.alpha());
    f.set("beta", fit.beta());
    f.set("r2", fit.fitR2());
    out.set("fit", std::move(f));
    return out;
}

json::Value
ModelService::trends(const json::Value &request)
{
    if (!request.isObject())
        badRequest("request body must be a JSON object");
    requireMembers(request, "request",
                   {"study", "widths", "depths", "fractions",
                    "config"});
    const json::Value *studyMember = request.find("study");
    if (!studyMember || !studyMember->isString())
        badRequest("'study' (string) is required: pipeline-depth or "
                   "issue-width");
    const std::string study = studyMember->asString();
    const TrendConfig config = trendConfigFromJson(request);
    const std::vector<std::uint32_t> widths = intArrayMember(
        request, "widths", {2, 4, 6, 8}, 1, 64, 32);

    json::Value out = json::Value::object();
    out.set("study", study);
    json::Value series = json::Value::array();

    if (study == "pipeline-depth") {
        std::vector<std::uint32_t> depths =
            intArrayMember(request, "depths", {}, 1, 200, 256);
        if (depths.empty())
            for (std::uint32_t d = 1; d <= 30; ++d)
                depths.push_back(d);
        // One task per issue width on the global pool (the PR 1
        // experiment engine); results come back in input order.
        // Rows hit the TrendStudies memo when a previous sweep
        // already computed this (width, depths, config).
        const auto rows = parallelMap(
            widths, [&](std::uint32_t width) {
                return trends_.depthRow(width, depths, config);
            });
        for (std::size_t i = 0; i < widths.size(); ++i) {
            json::Value entry = json::Value::object();
            entry.set("width", widths[i]);
            json::Value points = json::Value::array();
            for (const PipelineDepthPoint &p : rows[i].points) {
                json::Value point = json::Value::object();
                point.set("depth", p.depth);
                point.set("ipc", p.ipc);
                point.set("clockGhz", p.clockGhz);
                point.set("bips", p.bips);
                points.push(std::move(point));
            }
            entry.set("points", std::move(points));
            json::Value best = json::Value::object();
            best.set("depth", rows[i].optimal.depth);
            best.set("bips", rows[i].optimal.bips);
            entry.set("optimal", std::move(best));
            series.push(std::move(entry));
        }
    } else if (study == "issue-width") {
        std::vector<double> fractions = {0.5, 0.8, 0.9, 0.95, 0.99};
        if (const json::Value *f = request.find("fractions")) {
            if (!f->isArray() || f->items().empty() ||
                f->items().size() > 32) {
                badRequest("'fractions' must be a non-empty array "
                           "(max 32)");
            }
            fractions.clear();
            for (const json::Value &item : f->items()) {
                if (!item.isNumber() || item.asDouble() <= 0.0 ||
                    item.asDouble() >= 1.0) {
                    badRequest("'fractions' entries must be in "
                               "(0, 1)");
                }
                fractions.push_back(item.asDouble());
            }
        }
        const auto rows = parallelMap(
            widths, [&](std::uint32_t width) {
                return trends_.widthRow(width, fractions, config);
            });
        for (std::size_t i = 0; i < widths.size(); ++i) {
            json::Value entry = json::Value::object();
            entry.set("width", widths[i]);
            json::Value points = json::Value::array();
            for (const SaturationPoint &p : rows[i].saturation) {
                json::Value point = json::Value::object();
                point.set("timeFraction", p.timeFraction);
                point.set("instructionsBetween",
                          p.instructionsBetween);
                points.push(std::move(point));
            }
            entry.set("points", std::move(points));
            json::Value ramp = json::Value::array();
            for (const double rate : rows[i].issueRamp)
                ramp.push(rate);
            entry.set("issueRamp", std::move(ramp));
            series.push(std::move(entry));
        }
    } else {
        badRequest("unknown study '" + study +
                   "'; valid: pipeline-depth, issue-width");
    }
    out.set("series", std::move(series));
    return out;
}

} // namespace fosm::server
