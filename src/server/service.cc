#include "server/service.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>

#include "common/fault_injector.hh"
#include "common/thread_pool.hh"
#include "common/version.hh"
#include "experiments/characterization_store.hh"
#include "model/batch_eval.hh"
#include "model/trends.hh"
#include "server/cpi_response.hh"
#include "server/params.hh"

namespace fosm::server {

/**
 * The /v1/cpi response document (cpi_response.hh). Shared by the
 * single-request endpoint, the batch path and /v1/optimize, which
 * cache each row under its /v1/cpi digest: all must produce
 * byte-identical documents for the same design point.
 */
json::Value
cpiResponseJson(const std::string &workload, const WorkloadData &data,
                const MachineConfig &machine,
                const IWCharacteristic &iw, const CpiBreakdown &b)
{
    json::Value out = json::Value::object();
    out.set("workload", workload);
    out.set("instructions", data.missProfile.instructions);
    out.set("machine", machineToJson(machine));

    json::Value fit = json::Value::object();
    fit.set("alpha", iw.alpha());
    fit.set("beta", iw.beta());
    fit.set("avgLatency", iw.avgLatency());
    fit.set("r2", iw.fitR2());
    out.set("iw", std::move(fit));

    json::Value cpi = json::Value::object();
    cpi.set("ideal", b.ideal);
    cpi.set("brmisp", b.brmisp);
    cpi.set("icacheL1", b.icacheL1);
    cpi.set("icacheL2", b.icacheL2);
    cpi.set("dcacheLong", b.dcacheLong);
    cpi.set("dtlb", b.dtlb);
    cpi.set("total", b.total());
    out.set("cpi", std::move(cpi));
    out.set("ipc", b.ipc());

    json::Value penalties = json::Value::object();
    penalties.set("branchPerEvent", b.branchPenaltyPerEvent);
    penalties.set("icachePerEvent", b.icachePenaltyPerEvent);
    penalties.set("dcachePerEvent", b.dcachePenaltyPerEvent);
    penalties.set("ldmOverlapFactor", b.ldmOverlapFactor);
    out.set("penalties", std::move(penalties));
    return out;
}

/** Inverse of the above for cached rows — see cpi_response.hh. */
bool
extractColumns(const std::string &responseText,
               std::array<double, 8> &cols)
{
    json::Value doc;
    if (!json::parse(responseText, doc, nullptr))
        return false;
    const json::Value *cpi = doc.find("cpi");
    const json::Value *ipc = doc.find("ipc");
    if (!cpi || !cpi->isObject() || !ipc || !ipc->isNumber())
        return false;
    static constexpr const char *kNames[] = {
        "ideal",      "brmisp", "icacheL1", "icacheL2",
        "dcacheLong", "dtlb",   "total",
    };
    for (std::size_t i = 0; i < 7; ++i) {
        const json::Value *v = cpi->find(kNames[i]);
        if (!v || !v->isNumber())
            return false;
        cols[i] = v->asDouble();
    }
    cols[7] = ipc->asDouble();
    return true;
}


ModelService::ModelService(ServiceConfig config,
                           MetricsRegistry &metrics)
    : config_(config), metrics_(metrics),
      cache_(config.cacheCapacity, config.cacheShards,
             config.cacheTtlS),
      cacheHits_(metrics.counter("fosm_cache_hits_total",
                                 "Design-point cache hits")),
      cacheMisses_(metrics.counter("fosm_cache_misses_total",
                                   "Design-point cache misses")),
      evaluations_(metrics.counter(
          "fosm_model_evaluations_total",
          "First-order model evaluations performed")),
      storeRefills_(metrics.counter(
          "fosm_store_refills_total",
          "Responses served from the persistent store after an LRU "
          "miss")),
      deadlineShed_(metrics.counter(
          "fosm_deadline_shed_total",
          "Requests answered 504 because their deadline expired "
          "before model evaluation started",
          "stage=\"pre-eval\"")),
      batchRows_(metrics.counter("fosm_batch_rows_total",
                                 "Design points received via "
                                 "/v1/batch")),
      batchRowErrors_(metrics.counter(
          "fosm_batch_row_errors_total",
          "Batch rows answered with a per-row error slot")),
      batchShedRows_(metrics.counter(
          "fosm_batch_shed_rows_total",
          "Batch rows shed unevaluated because the request deadline "
          "expired mid-batch")),
      optSpaces_(metrics.counter("fosm_opt_spaces_total",
                                 "Design spaces evaluated via "
                                 "/v1/optimize")),
      optPointsPlanned_(metrics.counter(
          "fosm_opt_points_planned_total",
          "Feasible design points handed to the sweep planner")),
      optPointsDeduped_(metrics.counter(
          "fosm_opt_points_deduped_total",
          "Planned points answered from the response caches and "
          "never scheduled")),
      optPointsEvaluated_(metrics.counter(
          "fosm_opt_points_evaluated_total",
          "Planned points evaluated through the batched kernels")),
      optIwFits_(metrics.counter(
          "fosm_opt_iw_fits_total",
          "Distinct IW characterizations fit per optimize sweep "
          "(one per distinct width, not per point)")),
      optBatchesShed_(metrics.counter(
          "fosm_opt_batches_shed_total",
          "Optimize evaluation batches shed because the request "
          "deadline expired mid-sweep")),
      optPointsShed_(metrics.counter(
          "fosm_opt_points_shed_total",
          "Design points inside shed optimize batches"))
{
    if (!config_.storeDir.empty()) {
        store::StoreConfig sc;
        sc.dir = config_.storeDir;
        sc.verifyOnRead = config_.storeVerifyReads;
        store_ = std::make_shared<store::PersistentStore>(sc);
        // Startup schema pin: cache keys already carry the schema
        // version, so entries from another vintage can never be
        // *served* — but a version flip would leave every "r/" entry
        // silently unreachable while the store keeps growing. Refuse
        // to open such a store so the operator deletes or migrates it
        // deliberately instead of serving out of an all-miss cache.
        const std::string schemaKey = "m/schemaVersion";
        const std::string current =
            std::to_string(modelSchemaVersion);
        std::string persisted;
        if (store_->get(schemaKey, persisted)) {
            if (persisted != current) {
                throw std::runtime_error(
                    "persistent store '" + config_.storeDir +
                    "' was written under model schema version " +
                    persisted + " but this build is version " +
                    current +
                    "; refusing to serve its stale 'r/' entries — "
                    "remove the store directory (or point at a "
                    "fresh one) to continue");
            }
        } else {
            store_->put(schemaKey, current);
        }
        persistent_ =
            std::make_unique<PersistentResponseCache>(store_);
        bench_.setCharacterizationStore(
            std::make_shared<CharacterizationStore>(store_));
        trends_.setStore(store_);

        metrics_.addCallbackGauge(
            "fosm_store_live_records",
            "Live records in the persistent store", [this] {
                return static_cast<double>(
                    store_->stats().liveRecords);
            });
        metrics_.addCallbackGauge(
            "fosm_store_live_bytes",
            "Bytes of live data in the persistent store", [this] {
                return static_cast<double>(store_->stats().liveBytes);
            });
        metrics_.addCallbackGauge(
            "fosm_store_dead_bytes",
            "Bytes awaiting compaction in the persistent store",
            [this] {
                return static_cast<double>(store_->stats().deadBytes);
            });
        metrics_.addCallbackGauge(
            "fosm_store_segments",
            "Segment files in the persistent store", [this] {
                return static_cast<double>(store_->stats().segments);
            });
        metrics_.addCallbackGauge(
            "fosm_store_compactions_total",
            "Compactions performed since this store opened", [this] {
                return static_cast<double>(
                    store_->stats().compactions);
            });
        metrics_.addCallbackGauge(
            "fosm_store_corrupt_reads_total",
            "CRC-failed gets degraded to misses", [this] {
                return static_cast<double>(
                    store_->stats().corruptReads);
            });
        metrics_.addCallbackGauge(
            "fosm_store_quarantine_live",
            "Corrupt records currently quarantined (q/ marks)",
            [this] {
                return static_cast<double>(
                    store_->stats().quarantineLive);
            });
    }

    metrics_.addCallbackGauge(
        "fosm_cache_entries", "Design points currently cached",
        [this] { return static_cast<double>(cache_.size()); });
    metrics_.addCallbackGauge(
        "fosm_cache_hit_rate", "Lifetime cache hit fraction",
        [this] { return cache_.hitRate(); });
    metrics_.addCallbackGauge(
        "fosm_trend_memo_rows", "Memoized trend-study rows",
        [this] { return static_cast<double>(trends_.size()); });
    metrics_.addCallbackGauge(
        "fosm_trend_row_computes_total",
        "Trend rows computed (memo and store both missed)",
        [this] { return static_cast<double>(trends_.computes()); });

    router_.addJson("POST", "/v1/cpi",
                    [this](const json::Value &request) {
                        return cpi(request);
                    });
    router_.addJson("POST", "/v1/iw-curve",
                    [this](const json::Value &request) {
                        return iwCurve(request);
                    });
    router_.addJson("POST", "/v1/trends",
                    [this](const json::Value &request) {
                        return trends(request);
                    });
    // Raw route: /v1/batch negotiates the binary wire format by
    // Content-Type and reads the request deadline, so it needs the
    // HttpRequest, not just a parsed JSON body.
    router_.add("POST", "/v1/batch", [this](const HttpRequest &r) {
        return batchHttp(r);
    });
    // Raw route: /v1/optimize reads the request deadline to shed
    // remaining evaluation waves (partial results go out as 206).
    router_.add("POST", "/v1/optimize",
                [this](const HttpRequest &r) {
                    return optimizeHttp(r);
                });
    router_.add("GET", "/healthz", [this](const HttpRequest &) {
        return HttpResponse::json(200, health().dump());
    });
    router_.add("GET", "/v1/store/stats",
                [this](const HttpRequest &) {
                    return HttpResponse::json(200,
                                              storeStats().dump());
                });
    router_.add("GET", "/metrics", [this](const HttpRequest &) {
        HttpResponse r = HttpResponse::text(
            200, metrics_.renderPrometheus());
        r.headers.clear();
        r.setHeader("Content-Type",
                    "text/plain; version=0.0.4; charset=utf-8");
        return r;
    });
}

std::string
ModelService::cacheKey(const std::string &path,
                       const json::Value &body)
{
    return "v" + std::to_string(modelSchemaVersion) + "\n" + path +
           "\n" + body.canonical();
}

std::vector<std::string>
ModelService::metricPaths() const
{
    return router_.paths();
}

void
ModelService::warmup()
{
    bench_.buildAll();
}

json::Value
ModelService::storeStats() const
{
    json::Value v = json::Value::object();
    v.set("enabled", static_cast<bool>(store_));
    json::Value memo = json::Value::object();
    memo.set("trendRows", static_cast<std::uint64_t>(trends_.size()));
    memo.set("trendHits", trends_.memoHits());
    memo.set("trendMisses", trends_.memoMisses());
    memo.set("trendStoreHits", trends_.storeHits());
    memo.set("trendComputes", trends_.computes());
    v.set("memo", std::move(memo));
    if (!store_)
        return v;
    const store::StoreStats s = store_->stats();
    v.set("dir", config_.storeDir);
    v.set("schemaVersion",
          static_cast<std::uint64_t>(modelSchemaVersion));
    json::Value d = json::Value::object();
    d.set("segments", s.segments);
    d.set("liveRecords", s.liveRecords);
    d.set("deadRecords", s.deadRecords);
    d.set("liveBytes", s.liveBytes);
    d.set("deadBytes", s.deadBytes);
    d.set("totalBytes", s.totalBytes);
    d.set("appends", s.appends);
    d.set("gets", s.gets);
    d.set("hits", s.hits);
    d.set("compactions", s.compactions);
    d.set("truncatedTails", s.truncatedTails);
    d.set("maxLsn", s.maxLsn);
    d.set("corruptReads", s.corruptReads);
    d.set("quarantined", s.quarantined);
    d.set("quarantineLive", s.quarantineLive);
    // Per-segment LSN watermarks and entry counts: the metadata the
    // anti-entropy sweep keys its incremental catch-up on, exposed
    // for fosm-store watermarks and operators chasing replica lag.
    json::Value segments = json::Value::array();
    for (const store::SegmentLsnInfo &info : store_->segmentLsns()) {
        json::Value seg = json::Value::object();
        seg.set("id", info.id);
        seg.set("records", info.records);
        seg.set("liveRecords", info.liveRecords);
        seg.set("bytes", info.bytes);
        seg.set("minLsn", info.minLsn);
        seg.set("maxLsn", info.maxLsn);
        seg.set("sealed", info.sealed);
        segments.push(std::move(seg));
    }
    d.set("segmentLsns", std::move(segments));
    v.set("store", std::move(d));
    v.set("responseRefills", persistent_->storeHits());
    v.set("responseRepairs", persistent_->readRepairs());
    if (replStats_)
        v.set("repl", replStats_());
    if (scrubStats_)
        v.set("scrub", scrubStats_());
    return v;
}

json::Value
ModelService::health() const
{
    json::Value v = json::Value::object();
    v.set("status", "ok");
    v.set("service", "fosm-serve");
    v.set("workloads",
          static_cast<std::uint64_t>(Workbench::benchmarks().size()));
    return v;
}

HttpServer::Handler
ModelService::handler()
{
    return [this](const HttpRequest &request) -> HttpResponse {
        const std::string path = request.path();
        // Chaos hook: lets the fault harness make this replica slow
        // or failing while /healthz stays green — the exact failure
        // mode circuit breakers exist for. /metrics stays exempt too
        // so the harness can keep scraping a faulted replica. faultAt
        // also arms FOSM_FAULTS on first use; guarding the call on
        // active() here would keep the env config unread.
        if (path != "/healthz" && path != "/metrics") {
            const FaultAction fault = faultAt("serve.handler");
            if (fault.kind != FaultKind::None) {
                faultSleep(fault);
                if (fault.kind == FaultKind::Error) {
                    return HttpResponse::json(
                        500, errorJson("injected fault"));
                }
            }
        }
        // Memoize successful POST /v1/* evaluations by canonical
        // request digest. The parse needed for canonicalization is
        // trivial next to the evaluation (and the cache makes even
        // that skippable for the response itself).
        // /v1/batch opts out of whole-request memoization: its body
        // may be binary (not canonicalizable as JSON), and its rows
        // are cached individually under their /v1/cpi digests, which
        // a whole-batch entry would bypass.
        const bool cacheable = request.method == "POST" &&
                               path.rfind("/v1/", 0) == 0 &&
                               path != "/v1/batch";
        if (cacheable) {
            json::Value body = json::Value::object();
            std::string error;
            if (request.body.empty() ||
                json::parse(request.body, body, &error)) {
                const std::string key = cacheKey(path, body);
                std::string cached;
                if (cache_.get(key, cached)) {
                    cacheHits_.inc();
                    return HttpResponse::json(200, cached);
                }
                cacheMisses_.inc();
                // Second tier: the persistent store. A hit serves
                // the byte-identical response a previous process
                // computed, and repopulates the LRU.
                if (persistent_ && persistent_->get(key, cached)) {
                    storeRefills_.inc();
                    cache_.put(key, cached);
                    return HttpResponse::json(200, cached);
                }
                // Both caches missed, so real evaluation is next.
                // If the budget is already spent the waiter has
                // timed out; don't burn the cycles.
                if (request.deadlineExpired()) {
                    deadlineShed_.inc();
                    return HttpResponse::json(
                        504,
                        errorJson(
                            "deadline exceeded before evaluation"));
                }
                HttpResponse response = router_.route(request);
                if (response.status == 200) {
                    cache_.put(key, response.body);
                    if (persistent_)
                        persistent_->put(key, response.body);
                }
                return response;
            }
            // Malformed body: let the router produce the 400.
        }
        return router_.route(request);
    };
}

json::Value
ModelService::cpi(const json::Value &request)
{
    if (!request.isObject())
        badRequest("request body must be a JSON object");
    requireMembers(request, "request",
                   {"workload", "machine", "options"});
    const std::string workload = workloadMember(request);
    const MachineConfig machine = machineFromJson(request);
    const ModelOptions options = optionsFromJson(request);

    const WorkloadData &data = bench_.workload(workload);
    const IWCharacteristic iw = Workbench::fitIw(
        data.iwPoints, data.missProfile.avgLatency, machine.width);
    const FirstOrderModel model(machine, options);
    const CpiBreakdown b = model.evaluate(iw, data.missProfile);
    evaluations_.inc();
    return cpiResponseJson(workload, data, machine, iw, b);
}

json::Value
ModelService::iwCurve(const json::Value &request)
{
    if (!request.isObject())
        badRequest("request body must be a JSON object");
    requireMembers(request, "request",
                   {"workload", "windows", "width"});
    const std::string workload = workloadMember(request);
    const std::uint32_t width = intMember(request, "width", 4, 0, 64);
    const std::vector<std::uint32_t> windows =
        intArrayMember(request, "windows", {}, 1, 4096, 64);

    const WorkloadData &data = bench_.workload(workload);
    std::vector<IwPoint> points;
    if (windows.empty()) {
        // The standard Figure 4 sweep is part of the cached
        // characterization.
        points = data.iwPoints;
    } else {
        // Custom sweep: re-measure on the cached trace.
        // measureIwCurve fans the window sizes out over the global
        // thread pool internally.
        WindowSimConfig config;
        config.unitLatency = true;
        config.issueWidth = 0;
        points = measureIwCurve(data.trace, windows, config);
    }
    const IWCharacteristic fit = Workbench::fitIw(
        points, data.missProfile.avgLatency, width);

    json::Value out = json::Value::object();
    out.set("workload", workload);
    out.set("width", width);
    out.set("avgLatency", data.missProfile.avgLatency);
    json::Value arr = json::Value::array();
    for (const IwPoint &p : points) {
        json::Value point = json::Value::object();
        point.set("window", p.windowSize);
        point.set("ipc", p.ipc);
        arr.push(std::move(point));
    }
    out.set("points", std::move(arr));
    json::Value f = json::Value::object();
    f.set("alpha", fit.alpha());
    f.set("beta", fit.beta());
    f.set("r2", fit.fitR2());
    out.set("fit", std::move(f));
    return out;
}

json::Value
ModelService::trends(const json::Value &request)
{
    if (!request.isObject())
        badRequest("request body must be a JSON object");
    requireMembers(request, "request",
                   {"study", "widths", "depths", "fractions",
                    "config"});
    const json::Value *studyMember = request.find("study");
    if (!studyMember || !studyMember->isString())
        badRequest("'study' (string) is required: pipeline-depth or "
                   "issue-width");
    const std::string study = studyMember->asString();
    const TrendConfig config = trendConfigFromJson(request);
    const std::vector<std::uint32_t> widths = intArrayMember(
        request, "widths", {2, 4, 6, 8}, 1, 64, 32);

    json::Value out = json::Value::object();
    out.set("study", study);
    json::Value series = json::Value::array();

    if (study == "pipeline-depth") {
        std::vector<std::uint32_t> depths =
            intArrayMember(request, "depths", {}, 1, 200, 256);
        if (depths.empty())
            for (std::uint32_t d = 1; d <= 30; ++d)
                depths.push_back(d);
        // Planner-driven sweep: every (width, depths, config) row is
        // probed against the memo and the persistent store before
        // anything is scheduled; only the misses fan out over the
        // global pool, in input order.
        const auto rows = trends_.depthRows(widths, depths, config);
        for (std::size_t i = 0; i < widths.size(); ++i) {
            json::Value entry = json::Value::object();
            entry.set("width", widths[i]);
            json::Value points = json::Value::array();
            for (const PipelineDepthPoint &p : rows[i].points) {
                json::Value point = json::Value::object();
                point.set("depth", p.depth);
                point.set("ipc", p.ipc);
                point.set("clockGhz", p.clockGhz);
                point.set("bips", p.bips);
                points.push(std::move(point));
            }
            entry.set("points", std::move(points));
            json::Value best = json::Value::object();
            best.set("depth", rows[i].optimal.depth);
            best.set("bips", rows[i].optimal.bips);
            entry.set("optimal", std::move(best));
            series.push(std::move(entry));
        }
    } else if (study == "issue-width") {
        std::vector<double> fractions = {0.5, 0.8, 0.9, 0.95, 0.99};
        if (const json::Value *f = request.find("fractions")) {
            if (!f->isArray() || f->items().empty() ||
                f->items().size() > 32) {
                badRequest("'fractions' must be a non-empty array "
                           "(max 32)");
            }
            fractions.clear();
            for (const json::Value &item : f->items()) {
                if (!item.isNumber() || item.asDouble() <= 0.0 ||
                    item.asDouble() >= 1.0) {
                    badRequest("'fractions' entries must be in "
                               "(0, 1)");
                }
                fractions.push_back(item.asDouble());
            }
        }
        const auto rows =
            trends_.widthRows(widths, fractions, config);
        for (std::size_t i = 0; i < widths.size(); ++i) {
            json::Value entry = json::Value::object();
            entry.set("width", widths[i]);
            json::Value points = json::Value::array();
            for (const SaturationPoint &p : rows[i].saturation) {
                json::Value point = json::Value::object();
                point.set("timeFraction", p.timeFraction);
                point.set("instructionsBetween",
                          p.instructionsBetween);
                points.push(std::move(point));
            }
            entry.set("points", std::move(points));
            json::Value ramp = json::Value::array();
            for (const double rate : rows[i].issueRamp)
                ramp.push(rate);
            entry.set("issueRamp", std::move(ramp));
            series.push(std::move(entry));
        }
    } else {
        badRequest("unknown study '" + study +
                   "'; valid: pipeline-depth, issue-width");
    }
    out.set("series", std::move(series));
    return out;
}

batch::Result
ModelService::batchEvaluate(const json::Value &body,
                            const HttpRequest *request)
{
    const batch::Request req = batch::parseRequest(body);
    // Shared options are request-level input: malformed options fail
    // the whole batch (every row would carry the same error).
    const ModelOptions options = optionsFromJson(body);
    // The one characterization lookup the whole batch shares.
    const WorkloadData &data = bench_.workload(req.workload);

    const std::size_t n = req.rows.size();
    std::vector<std::string> rowError(n);
    std::vector<std::array<double, 8>> cols(n);
    std::vector<std::size_t> evalRows;
    std::vector<MachineConfig> evalMachines;
    std::vector<std::string> evalKeys;

    const bool useCache = config_.cacheCapacity > 0;
    const bool keyed = useCache || persistent_ != nullptr;

    // Pass 1: validate each row and consult the response caches
    // under the row's single-request digest. A row that fails
    // validation becomes an error slot; everything else is either
    // answered from cache or queued for evaluation.
    for (std::size_t i = 0; i < n; ++i) {
        try {
            const json::Value merged =
                batch::mergedRowBody(req, req.rows[i]);
            const MachineConfig machine = machineFromJson(merged);
            std::string key;
            if (keyed) {
                key = cacheKey("/v1/cpi", merged);
                std::string cached;
                if (useCache && cache_.get(key, cached)) {
                    cacheHits_.inc();
                    if (extractColumns(cached, cols[i]))
                        continue;
                }
                if (useCache)
                    cacheMisses_.inc();
                if (persistent_ && persistent_->get(key, cached)) {
                    storeRefills_.inc();
                    if (useCache)
                        cache_.put(key, cached);
                    if (extractColumns(cached, cols[i]))
                        continue;
                }
            }
            evalRows.push_back(i);
            evalMachines.push_back(machine);
            evalKeys.push_back(std::move(key));
        } catch (const ServiceError &e) {
            rowError[i] = e.what();
        }
    }

    // Pass 2: evaluate the misses through the batched kernels, in
    // chunks so an expired deadline sheds the remaining rows instead
    // of finishing a batch nobody is waiting for. The IW fit is
    // memoized per distinct width (it only depends on the width and
    // the workload's characterization).
    constexpr std::size_t kChunk = 64;
    std::map<std::uint32_t, IWCharacteristic> fitByWidth;
    for (std::size_t base = 0; base < evalRows.size();
         base += kChunk) {
        if (request && request->deadlineExpired()) {
            for (std::size_t k = base; k < evalRows.size(); ++k) {
                rowError[evalRows[k]] =
                    "deadline exceeded before evaluation";
            }
            batchShedRows_.inc(evalRows.size() - base);
            break;
        }
        const std::size_t count =
            std::min(kChunk, evalRows.size() - base);
        std::vector<IWCharacteristic> iws;
        iws.reserve(count);
        std::vector<MachineConfig> machines(
            evalMachines.begin() + base,
            evalMachines.begin() + base + count);
        for (const MachineConfig &machine : machines) {
            auto it = fitByWidth.find(machine.width);
            if (it == fitByWidth.end()) {
                it = fitByWidth
                         .emplace(machine.width,
                                  Workbench::fitIw(
                                      data.iwPoints,
                                      data.missProfile.avgLatency,
                                      machine.width))
                         .first;
            }
            iws.push_back(it->second);
        }
        const std::vector<CpiBreakdown> bs = evaluateBatch(
            iws, machines, data.missProfile, options);
        evaluations_.inc(count);
        for (std::size_t k = 0; k < count; ++k) {
            const std::size_t row = evalRows[base + k];
            const CpiBreakdown &b = bs[k];
            cols[row] = {b.ideal,      b.brmisp, b.icacheL1,
                         b.icacheL2,   b.dcacheLong,
                         b.dtlb,       b.total(), b.ipc()};
            if (keyed) {
                // Write the full single-request response through the
                // caches so a later /v1/cpi for this design point is
                // a byte-identical hit.
                const std::string text =
                    cpiResponseJson(req.workload, data, machines[k],
                                    iws[k], b)
                        .dump();
                if (useCache)
                    cache_.put(evalKeys[base + k], text);
                if (persistent_)
                    persistent_->put(evalKeys[base + k], text);
            }
        }
    }

    batch::Result result;
    result.workload = req.workload;
    for (std::size_t i = 0; i < n; ++i) {
        if (!rowError[i].empty()) {
            batchRowErrors_.inc();
            result.pushError(std::move(rowError[i]));
        } else {
            result.pushRow(cols[i][0], cols[i][1], cols[i][2],
                           cols[i][3], cols[i][4], cols[i][5],
                           cols[i][6], cols[i][7]);
        }
    }
    batchRows_.inc(n);
    return result;
}

json::Value
ModelService::batch(const json::Value &request)
{
    return batch::toJson(batchEvaluate(request, nullptr));
}

HttpResponse
ModelService::batchHttp(const HttpRequest &request)
{
    const std::string &contentType = request.header("content-type");
    const bool binary =
        contentType.rfind(batch::contentType, 0) == 0;
    json::Value body = json::Value::object();
    std::string error;
    if (binary) {
        if (!batch::decodeRequest(request.body, body, &error)) {
            return HttpResponse::json(
                400, errorJson("invalid batch frame: " + error));
        }
    } else if (!request.body.empty() &&
               !json::parse(request.body, body, &error)) {
        return HttpResponse::json(
            400, errorJson("invalid JSON body: " + error));
    }
    try {
        const batch::Result result = batchEvaluate(body, &request);
        if (binary) {
            HttpResponse r(200);
            r.body = batch::encodeResponse(result);
            r.setHeader("Content-Type", batch::contentType);
            return r;
        }
        return HttpResponse::json(200,
                                  batch::toJson(result).dump());
    } catch (const ServiceError &e) {
        return HttpResponse::json(e.status(), errorJson(e.what()));
    }
}

} // namespace fosm::server
