/**
 * @file
 * Persistent per-workload characterizations. Building a WorkloadData
 * is the expensive part of serving: the functional miss profile is
 * one full pass over the trace and the unit-latency IW curve is five
 * window simulations. Both are pure functions of the trace bytes, so
 * they are persisted in the result store keyed by the trace content
 * digest — a restarted server (or a re-run Workbench harness) reloads
 * them instead of recomputing, and any change to the generator or
 * trace length changes the digest, making stale entries unreachable.
 *
 * Entries live under the "c/" key prefix beside the response cache's
 * "r/" entries (see server/persistent_cache.hh). Values use the
 * store's binary codec: doubles round-trip by bit image, which keeps
 * warm-started model evaluations byte-identical to cold ones.
 */

#ifndef FOSM_EXPERIMENTS_CHARACTERIZATION_STORE_HH
#define FOSM_EXPERIMENTS_CHARACTERIZATION_STORE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/miss_profiler.hh"
#include "iw/iw_characteristic.hh"
#include "store/store.hh"

namespace fosm {

/** The persisted slice of a WorkloadData. */
struct Characterization
{
    MissProfile missProfile;
    std::vector<IwPoint> iwPoints;
};

class CharacterizationStore
{
  public:
    explicit CharacterizationStore(
        std::shared_ptr<store::PersistentStore> store);

    /**
     * The store key for one workload's characterization. Includes
     * the schema/format versions, the workload name, the trace
     * length and the trace content digest.
     */
    static std::string key(const std::string &workload,
                           std::uint64_t instructions,
                           std::uint64_t trace_digest);

    /** Load a previously saved characterization; false = miss. */
    bool load(const std::string &key, Characterization &out) const;

    void save(const std::string &key, const Characterization &c);

    /** Exact binary serialization, exposed for tests. */
    static std::string encode(const Characterization &c);
    static bool decode(const std::string &bytes, Characterization &out);

  private:
    std::shared_ptr<store::PersistentStore> store_;
};

} // namespace fosm

#endif // FOSM_EXPERIMENTS_CHARACTERIZATION_STORE_HH
