#include "experiments/characterization_store.hh"

#include <cstdio>

#include "common/version.hh"
#include "store/codec.hh"

namespace fosm {

namespace {

void
encodeHistogram(store::Encoder &enc, const Histogram &h)
{
    enc.u64Vector(h.counts());
    enc.u64(h.samples());
    enc.u64(h.overflow());
    enc.f64(h.weightedSum());
}

bool
decodeHistogram(store::Decoder &dec, Histogram &out)
{
    std::vector<std::uint64_t> counts;
    std::uint64_t samples, overflow;
    double weightedSum;
    if (!dec.u64Vector(counts) || !dec.u64(samples) ||
        !dec.u64(overflow) || !dec.f64(weightedSum) ||
        counts.empty())
        return false;
    out = Histogram::restore(std::move(counts), samples, overflow,
                             weightedSum);
    return true;
}

} // namespace

CharacterizationStore::CharacterizationStore(
    std::shared_ptr<store::PersistentStore> store)
    : store_(std::move(store))
{
}

std::string
CharacterizationStore::key(const std::string &workload,
                           std::uint64_t instructions,
                           std::uint64_t trace_digest)
{
    char digest[17];
    std::snprintf(digest, sizeof(digest), "%016llx",
                  static_cast<unsigned long long>(trace_digest));
    return "c/v" + std::to_string(modelSchemaVersion) + "." +
           std::to_string(characterizationFormatVersion) + "/" +
           workload + "/" + std::to_string(instructions) + "/" +
           digest;
}

std::string
CharacterizationStore::encode(const Characterization &c)
{
    const MissProfile &p = c.missProfile;
    store::Encoder enc;
    enc.u64(p.instructions);
    for (const double f : p.mix.fraction)
        enc.f64(f);
    enc.u64(p.branches);
    enc.u64(p.mispredictions);
    encodeHistogram(enc, p.mispredictGap);
    enc.u64(p.icacheL1Misses);
    enc.u64(p.icacheL2Misses);
    encodeHistogram(enc, p.icacheMissGap);
    enc.u64(p.loads);
    enc.u64(p.stores);
    enc.u64(p.shortLoadMisses);
    enc.u64(p.longLoadMisses);
    enc.u64(p.storeMisses);
    enc.u32Vector(p.ldmGaps);
    enc.u64(p.dtlbLoadMisses);
    enc.u64(p.dtlbStoreMisses);
    enc.u32Vector(p.dtlbGaps);
    enc.f64(p.avgLatency);

    enc.u64(c.iwPoints.size());
    for (const IwPoint &point : c.iwPoints) {
        enc.u32(point.windowSize);
        enc.f64(point.ipc);
    }
    return enc.take();
}

bool
CharacterizationStore::decode(const std::string &bytes,
                              Characterization &out)
{
    MissProfile p;
    store::Decoder dec(bytes);
    bool ok = dec.u64(p.instructions);
    for (double &f : p.mix.fraction)
        ok = ok && dec.f64(f);
    ok = ok && dec.u64(p.branches);
    ok = ok && dec.u64(p.mispredictions);
    ok = ok && decodeHistogram(dec, p.mispredictGap);
    ok = ok && dec.u64(p.icacheL1Misses);
    ok = ok && dec.u64(p.icacheL2Misses);
    ok = ok && decodeHistogram(dec, p.icacheMissGap);
    ok = ok && dec.u64(p.loads);
    ok = ok && dec.u64(p.stores);
    ok = ok && dec.u64(p.shortLoadMisses);
    ok = ok && dec.u64(p.longLoadMisses);
    ok = ok && dec.u64(p.storeMisses);
    ok = ok && dec.u32Vector(p.ldmGaps);
    ok = ok && dec.u64(p.dtlbLoadMisses);
    ok = ok && dec.u64(p.dtlbStoreMisses);
    ok = ok && dec.u32Vector(p.dtlbGaps);
    ok = ok && dec.f64(p.avgLatency);

    std::uint64_t points = 0;
    ok = ok && dec.u64(points);
    if (!ok || points > bytes.size())
        return false;
    std::vector<IwPoint> iw;
    iw.reserve(points);
    for (std::uint64_t i = 0; i < points; ++i) {
        IwPoint point;
        if (!dec.u32(point.windowSize) || !dec.f64(point.ipc))
            return false;
        iw.push_back(point);
    }
    if (!dec.atEnd())
        return false;
    out.missProfile = std::move(p);
    out.iwPoints = std::move(iw);
    return true;
}

bool
CharacterizationStore::load(const std::string &key,
                            Characterization &out) const
{
    std::string bytes;
    if (!store_ || !store_->get(key, bytes))
        return false;
    // A record that fails to decode (e.g. written by a build with a
    // different layout but an un-bumped format version) is a miss.
    return decode(bytes, out);
}

void
CharacterizationStore::save(const std::string &key,
                            const Characterization &c)
{
    if (store_)
        store_->put(key, encode(c));
}

} // namespace fosm
