/**
 * @file
 * Shared experiment harness. Builds each workload once (trace,
 * functional miss profile, fitted IW characteristic) and provides the
 * baseline machine/simulator configurations of Section 1.1, so every
 * bench binary regenerating a paper figure starts from the same
 * environment.
 */

#ifndef FOSM_EXPERIMENTS_WORKBENCH_HH
#define FOSM_EXPERIMENTS_WORKBENCH_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "analysis/miss_profiler.hh"
#include "experiments/characterization_store.hh"
#include "common/thread_pool.hh"
#include "iw/iw_characteristic.hh"
#include "model/first_order_model.hh"
#include "sim/detailed_sim.hh"
#include "trace/trace_stats.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

namespace fosm {

/** Everything derived from one workload profile. */
struct WorkloadData
{
    const Profile *profile = nullptr;
    Trace trace;
    TraceStats traceStats;
    MissProfile missProfile;
    /** Unit-latency IW curve points (paper Figure 4). */
    std::vector<IwPoint> iwPoints;
    /** Fitted characteristic specialised to the baseline machine. */
    IWCharacteristic iw;
};

/**
 * Lazily builds and caches WorkloadData per profile. The trace length
 * defaults to 200k instructions and can be overridden with the
 * FOSM_TRACE_INSTS environment variable (the paper used much longer
 * SPEC traces; shapes are stable at this length).
 *
 * Thread-safe: workload() may be called concurrently from pool tasks
 * (one driver task per benchmark); each workload is built exactly
 * once behind a per-entry std::once_flag, and different workloads
 * build concurrently. Builds are deterministic per workload (each
 * one seeds its own generators), so concurrent and serial use return
 * identical data.
 */
class Workbench
{
  public:
    explicit Workbench(std::uint32_t issue_width = 4);

    /** Build (or fetch cached) data for one benchmark. */
    const WorkloadData &workload(const std::string &name);

    /** Build every benchmark's data, fanning out over the global
     *  thread pool. Purely a warm-up: later workload() calls hit the
     *  cache. */
    void buildAll();

    /** All 12 benchmark names in the paper's order. */
    static std::vector<std::string> benchmarks();

    /** Trace length in effect. */
    std::uint64_t traceInstructions() const { return traceInsts_; }

    /** The paper's baseline machine (Section 1.1). */
    static MachineConfig baselineMachine();

    /** The paper's baseline simulator configuration. */
    static SimConfig baselineSimConfig();

    /** The matching functional profiler configuration. */
    static ProfilerConfig baselineProfilerConfig();

    /** Fit an IW characteristic for a machine width. */
    static IWCharacteristic fitIw(const std::vector<IwPoint> &points,
                                  double avg_latency,
                                  std::uint32_t width);

    /**
     * Attach a persistent characterization store. Must be called
     * before the first workload() (it is not synchronized against
     * in-flight builds). With a store attached, buildWorkload loads
     * the miss profile and IW curve by trace digest instead of
     * recomputing them, and saves them after a cold build.
     */
    void setCharacterizationStore(
        std::shared_ptr<CharacterizationStore> store)
    {
        charStore_ = std::move(store);
    }

    /** Characterizations loaded from the store instead of built. */
    std::uint64_t characterizationLoads() const
    {
        return charLoads_;
    }

  private:
    /** One cache slot: built exactly once, then read-only. */
    struct Entry
    {
        std::once_flag once;
        WorkloadData data;
    };

    std::uint32_t issueWidth_;
    std::uint64_t traceInsts_;
    std::shared_ptr<CharacterizationStore> charStore_;
    std::atomic<std::uint64_t> charLoads_{0};
    /** Guards the map structure only; entries are node-stable and
     *  their construction is serialized by Entry::once. */
    std::mutex cacheMutex_;
    std::map<std::string, Entry> cache_;

    void buildWorkload(const std::string &name, WorkloadData &data);
};

/** |a - b| / b, guarding b == 0. */
double relativeError(double a, double b);

/**
 * Run fn(name, workload) for each of the 12 paper benchmarks as
 * concurrent tasks on the global thread pool and return the results
 * in the paper's benchmark order. This is the driver idiom: compute
 * every design point in parallel, then print the collected rows
 * serially so tables are byte-identical to a serial run. fn must not
 * touch shared mutable state (Workbench itself is thread-safe).
 */
template <typename Fn>
auto
mapWorkloads(Workbench &bench, Fn &&fn)
{
    return parallelMap(Workbench::benchmarks(),
                       [&](const std::string &name) {
                           return fn(name, bench.workload(name));
                       });
}

} // namespace fosm

#endif // FOSM_EXPERIMENTS_WORKBENCH_HH
