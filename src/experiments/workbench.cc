#include "experiments/workbench.hh"

#include <cmath>
#include <cstdlib>

#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace fosm {

namespace {

std::uint64_t
envTraceLength()
{
    if (const char *env = std::getenv("FOSM_TRACE_INSTS")) {
        const long long v = std::atoll(env);
        if (v > 1000)
            return static_cast<std::uint64_t>(v);
        warn("ignoring FOSM_TRACE_INSTS=", env, " (need > 1000)");
    }
    return 400000;
}

} // namespace

Workbench::Workbench(std::uint32_t issue_width)
    : issueWidth_(issue_width), traceInsts_(envTraceLength())
{
}

std::vector<std::string>
Workbench::benchmarks()
{
    return profileNames();
}

MachineConfig
Workbench::baselineMachine()
{
    // Section 1.1: five front-end stages, issue width 4, 48-entry
    // window, 128-entry ROB; DeltaI = 8, DeltaD = 200.
    MachineConfig machine;
    machine.width = 4;
    machine.frontEndDepth = 5;
    machine.windowSize = 48;
    machine.robSize = 128;
    machine.deltaI = 8;
    machine.deltaD = 200;
    return machine;
}

SimConfig
Workbench::baselineSimConfig()
{
    SimConfig config;
    config.machine = baselineMachine();
    config.hierarchy = HierarchyConfig{};
    config.predictor = PredictorKind::GShare;
    config.predictorEntries = 8192;
    config.syncMissDelays();
    return config;
}

ProfilerConfig
Workbench::baselineProfilerConfig()
{
    ProfilerConfig config;
    config.hierarchy = HierarchyConfig{};
    config.predictor = PredictorKind::GShare;
    config.predictorEntries = 8192;
    return config;
}

IWCharacteristic
Workbench::fitIw(const std::vector<IwPoint> &points, double avg_latency,
                 std::uint32_t width)
{
    return IWCharacteristic::fromPoints(points, avg_latency, width);
}

void
Workbench::buildWorkload(const std::string &name, WorkloadData &data)
{
    data.profile = &profileByName(name);
    data.trace = generateTrace(*data.profile, traceInsts_);
    data.traceStats = collectTraceStats(data.trace);

    // The miss profile and IW curve are pure functions of the trace
    // bytes, so with a store attached they are loaded by content
    // digest when a previous process already computed them.
    std::string storeKey;
    if (charStore_) {
        storeKey = CharacterizationStore::key(
            name, traceInsts_, traceDigest(data.trace));
        Characterization c;
        if (charStore_->load(storeKey, c)) {
            data.missProfile = std::move(c.missProfile);
            data.iwPoints = std::move(c.iwPoints);
            data.iw = fitIw(data.iwPoints,
                            data.missProfile.avgLatency, issueWidth_);
            charLoads_.fetch_add(1, std::memory_order_relaxed);
            return;
        }
    }

    data.missProfile =
        profileTrace(data.trace, baselineProfilerConfig());

    // Unit-latency, unbounded-issue IW curve (Section 3): window sizes
    // 4..64 as in Figure 4.
    WindowSimConfig wconfig;
    wconfig.unitLatency = true;
    wconfig.issueWidth = 0;
    data.iwPoints =
        measureIwCurve(data.trace, {4, 8, 16, 32, 64}, wconfig);

    data.iw = fitIw(data.iwPoints, data.missProfile.avgLatency,
                    issueWidth_);

    if (charStore_)
        charStore_->save(storeKey,
                         Characterization{data.missProfile,
                                          data.iwPoints});
}

const WorkloadData &
Workbench::workload(const std::string &name)
{
    Entry *entry;
    {
        // The map only ever grows and std::map nodes are stable, so
        // the lock covers the lookup/insert alone; the build itself
        // runs outside it, serialized per entry by the once_flag.
        std::lock_guard<std::mutex> lock(cacheMutex_);
        entry = &cache_[name];
    }
    std::call_once(entry->once,
                   [&] { buildWorkload(name, entry->data); });
    return entry->data;
}

void
Workbench::buildAll()
{
    const std::vector<std::string> names = benchmarks();
    parallelFor(names.size(),
                [&](std::size_t i) { workload(names[i]); });
}

double
relativeError(double a, double b)
{
    if (b == 0.0)
        return a == 0.0 ? 0.0 : 1.0;
    return std::abs(a - b) / std::abs(b);
}

} // namespace fosm
