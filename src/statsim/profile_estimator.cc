#include "statsim/profile_estimator.hh"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/logging.hh"
#include "trace/trace_stats.hh"

namespace fosm {

namespace {

/**
 * Per-static-branch outcome statistics. Beyond the taken rate we
 * track the distribution of taken-run lengths: a loop back-edge with
 * a deterministic trip count produces runs of near-zero variance,
 * while an unpredictable branch produces geometric runs with
 * variance on the order of the squared mean. Rate-only profiles
 * cannot make this distinction, which is exactly the predictability
 * structure naive statistical simulation loses.
 */
struct SiteCounts
{
    std::uint64_t execs = 0;
    std::uint64_t taken = 0;
    RunningStats runLengths;
    std::uint64_t currentRun = 0;
};

/** Round up to a power of two (bounded below by lo). */
std::uint64_t
ceilPow2(std::uint64_t v, std::uint64_t lo)
{
    std::uint64_t p = lo;
    while (p < v)
        p <<= 1;
    return p;
}

} // namespace

Profile
estimateProfile(const Trace &trace, const EstimatorConfig &config)
{
    fosm_assert(!trace.empty(), "cannot estimate an empty trace");

    Profile profile;
    profile.name = trace.name() + "-clone";
    profile.seed = config.seed;

    const double n = static_cast<double>(trace.size());

    // --- Operation mix and source arity (exact) -------------------
    std::array<std::uint64_t, numInstClasses> class_count{};
    std::uint64_t body_insts = 0, body_two_src = 0, body_no_src = 0;
    std::unordered_map<Addr, SiteCounts> sites;
    Addr pc_min = ~Addr{0}, pc_max = 0;

    for (const InstRecord &inst : trace) {
        ++class_count[static_cast<std::size_t>(inst.cls)];
        pc_min = std::min(pc_min, inst.pc);
        pc_max = std::max(pc_max, inst.pc);

        const bool body = !inst.isBranch() && !inst.isMem();
        if (body) {
            ++body_insts;
            if (inst.src1 != invalidReg && inst.src2 != invalidReg)
                ++body_two_src;
            else if (inst.src1 == invalidReg &&
                     inst.src2 == invalidReg)
                ++body_no_src;
        }
        if (inst.isBranch()) {
            SiteCounts &site = sites[inst.pc];
            ++site.execs;
            if (inst.branchTaken) {
                ++site.taken;
                ++site.currentRun;
            } else {
                if (site.currentRun > 0) {
                    site.runLengths.add(
                        static_cast<double>(site.currentRun));
                }
                site.currentRun = 0;
            }
        }
    }

    auto frac = [&](InstClass cls) {
        return static_cast<double>(
                   class_count[static_cast<std::size_t>(cls)]) /
               n;
    };
    profile.mix.load = frac(InstClass::Load);
    profile.mix.store = frac(InstClass::Store);
    profile.mix.branch = frac(InstClass::Branch);
    profile.mix.mul = frac(InstClass::IntMul);
    profile.mix.div = frac(InstClass::IntDiv);
    profile.mix.fp = frac(InstClass::FpAlu);

    if (body_insts > 0) {
        profile.dep.twoSourceFrac =
            static_cast<double>(body_two_src) /
            static_cast<double>(body_insts);
        profile.dep.noSourceFrac =
            static_cast<double>(body_no_src) /
            static_cast<double>(body_insts);
    }

    // --- Dependence mixture ---------------------------------------
    // Split the measured distance distribution at the bound and
    // match each component's conditional mean.
    const TraceStats stats = collectTraceStats(trace);
    const Histogram &dist = stats.depDistance;
    double short_mass = 0.0, short_sum = 0.0;
    double long_mass = 0.0, long_sum = 0.0;
    for (std::uint64_t d = 1; d <= dist.maxValue(); ++d) {
        const double c = static_cast<double>(dist.countAt(d));
        if (d <= config.shortDistanceBound) {
            short_mass += c;
            short_sum += c * static_cast<double>(d);
        } else {
            long_mass += c;
            long_sum += c * static_cast<double>(d);
        }
    }
    if (short_mass > 0.0) {
        profile.dep.meanShortDistance =
            std::max(1.0, short_sum / short_mass);
    }
    if (long_mass > 0.0) {
        profile.dep.meanLongDistance =
            std::max(profile.dep.meanShortDistance + 1.0,
                     long_sum / long_mass);
    }
    if (short_mass + long_mass > 0.0) {
        profile.dep.longFrac =
            long_mass / (short_mass + long_mass);
    }

    // --- Branch-site behaviour ------------------------------------
    // Classification order matters: a regular loop is checked first
    // (low taken-run-length variance identifies a deterministic trip
    // count at any rate), then strongly biased sites, and whatever
    // remains is genuinely hard to predict.
    // Kind fractions are weighted by *executions*, not site count:
    // what must match is the dynamic share of each behaviour in the
    // branch stream, and the clone generator's interleaved kind
    // assignment makes its dynamic shares track these fractions.
    std::uint64_t biased = 0, loops = 0, random = 0;
    double loop_trip_sum = 0.0, loop_weight = 0.0;
    for (const auto &[pc, site] : sites) {
        const double rate = static_cast<double>(site.taken) /
                            static_cast<double>(site.execs);
        const RunningStats &runs = site.runLengths;
        const bool regular_runs = runs.count() >= 3 &&
            runs.stddev() <= std::max(0.5, 0.35 * runs.mean());
        if (regular_runs && rate > 0.3 && rate < 0.98) {
            loops += site.execs;
            loop_trip_sum +=
                static_cast<double>(site.execs) * (runs.mean() + 1.0);
            loop_weight += static_cast<double>(site.execs);
        } else if (rate >= 0.85 || rate <= 0.15) {
            biased += site.execs;
        } else {
            random += site.execs;
        }
    }
    const double n_execs = static_cast<double>(
        std::max<std::uint64_t>(biased + loops + random, 1));
    profile.branch.sites = static_cast<std::uint32_t>(
        ceilPow2(std::max<std::uint64_t>(sites.size(), 16), 16));
    profile.branch.biasedFrac = static_cast<double>(biased) / n_execs;
    profile.branch.loopFrac = static_cast<double>(loops) / n_execs;
    if (loop_weight > 0.0) {
        profile.branch.meanLoopTrip =
            std::max(3.0, loop_trip_sum / loop_weight);
    }
    (void)random; // the remainder of the population

    // --- Code footprint --------------------------------------------
    const std::uint64_t span = pc_max >= pc_min
        ? (pc_max - pc_min) + 4
        : 4096;
    profile.code.footprintBytes =
        ceilPow2(std::max<std::uint64_t>(span, 4096), 4096);

    // --- Memory stream composition ----------------------------------
    // Probe the trace through the reference hierarchy and fit stream
    // weights so the clone reproduces the short/long miss rates:
    // warm accesses nearly always miss L1 and hit L2; cold accesses
    // nearly always miss L2.
    ProfilerConfig probe;
    probe.hierarchy = config.hierarchy;
    probe.predictor = PredictorKind::Ideal;
    const MissProfile misses = profileTrace(trace, probe);

    const double mem_accesses =
        static_cast<double>(misses.loads + misses.stores);
    if (mem_accesses > 0.0) {
        const double short_rate =
            static_cast<double>(misses.shortLoadMisses +
                                misses.storeMisses) /
            mem_accesses;
        const double long_rate =
            static_cast<double>(misses.longLoadMisses) / mem_accesses;
        const double cold = std::min(0.9, long_rate);
        const double warm = std::min(0.9 - cold, short_rate);
        profile.data.coldFrac = cold;
        profile.data.warmFrac = warm;
        profile.data.strideFrac = 0.0;
        profile.data.hotFrac = std::max(0.0, 1.0 - cold - warm);
        // No separate streaming estimate: fold it into warm/hot.
        profile.data.burstEnterProb = 0.0;
        profile.data.burstExitProb = 0.5;

        // Clustering: reproduce the measured overlap factor at the
        // reference ROB size via the burst chain. A purely Bernoulli
        // cold stream at rate r has an expected group size of about
        // 1 + r*rob; if the measured factor implies more clustering,
        // concentrate cold accesses into bursts.
        const double measured_factor = misses.ldmOverlapFactor(128);
        const double bernoulli_factor =
            1.0 /
            (1.0 + cold * (profile.mix.load + profile.mix.store) *
                       128.0);
        if (measured_factor < 0.8 * bernoulli_factor && cold > 0.0) {
            profile.data.burstColdFrac = std::min(0.9, 8.0 * cold);
            profile.data.burstEnterProb = 0.002;
            profile.data.burstExitProb = 0.05;
            // Keep the average cold rate: the burst chain spends
            // enter/(enter+exit) of the time in burst.
            const double burst_duty = 0.002 / (0.002 + 0.05);
            profile.data.coldFrac = std::max(
                0.0,
                (cold - burst_duty * profile.data.burstColdFrac) /
                    (1.0 - burst_duty));
        }
    }

    profile.validate();
    return profile;
}

} // namespace fosm
