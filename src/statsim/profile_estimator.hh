/**
 * @file
 * Statistical simulation baseline (the related work [8-11] the paper
 * positions itself against: Nussbaum & Smith, Carl & Smith, Eeckhout
 * et al., Noonburg & Shen). Those techniques measure a program's
 * statistical profile, generate a *synthetic trace* with the same
 * statistics, and run it through a fast simulator; the paper's model
 * "performs statistical simulation, without the simulation".
 *
 * This module closes the loop in fosm: it estimates a workload
 * Profile from any instruction trace (operation mix, dependence
 * mixture, branch-site behaviour, code footprint, memory-stream
 * composition), so a statistical clone can be generated and
 * simulated. The ext_statistical_sim bench compares original
 * simulation, clone simulation, and the analytical model.
 */

#ifndef FOSM_STATSIM_PROFILE_ESTIMATOR_HH
#define FOSM_STATSIM_PROFILE_ESTIMATOR_HH

#include "analysis/miss_profiler.hh"
#include "trace/trace.hh"
#include "workload/profile.hh"

namespace fosm {

/** Knobs of the estimation pass. */
struct EstimatorConfig
{
    /** Hierarchy used for the memory-stream probe. */
    HierarchyConfig hierarchy;
    /** Seed given to the estimated profile. */
    std::uint64_t seed = 0x57A7;
    /**
     * Dependence distances at or below this bound feed the
     * short-range mixture component.
     */
    std::uint64_t shortDistanceBound = 8;
};

/**
 * Measure a statistical profile from a trace. The estimate is
 * first-order, like everything here:
 *  - the operation mix and source-arity fractions are exact,
 *  - the dependence-distance distribution is matched by a
 *    two-component geometric mixture split at shortDistanceBound,
 *  - static branch sites are classified by taken rate (biased /
 *    loop-like / random) and the loop trip count from the taken rate,
 *  - the code footprint is the observed PC span,
 *  - the memory stream composition (hot / warm / cold fractions) is
 *    fitted so a functional cache probe of the clone reproduces the
 *    measured short/long miss rates; long-miss *clustering* is
 *    matched through the burst Markov chain using the measured
 *    overlap factor at a reference ROB size.
 */
Profile estimateProfile(const Trace &trace,
                        const EstimatorConfig &config =
                            EstimatorConfig{});

} // namespace fosm

#endif // FOSM_STATSIM_PROFILE_ESTIMATOR_HH
