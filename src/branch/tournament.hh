/**
 * @file
 * Tournament (hybrid) predictor: a gShare and a bimodal component
 * with a PC-indexed chooser table of two-bit counters that learns
 * which component predicts each branch better - the Alpha 21264
 * style meta-predictor. Provided as the strongest comparison point
 * in the predictor study.
 */

#ifndef FOSM_BRANCH_TOURNAMENT_HH
#define FOSM_BRANCH_TOURNAMENT_HH

#include "branch/bimodal.hh"
#include "branch/gshare.hh"
#include "branch/predictor.hh"

namespace fosm {

class TournamentPredictor : public BranchPredictor
{
  public:
    /**
     * @param entries size of each component table and the chooser;
     * must be a power of two.
     */
    explicit TournamentPredictor(std::uint32_t entries);

    bool predictAndUpdate(Addr pc, bool taken) override;
    std::string name() const override { return "tournament"; }

  private:
    /** Chooser state: taken() means "trust gShare". */
    std::vector<TwoBitCounter> chooser_;
    std::uint32_t chooserMask_;
    GSharePredictor gshare_;
    BimodalPredictor bimodal_;
};

} // namespace fosm

#endif // FOSM_BRANCH_TOURNAMENT_HH
