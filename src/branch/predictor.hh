/**
 * @file
 * Conditional branch direction predictor interface. The paper's
 * baseline uses an 8K-entry gShare (Section 1.1); only the direction
 * misprediction probability B feeds the model, so no BTB is modeled.
 */

#ifndef FOSM_BRANCH_PREDICTOR_HH
#define FOSM_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <memory>
#include <string>

#include "common/types.hh"

namespace fosm {

/** Prediction accuracy counters. */
struct PredictorStats
{
    std::uint64_t predictions = 0;
    std::uint64_t mispredictions = 0;

    double mispredictRate() const;
};

/**
 * A direction predictor. predictAndUpdate() performs the prediction
 * for a branch at pc, compares with the actual outcome, trains the
 * structures, and reports whether the prediction was correct —
 * the usual trace-driven predictor protocol.
 */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /**
     * Predict the branch at pc, train on the actual outcome.
     * @return true iff the prediction matched `taken`.
     */
    virtual bool predictAndUpdate(Addr pc, bool taken) = 0;

    /** Predictor name for reports. */
    virtual std::string name() const = 0;

    const PredictorStats &stats() const { return stats_; }
    void resetStats() { stats_ = PredictorStats{}; }

  protected:
    /** Record one prediction outcome in the shared counters. */
    void record(bool correct);

    PredictorStats stats_;
};

/** Saturating two-bit counter helper shared by the table predictors. */
class TwoBitCounter
{
  public:
    /** Predicted direction: counter in the taken half. */
    bool taken() const { return value_ >= 2; }

    /** Train toward the actual outcome. */
    void update(bool outcome);

    /** Raw state in [0, 3]; initialised to weakly not-taken. */
    std::uint8_t raw() const { return value_; }

  private:
    std::uint8_t value_ = 1;
};

/** Available predictor kinds for configuration. */
enum class PredictorKind { GShare, Bimodal, Local, Tournament, Ideal };

/**
 * Build a predictor. @param entries number of two-bit counters for the
 * table-based kinds (the paper's baseline is 8192).
 */
std::unique_ptr<BranchPredictor>
makePredictor(PredictorKind kind, std::uint32_t entries = 8192);

} // namespace fosm

#endif // FOSM_BRANCH_PREDICTOR_HH
