#include "branch/bimodal.hh"

#include <bit>

#include "common/logging.hh"

namespace fosm {

BimodalPredictor::BimodalPredictor(std::uint32_t entries)
    : table_(entries), indexMask_(entries - 1)
{
    fosm_assert(std::has_single_bit(entries),
                "bimodal table size must be a power of two");
}

bool
BimodalPredictor::predictAndUpdate(Addr pc, bool taken)
{
    TwoBitCounter &ctr =
        table_[static_cast<std::uint32_t>(pc >> 2) & indexMask_];
    const bool predicted = ctr.taken();
    ctr.update(taken);
    const bool correct = predicted == taken;
    record(correct);
    return correct;
}

} // namespace fosm
