/**
 * @file
 * Two-level local-history predictor: a PC-indexed table of per-branch
 * history registers selects a shared pattern table of two-bit
 * counters. Captures per-branch periodic behaviour (loop patterns)
 * that bimodal misses.
 */

#ifndef FOSM_BRANCH_LOCAL_HH
#define FOSM_BRANCH_LOCAL_HH

#include <vector>

#include "branch/predictor.hh"

namespace fosm {

class LocalPredictor : public BranchPredictor
{
  public:
    /**
     * @param entries pattern-table size; must be a power of two.
     * The history table has entries/8 registers of log2(entries) bits.
     */
    explicit LocalPredictor(std::uint32_t entries);

    bool predictAndUpdate(Addr pc, bool taken) override;
    std::string name() const override { return "local"; }

  private:
    std::vector<TwoBitCounter> pattern_;
    std::vector<std::uint32_t> history_;
    std::uint32_t patternMask_;
    std::uint32_t historyMask_;
    std::uint32_t historyBits_;
};

} // namespace fosm

#endif // FOSM_BRANCH_LOCAL_HH
