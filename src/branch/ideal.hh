/**
 * @file
 * Ideal (oracle) predictor: never mispredicts. Used by the
 * miss-event isolation experiments of Figure 2 and by idealized
 * simulator configurations.
 */

#ifndef FOSM_BRANCH_IDEAL_HH
#define FOSM_BRANCH_IDEAL_HH

#include "branch/predictor.hh"

namespace fosm {

class IdealPredictor : public BranchPredictor
{
  public:
    bool predictAndUpdate(Addr pc, bool taken) override;
    std::string name() const override { return "ideal"; }
};

} // namespace fosm

#endif // FOSM_BRANCH_IDEAL_HH
