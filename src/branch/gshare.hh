/**
 * @file
 * gShare direction predictor (McFarling): global history XORed with
 * the branch PC indexes a table of two-bit counters. The paper's
 * baseline predictor is an 8K-entry gShare.
 */

#ifndef FOSM_BRANCH_GSHARE_HH
#define FOSM_BRANCH_GSHARE_HH

#include <vector>

#include "branch/predictor.hh"

namespace fosm {

class GSharePredictor : public BranchPredictor
{
  public:
    /** @param entries table size; must be a power of two. */
    explicit GSharePredictor(std::uint32_t entries);

    bool predictAndUpdate(Addr pc, bool taken) override;
    std::string name() const override { return "gshare"; }

  private:
    std::vector<TwoBitCounter> table_;
    std::uint32_t indexMask_;
    std::uint32_t historyBits_;
    std::uint32_t history_ = 0;
};

} // namespace fosm

#endif // FOSM_BRANCH_GSHARE_HH
