#include "branch/predictor.hh"

#include "branch/bimodal.hh"
#include "branch/gshare.hh"
#include "branch/ideal.hh"
#include "branch/local.hh"
#include "branch/tournament.hh"
#include "common/logging.hh"
#include "common/stats.hh"

namespace fosm {

double
PredictorStats::mispredictRate() const
{
    return safeRatio(static_cast<double>(mispredictions),
                     static_cast<double>(predictions));
}

void
BranchPredictor::record(bool correct)
{
    ++stats_.predictions;
    if (!correct)
        ++stats_.mispredictions;
}

void
TwoBitCounter::update(bool outcome)
{
    if (outcome) {
        if (value_ < 3)
            ++value_;
    } else {
        if (value_ > 0)
            --value_;
    }
}

std::unique_ptr<BranchPredictor>
makePredictor(PredictorKind kind, std::uint32_t entries)
{
    switch (kind) {
      case PredictorKind::GShare:
        return std::make_unique<GSharePredictor>(entries);
      case PredictorKind::Bimodal:
        return std::make_unique<BimodalPredictor>(entries);
      case PredictorKind::Local:
        return std::make_unique<LocalPredictor>(entries);
      case PredictorKind::Tournament:
        return std::make_unique<TournamentPredictor>(entries);
      case PredictorKind::Ideal:
        return std::make_unique<IdealPredictor>();
    }
    fosm_panic("unknown predictor kind");
}

} // namespace fosm
