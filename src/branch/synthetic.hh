/**
 * @file
 * Synthetic predictor: mispredicts each branch independently with a
 * configured probability. This is how statistical simulation
 * [Carl & Smith; Nussbaum & Smith] drives its fast simulator - the
 * measured misprediction *rate* is injected rather than re-emerging
 * from a real predictor on the synthetic trace.
 */

#ifndef FOSM_BRANCH_SYNTHETIC_HH
#define FOSM_BRANCH_SYNTHETIC_HH

#include "branch/predictor.hh"
#include "common/rng.hh"

namespace fosm {

class SyntheticPredictor : public BranchPredictor
{
  public:
    /** @param mispredict_rate probability of mispredicting a branch. */
    explicit SyntheticPredictor(double mispredict_rate,
                                std::uint64_t seed = 0xB7A9C4);

    bool predictAndUpdate(Addr pc, bool taken) override;
    std::string name() const override { return "synthetic"; }

  private:
    double rate_;
    Rng rng_;
};

} // namespace fosm

#endif // FOSM_BRANCH_SYNTHETIC_HH
