#include "branch/local.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"

namespace fosm {

LocalPredictor::LocalPredictor(std::uint32_t entries)
    : pattern_(entries),
      history_(std::max<std::uint32_t>(entries / 8, 16), 0),
      patternMask_(entries - 1),
      historyMask_(static_cast<std::uint32_t>(history_.size()) - 1),
      historyBits_(static_cast<std::uint32_t>(std::countr_zero(entries)))
{
    fosm_assert(std::has_single_bit(entries),
                "local pattern table size must be a power of two");
    fosm_assert(std::has_single_bit(
                    static_cast<std::uint32_t>(history_.size())),
                "local history table size must be a power of two");
}

bool
LocalPredictor::predictAndUpdate(Addr pc, bool taken)
{
    std::uint32_t &hist =
        history_[static_cast<std::uint32_t>(pc >> 2) & historyMask_];
    TwoBitCounter &ctr = pattern_[hist & patternMask_];

    const bool predicted = ctr.taken();
    ctr.update(taken);
    hist = ((hist << 1) | (taken ? 1u : 0u)) &
           ((1u << historyBits_) - 1u);

    const bool correct = predicted == taken;
    record(correct);
    return correct;
}

} // namespace fosm
