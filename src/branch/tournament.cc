#include "branch/tournament.hh"

#include <bit>

#include "common/logging.hh"

namespace fosm {

TournamentPredictor::TournamentPredictor(std::uint32_t entries)
    : chooser_(entries),
      chooserMask_(entries - 1),
      gshare_(entries),
      bimodal_(entries)
{
    fosm_assert(std::has_single_bit(entries),
                "tournament table size must be a power of two");
}

bool
TournamentPredictor::predictAndUpdate(Addr pc, bool taken)
{
    TwoBitCounter &choice =
        chooser_[static_cast<std::uint32_t>(pc >> 2) & chooserMask_];
    const bool trust_gshare = choice.taken();

    // Each component predicts and trains on every branch; their own
    // stats record component accuracy.
    const bool gshare_correct = gshare_.predictAndUpdate(pc, taken);
    const bool bimodal_correct = bimodal_.predictAndUpdate(pc, taken);

    // The chooser trains toward the component that was right when
    // they disagree.
    if (gshare_correct != bimodal_correct)
        choice.update(gshare_correct);

    const bool correct =
        trust_gshare ? gshare_correct : bimodal_correct;
    record(correct);
    return correct;
}

} // namespace fosm
