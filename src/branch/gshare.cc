#include "branch/gshare.hh"

#include <bit>

#include "common/logging.hh"

namespace fosm {

GSharePredictor::GSharePredictor(std::uint32_t entries)
    : table_(entries),
      indexMask_(entries - 1),
      historyBits_(static_cast<std::uint32_t>(std::countr_zero(entries)))
{
    fosm_assert(std::has_single_bit(entries),
                "gshare table size must be a power of two");
}

bool
GSharePredictor::predictAndUpdate(Addr pc, bool taken)
{
    // Branch PCs are word-aligned; drop the low bits before hashing.
    const std::uint32_t index =
        (static_cast<std::uint32_t>(pc >> 2) ^ history_) & indexMask_;
    TwoBitCounter &ctr = table_[index];

    const bool predicted = ctr.taken();
    ctr.update(taken);
    history_ = ((history_ << 1) | (taken ? 1u : 0u)) &
               ((1u << historyBits_) - 1u);

    const bool correct = predicted == taken;
    record(correct);
    return correct;
}

} // namespace fosm
