#include "branch/synthetic.hh"

#include "common/logging.hh"

namespace fosm {

SyntheticPredictor::SyntheticPredictor(double mispredict_rate,
                                       std::uint64_t seed)
    : rate_(mispredict_rate), rng_(seed)
{
    fosm_assert(mispredict_rate >= 0.0 && mispredict_rate <= 1.0,
                "misprediction rate must be a probability");
}

bool
SyntheticPredictor::predictAndUpdate(Addr, bool)
{
    const bool correct = !rng_.bernoulli(rate_);
    record(correct);
    return correct;
}

} // namespace fosm
