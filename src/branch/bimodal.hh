/**
 * @file
 * Bimodal predictor: PC-indexed table of two-bit counters. Provided
 * as a weaker comparison point for ablation against gShare.
 */

#ifndef FOSM_BRANCH_BIMODAL_HH
#define FOSM_BRANCH_BIMODAL_HH

#include <vector>

#include "branch/predictor.hh"

namespace fosm {

class BimodalPredictor : public BranchPredictor
{
  public:
    /** @param entries table size; must be a power of two. */
    explicit BimodalPredictor(std::uint32_t entries);

    bool predictAndUpdate(Addr pc, bool taken) override;
    std::string name() const override { return "bimodal"; }

  private:
    std::vector<TwoBitCounter> table_;
    std::uint32_t indexMask_;
};

} // namespace fosm

#endif // FOSM_BRANCH_BIMODAL_HH
