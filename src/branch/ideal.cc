#include "branch/ideal.hh"

namespace fosm {

bool
IdealPredictor::predictAndUpdate(Addr, bool)
{
    record(true);
    return true;
}

} // namespace fosm
