#include "store/store.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include <dirent.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/fault_injector.hh"
#include "common/hash.hh"
#include "common/logging.hh"
#include "store/crc32c.hh"

namespace fosm::store {

namespace {

// ---------------------------------------------------------------
// On-disk format (docs/STORE.md). All integers little-endian.
//
// Segment header (16 bytes):
//   0  char[8]  magic "FOSMSEG1"
//   8  u32      format version (1)
//   12 u32      reserved (0)
//
// Record (32-byte header + key + value):
//   0  u32      CRC32C of bytes [4, end) of the record
//   4  u32      key length
//   8  u32      value length
//   12 u32      flags (bit 0: tombstone)
//   16 u64      LSN (global logical sequence number; max wins)
//   24 u64      FNV-1a digest of the key
//   32 key bytes, then value bytes
// ---------------------------------------------------------------

constexpr char segMagic[8] = {'F', 'O', 'S', 'M', 'S', 'E', 'G', '1'};
constexpr std::uint32_t segFormatVersion = 1;
constexpr std::size_t segHeaderSize = 16;
constexpr std::size_t recHeaderSize = 32;
constexpr std::uint32_t flagTombstone = 1u;
constexpr std::uint32_t maxKeyLen = 1u << 20;
constexpr std::uint32_t maxValueLen = 1u << 30;

void
putU32(char *p, std::uint32_t v)
{
    for (unsigned i = 0; i < 4; ++i)
        p[i] = static_cast<char>(v >> (8 * i));
}

void
putU64(char *p, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i)
        p[i] = static_cast<char>(v >> (8 * i));
}

std::uint32_t
getU32(const unsigned char *p)
{
    std::uint32_t v = 0;
    for (unsigned i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
getU64(const unsigned char *p)
{
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

std::string
segmentName(std::uint64_t id)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llu.seg",
                  static_cast<unsigned long long>(id));
    return buf;
}

/** Parse "<16 digits>.seg"; returns false for anything else. */
bool
parseSegmentName(const std::string &name, std::uint64_t &id)
{
    if (name.size() != 20 || name.substr(16) != ".seg")
        return false;
    id = 0;
    for (int i = 0; i < 16; ++i) {
        if (name[i] < '0' || name[i] > '9')
            return false;
        id = id * 10 + static_cast<std::uint64_t>(name[i] - '0');
    }
    return true;
}

std::string
segmentHeaderBytes()
{
    std::string h(segHeaderSize, '\0');
    std::memcpy(h.data(), segMagic, sizeof(segMagic));
    putU32(h.data() + 8, segFormatVersion);
    putU32(h.data() + 12, 0);
    return h;
}

/** write() the whole buffer, retrying on EINTR / short writes. */
bool
writeAll(int fd, const char *data, std::size_t size)
{
    if (const FaultAction fault = faultAt("store.write")) {
        faultSleep(fault);
        if (fault.kind == FaultKind::Error) {
            errno = EIO;
            return false;
        }
        if (fault.kind == FaultKind::ShortWrite) {
            // A torn record: write a prefix, then fail as a crash
            // mid-write would. The caller's rollback (ftruncate to
            // the last intact record) is exactly what's under test.
            std::size_t half = size / 2;
            while (half > 0) {
                const ssize_t n = ::write(fd, data, half);
                if (n <= 0)
                    break;
                data += n;
                half -= static_cast<std::size_t>(n);
            }
            errno = EIO;
            return false;
        }
    }
    while (size > 0) {
        const ssize_t n = ::write(fd, data, size);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += n;
        size -= static_cast<std::size_t>(n);
    }
    return true;
}

void
fsyncDir(const std::string &dir)
{
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd >= 0) {
        ::fsync(fd);
        ::close(fd);
    }
}

/** One record as seen by the segment scanner. */
struct ScannedRecord
{
    std::uint64_t offset = 0;
    std::string_view key;
    std::uint32_t valueLen = 0;
    std::uint32_t flags = 0;
    std::uint64_t lsn = 0;
    std::uint64_t recordLen = 0;
};

struct ScanResult
{
    bool headerOk = false;
    std::uint64_t validEnd = 0; ///< end of the intact prefix
    std::uint64_t records = 0;
    std::uint64_t intactBytes = 0; ///< record bytes that verified
    std::uint64_t crcFailures = 0; ///< skipped records (resync mode)
    bool structural = false; ///< stopped at unparseable structure
    std::vector<std::string> corruptKeys; ///< digest-intact only
    std::string error; ///< first structural/CRC problem, if any
};

/**
 * Walk the records of one segment image. In recovery mode
 * (resyncCrcErrors=false) the scan stops at the first torn or
 * corrupt record (that offset becomes validEnd) — this is THE
 * recovery routine: open() truncates to validEnd. In resync mode
 * (fosm-store verify) a CRC-failed record whose framing is still
 * plausible is counted, its key collected when the key digest
 * matches, and the scan continues at the next record boundary;
 * only structural damage (torn header, implausible lengths,
 * truncation) stops the walk.
 */
template <typename OnRecord>
ScanResult
scanSegment(const unsigned char *data, std::size_t size,
            OnRecord &&onRecord, bool resyncCrcErrors = false)
{
    ScanResult result;
    if (size < segHeaderSize ||
        std::memcmp(data, segMagic, sizeof(segMagic)) != 0) {
        result.error = "missing or torn segment header";
        result.structural = true;
        return result;
    }
    if (getU32(data + 8) != segFormatVersion) {
        result.error = "unsupported format version " +
                       std::to_string(getU32(data + 8));
        result.structural = true;
        return result;
    }
    result.headerOk = true;
    std::uint64_t off = segHeaderSize;
    while (off + recHeaderSize <= size) {
        const unsigned char *rec = data + off;
        const std::uint32_t keyLen = getU32(rec + 4);
        const std::uint32_t valueLen = getU32(rec + 8);
        if (keyLen > maxKeyLen || valueLen > maxValueLen) {
            result.error = "implausible record lengths at offset " +
                           std::to_string(off);
            result.structural = true;
            break;
        }
        const std::uint64_t recordLen =
            recHeaderSize + keyLen + valueLen;
        if (off + recordLen > size) {
            result.error = "truncated record at offset " +
                           std::to_string(off);
            result.structural = true;
            break;
        }
        const std::string_view key(
            reinterpret_cast<const char *>(rec + recHeaderSize),
            keyLen);
        const bool crcOk =
            crc32c(rec + 4, recordLen - 4) == getU32(rec);
        const bool digestOk = fnv1a64(key) == getU64(rec + 24);
        if (!crcOk || !digestOk) {
            if (result.error.empty()) {
                result.error =
                    (crcOk ? "key digest mismatch at offset "
                           : "CRC mismatch at offset ") +
                    std::to_string(off);
            }
            if (!resyncCrcErrors)
                break;
            // Record-level corruption with intact framing: count
            // it, keep the key when its digest still checks out,
            // and resynchronize at the next record boundary.
            ++result.crcFailures;
            if (digestOk)
                result.corruptKeys.emplace_back(key);
            off += recordLen;
            continue;
        }
        ScannedRecord s;
        s.offset = off;
        s.key = key;
        s.valueLen = valueLen;
        s.flags = getU32(rec + 12);
        s.lsn = getU64(rec + 16);
        s.recordLen = recordLen;
        onRecord(s);
        ++result.records;
        result.intactBytes += recordLen;
        off += recordLen;
    }
    if (!result.structural && off != size &&
        off + recHeaderSize > size) {
        // A partial record header at the tail is an ordinary torn
        // write, not an error worth naming.
        if (result.error.empty())
            result.error = "torn record header at offset " +
                           std::to_string(off);
        result.structural = true;
    }
    result.validEnd = off;
    return result;
}

/** mmap a file read-only; returns nullptr for size 0. */
const unsigned char *
mapFile(int fd, std::size_t size)
{
    if (size == 0)
        return nullptr;
    void *p = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
    return p == MAP_FAILED ? nullptr
                           : static_cast<const unsigned char *>(p);
}

std::string
encodeRecord(const std::string &key, std::string_view value,
             std::uint64_t lsn, std::uint32_t flags)
{
    std::string rec(recHeaderSize, '\0');
    putU32(rec.data() + 4, static_cast<std::uint32_t>(key.size()));
    putU32(rec.data() + 8, static_cast<std::uint32_t>(value.size()));
    putU32(rec.data() + 12, flags);
    putU64(rec.data() + 16, lsn);
    putU64(rec.data() + 24, fnv1a64(key));
    rec.append(key);
    rec.append(value.data(), value.size());
    putU32(rec.data(), crc32c(rec.data() + 4, rec.size() - 4));
    return rec;
}

} // namespace

// -- Segment -------------------------------------------------------

struct PersistentStore::Segment
{
    std::uint64_t id = 0;
    std::string path;
    int fd = -1;
    std::uint64_t size = 0; ///< valid bytes (header + intact records)
    bool sealed = false;
    const unsigned char *map = nullptr; ///< read mapping when sealed
    std::size_t mapSize = 0;

    // Accounting (guarded by the store's exclusive lock).
    std::uint64_t records = 0;
    std::uint64_t recordBytes = 0;
    std::uint64_t deadRecords = 0;
    std::uint64_t deadBytes = 0;
    std::uint64_t minLsn = 0; ///< 0 while the segment is empty
    std::uint64_t maxLsn = 0;

    void
    noteLsn(std::uint64_t lsn)
    {
        if (minLsn == 0 || lsn < minLsn)
            minLsn = lsn;
        if (lsn > maxLsn)
            maxLsn = lsn;
    }

    ~Segment()
    {
        if (map)
            ::munmap(const_cast<unsigned char *>(map), mapSize);
        if (fd >= 0)
            ::close(fd);
    }

    void
    mapSealed()
    {
        map = mapFile(fd, size);
        mapSize = size;
        sealed = true;
    }
};

// -- Open / recovery -----------------------------------------------

PersistentStore::PersistentStore(StoreConfig config)
    : config_(std::move(config))
{
    if (config_.dir.empty())
        throw std::runtime_error("fosm-store: empty directory path");
    openDir();
    if (config_.backgroundCompaction)
        compactor_ = std::thread([this] { compactionLoop(); });
}

void
PersistentStore::openDir()
{
    if (::mkdir(config_.dir.c_str(), 0755) != 0 && errno != EEXIST) {
        throw std::runtime_error("fosm-store: cannot create " +
                                 config_.dir + ": " +
                                 std::strerror(errno));
    }
    DIR *d = ::opendir(config_.dir.c_str());
    if (!d) {
        throw std::runtime_error("fosm-store: cannot open " +
                                 config_.dir + ": " +
                                 std::strerror(errno));
    }
    std::vector<std::uint64_t> ids;
    while (const dirent *e = ::readdir(d)) {
        const std::string name = e->d_name;
        std::uint64_t id;
        if (parseSegmentName(name, id)) {
            ids.push_back(id);
        } else if (name.size() > 4 &&
                   name.substr(name.size() - 4) == ".tmp") {
            // A compaction that died before its rename; the rename is
            // the commit point, so the temp file is garbage.
            ::unlink((config_.dir + "/" + name).c_str());
        }
    }
    ::closedir(d);
    std::sort(ids.begin(), ids.end());

    // Replay every segment, newest LSN per key winning regardless of
    // file order.
    struct ReplayEntry
    {
        Location loc;
        bool tombstone = false;
    };
    std::unordered_map<std::string, ReplayEntry> replay;

    for (const std::uint64_t id : ids) {
        auto seg = std::make_unique<Segment>();
        seg->id = id;
        seg->path = config_.dir + "/" + segmentName(id);
        seg->fd = ::open(seg->path.c_str(), O_RDWR | O_APPEND);
        if (seg->fd < 0) {
            throw std::runtime_error("fosm-store: cannot open " +
                                     seg->path + ": " +
                                     std::strerror(errno));
        }
        struct stat st{};
        ::fstat(seg->fd, &st);
        const auto fileSize = static_cast<std::size_t>(st.st_size);
        const unsigned char *data = mapFile(seg->fd, fileSize);

        const ScanResult scan = scanSegment(
            data, data ? fileSize : 0, [&](const ScannedRecord &r) {
                const std::string key(r.key);
                Location loc;
                loc.segmentId = id;
                loc.offset = r.offset;
                loc.valueLen = r.valueLen;
                loc.recordLen = r.recordLen;
                loc.lsn = r.lsn;
                auto [it, inserted] =
                    replay.try_emplace(key, ReplayEntry{});
                if (inserted || r.lsn > it->second.loc.lsn) {
                    it->second.loc = loc;
                    it->second.tombstone =
                        (r.flags & flagTombstone) != 0;
                }
                nextLsn_ = std::max(nextLsn_, r.lsn + 1);
                seg->noteLsn(r.lsn);
            });
        if (data)
            ::munmap(const_cast<unsigned char *>(data), fileSize);

        if (!scan.headerOk) {
            // The header itself is torn: nothing in this file is
            // trustworthy. Reset it to an empty segment.
            if (fileSize > 0) {
                warn("fosm-store: resetting segment ", seg->path,
                     " (", scan.error, ")");
                ++truncatedTails_;
            }
            ::ftruncate(seg->fd, 0);
            const std::string h = segmentHeaderBytes();
            writeAll(seg->fd, h.data(), h.size());
            seg->size = segHeaderSize;
        } else {
            if (scan.validEnd < fileSize) {
                warn("fosm-store: truncating torn tail of ",
                     seg->path, " at ", scan.validEnd, " (",
                     scan.error, ")");
                ::ftruncate(seg->fd,
                            static_cast<off_t>(scan.validEnd));
                ::fsync(seg->fd);
                ++truncatedTails_;
            }
            seg->size = scan.validEnd;
        }
        seg->records = scan.records;
        seg->recordBytes = seg->size - segHeaderSize;
        segments_.emplace(id, std::move(seg));
        nextSegmentId_ = std::max(nextSegmentId_, id + 1);
    }

    // Final index: drop tombstones, then charge every superseded or
    // tombstoned record as dead bytes in its segment.
    for (auto &[key, entry] : replay) {
        if (!entry.tombstone) {
            index_.emplace(key, entry.loc);
            if (key.rfind("q/", 0) == 0)
                ++quarantineMarks_; // quarantines survive restart
        }
    }
    std::unordered_map<std::uint64_t, std::uint64_t> liveBytesBySeg;
    std::unordered_map<std::uint64_t, std::uint64_t> liveRecsBySeg;
    for (const auto &[key, loc] : index_) {
        liveBytesBySeg[loc.segmentId] += loc.recordLen;
        ++liveRecsBySeg[loc.segmentId];
    }
    for (auto &[id, seg] : segments_) {
        seg->deadBytes = seg->recordBytes - liveBytesBySeg[id];
        seg->deadRecords = seg->records - liveRecsBySeg[id];
    }

    // The highest-numbered segment stays the append target; everyone
    // else is sealed and mapped.
    if (segments_.empty()) {
        newSegmentLocked();
    } else {
        activeId_ = segments_.rbegin()->first;
        for (auto &[id, seg] : segments_)
            if (id != activeId_)
                seg->mapSealed();
        Segment *last = segments_.rbegin()->second.get();
        if (last->size >= config_.maxSegmentBytes) {
            newSegmentLocked();
            ::fsync(last->fd);
            last->mapSealed();
        }
    }
}

PersistentStore::~PersistentStore()
{
    {
        std::lock_guard<std::mutex> lock(cvMutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    if (compactor_.joinable())
        compactor_.join();
    flush();
}

// -- Data path -----------------------------------------------------

PersistentStore::Segment *
PersistentStore::activeSegment()
{
    return segments_.at(activeId_).get();
}

PersistentStore::ReadStatus
PersistentStore::readValue(const Segment &segment,
                           const Location &loc,
                           std::string &out) const
{
    if (const FaultAction fault = faultAt("store.read")) {
        faultSleep(fault);
        if (fault.kind == FaultKind::Error ||
            fault.kind == FaultKind::ShortWrite)
            return ReadStatus::Failed; // a miss: caller recomputes
    }
    const std::uint64_t keyLen =
        loc.recordLen - recHeaderSize - loc.valueLen;
    const std::uint64_t valueOff =
        loc.offset + recHeaderSize + keyLen;
    if (config_.verifyOnRead) {
        // Re-read and re-verify the whole record.
        std::string rec(loc.recordLen, '\0');
        if (segment.map) {
            std::memcpy(rec.data(), segment.map + loc.offset,
                        loc.recordLen);
        } else if (::pread(segment.fd, rec.data(), loc.recordLen,
                           static_cast<off_t>(loc.offset)) !=
                   static_cast<ssize_t>(loc.recordLen)) {
            return ReadStatus::Failed;
        }
        const auto *bytes =
            reinterpret_cast<const unsigned char *>(rec.data());
        if (crc32c(bytes + 4, loc.recordLen - 4) != getU32(bytes))
            return ReadStatus::Corrupt;
        out.assign(rec, recHeaderSize + keyLen, loc.valueLen);
        return ReadStatus::Ok;
    }
    out.resize(loc.valueLen);
    if (segment.map) {
        std::memcpy(out.data(), segment.map + valueOff,
                    loc.valueLen);
        return ReadStatus::Ok;
    }
    return ::pread(segment.fd, out.data(), loc.valueLen,
                   static_cast<off_t>(valueOff)) ==
                   static_cast<ssize_t>(loc.valueLen)
               ? ReadStatus::Ok
               : ReadStatus::Failed;
}

bool
PersistentStore::recordCrcOkLocked(const Segment &segment,
                                   const Location &loc) const
{
    std::string rec(loc.recordLen, '\0');
    if (segment.map) {
        std::memcpy(rec.data(), segment.map + loc.offset,
                    loc.recordLen);
    } else if (::pread(segment.fd, rec.data(), loc.recordLen,
                       static_cast<off_t>(loc.offset)) !=
               static_cast<ssize_t>(loc.recordLen)) {
        return false;
    }
    const auto *bytes =
        reinterpret_cast<const unsigned char *>(rec.data());
    return crc32c(bytes + 4, loc.recordLen - 4) == getU32(bytes);
}

bool
PersistentStore::get(const std::string &key, std::string &value)
{
    std::uint64_t corruptLsn = 0;
    bool corrupt = false;
    {
        std::shared_lock<std::shared_mutex> lock(mutex_);
        gets_.fetch_add(1, std::memory_order_relaxed);
        const auto it = index_.find(key);
        if (it == index_.end())
            return false;
        const auto seg = segments_.find(it->second.segmentId);
        if (seg == segments_.end())
            return false;
        switch (readValue(*seg->second, it->second, value)) {
        case ReadStatus::Ok:
            hits_.fetch_add(1, std::memory_order_relaxed);
            return true;
        case ReadStatus::Failed:
            return false;
        case ReadStatus::Corrupt:
            // A repairable miss, never an error: count it, tell the
            // scrub/repair layer (outside the lock), and let the
            // caller recompute or fall through to a warmer tier.
            corruptReads_.fetch_add(1, std::memory_order_relaxed);
            corruptLsn = it->second.lsn;
            corrupt = true;
            break;
        }
    }
    if (corrupt) {
        CorruptionHook hook;
        {
            std::lock_guard<std::mutex> lock(hookMutex_);
            hook = corruptionHook_;
        }
        if (hook)
            hook(key, corruptLsn);
    }
    return false;
}

bool
PersistentStore::contains(const std::string &key)
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return index_.count(key) > 0;
}

void
PersistentStore::accountDead(const Location &loc)
{
    const auto it = segments_.find(loc.segmentId);
    if (it != segments_.end()) {
        it->second->deadBytes += loc.recordLen;
        ++it->second->deadRecords;
    }
}

std::uint64_t
PersistentStore::appendLocked(const std::string &key,
                              std::string_view value, bool tombstone)
{
    Segment *seg = activeSegment();
    const std::uint64_t lsn = nextLsn_++;
    std::string rec = encodeRecord(
        key, value, lsn, tombstone ? flagTombstone : 0);
    if (const FaultAction fault = faultAt("store.corrupt")) {
        // Silent media corruption: flip one payload byte AFTER the
        // CRC was computed, so the record lands on disk latent-bad —
        // exactly what scrub and verify-on-read exist to catch.
        if (fault.kind == FaultKind::FlipByte && !value.empty() &&
            !tombstone)
            rec[recHeaderSize + key.size() + lsn % value.size()] ^=
                0x40;
    }
    if (!writeAll(seg->fd, rec.data(), rec.size())) {
        // Disk trouble: roll the file back to the last intact record
        // so later appends stay aligned, and drop this write (the
        // store is a cache; the caller recomputes).
        warn("fosm-store: append to ", seg->path, " failed: ",
             std::strerror(errno));
        ::ftruncate(seg->fd, static_cast<off_t>(seg->size));
        return 0;
    }
    if (config_.fsyncEachPut) {
        faultSleep(faultAt("store.fsync")); // a slow disk's fsync
        ::fsync(seg->fd);
    }

    Location loc;
    loc.segmentId = seg->id;
    loc.offset = seg->size;
    loc.valueLen = static_cast<std::uint32_t>(value.size());
    loc.recordLen = rec.size();
    loc.lsn = lsn;
    seg->size += rec.size();
    ++seg->records;
    seg->recordBytes += rec.size();
    seg->noteLsn(lsn);
    ++appends_;

    const bool isMark = key.rfind("q/", 0) == 0;
    const auto it = index_.find(key);
    if (it != index_.end()) {
        accountDead(it->second);
        if (tombstone) {
            index_.erase(it);
            if (isMark)
                --quarantineMarks_;
        } else {
            it->second = loc;
        }
    } else if (!tombstone) {
        index_.emplace(key, loc);
        if (isMark)
            ++quarantineMarks_;
    }
    if (tombstone) {
        // The tombstone record itself is dead weight from birth.
        seg->deadBytes += rec.size();
        ++seg->deadRecords;
    }

    if (seg->size >= config_.maxSegmentBytes) {
        // Create the successor first: if that fails (disk trouble),
        // the current segment just keeps growing instead of the
        // store wedging on a sealed append target.
        try {
            newSegmentLocked();
            ::fsync(seg->fd);
            seg->mapSealed();
        } catch (const std::exception &e) {
            warn("fosm-store: segment rotation failed: ", e.what());
        }
    }
    return lsn;
}

void
PersistentStore::put(const std::string &key, std::string_view value)
{
    if (key.size() > maxKeyLen || value.size() > maxValueLen) {
        warn("fosm-store: oversized put dropped (key ", key.size(),
             " bytes, value ", value.size(), " bytes)");
        return;
    }
    bool wantCompaction;
    std::uint64_t lsn;
    {
        std::unique_lock<std::shared_mutex> lock(mutex_);
        lsn = appendLocked(key, value, false);
        if (lsn != 0 && quarantineMarks_ > 0 &&
            key.rfind("q/", 0) != 0 &&
            index_.count(quarantineKey(key)) > 0) {
            // A fresh committed value IS the re-commit that ends a
            // quarantine: drop the mark.
            appendLocked(quarantineKey(key), {}, true);
        }
        wantCompaction = shouldCompactLocked();
    }
    if (wantCompaction && config_.backgroundCompaction) {
        {
            std::lock_guard<std::mutex> lock(cvMutex_);
            compactRequested_ = true;
        }
        cv_.notify_one();
    }
    if (lsn != 0) {
        // Copy under the hook lock, invoke outside it: the hook may
        // be cleared concurrently (replicator shutdown) while a put
        // is in flight, and the replicator outlives its server's
        // workers, so running the previous hook once more is safe.
        CommitHook hook;
        {
            std::lock_guard<std::mutex> lock(hookMutex_);
            hook = commitHook_;
        }
        if (hook)
            hook(key, value, lsn);
    }
}

void
PersistentStore::setCommitHook(CommitHook hook)
{
    std::lock_guard<std::mutex> lock(hookMutex_);
    commitHook_ = std::move(hook);
}

void
PersistentStore::setCorruptionHook(CorruptionHook hook)
{
    std::lock_guard<std::mutex> lock(hookMutex_);
    corruptionHook_ = std::move(hook);
}

void
PersistentStore::remove(const std::string &key)
{
    std::unique_lock<std::shared_mutex> lock(mutex_);
    if (index_.count(key) == 0)
        return; // nothing to shadow; skip the tombstone
    appendLocked(key, {}, true);
}

PersistentStore::Segment *
PersistentStore::newSegmentLocked()
{
    const std::uint64_t id = nextSegmentId_++;
    auto seg = std::make_unique<Segment>();
    seg->id = id;
    seg->path = config_.dir + "/" + segmentName(id);
    seg->fd = ::open(seg->path.c_str(),
                     O_RDWR | O_CREAT | O_TRUNC | O_APPEND, 0644);
    if (seg->fd < 0) {
        throw std::runtime_error("fosm-store: cannot create " +
                                 seg->path + ": " +
                                 std::strerror(errno));
    }
    const std::string h = segmentHeaderBytes();
    writeAll(seg->fd, h.data(), h.size());
    seg->size = segHeaderSize;
    fsyncDir(config_.dir);
    Segment *raw = seg.get();
    segments_.emplace(id, std::move(seg));
    activeId_ = id;
    return raw;
}

void
PersistentStore::flush()
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    const auto it = segments_.find(activeId_);
    if (it != segments_.end())
        ::fsync(it->second->fd);
}

bool
PersistentStore::shouldCompactLocked() const
{
    std::uint64_t sealedBytes = 0, sealedDead = 0;
    for (const auto &[id, seg] : segments_) {
        if (!seg->sealed)
            continue;
        sealedBytes += seg->recordBytes;
        sealedDead += seg->deadBytes;
    }
    return sealedDead >= config_.compactMinDeadBytes &&
           sealedBytes > 0 &&
           static_cast<double>(sealedDead) >
               config_.compactDeadFraction *
                   static_cast<double>(sealedBytes);
}

// -- Compaction ----------------------------------------------------

void
PersistentStore::compact()
{
    // One compaction at a time; sealed segments are immutable and can
    // only be retired by this function, so their mappings stay valid
    // for the whole run without holding the store lock.
    std::lock_guard<std::mutex> run(compactRunMutex_);

    struct LiveRec
    {
        std::string key;
        const Segment *segment;
        Location loc;
        std::uint64_t newOffset = 0;
        bool corrupt = false;
    };
    std::vector<LiveRec> live;
    std::vector<std::uint64_t> retiring;
    {
        std::shared_lock<std::shared_mutex> lock(mutex_);
        for (const auto &[id, seg] : segments_)
            if (seg->sealed)
                retiring.push_back(id);
        if (retiring.empty())
            return;
        for (const auto &[key, loc] : index_) {
            const auto it = segments_.find(loc.segmentId);
            if (it != segments_.end() && it->second->sealed)
                live.push_back(
                    LiveRec{key, it->second.get(), loc, 0});
        }
    }

    std::uint64_t newId;
    {
        std::unique_lock<std::shared_mutex> lock(mutex_);
        newId = nextSegmentId_++;
    }

    // Rewrite the live records (original LSNs preserved) into a temp
    // file. If we die anywhere before the rename below, the temp file
    // is deleted at next open and nothing changed.
    const std::string tmpPath =
        config_.dir + "/compact-" + std::to_string(newId) + ".tmp";
    const int fd = ::open(tmpPath.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        warn("fosm-store: compaction cannot create ", tmpPath, ": ",
             std::strerror(errno));
        return;
    }
    std::string out = segmentHeaderBytes();
    std::uint64_t newSize = segHeaderSize;
    std::uint64_t newRecords = 0;
    for (LiveRec &r : live) {
        const unsigned char *src = r.segment->map + r.loc.offset;
        if (crc32c(src + 4, r.loc.recordLen - 4) != getU32(src)) {
            // Never launder corruption into a fresh CRC: a corrupt
            // record is dropped from the copy and quarantined in the
            // commit section below.
            r.corrupt = true;
            continue;
        }
        const std::uint64_t keyLen =
            r.loc.recordLen - recHeaderSize - r.loc.valueLen;
        const char *value = reinterpret_cast<const char *>(
            r.segment->map + r.loc.offset + recHeaderSize + keyLen);
        const std::string rec = encodeRecord(
            r.key, std::string_view(value, r.loc.valueLen),
            r.loc.lsn, 0);
        r.newOffset = newSize;
        out.append(rec);
        newSize += rec.size();
        ++newRecords;
        if (out.size() >= (1u << 20)) {
            if (!writeAll(fd, out.data(), out.size()))
                break;
            out.clear();
        }
    }
    bool ok = writeAll(fd, out.data(), out.size());
    ok = ok && ::fsync(fd) == 0;
    ::close(fd);
    if (!ok) {
        warn("fosm-store: compaction write failed: ",
             std::strerror(errno));
        ::unlink(tmpPath.c_str());
        return;
    }

    // Commit point: the rename. After this the new segment exists
    // alongside the old ones; LSN-max replay makes the overlap
    // harmless if we die before the unlinks.
    const std::string newPath =
        config_.dir + "/" + segmentName(newId);
    if (::rename(tmpPath.c_str(), newPath.c_str()) != 0) {
        warn("fosm-store: compaction rename failed: ",
             std::strerror(errno));
        ::unlink(tmpPath.c_str());
        return;
    }
    fsyncDir(config_.dir);

    auto seg = std::make_unique<Segment>();
    seg->id = newId;
    seg->path = newPath;
    seg->fd = ::open(newPath.c_str(), O_RDONLY);
    seg->size = newSize;
    seg->records = newRecords;
    seg->recordBytes = newSize - segHeaderSize;
    for (const LiveRec &r : live)
        if (!r.corrupt)
            seg->noteLsn(r.loc.lsn);
    seg->mapSealed();

    std::vector<std::pair<std::string, std::uint64_t>> quarantinedNow;
    {
        std::unique_lock<std::shared_mutex> lock(mutex_);
        // Repoint entries that still reference the retired segments.
        // Anything overwritten while we copied now points at the
        // active segment; its stale copy in the new segment is dead.
        for (const LiveRec &r : live) {
            const auto it = index_.find(r.key);
            const bool stillHere =
                it != index_.end() &&
                it->second.segmentId == r.loc.segmentId &&
                it->second.offset == r.loc.offset;
            if (r.corrupt) {
                // The only copy this node has failed its CRC; the
                // retired file (and the bytes) are going away, so
                // quarantine the key for the repair channel.
                if (stillHere) {
                    index_.erase(it);
                    appendLocked(quarantineKey(r.key),
                                 std::to_string(r.loc.lsn), false);
                    ++quarantinedTotal_;
                    quarantinedNow.emplace_back(r.key, r.loc.lsn);
                }
                continue;
            }
            if (stillHere) {
                it->second.segmentId = newId;
                it->second.offset = r.newOffset;
            } else {
                seg->deadBytes += r.loc.recordLen;
                ++seg->deadRecords;
            }
        }
        for (const std::uint64_t id : retiring) {
            const auto it = segments_.find(id);
            if (it != segments_.end()) {
                ::unlink(it->second->path.c_str());
                segments_.erase(it);
            }
        }
        segments_.emplace(newId, std::move(seg));
        ++compactions_;
    }
    fsyncDir(config_.dir);
    if (!quarantinedNow.empty()) {
        CorruptionHook hook;
        {
            std::lock_guard<std::mutex> lock(hookMutex_);
            hook = corruptionHook_;
        }
        if (hook)
            for (const auto &[key, lsn] : quarantinedNow)
                hook(key, lsn);
    }
}

void
PersistentStore::compactionLoop()
{
    while (true) {
        {
            std::unique_lock<std::mutex> lock(cvMutex_);
            cv_.wait(lock, [this] {
                return stopping_ || compactRequested_;
            });
            if (stopping_)
                return;
            compactRequested_ = false;
        }
        compact();
    }
}

// -- Scrub support -------------------------------------------------

std::vector<ScrubEntry>
PersistentStore::liveEntriesInSegment(std::uint64_t segmentId,
                                      std::uint64_t sinceLsn) const
{
    std::vector<ScrubEntry> out;
    std::shared_lock<std::shared_mutex> lock(mutex_);
    for (const auto &[key, loc] : index_) {
        if (loc.segmentId != segmentId || loc.lsn <= sinceLsn)
            continue;
        ScrubEntry e;
        e.key = key;
        e.lsn = loc.lsn;
        e.offset = loc.offset;
        e.recordLen = loc.recordLen;
        out.push_back(std::move(e));
    }
    std::sort(out.begin(), out.end(),
              [](const ScrubEntry &a, const ScrubEntry &b) {
                  return a.offset < b.offset;
              });
    return out;
}

RecordCheck
PersistentStore::verifyRecord(const std::string &key,
                              std::uint64_t &lsn) const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it == index_.end())
        return RecordCheck::Gone;
    const auto seg = segments_.find(it->second.segmentId);
    if (seg == segments_.end())
        return RecordCheck::Gone;
    lsn = it->second.lsn;
    return recordCrcOkLocked(*seg->second, it->second)
               ? RecordCheck::Ok
               : RecordCheck::Corrupt;
}

bool
PersistentStore::quarantine(const std::string &key,
                            std::uint64_t expectLsn)
{
    if (key.rfind("q/", 0) == 0)
        return false; // marks are never themselves quarantined
    {
        std::unique_lock<std::shared_mutex> lock(mutex_);
        const auto it = index_.find(key);
        if (it == index_.end() || it->second.lsn != expectLsn)
            return false; // rewritten or removed since detection
        const auto seg = segments_.find(it->second.segmentId);
        if (seg == segments_.end())
            return false;
        if (recordCrcOkLocked(*seg->second, it->second))
            return false; // healthy again (compaction re-read raced)
        // Drop the corrupt record from the index — its bytes stay
        // on disk as dead weight (live segments are never truncated)
        // until compaction skips them — and persist the mark so
        // repair can find it after a restart.
        const std::uint64_t damagedId = it->second.segmentId;
        accountDead(it->second);
        index_.erase(it);
        if (damagedId == activeId_) {
            // Recovery truncates a segment at its first CRC-failed
            // record, so anything appended after the corrupt bytes
            // in the SAME segment would be lost on restart — the
            // mark included. Seal the damaged segment first; the
            // mark then lands in a fresh one recovery replays
            // independently.
            Segment *damaged = activeSegment();
            try {
                newSegmentLocked();
                ::fsync(damaged->fd);
                damaged->mapSealed();
            } catch (const std::exception &e) {
                warn("fosm-store: rotation at quarantine failed: ",
                     e.what());
            }
        }
        appendLocked(quarantineKey(key), std::to_string(expectLsn),
                     false);
        ++quarantinedTotal_;
    }
    // Compaction rewrites the segment's surviving live records and
    // deletes the corrupt bytes outright; nudge it so the damage
    // doesn't sit on disk until the usual dead-space thresholds.
    if (config_.backgroundCompaction) {
        {
            std::lock_guard<std::mutex> lock(cvMutex_);
            compactRequested_ = true;
        }
        cv_.notify_one();
    }
    return true;
}

// -- Introspection -------------------------------------------------

void
PersistentStore::forEachLive(
    const std::function<void(const std::string &, const std::string &,
                             std::uint64_t)> &fn)
{
    std::vector<std::string> keys;
    {
        std::shared_lock<std::shared_mutex> lock(mutex_);
        keys.reserve(index_.size());
        for (const auto &[key, loc] : index_)
            keys.push_back(key);
    }
    std::sort(keys.begin(), keys.end());
    for (const std::string &key : keys) {
        std::string value;
        std::uint64_t lsn = 0;
        {
            std::shared_lock<std::shared_mutex> lock(mutex_);
            const auto it = index_.find(key);
            if (it == index_.end())
                continue;
            const auto seg = segments_.find(it->second.segmentId);
            if (seg == segments_.end() ||
                readValue(*seg->second, it->second, value) !=
                    ReadStatus::Ok)
                continue;
            lsn = it->second.lsn;
        }
        fn(key, value, lsn);
    }
}

void
PersistentStore::forEachLiveKey(
    const std::function<void(const std::string &, std::uint64_t)> &fn)
    const
{
    std::vector<std::pair<std::string, std::uint64_t>> keys;
    {
        std::shared_lock<std::shared_mutex> lock(mutex_);
        keys.reserve(index_.size());
        for (const auto &[key, loc] : index_)
            keys.emplace_back(key, loc.lsn);
    }
    for (const auto &[key, lsn] : keys)
        fn(key, lsn);
}

std::vector<LiveEntry>
PersistentStore::collectSince(
    std::uint64_t sinceLsn, std::size_t maxEntries,
    std::size_t maxBytes,
    const std::function<bool(const std::string &)> &filter,
    bool &more) const
{
    std::vector<LiveEntry> out;
    more = false;
    std::shared_lock<std::shared_mutex> lock(mutex_);

    // Watermark fast path: a caught-up replica's pull touches only
    // the per-segment maxLsn, never the index or the record bytes.
    bool anyAbove = false;
    for (const auto &[id, seg] : segments_) {
        if (seg->maxLsn > sinceLsn) {
            anyAbove = true;
            break;
        }
    }
    if (!anyAbove)
        return out;

    struct Candidate
    {
        const std::string *key;
        const Location *loc;
    };
    std::vector<Candidate> candidates;
    for (const auto &[key, loc] : index_) {
        if (loc.lsn <= sinceLsn)
            continue;
        if (filter && !filter(key))
            continue;
        candidates.push_back(Candidate{&key, &loc});
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate &a, const Candidate &b) {
                  return a.loc->lsn < b.loc->lsn;
              });

    std::size_t bytes = 0;
    for (const Candidate &c : candidates) {
        if (out.size() >= maxEntries ||
            (bytes > 0 && bytes + c.loc->valueLen > maxBytes)) {
            more = true;
            break;
        }
        const auto seg = segments_.find(c.loc->segmentId);
        if (seg == segments_.end())
            continue;
        LiveEntry entry;
        entry.key = *c.key;
        entry.lsn = c.loc->lsn;
        if (readValue(*seg->second, *c.loc, entry.value) !=
            ReadStatus::Ok)
            continue;
        bytes += entry.value.size();
        out.push_back(std::move(entry));
    }
    return out;
}

std::vector<SegmentLsnInfo>
PersistentStore::segmentLsns() const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    std::vector<SegmentLsnInfo> out;
    out.reserve(segments_.size());
    std::unordered_map<std::uint64_t, std::uint64_t> liveBySeg;
    for (const auto &[key, loc] : index_)
        ++liveBySeg[loc.segmentId];
    for (const auto &[id, seg] : segments_) {
        SegmentLsnInfo info;
        info.id = id;
        info.records = seg->records;
        info.liveRecords = liveBySeg[id];
        info.bytes = seg->size;
        info.minLsn = seg->minLsn;
        info.maxLsn = seg->maxLsn;
        info.sealed = seg->sealed;
        out.push_back(info);
    }
    return out;
}

std::uint64_t
PersistentStore::maxLsn() const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return nextLsn_ - 1;
}

StoreStats
PersistentStore::stats() const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    StoreStats s;
    s.segments = segments_.size();
    s.liveRecords = index_.size();
    std::uint64_t recordBytes = 0;
    for (const auto &[id, seg] : segments_) {
        s.deadRecords += seg->deadRecords;
        s.deadBytes += seg->deadBytes;
        s.totalBytes += seg->size;
        recordBytes += seg->recordBytes;
    }
    s.liveBytes = recordBytes - s.deadBytes;
    s.appends = appends_;
    s.gets = gets_.load(std::memory_order_relaxed);
    s.hits = hits_.load(std::memory_order_relaxed);
    s.compactions = compactions_;
    s.truncatedTails = truncatedTails_;
    s.maxLsn = nextLsn_ - 1;
    s.corruptReads = corruptReads_.load(std::memory_order_relaxed);
    s.quarantined = quarantinedTotal_;
    s.quarantineLive = quarantineMarks_;
    return s;
}

std::vector<SegmentReport>
verifyDir(const std::string &dir)
{
    std::vector<SegmentReport> reports;
    DIR *d = ::opendir(dir.c_str());
    if (!d)
        return reports;
    std::vector<std::pair<std::uint64_t, std::string>> files;
    while (const dirent *e = ::readdir(d)) {
        std::uint64_t id;
        if (parseSegmentName(e->d_name, id))
            files.emplace_back(id, dir + "/" + e->d_name);
    }
    ::closedir(d);
    std::sort(files.begin(), files.end());

    for (const auto &[id, path] : files) {
        SegmentReport report;
        report.file = path;
        report.id = id;
        const int fd = ::open(path.c_str(), O_RDONLY);
        if (fd < 0) {
            report.intact = false;
            report.structural = true;
            report.error = std::strerror(errno);
            reports.push_back(std::move(report));
            continue;
        }
        struct stat st{};
        ::fstat(fd, &st);
        const auto size = static_cast<std::size_t>(st.st_size);
        report.fileBytes = size;
        const unsigned char *data = mapFile(fd, size);
        ScanResult scan = scanSegment(
            data, data ? size : 0, [](const ScannedRecord &) {},
            /*resyncCrcErrors=*/true);
        report.records = scan.records;
        report.bytes = scan.intactBytes;
        report.crcFailures = scan.crcFailures;
        report.structural = scan.structural;
        report.corruptKeys = std::move(scan.corruptKeys);
        report.intact = scan.headerOk && !scan.structural &&
                        scan.crcFailures == 0;
        report.error = scan.error;
        if (data)
            ::munmap(const_cast<unsigned char *>(data), size);
        ::close(fd);
        reports.push_back(std::move(report));
    }
    return reports;
}

} // namespace fosm::store
