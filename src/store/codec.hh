/**
 * @file
 * Little-endian binary encoding helpers for store values. The store
 * itself treats values as opaque bytes; layers above it (the
 * characterization store in particular) need an exact, compact
 * serialization — doubles must round-trip bit-identically, because
 * warm-started evaluations are required to be byte-equal to cold
 * ones. Encoding by byte image (memcpy) guarantees that; JSON would
 * too, but at several times the size for numeric bulk data like gap
 * vectors.
 */

#ifndef FOSM_STORE_CODEC_HH
#define FOSM_STORE_CODEC_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace fosm::store {

/** Appends fixed-width little-endian fields to a byte string. */
class Encoder
{
  public:
    void
    u32(std::uint32_t v)
    {
        appendInt(v);
    }

    void
    u64(std::uint64_t v)
    {
        appendInt(v);
    }

    void
    f64(double v)
    {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        appendInt(bits);
    }

    /** Length-prefixed byte string. */
    void
    bytes(std::string_view s)
    {
        u64(s.size());
        buf_.append(s.data(), s.size());
    }

    void
    u32Vector(const std::vector<std::uint32_t> &v)
    {
        u64(v.size());
        for (const std::uint32_t x : v)
            u32(x);
    }

    void
    u64Vector(const std::vector<std::uint64_t> &v)
    {
        u64(v.size());
        for (const std::uint64_t x : v)
            u64(x);
    }

    void
    f64Vector(const std::vector<double> &v)
    {
        u64(v.size());
        for (const double x : v)
            f64(x);
    }

    const std::string &str() const { return buf_; }
    std::string take() { return std::move(buf_); }

  private:
    template <typename T>
    void
    appendInt(T v)
    {
        for (unsigned i = 0; i < sizeof(T); ++i)
            buf_.push_back(static_cast<char>(
                static_cast<std::uint64_t>(v) >> (8 * i)));
    }

    std::string buf_;
};

/**
 * Reads Encoder output back. All getters return false once the input
 * is exhausted or malformed; callers check ok() (or the last getter)
 * and treat failure as a cache miss, never an error.
 */
class Decoder
{
  public:
    explicit Decoder(std::string_view data) : data_(data) {}

    bool
    u32(std::uint32_t &out)
    {
        return readInt(out);
    }

    bool
    u64(std::uint64_t &out)
    {
        return readInt(out);
    }

    bool
    f64(double &out)
    {
        std::uint64_t bits;
        if (!readInt(bits))
            return false;
        std::memcpy(&out, &bits, sizeof(out));
        return true;
    }

    bool
    bytes(std::string &out)
    {
        std::uint64_t n;
        if (!u64(n) || n > data_.size() - pos_)
            return fail();
        out.assign(data_.data() + pos_, n);
        pos_ += n;
        return true;
    }

    bool
    u32Vector(std::vector<std::uint32_t> &out)
    {
        std::uint64_t n;
        // Each element needs 4 bytes; bound before reserving so a
        // corrupt length can't trigger a huge allocation.
        if (!u64(n) || n > (data_.size() - pos_) / 4)
            return fail();
        out.clear();
        out.reserve(n);
        for (std::uint64_t i = 0; i < n; ++i) {
            std::uint32_t v;
            if (!u32(v))
                return false;
            out.push_back(v);
        }
        return true;
    }

    bool
    u64Vector(std::vector<std::uint64_t> &out)
    {
        std::uint64_t n;
        if (!u64(n) || n > (data_.size() - pos_) / 8)
            return fail();
        out.clear();
        out.reserve(n);
        for (std::uint64_t i = 0; i < n; ++i) {
            std::uint64_t v;
            if (!u64(v))
                return false;
            out.push_back(v);
        }
        return true;
    }

    bool
    f64Vector(std::vector<double> &out)
    {
        std::uint64_t n;
        if (!u64(n) || n > (data_.size() - pos_) / 8)
            return fail();
        out.clear();
        out.reserve(n);
        for (std::uint64_t i = 0; i < n; ++i) {
            double v;
            if (!f64(v))
                return false;
            out.push_back(v);
        }
        return true;
    }

    /** True while no getter has failed. */
    bool ok() const { return ok_; }

    /** True when the whole input has been consumed exactly. */
    bool atEnd() const { return ok_ && pos_ == data_.size(); }

  private:
    template <typename T>
    bool
    readInt(T &out)
    {
        if (!ok_ || data_.size() - pos_ < sizeof(T))
            return fail();
        std::uint64_t v = 0;
        for (unsigned i = 0; i < sizeof(T); ++i)
            v |= static_cast<std::uint64_t>(static_cast<unsigned char>(
                     data_[pos_ + i]))
                 << (8 * i);
        out = static_cast<T>(v);
        pos_ += sizeof(T);
        return true;
    }

    bool
    fail()
    {
        ok_ = false;
        return false;
    }

    std::string_view data_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

} // namespace fosm::store

#endif // FOSM_STORE_CODEC_HH
