/**
 * @file
 * CRC32C (Castagnoli polynomial, the iSCSI/ext4 checksum) for store
 * record integrity. Software table-driven implementation — the store
 * checksums a few hundred bytes per record, so slicing-by-4 is plenty
 * and keeps the subsystem dependency-free (no SSE4.2 intrinsics to
 * gate on).
 */

#ifndef FOSM_STORE_CRC32C_HH
#define FOSM_STORE_CRC32C_HH

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace fosm::store {

/**
 * CRC32C of the buffer, optionally continuing from a previous crc
 * (pass the prior return value to checksum data in pieces).
 */
std::uint32_t crc32c(const void *data, std::size_t size,
                     std::uint32_t crc = 0);

inline std::uint32_t
crc32c(std::string_view data, std::uint32_t crc = 0)
{
    return crc32c(data.data(), data.size(), crc);
}

} // namespace fosm::store

#endif // FOSM_STORE_CRC32C_HH
