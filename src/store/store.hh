/**
 * @file
 * fosm-store: an embedded, dependency-free, crash-safe persistent
 * key-value store. First-order model evaluations are cheap and
 * deterministic, which makes them ideal to persist and reuse across
 * process lifetimes: the serving layer's response cache and the
 * Workbench's characterization cache both sit on one of these so a
 * restart starts warm instead of recomputing everything.
 *
 * Design (bitcask-style segment log):
 *
 *  - A store is a directory of append-only segment files. Every
 *    record carries a CRC32C, its key, its value, and a global
 *    logical sequence number (LSN); the newest LSN per key wins, so
 *    replay order never matters and duplicate records (a compaction
 *    interrupted between rename and cleanup) are harmless.
 *  - Writes append to the active (highest-numbered) segment; when it
 *    exceeds the configured size it is sealed, mmap()ed read-only,
 *    and a fresh segment started. Reads of sealed segments come
 *    straight from the mapping; reads of the active segment use
 *    pread().
 *  - The whole key space is indexed in memory (key -> newest record
 *    location), built by scanning the segments at open.
 *  - Recovery truncates, never fails open: a torn or bit-flipped
 *    record invalidates its CRC, the scan stops there, and the file
 *    is truncated back to the last intact record. Exactly the prefix
 *    of intact records survives.
 *  - Compaction rewrites the live records of all sealed segments
 *    (preserving their LSNs) into a new segment, fsync()s it, renames
 *    it into place atomically, then drops the old files. It runs on a
 *    background thread concurrently with reads; writers only block
 *    for the final pointer swap.
 *
 * See docs/STORE.md for the byte-level format and the full recovery
 * semantics.
 */

#ifndef FOSM_STORE_STORE_HH
#define FOSM_STORE_STORE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

namespace fosm::store {

/** Store tuning knobs. */
struct StoreConfig
{
    /** Directory holding the segment files (created if absent). */
    std::string dir;

    /** Seal the active segment beyond this many bytes. */
    std::size_t maxSegmentBytes = 8u << 20;

    /**
     * Background compaction triggers when sealed segments hold at
     * least this many dead bytes AND dead bytes exceed this fraction
     * of sealed bytes. compact() ignores both and always runs.
     */
    std::size_t compactMinDeadBytes = 1u << 20;
    double compactDeadFraction = 0.5;

    /** Start the background compaction thread. */
    bool backgroundCompaction = true;

    /**
     * fsync() after every put. Off by default: the store's crash
     * guarantee is integrity (never serve a torn record), not zero
     * data loss — a lost tail is recomputed on demand, which for
     * deterministic model results costs microseconds.
     */
    bool fsyncEachPut = false;

    /** Re-verify the record CRC on every get (scans always verify). */
    bool verifyOnRead = false;
};

/** Counters exposed via /v1/store/stats and the Prometheus gauges. */
struct StoreStats
{
    std::uint64_t segments = 0;
    std::uint64_t liveRecords = 0;
    std::uint64_t deadRecords = 0; ///< superseded or tombstoned
    std::uint64_t liveBytes = 0;   ///< record bytes the index points at
    std::uint64_t deadBytes = 0;
    std::uint64_t totalBytes = 0;  ///< sum of segment file sizes
    std::uint64_t appends = 0;     ///< puts + removes this session
    std::uint64_t gets = 0;
    std::uint64_t hits = 0;
    std::uint64_t compactions = 0;
    std::uint64_t truncatedTails = 0; ///< torn writes repaired at open
    std::uint64_t maxLsn = 0;         ///< highest LSN ever assigned
    std::uint64_t corruptReads = 0;   ///< CRC-failed gets, degraded to misses
    std::uint64_t quarantined = 0;    ///< corrupt records quarantined ever
    std::uint64_t quarantineLive = 0; ///< q/ marks currently live
};

/**
 * Per-segment LSN watermarks and entry counts (fosm-store stats,
 * GET /v1/store/stats). The [minLsn, maxLsn] range covers every
 * record the segment holds, dead or live — exactly the metadata an
 * anti-entropy sweep needs to skip segments entirely below a
 * replica's watermark.
 */
struct SegmentLsnInfo
{
    std::uint64_t id = 0;
    std::uint64_t records = 0;     ///< all records, incl. dead
    std::uint64_t liveRecords = 0; ///< records the index points at
    std::uint64_t bytes = 0;       ///< file size
    std::uint64_t minLsn = 0;      ///< 0 when the segment is empty
    std::uint64_t maxLsn = 0;
    bool sealed = false;
};

/** One live entry handed out by collectSince (anti-entropy pulls). */
struct LiveEntry
{
    std::string key;
    std::string value;
    std::uint64_t lsn = 0;
};

/** One segment's verification result (fosm-store verify). */
struct SegmentReport
{
    std::string file;
    std::uint64_t id = 0;
    std::uint64_t records = 0;
    std::uint64_t bytes = 0;       ///< intact record bytes incl. header
    std::uint64_t fileBytes = 0;
    bool intact = true;            ///< no CRC failures, no garbage
    std::uint64_t crcFailures = 0; ///< record-level corruption count
    /**
     * Structural damage: a torn header, implausible record lengths
     * or a truncated record — the scan could not resynchronize past
     * it. CRC failures with intact framing are counted and skipped
     * instead (record-level corruption).
     */
    bool structural = false;
    /** Keys of CRC-failed records whose key digest still matched
     *  (i.e. the key bytes themselves are trustworthy). */
    std::vector<std::string> corruptKeys;
    std::string error;             ///< first problem found
};

/** One live record location handed to the scrubber, in file order. */
struct ScrubEntry
{
    std::string key;
    std::uint64_t lsn = 0;
    std::uint64_t offset = 0;
    std::uint64_t recordLen = 0;
};

/** Outcome of a single-record CRC verification. */
enum class RecordCheck
{
    Ok,      ///< the stored record matches its CRC
    Corrupt, ///< CRC mismatch (or the bytes cannot be read back)
    Gone,    ///< the key is no longer live at the expected version
};

/**
 * The store. All public methods are thread-safe; get() runs under a
 * shared lock so readers never serialize against each other, and
 * compaction only takes the exclusive lock for its final swap.
 *
 * Throws std::runtime_error from the constructor when the directory
 * cannot be created or opened; never throws from the data path.
 */
class PersistentStore
{
  public:
    explicit PersistentStore(StoreConfig config);
    ~PersistentStore();

    PersistentStore(const PersistentStore &) = delete;
    PersistentStore &operator=(const PersistentStore &) = delete;

    /** Look up key; fills value and returns true on hit. */
    bool get(const std::string &key, std::string &value);

    bool contains(const std::string &key);

    /** Insert or overwrite. Values up to ~1 GiB. */
    void put(const std::string &key, std::string_view value);

    /** Delete key (appends a tombstone; space reclaimed by
     *  compaction). */
    void remove(const std::string &key);

    /**
     * Rewrite live records of all sealed segments into a fresh
     * segment and delete the old files. Safe to call concurrently
     * with readers and writers; concurrent compact() calls serialize.
     */
    void compact();

    /** fsync the active segment. */
    void flush();

    /**
     * Visit every live record (snapshot of the keys at call time;
     * values read as of the visit). For fosm-store inspect.
     */
    void forEachLive(
        const std::function<void(const std::string &key,
                                 const std::string &value,
                                 std::uint64_t lsn)> &fn);

    /**
     * Visit every live key (no value reads) with its LSN. Cheap:
     * one pass over the in-memory index under the shared lock.
     */
    void forEachLiveKey(
        const std::function<void(const std::string &key,
                                 std::uint64_t lsn)> &fn) const;

    /**
     * Collect live entries with LSN strictly greater than sinceLsn,
     * in ascending LSN order, up to maxEntries / maxBytes of values.
     * Segments whose maxLsn watermark is at or below sinceLsn are
     * skipped without scanning — a caught-up replica's periodic pull
     * costs one watermark comparison per segment, not a replay.
     *
     * `filter` (optional) drops entries by key before they count
     * against the caps. Sets `more` when qualifying entries remain
     * beyond the caps (the caller pulls again from the last LSN).
     */
    std::vector<LiveEntry> collectSince(
        std::uint64_t sinceLsn, std::size_t maxEntries,
        std::size_t maxBytes,
        const std::function<bool(const std::string &key)> &filter,
        bool &more) const;

    /**
     * Post-commit hook: called after every successful put() with the
     * key, value and assigned LSN, outside the store lock. May be
     * set or cleared while puts are in flight (swaps synchronize on
     * an internal lock; a racing put may invoke the previous hook
     * once more). The replication layer uses it to write-behind
     * committed entries to ring successors.
     */
    using CommitHook = std::function<void(
        const std::string &key, std::string_view value,
        std::uint64_t lsn)>;
    void setCommitHook(CommitHook hook);

    /**
     * Corruption hook: called (outside the store lock) when a get
     * with verifyOnRead enabled hits a CRC-failed record. The get
     * itself degrades to a miss; the hook is where the scrub/repair
     * layer quarantines the record and queues a repair. Same swap
     * semantics as the commit hook.
     */
    using CorruptionHook = std::function<void(
        const std::string &key, std::uint64_t lsn)>;
    void setCorruptionHook(CorruptionHook hook);

    /**
     * Live index entries located in `segmentId` with LSN strictly
     * greater than sinceLsn, ordered by file offset — the scrubber's
     * per-segment work list (sinceLsn is its clean-scan watermark,
     * so an unchanged segment costs one index pass and no reads).
     */
    std::vector<ScrubEntry>
    liveEntriesInSegment(std::uint64_t segmentId,
                         std::uint64_t sinceLsn) const;

    /**
     * Re-read the key's current record from disk and verify its CRC
     * (regardless of verifyOnRead). Fills lsn with the live record's
     * LSN when the key exists. Runs under the shared lock; safe
     * concurrently with everything else.
     */
    RecordCheck verifyRecord(const std::string &key,
                             std::uint64_t &lsn) const;

    /**
     * Quarantine a corrupt record: if `key` is still live at exactly
     * expectLsn AND its CRC still fails, drop it from the index (the
     * bytes stay on disk as dead weight for compaction — live
     * segments are never truncated) and persist a "q/<key>" mark so
     * the quarantine survives restart and the repair channel can
     * find it. Any later put() of the key clears the mark — that IS
     * the re-commit that ends the quarantine. Returns true when the
     * record was quarantined by this call.
     */
    bool quarantine(const std::string &key, std::uint64_t expectLsn);

    /** The quarantine mark key for a data key ("q/" + key). */
    static std::string quarantineKey(const std::string &key)
    {
        return "q/" + key;
    }

    StoreStats stats() const;

    /** Per-segment LSN watermarks, ordered by segment id. */
    std::vector<SegmentLsnInfo> segmentLsns() const;

    /** Highest LSN assigned so far (0 for an empty store). */
    std::uint64_t maxLsn() const;

    const StoreConfig &config() const { return config_; }

  private:
    struct Segment;
    struct Location
    {
        std::uint64_t segmentId = 0;
        std::uint64_t offset = 0;   ///< record start in the file
        std::uint32_t valueLen = 0;
        std::uint64_t recordLen = 0;
        std::uint64_t lsn = 0;
    };

    enum class ReadStatus
    {
        Ok,
        Failed,  ///< I/O trouble or injected fault: a plain miss
        Corrupt, ///< CRC mismatch under verifyOnRead
    };

    void openDir();
    Segment *activeSegment();
    Segment *newSegmentLocked();
    /** Returns the assigned LSN, or 0 when the write was dropped. */
    std::uint64_t appendLocked(const std::string &key,
                               std::string_view value,
                               bool tombstone);
    ReadStatus readValue(const Segment &segment, const Location &loc,
                         std::string &out) const;
    /** Read the whole record back and check its CRC (needs at least
     *  the shared lock). A short read counts as corrupt. */
    bool recordCrcOkLocked(const Segment &segment,
                           const Location &loc) const;
    void accountDead(const Location &loc);
    bool shouldCompactLocked() const;
    void compactionLoop();

    StoreConfig config_;
    CommitHook commitHook_;        ///< guarded by hookMutex_
    CorruptionHook corruptionHook_; ///< guarded by hookMutex_
    mutable std::mutex hookMutex_;

    mutable std::shared_mutex mutex_; ///< index + segment table
    std::unordered_map<std::string, Location> index_;
    std::map<std::uint64_t, std::unique_ptr<Segment>> segments_;
    std::uint64_t activeId_ = 0;
    std::uint64_t nextLsn_ = 1;
    std::uint64_t nextSegmentId_ = 1;

    // Statistics (guarded by mutex_ except the read counters).
    std::uint64_t deadRecords_ = 0;
    std::uint64_t deadBytes_ = 0;       ///< in sealed segments only
    std::uint64_t activeDeadBytes_ = 0; ///< migrates on seal
    std::uint64_t liveBytes_ = 0;
    std::uint64_t appends_ = 0;
    std::uint64_t compactions_ = 0;
    std::uint64_t truncatedTails_ = 0;
    std::uint64_t quarantinedTotal_ = 0;
    std::uint64_t quarantineMarks_ = 0; ///< live q/ index entries
    mutable std::atomic<std::uint64_t> gets_{0};
    mutable std::atomic<std::uint64_t> hits_{0};
    mutable std::atomic<std::uint64_t> corruptReads_{0};

    // Background compaction.
    std::mutex compactRunMutex_; ///< serializes compact() bodies
    std::mutex cvMutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
    bool compactRequested_ = false;
    std::thread compactor_;
};

/**
 * Read-only integrity scan of a store directory (fosm-store verify):
 * walks every segment checking structure and CRCs without repairing
 * anything. Safe on a directory another process has open. The scan
 * resynchronizes past CRC-failed records whose framing is intact
 * (counting them per segment and collecting their keys) and only
 * stops at structural damage, so one flipped bit no longer hides
 * the rest of the segment's state.
 */
std::vector<SegmentReport> verifyDir(const std::string &dir);

} // namespace fosm::store

#endif // FOSM_STORE_STORE_HH
