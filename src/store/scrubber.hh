/**
 * @file
 * fosm-scrub: paced background integrity verification for a
 * PersistentStore. A scrubber walks the store's segments on a timer,
 * re-reads every live record and checks its CRC32C, quarantines
 * records that fail (PersistentStore::quarantine — the bytes become
 * dead weight for compaction, a persistent "q/" mark survives
 * restart) and hands each finding to a corrupt handler, which the
 * serving layer wires to the replication repair queue.
 *
 * Two properties keep it out of the foreground's way:
 *
 *  - Watermarks. Per segment the scrubber remembers the maxLsn it
 *    last scanned clean; an unchanged segment (maxLsn at or below
 *    the watermark) is skipped without touching its bytes, and a
 *    dirty one re-verifies only records above the watermark. Every
 *    Nth pass (ScrubConfig::fullEvery, or POST /admin/scrub) is a
 *    full pass that rescans everything — watermarks say what we
 *    verified, not that the platters kept it intact since.
 *  - Pacing. Verified bytes are metered against a configured MB/s
 *    budget (ScrubConfig::mbps): after each record the scrubber
 *    sleeps however long keeps the pass under budget, in short
 *    slices so stop() never waits long. Reads run under the store's
 *    shared lock per record, so writers block only as long as one
 *    record verification.
 *
 * The scrubber also re-announces existing quarantine marks to the
 * corrupt handler at the end of every pass, so a repair that failed
 * (ring peers unreachable) is retried on the next pass and marks
 * written by a previous process lifetime still get repaired.
 *
 * No server/metrics dependencies: tools/fosm-store drives the same
 * engine offline, and fosm-serve adapts status() into gauges.
 */

#ifndef FOSM_STORE_SCRUBBER_HH
#define FOSM_STORE_SCRUBBER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "store/store.hh"

namespace fosm::store {

struct ScrubConfig
{
    /** Seconds between background passes (<= 0 disables start()). */
    double intervalS = 60.0;

    /** Read-bandwidth budget for a pass, in MB/s (<= 0 = unpaced). */
    double mbps = 64.0;

    /** Every Nth pass ignores watermarks and rescans everything. */
    std::uint64_t fullEvery = 10;

    /** Quarantine corrupt records (false = detect/report only). */
    bool quarantine = true;
};

/** A point-in-time snapshot of scrubber counters (all since start). */
struct ScrubStatus
{
    std::uint64_t passes = 0;
    std::uint64_t fullPasses = 0;
    std::uint64_t segmentsScanned = 0;
    std::uint64_t segmentsSkipped = 0; ///< clean under their watermark
    std::uint64_t recordsScanned = 0;
    std::uint64_t bytesScanned = 0;
    std::uint64_t corruptFound = 0;
    std::uint64_t quarantined = 0;
    std::uint64_t repairRequests = 0; ///< handler invocations
    std::uint64_t lastPassMs = 0;
    std::uint64_t throttleMs = 0; ///< total pacing sleep
    bool running = false;         ///< background thread alive
    bool scrubbing = false;       ///< a pass is executing right now
};

class Scrubber
{
  public:
    /** Receives every corrupt record found (and every standing
     *  quarantine mark once per pass). Invoked from the scrub thread
     *  or, via noteCorrupt(), from whatever thread hit the record. */
    using CorruptHandler = std::function<void(
        const std::string &key, std::uint64_t lsn)>;

    Scrubber(std::shared_ptr<PersistentStore> store,
             ScrubConfig config);
    ~Scrubber();

    Scrubber(const Scrubber &) = delete;
    Scrubber &operator=(const Scrubber &) = delete;

    void setCorruptHandler(CorruptHandler handler);

    /** Start the background pass loop (no-op when intervalS <= 0). */
    void start();

    /** Stop and join the background thread; aborts a pass promptly
     *  (mid-pacing sleeps are sliced). Idempotent. */
    void stop();

    struct PassResult
    {
        std::uint64_t segments = 0;
        std::uint64_t skipped = 0;
        std::uint64_t records = 0;
        std::uint64_t bytes = 0;
        std::uint64_t corrupt = 0;
        std::uint64_t quarantined = 0;
    };

    /**
     * Run one pass synchronously on the calling thread (the offline
     * `fosm-store scrub` path, and POST /admin/scrub with wait=true).
     * Concurrent passes serialize. full=true ignores watermarks.
     */
    PassResult scrubOnce(bool full);

    /** Make the next background pass a full one, and run it now. */
    void requestFullScrub();

    /**
     * Feed a corruption found outside the scrubber (a CRC-failed
     * get; wired to PersistentStore::setCorruptionHook): quarantines
     * the record and fires the corrupt handler, same as a scrub
     * finding.
     */
    void noteCorrupt(const std::string &key, std::uint64_t lsn);

    ScrubStatus status() const;

    const ScrubConfig &config() const { return config_; }

  private:
    void loop();
    void paceAndCount(std::uint64_t bytes,
                      std::chrono::steady_clock::time_point start,
                      std::uint64_t &passBytes);
    CorruptHandler handlerSnapshot() const;

    std::shared_ptr<PersistentStore> store_;
    ScrubConfig config_;

    mutable std::mutex handlerMutex_;
    CorruptHandler handler_;

    std::mutex passMutex_; ///< serializes scrubOnce bodies

    // Counters (relaxed atomics: read by status() concurrently).
    std::atomic<std::uint64_t> passes_{0};
    std::atomic<std::uint64_t> fullPasses_{0};
    std::atomic<std::uint64_t> segmentsScanned_{0};
    std::atomic<std::uint64_t> segmentsSkipped_{0};
    std::atomic<std::uint64_t> recordsScanned_{0};
    std::atomic<std::uint64_t> bytesScanned_{0};
    std::atomic<std::uint64_t> corruptFound_{0};
    std::atomic<std::uint64_t> quarantined_{0};
    std::atomic<std::uint64_t> repairRequests_{0};
    std::atomic<std::uint64_t> lastPassMs_{0};
    std::atomic<std::uint64_t> throttleMs_{0};
    std::atomic<bool> scrubbing_{false};
    std::atomic<bool> running_{false};
    std::atomic<bool> abort_{false}; ///< cut pacing sleeps short

    // Per-segment clean-scan watermarks (guarded by passMutex_).
    std::unordered_map<std::uint64_t, std::uint64_t> marks_;

    std::mutex cvMutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
    bool forceFull_ = false;
    std::thread thread_;
};

} // namespace fosm::store

#endif // FOSM_STORE_SCRUBBER_HH
