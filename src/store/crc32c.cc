#include "store/crc32c.hh"

#include <array>

namespace fosm::store {

namespace {

/** Reflected CRC32C polynomial. */
constexpr std::uint32_t poly = 0x82F63B78u;

struct Tables
{
    // tables[k][b]: CRC contribution of byte b placed k bytes before
    // the end of a 4-byte block (slicing-by-4).
    std::array<std::array<std::uint32_t, 256>, 4> t{};

    constexpr Tables()
    {
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int bit = 0; bit < 8; ++bit)
                c = (c >> 1) ^ ((c & 1) ? poly : 0);
            t[0][i] = c;
        }
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = t[0][i];
            for (std::size_t k = 1; k < 4; ++k) {
                c = (c >> 8) ^ t[0][c & 0xFF];
                t[k][i] = c;
            }
        }
    }
};

constexpr Tables tables{};

} // namespace

std::uint32_t
crc32c(const void *data, std::size_t size, std::uint32_t crc)
{
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint32_t c = ~crc;
    while (size >= 4) {
        c ^= static_cast<std::uint32_t>(p[0]) |
             static_cast<std::uint32_t>(p[1]) << 8 |
             static_cast<std::uint32_t>(p[2]) << 16 |
             static_cast<std::uint32_t>(p[3]) << 24;
        c = tables.t[3][c & 0xFF] ^ tables.t[2][(c >> 8) & 0xFF] ^
            tables.t[1][(c >> 16) & 0xFF] ^ tables.t[0][c >> 24];
        p += 4;
        size -= 4;
    }
    while (size-- > 0)
        c = (c >> 8) ^ tables.t[0][(c ^ *p++) & 0xFF];
    return ~c;
}

} // namespace fosm::store
