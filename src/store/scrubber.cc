#include "store/scrubber.hh"

#include <algorithm>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/logging.hh"

namespace fosm::store {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t
elapsedMs(Clock::time_point since)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            Clock::now() - since)
            .count());
}

} // namespace

Scrubber::Scrubber(std::shared_ptr<PersistentStore> store,
                   ScrubConfig config)
    : store_(std::move(store)), config_(config)
{
}

Scrubber::~Scrubber() { stop(); }

void
Scrubber::setCorruptHandler(CorruptHandler handler)
{
    std::lock_guard<std::mutex> lock(handlerMutex_);
    handler_ = std::move(handler);
}

Scrubber::CorruptHandler
Scrubber::handlerSnapshot() const
{
    std::lock_guard<std::mutex> lock(handlerMutex_);
    return handler_;
}

void
Scrubber::start()
{
    if (config_.intervalS <= 0.0 || thread_.joinable())
        return;
    {
        std::lock_guard<std::mutex> lock(cvMutex_);
        stopping_ = false;
    }
    abort_.store(false, std::memory_order_relaxed);
    thread_ = std::thread([this] { loop(); });
    running_.store(true, std::memory_order_relaxed);
}

void
Scrubber::stop()
{
    {
        std::lock_guard<std::mutex> lock(cvMutex_);
        stopping_ = true;
    }
    abort_.store(true, std::memory_order_relaxed);
    cv_.notify_all();
    if (thread_.joinable())
        thread_.join();
    running_.store(false, std::memory_order_relaxed);
}

void
Scrubber::loop()
{
    std::uint64_t pass = 0;
    while (true) {
        bool full = false;
        {
            std::unique_lock<std::mutex> lock(cvMutex_);
            cv_.wait_for(
                lock,
                std::chrono::duration<double>(config_.intervalS),
                [this] { return stopping_ || forceFull_; });
            if (stopping_)
                return;
            full = forceFull_;
            forceFull_ = false;
        }
        ++pass;
        if (config_.fullEvery > 0 && pass % config_.fullEvery == 0)
            full = true;
        scrubOnce(full);
    }
}

void
Scrubber::paceAndCount(std::uint64_t bytes, Clock::time_point start,
                       std::uint64_t &passBytes)
{
    passBytes += bytes;
    bytesScanned_.fetch_add(bytes, std::memory_order_relaxed);
    if (config_.mbps <= 0.0)
        return;
    // Sleep whatever keeps cumulative pass throughput under budget,
    // in short slices so stop() interrupts promptly.
    const double targetS =
        static_cast<double>(passBytes) / (config_.mbps * 1e6);
    const auto targetMs =
        static_cast<std::int64_t>(targetS * 1000.0);
    std::int64_t behind =
        targetMs - static_cast<std::int64_t>(elapsedMs(start));
    while (behind > 0 && !abort_.load(std::memory_order_relaxed)) {
        const std::int64_t slice = std::min<std::int64_t>(behind, 50);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(slice));
        throttleMs_.fetch_add(static_cast<std::uint64_t>(slice),
                              std::memory_order_relaxed);
        behind -= slice;
    }
}

Scrubber::PassResult
Scrubber::scrubOnce(bool full)
{
    std::lock_guard<std::mutex> run(passMutex_);
    const auto start = Clock::now();
    scrubbing_.store(true, std::memory_order_relaxed);
    PassResult result;
    std::uint64_t passBytes = 0;
    const CorruptHandler handler = handlerSnapshot();

    const std::vector<SegmentLsnInfo> segments =
        store_->segmentLsns();
    for (const SegmentLsnInfo &info : segments) {
        if (abort_.load(std::memory_order_relaxed))
            break;
        const auto markIt = marks_.find(info.id);
        const std::uint64_t mark =
            markIt == marks_.end() ? 0 : markIt->second;
        if (!full && info.maxLsn <= mark) {
            ++result.skipped;
            segmentsSkipped_.fetch_add(1, std::memory_order_relaxed);
            continue;
        }
        const std::uint64_t since = full ? 0 : mark;
        const std::vector<ScrubEntry> entries =
            store_->liveEntriesInSegment(info.id, since);
        for (const ScrubEntry &e : entries) {
            if (abort_.load(std::memory_order_relaxed))
                break;
            std::uint64_t lsn = 0;
            const RecordCheck check =
                store_->verifyRecord(e.key, lsn);
            ++result.records;
            recordsScanned_.fetch_add(1, std::memory_order_relaxed);
            paceAndCount(e.recordLen, start, passBytes);
            // Gone or rewritten since the entry snapshot: not ours
            // to judge. Only the exact version we located counts.
            if (check != RecordCheck::Corrupt || lsn != e.lsn)
                continue;
            ++result.corrupt;
            corruptFound_.fetch_add(1, std::memory_order_relaxed);
            warn("fosm-scrub: corrupt record key=", e.key,
                 " lsn=", e.lsn, " segment=", info.id);
            if (config_.quarantine &&
                store_->quarantine(e.key, e.lsn)) {
                ++result.quarantined;
                quarantined_.fetch_add(1, std::memory_order_relaxed);
            }
            if (handler) {
                repairRequests_.fetch_add(1,
                                          std::memory_order_relaxed);
                handler(e.key, e.lsn);
            }
        }
        if (abort_.load(std::memory_order_relaxed))
            break;
        // Everything in this segment up to maxLsn has now been
        // verified (or individually quarantined).
        marks_[info.id] = info.maxLsn;
        ++result.segments;
        segmentsScanned_.fetch_add(1, std::memory_order_relaxed);
    }

    // Drop watermarks for segments compaction retired.
    std::unordered_map<std::uint64_t, std::uint64_t> pruned;
    for (const SegmentLsnInfo &info : segments) {
        const auto it = marks_.find(info.id);
        if (it != marks_.end())
            pruned.emplace(info.id, it->second);
    }
    marks_ = std::move(pruned);

    // Re-announce standing quarantine marks: a repair that failed
    // (or predates this process) gets retried every pass.
    if (handler && !abort_.load(std::memory_order_relaxed)) {
        std::vector<std::string> marked;
        store_->forEachLiveKey(
            [&](const std::string &key, std::uint64_t) {
                if (key.rfind("q/", 0) == 0)
                    marked.push_back(key.substr(2));
            });
        for (const std::string &key : marked) {
            std::string lsnStr;
            std::uint64_t lsn = 0;
            if (store_->get(PersistentStore::quarantineKey(key),
                            lsnStr))
                lsn = std::strtoull(lsnStr.c_str(), nullptr, 10);
            repairRequests_.fetch_add(1, std::memory_order_relaxed);
            handler(key, lsn);
        }
    }

    passes_.fetch_add(1, std::memory_order_relaxed);
    if (full)
        fullPasses_.fetch_add(1, std::memory_order_relaxed);
    lastPassMs_.store(elapsedMs(start), std::memory_order_relaxed);
    scrubbing_.store(false, std::memory_order_relaxed);
    return result;
}

void
Scrubber::requestFullScrub()
{
    {
        std::lock_guard<std::mutex> lock(cvMutex_);
        forceFull_ = true;
    }
    cv_.notify_all();
}

void
Scrubber::noteCorrupt(const std::string &key, std::uint64_t lsn)
{
    corruptFound_.fetch_add(1, std::memory_order_relaxed);
    warn("fosm-scrub: corrupt read key=", key, " lsn=", lsn);
    if (config_.quarantine && store_->quarantine(key, lsn))
        quarantined_.fetch_add(1, std::memory_order_relaxed);
    if (const CorruptHandler handler = handlerSnapshot()) {
        repairRequests_.fetch_add(1, std::memory_order_relaxed);
        handler(key, lsn);
    }
}

ScrubStatus
Scrubber::status() const
{
    ScrubStatus s;
    s.passes = passes_.load(std::memory_order_relaxed);
    s.fullPasses = fullPasses_.load(std::memory_order_relaxed);
    s.segmentsScanned =
        segmentsScanned_.load(std::memory_order_relaxed);
    s.segmentsSkipped =
        segmentsSkipped_.load(std::memory_order_relaxed);
    s.recordsScanned =
        recordsScanned_.load(std::memory_order_relaxed);
    s.bytesScanned = bytesScanned_.load(std::memory_order_relaxed);
    s.corruptFound = corruptFound_.load(std::memory_order_relaxed);
    s.quarantined = quarantined_.load(std::memory_order_relaxed);
    s.repairRequests =
        repairRequests_.load(std::memory_order_relaxed);
    s.lastPassMs = lastPassMs_.load(std::memory_order_relaxed);
    s.throttleMs = throttleMs_.load(std::memory_order_relaxed);
    s.running = running_.load(std::memory_order_relaxed);
    s.scrubbing = scrubbing_.load(std::memory_order_relaxed);
    return s;
}

} // namespace fosm::store
