#include "sim/detailed_sim.hh"

#include <algorithm>

#include "branch/ideal.hh"
#include "branch/synthetic.hh"
#include "common/logging.hh"

namespace fosm {

DetailedSimulator::DetailedSimulator(const Trace &trace,
                                     const SimConfig &config)
    : trace_(trace),
      config_(config),
      hierarchy_(config.hierarchy),
      timing_(trace.size())
{
    fosm_assert(config_.machine.width > 0, "width must be positive");
    fosm_assert(config_.machine.frontEndDepth > 0,
                "front-end depth must be positive");
    fosm_assert(config_.machine.windowSize > 0,
                "window size must be positive");
    fosm_assert(config_.machine.robSize >= config_.machine.windowSize,
                "ROB must be at least as large as the window");
    fosm_assert(config_.machine.clusters >= 1,
                "need at least one cluster");
    fosm_assert(config_.machine.width % config_.machine.clusters == 0,
                "issue width must be divisible by the cluster count");
    fosm_assert(
        config_.machine.windowSize % config_.machine.clusters == 0,
        "window size must be divisible by the cluster count");
    clusterOccupancy_.assign(config_.machine.clusters, 0);
    clusterIssued_.assign(config_.machine.clusters, 0);

    if (config_.options.idealBranchPredictor) {
        predictor_ = makePredictor(PredictorKind::Ideal);
    } else if (config_.syntheticMispredictRate >= 0.0) {
        predictor_ = std::make_unique<SyntheticPredictor>(
            config_.syntheticMispredictRate);
    } else {
        predictor_ =
            makePredictor(config_.predictor, config_.predictorEntries);
    }

    if (config_.dtlb.enabled)
        dtlb_ = std::make_unique<Tlb>(config_.dtlb);

    stats_.timelineBucketCycles = config_.options.timelineBucketCycles;

    // Functional-unit pools (empty busy vector = unbounded).
    const FuPool *pools[5] = {
        &config_.fuPools.intAlu, &config_.fuPools.intMul,
        &config_.fuPools.intDiv, &config_.fuPools.fpAlu,
        &config_.fuPools.memPort};
    for (std::size_t p = 0; p < 5; ++p) {
        fuState_[p].pipelined = pools[p]->pipelined;
        fuState_[p].busyUntil.assign(pools[p]->count, 0);
    }

    resolveProducers();
}

std::size_t
DetailedSimulator::fuPoolIndex(InstClass cls)
{
    switch (cls) {
      case InstClass::IntAlu:
      case InstClass::Branch:
        return 0;
      case InstClass::IntMul:
        return 1;
      case InstClass::IntDiv:
        return 2;
      case InstClass::FpAlu:
        return 3;
      case InstClass::Load:
      case InstClass::Store:
        return 4;
    }
    fosm_panic("unknown InstClass");
}

bool
DetailedSimulator::fuAvailable(InstClass cls) const
{
    const FuPoolState &pool = fuState_[fuPoolIndex(cls)];
    if (pool.busyUntil.empty())
        return true; // unbounded
    for (Cycle busy : pool.busyUntil) {
        if (busy <= now_)
            return true;
    }
    return false;
}

void
DetailedSimulator::occupyFu(InstClass cls)
{
    FuPoolState &pool = fuState_[fuPoolIndex(cls)];
    if (pool.busyUntil.empty())
        return;
    for (Cycle &busy : pool.busyUntil) {
        if (busy <= now_) {
            // A pipelined unit accepts a new operation next cycle;
            // an unpipelined one is busy for the full latency.
            busy = now_ + (pool.pipelined
                               ? 1
                               : config_.latency.latencyFor(cls));
            return;
        }
    }
    fosm_panic("occupyFu called without an available unit");
}

void
DetailedSimulator::resolveProducers()
{
    std::vector<std::int32_t> last_writer(numArchRegs, -1);
    for (std::size_t i = 0; i < trace_.size(); ++i) {
        const InstRecord &inst = trace_[i];
        timing_[i].prod1 =
            inst.src1 != invalidReg ? last_writer[inst.src1] : -1;
        timing_[i].prod2 =
            inst.src2 != invalidReg ? last_writer[inst.src2] : -1;
        if (inst.dst != invalidReg)
            last_writer[inst.dst] = static_cast<std::int32_t>(i);
    }
}

std::uint32_t
DetailedSimulator::pipeCapacity() const
{
    return config_.machine.frontEndDepth * config_.machine.width +
           config_.options.fetchBufferEntries;
}

bool
DetailedSimulator::longMissOutstanding() const
{
    return !outstandingLongMisses_.empty();
}

void
DetailedSimulator::reapLongMisses()
{
    auto it = outstandingLongMisses_.begin();
    while (it != outstandingLongMisses_.end()) {
        if (*it <= now_) {
            stats_.windowAtMissReturn.add(
                static_cast<double>(window_.size()));
            it = outstandingLongMisses_.erase(it);
        } else {
            ++it;
        }
    }
}

bool
DetailedSimulator::ready(std::uint32_t seq) const
{
    const InstTiming &t = timing_[seq];
    for (std::int32_t p : {t.prod1, t.prod2}) {
        if (p < 0)
            continue;
        const InstTiming &pt = timing_[static_cast<std::uint32_t>(p)];
        if (!pt.issued)
            return false;
        // Values produced in another cluster pay the forwarding
        // delay (future-work 3).
        Cycle available = pt.completeCycle;
        if (pt.cluster != t.cluster)
            available += config_.machine.interClusterDelay;
        if (available > now_)
            return false;
    }
    return true;
}

void
DetailedSimulator::issueInst(std::uint32_t seq)
{
    const InstRecord &inst = trace_[seq];
    InstTiming &t = timing_[seq];

    Cycle lat = config_.latency.latencyFor(inst.cls);

    // Data-TLB translation precedes the cache access; a load walk
    // serializes with the load ("much like a long data cache miss",
    // Section 7 future-work 4). Store walks are absorbed by the
    // write buffer.
    Cycle walk = 0;
    if (dtlb_ && inst.isMem() && !config_.options.idealDcache) {
        if (!dtlb_->access(inst.effAddr)) {
            if (inst.isLoad()) {
                ++stats_.dtlbLoadMisses;
                walk = config_.dtlb.walkLatency;
            } else {
                ++stats_.dtlbStoreMisses;
            }
        }
    }

    if (inst.isLoad() && !config_.options.idealDcache) {
        const AccessResult access = hierarchy_.accessData(inst.effAddr);
        if (access.level == HitLevel::L2) {
            ++stats_.shortLoadMisses;
            lat = config_.latency.loadHit + config_.hierarchy.l2Latency;
        } else if (access.level == HitLevel::Memory) {
            if (config_.options.isolateDcacheMisses &&
                longMissOutstanding()) {
                // Isolation experiment: overlapping misses become hits.
                lat = config_.latency.loadHit;
            } else {
                ++stats_.longLoadMisses;
                lat = config_.latency.loadHit +
                      config_.hierarchy.memLatency;
                t.longMiss = true;
                // ROB is filled in order, so the entries ahead of this
                // load are exactly those with smaller sequence numbers.
                fosm_assert(!rob_.empty(), "issuing outside the ROB");
                stats_.robAheadOfMissedLoad.add(
                    static_cast<double>(seq - rob_.front()));
                outstandingLongMisses_.push_back(now_ + lat + walk);
            }
        }
    } else if (inst.isStore() && !config_.options.idealDcache) {
        // Stores are write-buffered: access for cache state, but the
        // store completes immediately and never stalls retirement.
        hierarchy_.accessData(inst.effAddr);
    }
    lat += walk;

    t.issueCycle = now_;
    t.completeCycle = now_ + lat;
    t.issued = true;

    if (inst.isBranch() && mispredicted_[seq]) {
        // The window should be (nearly) empty of useful instructions
        // by now (Section 4.1's validation: ~1.3 on average).
        stats_.windowAtBranchIssue.add(
            static_cast<double>(window_.size() - 1));
        branchResolveCycle_ = t.completeCycle;
        branchResolvePending_ = true;
    }
}

void
DetailedSimulator::doIssue()
{
    issuedNow_.clear();
    std::uint32_t issued = 0;
    const std::uint32_t per_cluster =
        config_.machine.width / config_.machine.clusters;
    std::fill(clusterIssued_.begin(), clusterIssued_.end(), 0);
    for (std::uint32_t seq : window_) {
        if (issued >= config_.machine.width)
            break;
        const std::uint8_t cluster = timing_[seq].cluster;
        if (clusterIssued_[cluster] >= per_cluster)
            continue;
        if (ready(seq) && fuAvailable(trace_[seq].cls)) {
            occupyFu(trace_[seq].cls);
            issuedNow_.push_back(seq);
            ++clusterIssued_[cluster];
            ++issued;
        }
    }
    for (std::uint32_t seq : issuedNow_) {
        issueInst(seq);
        --clusterOccupancy_[timing_[seq].cluster];
        window_.erase(
            std::find(window_.begin(), window_.end(), seq));
    }
}

void
DetailedSimulator::doDispatch()
{
    const std::uint32_t per_cluster_window =
        config_.machine.windowSize / config_.machine.clusters;
    std::uint32_t dispatched = 0;
    while (dispatched < config_.machine.width && !pipe_.empty() &&
           pipe_.front().readyCycle <= now_ &&
           window_.size() < config_.machine.windowSize &&
           rob_.size() < config_.machine.robSize) {
        // Round-robin cluster steering; head-of-line blocking when
        // the target cluster's partition is full.
        const std::uint8_t cluster = static_cast<std::uint8_t>(
            dispatchCount_ % config_.machine.clusters);
        if (clusterOccupancy_[cluster] >= per_cluster_window)
            break;
        const std::uint32_t seq = pipe_.front().seq;
        pipe_.pop_front();
        timing_[seq].cluster = cluster;
        ++clusterOccupancy_[cluster];
        ++dispatchCount_;
        window_.push_back(seq);
        rob_.push_back(seq);
        ++dispatched;
    }
}

void
DetailedSimulator::doRetire()
{
    std::uint32_t retired = 0;
    while (retired < config_.machine.width && !rob_.empty()) {
        const std::uint32_t seq = rob_.front();
        const InstTiming &t = timing_[seq];
        if (!t.issued || t.completeCycle > now_)
            break;
        rob_.pop_front();
        ++stats_.retired;
        ++retired;
    }
    if (stats_.timelineBucketCycles > 0 && retired > 0) {
        const std::size_t bucket =
            now_ / stats_.timelineBucketCycles;
        if (stats_.timeline.size() <= bucket)
            stats_.timeline.resize(bucket + 1, 0);
        stats_.timeline[bucket] += retired;
    }
}

bool
DetailedSimulator::fetchOne()
{
    const InstRecord &inst = trace_[fetchSeq_];

    if (!fetchRetryPending_ && !config_.options.idealIcache) {
        const AccessResult access = hierarchy_.fetchInst(inst.pc);
        if (access.isL1Miss()) {
            ++stats_.icacheL1Misses;
            if (access.isL2Miss())
                ++stats_.icacheL2Misses;
            if (longMissOutstanding())
                ++stats_.icacheMissesDuringLongMiss;
            // The line arrives after the access latency; the fetch of
            // this instruction then proceeds without re-probing.
            icacheStallUntil_ = now_ + access.latency;
            fetchRetryPending_ = true;
            return false;
        }
    }
    fetchRetryPending_ = false;

    pipe_.push_back({fetchSeq_, now_ + config_.machine.frontEndDepth});

    if (inst.isBranch()) {
        ++stats_.branches;
        const bool correct =
            predictor_->predictAndUpdate(inst.pc, inst.branchTaken);
        if (!correct) {
            ++stats_.mispredictions;
            mispredicted_[fetchSeq_] = true;
            if (longMissOutstanding())
                ++stats_.mispredictsDuringLongMiss;
            // Fetch of useful instructions stops until the branch
            // resolves (the paper's machine, Section 2).
            branchStall_ = true;
            ++fetchSeq_;
            return false;
        }
    }
    ++fetchSeq_;
    return true;
}

void
DetailedSimulator::doFetch()
{
    if (branchStall_ || now_ < icacheStallUntil_)
        return;
    const std::uint32_t bandwidth = config_.options.fetchBandwidth
        ? config_.options.fetchBandwidth
        : config_.machine.width;
    std::uint32_t fetched = 0;
    while (fetched < bandwidth && fetchSeq_ < trace_.size() &&
           pipe_.size() < pipeCapacity()) {
        if (!fetchOne())
            break;
        ++fetched;
    }
}

SimStats
DetailedSimulator::run()
{
    const std::uint64_t n = trace_.size();
    mispredicted_.assign(n, false);

    // Generous livelock guard: even a fully serialized machine with
    // memory latency on every instruction stays well below this.
    const Cycle bound =
        10000 + n * (config_.hierarchy.memLatency + 64);

    while (stats_.retired < n) {
        reapLongMisses();
        if (branchResolvePending_ && branchResolveCycle_ <= now_) {
            branchResolvePending_ = false;
            branchStall_ = false;
        }
        doRetire();
        doIssue();
        doDispatch();
        doFetch();
        ++now_;
        fosm_assert(now_ < bound, "simulator failed to make progress");
    }
    stats_.cycles = now_;
    return stats_;
}

SimStats
simulateTrace(const Trace &trace, const SimConfig &config)
{
    SimConfig cfg = config;
    cfg.syncMissDelays();
    DetailedSimulator sim(trace, cfg);
    return sim.run();
}

} // namespace fosm
